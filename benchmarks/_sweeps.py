"""Shared N-sweep logic for the total-running-time figures (6, 8, 9, 10)."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.simulation import SimulationConfig, simulate

PROTOS = ("lightsecagg", "secagg", "secagg+")
N_SWEEP = (25, 50, 100, 150, 200)
DROPOUTS = (0.1, 0.3, 0.5)


def total_time_sweep(
    model_dim: int, training_time: float, overlapped: bool,
    config: SimulationConfig = SimulationConfig(),
) -> Dict[Tuple[str, float], List[float]]:
    """``{(protocol, p): [total seconds per N in N_SWEEP]}``."""
    out: Dict[Tuple[str, float], List[float]] = {}
    for proto in PROTOS:
        for p in DROPOUTS:
            out[(proto, p)] = [
                simulate(proto, n, model_dim, p, training_time, config).total(
                    overlapped
                )
                for n in N_SWEEP
            ]
    return out


def sweep_rows(title: str, series: Dict[Tuple[str, float], List[float]]) -> List[str]:
    lines = [title,
             f"{'protocol':13s}{'p':>5s}" + "".join(f"{n:>9d}" for n in N_SWEEP)]
    for proto in PROTOS:
        for p in DROPOUTS:
            vals = "".join(f"{v:9.1f}" for v in series[(proto, p)])
            lines.append(f"{proto:13s}{p:5.1f}{vals}")
    return lines


def assert_figure_shape(
    series: Dict[Tuple[str, float], List[float]], growth_factor: float = 1.5
) -> None:
    """The qualitative claims common to Figures 6/8/9/10.

    ``growth_factor`` is the required margin between SecAgg's and
    LightSecAgg's growth in N.  For the tiny LR model (Fig 8) the shared
    per-peer session floor dominates every protocol in our model, so the
    margin shrinks toward 1 — pass a smaller factor there (the paper's
    absolute gains for that task are likewise the smallest).
    """
    n_hi = len(N_SWEEP) - 1
    for p in DROPOUTS:
        # Ordering at scale: LightSecAgg < SecAgg+ < SecAgg.
        assert (
            series[("lightsecagg", p)][n_hi]
            < series[("secagg+", p)][n_hi]
            < series[("secagg", p)][n_hi]
        ), p
        # Everything grows with N.
        for proto in PROTOS:
            s = series[(proto, p)]
            assert s[0] < s[-1], (proto, p)
    # SecAgg grows superlinearly in N; LightSecAgg subquadratically slower.
    for p in DROPOUTS:
        secagg_growth = series[("secagg", p)][n_hi] / series[("secagg", p)][0]
        lsa_growth = (
            series[("lightsecagg", p)][n_hi] / series[("lightsecagg", p)][0]
        )
        assert secagg_growth > growth_factor * lsa_growth, p
    # SecAgg/SecAgg+ totals increase monotonically with the dropout rate.
    for proto in ("secagg", "secagg+"):
        assert (
            series[(proto, 0.1)][n_hi]
            < series[(proto, 0.3)][n_hi]
            < series[(proto, 0.5)][n_hi]
        )
    # LightSecAgg: p=0.1 and p=0.3 nearly identical (same U = 0.7N).
    a = series[("lightsecagg", 0.1)][n_hi]
    b = series[("lightsecagg", 0.3)][n_hi]
    assert abs(a - b) / a < 0.05
