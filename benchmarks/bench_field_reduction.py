"""Field-layer reduction-kernel benchmark: division-free vs np.mod.

Sweeps every reduction kernel available for each modulus (Mersenne
shift-fold for ``2**31 - 1``, Barrett for any ``q < 2**32``, and the
``np.mod`` integer-division oracle that preserves the pre-reducer code
path) over the three workloads that dominate the service:

* **elementwise** — one full reduction of 1M uniform uint64 words (the
  PRG rejection-sampling tail and every ``mul``/``sum`` call site);
* **matmul** — the refill-shape generator product
  ``(64, 48) @ (48, 1M)``, which is where the offline pool spends its
  time; the division-free kernels additionally unlock the exact
  limb-split float64 BLAS path, so this row measures the whole kernel
  swap, not just the reduction;
* **encode_batch** — ``MaskEncoder.encode_batch`` end to end at a
  64-user cohort, reported as encoded mask elements per second.

Emits ``benchmarks/results/field_reduction.json`` and echoes a table.
Every lane hashes its outputs; the report's ``bit_identical`` flags
assert the kernels agree byte for byte before any timing is trusted.

``--quick`` shrinks the widths for smoke runs; ``--check`` runs the
CI acceptance gate only (selected kernel beats the ``np.mod`` oracle
on the refill-shape matmul) and exits nonzero on failure.
"""

import argparse
import hashlib
import json
import os
import sys
import time

import numpy as np

from _report import RESULTS_DIR
from repro.coding.mask_encoding import MaskEncoder
from repro.field import (
    DEFAULT_PRIME,
    PAPER_PRIME,
    FiniteField,
    available_reducer_kinds,
    select_reducer,
)

MODULI = {"default_2^31-1": DEFAULT_PRIME, "paper_2^32-5": PAPER_PRIME}

# Refill-shape generator product: N=64 users x U=48 survivor columns,
# against a 1M-wide block of pool material.
REFILL_M, REFILL_K = 64, 48
REFILL_WIDTH = 1_000_000
QUICK_WIDTH = 65_536
CHECK_WIDTH = 262_144

ELEMWISE_N = 1_000_000

ENC_USERS, ENC_SURVIVORS, ENC_PRIVACY = 64, 48, 8
ENC_MODEL_DIM = 65_536
ENC_BATCH = 8


def _best_of(fn, reps):
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_elementwise(q, kind, reps):
    red = select_reducer(q, kind)
    rng = np.random.default_rng(1)
    x = rng.integers(0, (1 << 64) - 1, size=ELEMWISE_N, dtype=np.uint64)
    out = np.empty_like(x)
    seconds = _best_of(lambda: red.reduce(x, out=out), reps)
    return {
        "seconds": seconds,
        "melems_per_second": ELEMWISE_N / seconds / 1e6,
        "sha256": hashlib.sha256(out.tobytes()).hexdigest(),
    }


def bench_matmul(q, kind, width, reps):
    gf = FiniteField(q, reducer=kind)
    rng = np.random.default_rng(2)
    a = gf.random((REFILL_M, REFILL_K), rng)
    b = gf.random((REFILL_K, width), rng)
    out = gf.matmul(a, b)  # warm (and hashed for the identity check)
    seconds = _best_of(lambda: gf.matmul(a, b), reps)
    return {
        "shape": [REFILL_M, REFILL_K, width],
        "seconds": seconds,
        "melems_per_second": REFILL_M * width / seconds / 1e6,
        "sha256": hashlib.sha256(out.tobytes()).hexdigest(),
    }


def bench_encode_batch(q, kind, model_dim, reps):
    gf = FiniteField(q, reducer=kind)
    enc = MaskEncoder(
        gf,
        num_users=ENC_USERS,
        target_survivors=ENC_SURVIVORS,
        privacy=ENC_PRIVACY,
        model_dim=model_dim,
    )
    masks = gf.random((ENC_BATCH, model_dim), np.random.default_rng(3))
    pad_rng = lambda: np.random.default_rng(4)  # noqa: E731 - fixed padding
    coded = enc.encode_batch(masks, pad_rng())
    seconds = _best_of(lambda: enc.encode_batch(masks, pad_rng()), reps)
    return {
        "batch": ENC_BATCH,
        "model_dim": model_dim,
        "seconds": seconds,
        "melems_per_second": ENC_BATCH * model_dim / seconds / 1e6,
        "sha256": hashlib.sha256(coded.tobytes()).hexdigest(),
    }


def run_all(width=REFILL_WIDTH, model_dim=ENC_MODEL_DIM, reps=3):
    report = {
        "benchmark": "field_reduction",
        "host": {
            "cpu_count": os.cpu_count(),
            "numpy": np.__version__,
            "python": sys.version.split()[0],
        },
        "geometry": {
            "elementwise_n": ELEMWISE_N,
            "matmul_shape": [REFILL_M, REFILL_K, width],
            "encode_users": ENC_USERS,
            "encode_survivors": ENC_SURVIVORS,
            "encode_privacy": ENC_PRIVACY,
            "encode_batch": ENC_BATCH,
            "encode_model_dim": model_dim,
            "reps": reps,
        },
        "moduli": {},
    }
    for label, q in MODULI.items():
        kinds = available_reducer_kinds(q)
        selected = select_reducer(q).kind
        rows = {}
        for kind in kinds:
            print(f"[{label}] {kind} ...", flush=True)
            rows[kind] = {
                "elementwise": bench_elementwise(q, kind, reps),
                "matmul": bench_matmul(q, kind, width, reps),
                "encode_batch": bench_encode_batch(q, kind, model_dim, reps),
            }
        entry = {"q": q, "selected": selected, "reducers": rows}
        for workload in ("elementwise", "matmul", "encode_batch"):
            entry[f"bit_identical_{workload}"] = (
                len({r[workload]["sha256"] for r in rows.values()}) == 1
            )
            oracle_s = rows["numpy_mod"][workload]["seconds"]
            for kind, r in rows.items():
                r[workload]["speedup_vs_numpy_mod"] = (
                    oracle_s / r[workload]["seconds"]
                )
        report["moduli"][label] = entry
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "field_reduction.json")
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"\n--- field_reduction -> {path} ---")
    for label, entry in report["moduli"].items():
        print(f"q = {entry['q']} ({label}), selected = {entry['selected']}")
        for kind, r in entry["reducers"].items():
            print(
                f"  {kind:10s} "
                f"elementwise {r['elementwise']['melems_per_second']:8.1f} M/s "
                f"({r['elementwise']['speedup_vs_numpy_mod']:5.2f}x)  "
                f"matmul {r['matmul']['seconds']:7.3f} s "
                f"({r['matmul']['speedup_vs_numpy_mod']:5.2f}x)  "
                f"encode {r['encode_batch']['melems_per_second']:6.2f} M/s "
                f"({r['encode_batch']['speedup_vs_numpy_mod']:5.2f}x)"
            )
        for workload in ("elementwise", "matmul", "encode_batch"):
            assert entry[f"bit_identical_{workload}"], (label, workload)
    return report


def run_check(width=CHECK_WIDTH):
    """CI smoke gate: the auto-selected kernel must beat the oracle on
    the refill-shape matmul.  Prints the measurement; exit code reports
    pass/fail so the (non-blocking) CI step can surface regressions."""
    ok = True
    for label, q in MODULI.items():
        selected = select_reducer(q).kind
        fast = bench_matmul(q, selected, width, reps=2)
        oracle = bench_matmul(q, "numpy_mod", width, reps=2)
        speedup = oracle["seconds"] / fast["seconds"]
        identical = fast["sha256"] == oracle["sha256"]
        status = "ok" if speedup > 1.0 and identical else "FAIL"
        print(
            f"[{status}] q={q} ({label}): {selected} {fast['seconds']:.3f}s "
            f"vs numpy_mod {oracle['seconds']:.3f}s -> {speedup:.2f}x, "
            f"bit_identical={identical}"
        )
        ok = ok and speedup > 1.0 and identical
    return ok


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="field reduction-kernel benchmark"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="shrink matmul/encode widths for a fast smoke run",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="run the CI gate only: selected kernel beats np.mod on the "
             "refill-shape matmul; exits nonzero on failure",
    )
    parser.add_argument("--width", type=int, default=None)
    parser.add_argument("--reps", type=int, default=3)
    args = parser.parse_args(argv)
    if args.check:
        sys.exit(0 if run_check(args.width or CHECK_WIDTH) else 1)
    if args.quick:
        run_all(
            width=args.width or QUICK_WIDTH,
            model_dim=16_384,
            reps=max(1, args.reps),
        )
    else:
        run_all(width=args.width or REFILL_WIDTH, reps=args.reps)


if __name__ == "__main__":
    main()
