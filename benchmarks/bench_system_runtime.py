"""Event-driven cross-validation of the Fig. 5 overlap claim.

The closed-form model (`repro.simulation.runtime`) charges analytic costs;
the event-driven runtime (`repro.system`) plays the actual protocol with
real payloads on a simulated timeline.  Both must agree qualitatively:
overlapping offline work with training shortens the round, and recovery
needs only the U fastest responders.
"""

import numpy as np

from repro.field import FiniteField
from repro.protocols.lightsecagg.params import LSAParams
from repro.simulation.heterogeneous import UserProfile
from repro.system import SystemRuntime

from _report import write_report

GF = FiniteField()
N, DIM = 12, 2_000
PARAMS = LSAParams.from_guarantees(N, privacy=4, dropout_tolerance=2)
TRAIN_T = 3.0


def _updates(rng):
    return {i: GF.random(DIM, rng) for i in range(N)}


def test_system_overlap_vs_serial(benchmark):
    rng = np.random.default_rng(0)
    updates = _updates(rng)

    def run(overlap):
        runtime = SystemRuntime(
            GF, PARAMS, DIM, training_time=TRAIN_T, overlap=overlap
        )
        return runtime.run_round(updates, rng=np.random.default_rng(1))

    overlapped = benchmark(run, True)
    serial = run(False)
    lines = [
        f"Event-driven Fig. 5 cross-check (N={N}, d={DIM}, train={TRAIN_T}s)",
        f"  overlapped round: {overlapped.finish_time:8.3f} s",
        f"  serial round    : {serial.finish_time:8.3f} s",
        f"  saving          : {serial.finish_time - overlapped.finish_time:8.3f} s",
    ]
    write_report("system_runtime_overlap", lines)
    assert overlapped.finish_time < serial.finish_time
    assert np.array_equal(overlapped.aggregate, serial.aggregate)


def test_system_straggler_order_statistic(benchmark):
    rng = np.random.default_rng(2)
    updates = _updates(rng)
    fleet = [UserProfile()] * (N - 2) + [
        UserProfile(compute_scale=0.02, bandwidth_scale=0.02)
    ] * 2

    def run():
        runtime = SystemRuntime(GF, PARAMS, DIM, fleet=fleet)
        return runtime.run_round(updates, rng=np.random.default_rng(3))

    result = benchmark(run)
    # The two stragglers are never needed for the one-shot recovery.
    assert N - 2 not in result.responders
    assert N - 1 not in result.responders
    assert len(result.responders) == PARAMS.target_survivors
