"""Service-layer throughput: sync refill vs background refill vs sharded.

Measures the aggregation service end to end on this machine and emits a
**machine-readable JSON report** (``benchmarks/results/
service_throughput.json``) with, per configuration:

* sustained online rounds/sec,
* online stall count (rounds that found an empty pool),
* the pool-depth-over-time series sampled at every round start and
  refill completion.

Configurations compared at identical geometry (N users, dimension d,
pool size K, R rounds):

* ``sync`` — PR 1 behaviour: inline refill on miss; steady state stalls
  once per K rounds by construction.
* ``background`` — the refill worker tops pools up at the low-water
  mark; at steady state (client think time >= refill time, modelled with
  a small per-round think sleep) online rounds never stall.
* ``background+sharded`` — same, with the model vector partitioned
  across shards, each driving its own session.

Acceptance gate: zero online stalls for the background configurations vs
>= floor((R - K) / K) + 1 ... well, >= 1 stall per K rounds for sync.
"""

import json
import os
import time

import numpy as np

from _report import RESULTS_DIR
from repro.field import FiniteField
from repro.service import AggregationService, RefillMode, ServiceConfig

N_USERS = 16
DIM = 4096
POOL = 6
LOW_WATER = 3
ROUNDS = 24
# Simulated client training time per round.  The zero-stall steady state
# exists when the refiller can re-encode low_water rounds of material
# within low_water round periods; 20 ms of think time per round (a tiny
# fraction of any real local-training window) gives it that headroom on
# this machine (refill of 3 rounds at d=4096 measures ~25-30 ms).
THINK_TIME_S = 0.02

GF = FiniteField()

CONFIGS = {
    "sync": ServiceConfig(
        num_cohorts=1, num_users=N_USERS, model_dim=DIM, num_shards=1,
        pool_size=POOL, low_water=0, refill_mode=RefillMode.SYNC,
        dropout_tolerance=N_USERS // 8, privacy=N_USERS // 8, seed=0,
    ),
    "background": ServiceConfig(
        num_cohorts=1, num_users=N_USERS, model_dim=DIM, num_shards=1,
        pool_size=POOL, low_water=LOW_WATER,
        refill_mode=RefillMode.BACKGROUND,
        dropout_tolerance=N_USERS // 8, privacy=N_USERS // 8, seed=0,
    ),
    "background+sharded": ServiceConfig(
        num_cohorts=1, num_users=N_USERS, model_dim=DIM, num_shards=4,
        pool_size=POOL, low_water=LOW_WATER,
        refill_mode=RefillMode.BACKGROUND,
        dropout_tolerance=N_USERS // 8, privacy=N_USERS // 8, seed=0,
    ),
}


def run_config(name, config):
    """Drive ROUNDS rounds; return the metrics dict for the report."""
    rng = np.random.default_rng(42)
    with AggregationService(config, gf=GF) as svc:
        cohort = svc.cohorts[0]
        proto_updates = {
            i: GF.random(DIM, rng) for i in range(N_USERS)
        }
        t0 = time.perf_counter()
        for r in range(ROUNDS):
            # Client think time: local training happens here in a real
            # deployment, which is exactly the window a background
            # refill hides in.
            time.sleep(THINK_TIME_S)
            dropouts = {int(rng.integers(0, N_USERS))} if r % 3 else set()
            result = cohort.run_round(proto_updates, dropouts, rng)
            assert sorted(set(range(N_USERS)) - dropouts) == result.survivors
        wall = time.perf_counter() - t0
        snapshot = svc.status()

    m = snapshot["metrics"]["cohorts"][0]
    return {
        "config": snapshot["config"],
        "rounds": m["rounds"],
        "stalls": m["stalls"],
        "online_seconds": m["online_seconds"],
        "sustained_rounds_per_second": m["rounds"] / wall,
        "online_rounds_per_second": m["rounds_per_second"],
        "pool_depth_over_time": [
            {"t": round(t, 6), "depth": depth}
            for t, depth in m["pool_depth_series"]
        ],
        "background_refills": m["background_refills"],
        "wall_seconds": wall,
    }


def run_all():
    report = {
        "benchmark": "service_throughput",
        "geometry": {
            "num_users": N_USERS, "model_dim": DIM, "pool_size": POOL,
            "low_water": LOW_WATER, "rounds": ROUNDS,
            "think_time_s": THINK_TIME_S,
        },
        "configs": {},
    }
    for name, config in CONFIGS.items():
        report["configs"][name] = run_config(name, config)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "service_throughput.json")
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"\n--- service_throughput -> {path} ---")
    for name, r in report["configs"].items():
        print(
            f"{name:20s} {r['sustained_rounds_per_second']:8.1f} rounds/s "
            f"sustained, {r['online_rounds_per_second']:8.1f} rounds/s "
            f"online, stalls={r['stalls']}"
        )
    return report


def test_background_refill_eliminates_stalls():
    """Acceptance gate: zero stalls with low-water background refill, vs
    >= 1 stall per pool cycle for synchronous refill, at steady state."""
    report = run_all()
    sync = report["configs"]["sync"]
    assert sync["stalls"] >= (ROUNDS - POOL) // POOL, sync
    for name in ("background", "background+sharded"):
        assert report["configs"][name]["stalls"] == 0, report["configs"][name]
        assert report["configs"][name]["rounds"] == ROUNDS


if __name__ == "__main__":
    test_background_refill_eliminates_stalls()
