"""Service-layer throughput: refill modes and shard-transport backends.

Measures the aggregation service end to end on this machine and emits
**machine-readable JSON reports** to ``benchmarks/results/``:

* ``service_throughput.json`` — sync refill vs background refill vs
  sharded at identical geometry: sustained online rounds/sec, online
  stall counts, and the pool-depth-over-time series.
* ``service_transport_sweep.json`` — ``--transport`` sweep: the same
  background+sharded deployment driven through the ``inline`` backend
  (per-shard sessions called directly, GIL-serialized) vs the
  ``process`` backend (each shard pinned in a worker process, rounds
  scatter/gathered in wire frames) vs the ``socket`` backend (the same
  frames over TCP to an in-process ``ShardWorkerServer`` on localhost —
  the multi-host transport measured at its floor).  Reports online
  rounds/sec, each backend's speedup over inline, scatter-gather
  latency, and wire traffic.  The speedups are *parallelism*
  measurements: on a multi-core host the process backend overlaps the
  per-shard field work and wins once per-shard compute dominates the
  ~ms of frame+pipe overhead; on a single core it can only measure that
  overhead (``host.cpu_count`` is recorded in the JSON so readers can
  tell which regime a report is from).  The socket numbers on localhost
  additionally fold in loopback TCP latency; worker-side threads share
  the host's cores with the coordinator, so the same caveat applies
  twice over on a 1-core container.

  The sweep also carries the two bandwidth lanes: ``process+packed``
  and ``socket+packed`` rerun the identical workload with sub-word
  bit-packed element encoding (the report's ``wire_reduction_*`` keys
  give raw/packed bytes-sent ratios), and ``shm`` moves element bytes
  through a shared-memory segment so the pipes carry only references
  (``shm_bytes`` vs near-zero ``wire_bytes_sent``).  Every lane hashes
  its per-round aggregates; ``aggregates_bit_identical`` asserts the
  encodings changed nothing but the byte count.

Run ``python benchmarks/bench_service_throughput.py --help`` for the
sweep knobs (``--transport <lane>|all``, ``--shards``, ``--dim``,
``--rounds``).

Acceptance gates: zero online stalls for the background configurations
vs >= 1 stall per pool cycle for sync; on a multi-core host, process
online rounds/sec > 1.5x inline at >= 4 shards.
"""

import argparse
import hashlib
import json
import os
import time

import numpy as np

from _report import RESULTS_DIR
from repro.field import FiniteField
from repro.service import (
    AggregationService,
    RefillMode,
    ServiceConfig,
    TransportKind,
    WireFormat,
)

N_USERS = 16
DIM = 4096
POOL = 6
LOW_WATER = 3
ROUNDS = 24
# Simulated client training time per round.  The zero-stall steady state
# exists when the refiller can re-encode low_water rounds of material
# within low_water round periods; 20 ms of think time per round (a tiny
# fraction of any real local-training window) gives it that headroom on
# this machine (refill of 3 rounds at d=4096 measures ~25-30 ms).
THINK_TIME_S = 0.02

GF = FiniteField()

CONFIGS = {
    "sync": ServiceConfig(
        num_cohorts=1, num_users=N_USERS, model_dim=DIM, num_shards=1,
        pool_size=POOL, low_water=0, refill_mode=RefillMode.SYNC,
        dropout_tolerance=N_USERS // 8, privacy=N_USERS // 8, seed=0,
    ),
    "background": ServiceConfig(
        num_cohorts=1, num_users=N_USERS, model_dim=DIM, num_shards=1,
        pool_size=POOL, low_water=LOW_WATER,
        refill_mode=RefillMode.BACKGROUND,
        dropout_tolerance=N_USERS // 8, privacy=N_USERS // 8, seed=0,
    ),
    "background+sharded": ServiceConfig(
        num_cohorts=1, num_users=N_USERS, model_dim=DIM, num_shards=4,
        pool_size=POOL, low_water=LOW_WATER,
        refill_mode=RefillMode.BACKGROUND,
        dropout_tolerance=N_USERS // 8, privacy=N_USERS // 8, seed=0,
    ),
}


def run_config(name, config):
    """Drive ROUNDS rounds; return the metrics dict for the report."""
    rng = np.random.default_rng(42)
    with AggregationService(config, gf=GF) as svc:
        cohort = svc.cohorts[0]
        proto_updates = {
            i: GF.random(DIM, rng) for i in range(N_USERS)
        }
        t0 = time.perf_counter()
        for r in range(ROUNDS):
            # Client think time: local training happens here in a real
            # deployment, which is exactly the window a background
            # refill hides in.
            time.sleep(THINK_TIME_S)
            dropouts = {int(rng.integers(0, N_USERS))} if r % 3 else set()
            result = cohort.run_round(proto_updates, dropouts, rng)
            assert sorted(set(range(N_USERS)) - dropouts) == result.survivors
        wall = time.perf_counter() - t0
        snapshot = svc.status()

    m = snapshot["metrics"]["cohorts"][0]
    return {
        "config": snapshot["config"],
        "rounds": m["rounds"],
        "stalls": m["stalls"],
        "online_seconds": m["online_seconds"],
        "sustained_rounds_per_second": m["rounds"] / wall,
        "online_rounds_per_second": m["rounds_per_second"],
        "pool_depth_over_time": [
            {"t": round(t, 6), "depth": depth}
            for t, depth in m["pool_depth_series"]
        ],
        "background_refills": m["background_refills"],
        "wall_seconds": wall,
    }


def run_all():
    report = {
        "benchmark": "service_throughput",
        "geometry": {
            "num_users": N_USERS, "model_dim": DIM, "pool_size": POOL,
            "low_water": LOW_WATER, "rounds": ROUNDS,
            "think_time_s": THINK_TIME_S,
        },
        "configs": {},
    }
    for name, config in CONFIGS.items():
        report["configs"][name] = run_config(name, config)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "service_throughput.json")
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"\n--- service_throughput -> {path} ---")
    for name, r in report["configs"].items():
        print(
            f"{name:20s} {r['sustained_rounds_per_second']:8.1f} rounds/s "
            f"sustained, {r['online_rounds_per_second']:8.1f} rounds/s "
            f"online, stalls={r['stalls']}"
        )
    return report


def test_background_refill_eliminates_stalls():
    """Acceptance gate: zero stalls with low-water background refill, vs
    >= 1 stall per pool cycle for synchronous refill, at steady state."""
    report = run_all()
    sync = report["configs"]["sync"]
    assert sync["stalls"] >= (ROUNDS - POOL) // POOL, sync
    for name in ("background", "background+sharded"):
        assert report["configs"][name]["stalls"] == 0, report["configs"][name]
        assert report["configs"][name]["rounds"] == ROUNDS


# ----------------------------------------------------------------------
# transport sweep: inline vs process at fixed geometry
# ----------------------------------------------------------------------
SWEEP_USERS = 16
SWEEP_DIM = 65536
SWEEP_SHARDS = 4
SWEEP_POOL = 4
SWEEP_LOW_WATER = 2
SWEEP_ROUNDS = 12


def run_transport_config(kind, users, dim, shards, rounds,
                         wire_format=WireFormat.RAW):
    # The socket backend needs a worker host to connect to; benching on
    # localhost against an in-process ShardWorkerServer measures the
    # transport's floor (frames + loopback TCP, no real network).
    server = None
    connect = None
    if kind is TransportKind.SOCKET:
        from repro.service import ShardWorkerServer

        server = ShardWorkerServer().start()
        connect = (server.address,)
    config = ServiceConfig(
        num_cohorts=1,
        num_users=users,
        model_dim=dim,
        num_shards=shards,
        pool_size=SWEEP_POOL,
        low_water=SWEEP_LOW_WATER,
        refill_mode=RefillMode.BACKGROUND,
        dropout_tolerance=users // 8,
        privacy=users // 8,
        transport=kind,
        wire_format=wire_format,
        connect=connect,
        seed=0,
    )
    # Every lane draws from an identically seeded stream, so the rounds
    # (updates AND dropout patterns) are the same everywhere and the
    # aggregate digest below must match across lanes bit for bit.
    rng = np.random.default_rng(42)
    digest = hashlib.sha256()
    try:
        with AggregationService(config, gf=GF) as svc:
            cohort = svc.cohorts[0]
            updates = {i: GF.random(dim, rng) for i in range(users)}
            t0 = time.perf_counter()
            for r in range(rounds):
                dropouts = {int(rng.integers(0, users))} if r % 3 else set()
                result = cohort.run_round(updates, dropouts, rng)
                digest.update(result.aggregate.tobytes())
                digest.update(np.asarray(result.survivors).tobytes())
                # Steady state: the refiller finishes before the next
                # round, so the sweep measures round execution, not pool
                # contention.
                svc.refiller.wait_until_idle(timeout=120.0)
            wall = time.perf_counter() - t0
            snapshot = svc.status()
    finally:
        if server is not None:
            server.stop()
    cohort_metrics = snapshot["metrics"]["cohorts"][0]
    # The inline single-shard layout bypasses the transport entirely
    # (bare session, no scatter/gather), so it records no transport
    # metrics; report zeros rather than KeyError-ing after the run.
    transport_metrics = snapshot["metrics"]["transports"].get(
        kind.value,
        {
            "mean_round_seconds": 0.0, "bytes_sent": 0,
            "bytes_received": 0, "shm_bytes": 0, "shard_stalls": 0,
        },
    )
    return {
        "transport": kind.value,
        "wire_format": wire_format.value,
        "rounds": cohort_metrics["rounds"],
        "stalls": cohort_metrics["stalls"],
        "online_rounds_per_second": cohort_metrics["rounds_per_second"],
        "online_seconds": cohort_metrics["online_seconds"],
        "wall_seconds": wall,
        "mean_scatter_gather_seconds": transport_metrics["mean_round_seconds"],
        "wire_bytes_sent": transport_metrics["bytes_sent"],
        "wire_bytes_received": transport_metrics["bytes_received"],
        "shm_bytes": transport_metrics.get("shm_bytes", 0),
        "shard_stalls": transport_metrics["shard_stalls"],
        "aggregate_sha256": digest.hexdigest(),
    }


# Lane name -> (backend, wire format).  The ``+packed`` lanes rerun the
# identical workload with sub-word bit-packed element encoding; the shm
# lane moves element bytes through a shared-memory segment and keeps the
# pipes for references, so it runs the plain encoding.
SWEEP_LANES = {
    "inline": (TransportKind.INLINE, WireFormat.RAW),
    "process": (TransportKind.PROCESS, WireFormat.RAW),
    "process+packed": (TransportKind.PROCESS, WireFormat.PACKED),
    "socket": (TransportKind.SOCKET, WireFormat.RAW),
    "socket+packed": (TransportKind.SOCKET, WireFormat.PACKED),
    "shm": (TransportKind.SHM, WireFormat.RAW),
}


def run_transport_sweep(
    transports=tuple(SWEEP_LANES),
    users=SWEEP_USERS,
    dim=SWEEP_DIM,
    shards=SWEEP_SHARDS,
    rounds=SWEEP_ROUNDS,
):
    report = {
        "benchmark": "service_transport_sweep",
        "geometry": {
            "num_users": users, "model_dim": dim, "num_shards": shards,
            "pool_size": SWEEP_POOL, "low_water": SWEEP_LOW_WATER,
            "rounds": rounds, "refill_mode": "background",
        },
        "host": {"cpu_count": os.cpu_count()},
        "transports": {},
    }
    for name in transports:
        kind, wire_format = SWEEP_LANES[name]
        report["transports"][name] = run_transport_config(
            kind, users, dim, shards, rounds, wire_format=wire_format
        )
    digests = {
        r["aggregate_sha256"] for r in report["transports"].values()
    }
    report["aggregates_bit_identical"] = len(digests) == 1
    if "inline" in report["transports"]:
        inline_rps = report["transports"]["inline"][
            "online_rounds_per_second"
        ]
        for name in ("process", "socket"):
            if name in report["transports"] and inline_rps > 0:
                report[f"speedup_{name}_over_inline"] = (
                    report["transports"][name]["online_rounds_per_second"]
                    / inline_rps
                )
    for name in ("process", "socket"):
        raw = report["transports"].get(name)
        packed = report["transports"].get(f"{name}+packed")
        if raw and packed and packed["wire_bytes_sent"] > 0:
            report[f"wire_reduction_{name}_packed"] = (
                raw["wire_bytes_sent"] / packed["wire_bytes_sent"]
            )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "service_transport_sweep.json")
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"\n--- service_transport_sweep -> {path} ---")
    for name, r in report["transports"].items():
        print(
            f"{name:14s} {r['online_rounds_per_second']:8.2f} rounds/s "
            f"online, {1e3 * r['mean_scatter_gather_seconds']:7.2f} ms "
            f"scatter-gather, stalls={r['stalls']}, "
            f"wire={r['wire_bytes_sent'] + r['wire_bytes_received']}B, "
            f"shm={r['shm_bytes']}B"
        )
    for name in ("process", "socket"):
        speedup = report.get(f"speedup_{name}_over_inline")
        if speedup is not None:
            print(
                f"{name}/inline speedup: {speedup:.2f}x on "
                f"{report['host']['cpu_count']} cpu(s)"
            )
        reduction = report.get(f"wire_reduction_{name}_packed")
        if reduction is not None:
            print(f"{name} packed wire reduction: {reduction:.2f}x")
    if not report["aggregates_bit_identical"]:
        print("WARNING: lanes disagree on the aggregate digest")
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="aggregation-service throughput benchmarks"
    )
    parser.add_argument(
        "--transport",
        choices=[*SWEEP_LANES, "both", "all"],
        default="all",
        help="which lane(s) to sweep (default: all — every backend x "
             "wire format, which also reports speedups over inline and "
             "the packed wire reduction; 'both' is the legacy "
             "inline+process pair)",
    )
    parser.add_argument("--shards", type=int, default=SWEEP_SHARDS)
    parser.add_argument("--dim", type=int, default=SWEEP_DIM)
    parser.add_argument("--users", type=int, default=SWEEP_USERS)
    parser.add_argument("--rounds", type=int, default=SWEEP_ROUNDS)
    parser.add_argument(
        "--skip-refill-report", action="store_true",
        help="only run the transport sweep, not the refill-mode comparison",
    )
    args = parser.parse_args(argv)
    if not args.skip_refill_report:
        test_background_refill_eliminates_stalls()
    transports = {
        "all": tuple(SWEEP_LANES),
        "both": ("inline", "process"),
    }.get(args.transport, (args.transport,))
    run_transport_sweep(
        transports=transports, users=args.users, dim=args.dim,
        shards=args.shards, rounds=args.rounds,
    )


if __name__ == "__main__":
    main()
