"""Table 3 — performance gain in different bandwidth settings.

Paper reference (CNN/FEMNIST, N = 200, single FL round, overlapped):
  4G (98 Mbps): 8.5x / 2.9x    320 Mbps: 12.7x / 4.1x    5G (802): 13.5x / 4.4x
"""

from repro.fl.models.zoo import PAPER_MODEL_SIZES
from repro.simulation import (
    BANDWIDTH_SETTINGS,
    SimulationConfig,
    TRAINING_TIMES,
    compute_gains,
)

from _report import write_report

N = 200
CNN_D = PAPER_MODEL_SIZES["cnn_femnist"]


def _gain_at(bw):
    cfg = SimulationConfig(bandwidth=bw)
    return compute_gains("cnn", N, CNN_D, 0.1, TRAINING_TIMES["cnn_femnist"], cfg)


def _rows():
    lines = [f"Table 3 (simulated): overlapped gain vs bandwidth, CNN/FEMNIST, N={N}",
             f"{'bandwidth':16s}{'vs SecAgg':>12s}{'vs SecAgg+':>12s}"]
    for bw in BANDWIDTH_SETTINGS:
        g = _gain_at(bw)
        lines.append(
            f"{bw.name:16s}{g.overlapped['secagg']:11.1f}x"
            f"{g.overlapped['secagg+']:11.1f}x"
        )
    return lines


def test_table3_report_and_sweep(benchmark):
    write_report("table3_bandwidth", _rows())
    gains = benchmark(lambda: [_gain_at(bw) for bw in BANDWIDTH_SETTINGS])
    # The paper's monotonicity: gains grow with bandwidth.
    secagg_gains = [g.overlapped["secagg"] for g in gains]
    assert secagg_gains[0] < secagg_gains[1] < secagg_gains[2]
    plus_gains = [g.overlapped["secagg+"] for g in gains]
    assert plus_gains[0] < plus_gains[1] < plus_gains[2]
