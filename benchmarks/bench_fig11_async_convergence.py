"""Fig 7 / Fig 11 — asynchronous convergence: async-LightSecAgg vs FedBuff.

The paper trains LeNet-style models on MNIST/CIFAR-10 with N = 100 users,
buffer K = 10, staleness uniform in [0, 10], comparing the constant and
polynomial staleness-compensation strategies.  We run a laptop-scale
version (logistic regression on an MNIST-like task) under the *identical*
delivery schedule for both aggregators and assert the paper's conclusion:
the secure protocol's accuracy matches the insecure baseline up to
quantization noise, for both strategies.
"""

import numpy as np

from repro.asyncfl import (
    AsyncLightSecAggTrainer,
    FedBuffTrainer,
    constant_staleness,
    polynomial_staleness,
)
from repro.fl import (
    LocalTrainingConfig,
    iid_partition,
    logistic_regression,
    make_mnist_like,
)
from repro.fl.datasets.synthetic import train_test_split

from _report import write_report

NUM_USERS = 20
BUFFER_K = 5
TAU_MAX = 8
ROUNDS = 5
CFG = LocalTrainingConfig(epochs=1, batch_size=32, lr=0.05)


def _clients_and_test():
    full = make_mnist_like(1200, seed=4, noise=1.4)
    train, test = train_test_split(full, 0.25, seed=1)
    return iid_partition(train, NUM_USERS, seed=1), test


def _run(trainer_cls, staleness_fn, clients, test):
    trainer = trainer_cls(
        logistic_regression(seed=0), clients,
        buffer_size=BUFFER_K, tau_max=TAU_MAX,
        local_config=CFG, seed=13, staleness_fn=staleness_fn,
    )
    return trainer.fit(ROUNDS, test_set=test).accuracies


def test_fig11_async_convergence(benchmark):
    clients, test = _clients_and_test()
    curves = {}
    for fn, name in (
        (constant_staleness, "constant"),
        (polynomial_staleness(1.0), "poly(a=1)"),
    ):
        curves[("fedbuff", name)] = _run(FedBuffTrainer, fn, clients, test)
        curves[("async-lsa", name)] = _run(
            AsyncLightSecAggTrainer, fn, clients, test
        )

    lines = [f"Fig 7/11 (scaled): accuracy/round, N={NUM_USERS}, K={BUFFER_K}, "
             f"tau_max={TAU_MAX}",
             f"{'system':12s}{'staleness':>11s}  accuracies"]
    for (system, name), accs in curves.items():
        lines.append(
            f"{system:12s}{name:>11s}  " + ", ".join(f"{a:.3f}" for a in accs)
        )
    write_report("fig11_async_convergence", lines)

    # Paper claim: async-LSA ~= FedBuff for both strategies.
    for name in ("constant", "poly(a=1)"):
        gap = abs(
            curves[("fedbuff", name)][-1] - curves[("async-lsa", name)][-1]
        )
        assert gap < 0.1, (name, gap)
    # Everything learns.
    for accs in curves.values():
        assert accs[-1] > 0.7

    # Benchmark one secure buffered aggregation round.
    trainer = AsyncLightSecAggTrainer(
        logistic_regression(seed=0), clients,
        buffer_size=BUFFER_K, tau_max=TAU_MAX, local_config=CFG, seed=0,
    )
    trainer.run_round()  # warm the history so staleness > 0 occurs
    benchmark(trainer.run_round)


def test_fig7_cifar_lenet(benchmark):
    """The paper's Fig. 7 workload at laptop scale: a LeNet-style CNN on a
    CIFAR-like (3-channel) task, async-LSA vs FedBuff under the identical
    delivery schedule."""
    from repro.fl import lenet5_variant, make_classification

    full = make_classification(480, (3, 20, 20), 4, noise=0.5, seed=9,
                               name="cifar-small")
    train, test = train_test_split(full, 0.25, seed=1)
    clients = iid_partition(train, 12, seed=1)
    cfg = LocalTrainingConfig(epochs=1, batch_size=16, lr=0.02)
    rounds = 8

    def run(trainer_cls):
        trainer = trainer_cls(
            lenet5_variant(input_shape=(3, 20, 20), num_classes=4, seed=0),
            clients, buffer_size=4, tau_max=3, local_config=cfg, seed=3,
            staleness_fn=polynomial_staleness(1.0),
        )
        return trainer.fit(rounds, test_set=test).accuracies

    fb = run(FedBuffTrainer)
    lsa = benchmark.pedantic(run, args=(AsyncLightSecAggTrainer,),
                             rounds=1, iterations=1)
    lines = [f"Fig 7 (scaled): LeNet on CIFAR-like, N=12, K=4, tau_max=3",
             "  fedbuff  : " + ", ".join(f"{a:.3f}" for a in fb),
             "  async-lsa: " + ", ".join(f"{a:.3f}" for a in lsa)]
    write_report("fig7_cifar_lenet", lines)
    # Both learn well past chance (25%) and track each other.
    assert max(fb) > 0.5 and max(lsa) > 0.5
    assert abs(fb[-1] - lsa[-1]) < 0.2
