"""Fig 12 — impact of the quantization level c_l on async accuracy.

The paper sweeps c_l = 2^b and finds an interior optimum (c_l = 2^16):
too-small c_l loses precision to rounding error, too-large c_l wraps
around in the finite field and corrupts the aggregate.  We reproduce the
sweep at laptop scale and assert the U-shape: mid-range levels beat both
extremes.
"""

import numpy as np

from repro.asyncfl import AsyncLightSecAggTrainer
from repro.exceptions import QuantizationError
from repro.fl import (
    LocalTrainingConfig,
    iid_partition,
    logistic_regression,
    make_mnist_like,
)
from repro.fl.datasets.synthetic import train_test_split
from repro.quantization import ModelQuantizer, QuantizationConfig
from repro.field import FiniteField

from _report import write_report

NUM_USERS = 16
BUFFER_K = 4
ROUNDS = 4
CFG = LocalTrainingConfig(epochs=1, batch_size=32, lr=0.05)
BITS = (1, 4, 10, 16, 22, 27)


def _final_accuracy(levels_bits: int, clients, test) -> float:
    try:
        trainer = AsyncLightSecAggTrainer(
            logistic_regression(seed=0), clients,
            buffer_size=BUFFER_K, tau_max=3, local_config=CFG, seed=5,
            quantization=QuantizationConfig(levels=1 << levels_bits, clip=4.0),
        )
    except QuantizationError:
        return float("nan")  # wrap-around guard rejects the setting
    return trainer.fit(ROUNDS, test_set=test).accuracies[-1]


def test_fig12_quantization_sweep(benchmark):
    full = make_mnist_like(1000, seed=9, noise=1.4)
    train, test = train_test_split(full, 0.25, seed=1)
    clients = iid_partition(train, NUM_USERS, seed=1)

    accs = {b: _final_accuracy(b, clients, test) for b in BITS}
    lines = [f"Fig 12 (scaled): final accuracy vs quantization bits "
             f"(c_l = 2^b), {ROUNDS} rounds",
             f"{'bits':>6s}{'c_l':>12s}{'accuracy':>10s}"]
    for b in BITS:
        acc = accs[b]
        shown = f"{acc:.3f}" if acc == acc else "rejected (wrap-around)"
        lines.append(f"{b:6d}{1 << b:12d}{shown:>24s}")
    write_report("fig12_quantization", lines)

    # U-shape: mid-range (2^10..2^16) beats 1-bit rounding; the largest
    # setting is either rejected by the budget guard or degraded.
    mid = max(accs[10], accs[16])
    assert mid > accs[1] or accs[1] != accs[1]
    assert mid > 0.75
    worst_large = accs[27]
    assert worst_large != worst_large or worst_large <= mid + 0.02

    # Benchmark the quantize/dequantize kernel at the paper's c_l = 2^16.
    gf = FiniteField()
    quant = ModelQuantizer(gf, QuantizationConfig(levels=1 << 16, clip=4.0))
    rng = np.random.default_rng(0)
    x = rng.normal(0, 0.5, size=100_000)

    def round_trip():
        return quant.dequantize(quant.quantize(x, rng))

    out = benchmark(round_trip)
    assert np.allclose(out, x, atol=1e-3)
