"""Table 1 / Table 5 — complexity comparison of the three protocols.

Regenerates the asymptotic table numerically at the paper's operating
point (T = N/2, U = (1-p)N, p = 0.1) for several N, and benchmarks the two
kernels the table's server column is about: LightSecAgg's one-shot MDS
decode vs SecAgg's PRG mask re-expansion.
"""

import numpy as np

from repro.coding.mask_encoding import MaskEncoder
from repro.crypto.prg import PRG
from repro.field import FiniteField
from repro.simulation.costmodel import (
    PROTOCOLS,
    ROWS,
    SYMBOLIC_TABLE,
    complexity_table,
    paper_operating_point,
)

from _report import write_report

D_MODEL = 1_206_590


def _rows():
    lines = ["Table 1/5: per-round costs in field elements/ops (d=%d, p=0.1)" % D_MODEL]
    for n in (100, 200, 500):
        table = complexity_table(paper_operating_point(n, D_MODEL, 0.1))
        lines.append(f"\nN = {n}")
        header = f"{'row':24s}" + "".join(f"{p:>16s}" for p in PROTOCOLS)
        lines.append(header)
        for row in ROWS:
            vals = "".join(f"{table[p][row]:16.3g}" for p in PROTOCOLS)
            lines.append(f"{row:24s}{vals}")
    lines.append("\nasymptotics (paper Table 5):")
    for p in PROTOCOLS:
        lines.append(f"  {p}: reconstruction {SYMBOLIC_TABLE[p]['reconstruction_server']}")
    return lines


def test_table1_report_and_lsa_decode_kernel(benchmark):
    """Time the LightSecAgg server decode (the 'reconstruction' cell)."""
    write_report("table1_complexity", _rows())
    gf = FiniteField()
    rng = np.random.default_rng(0)
    n, u, t, d = 30, 21, 15, 20_000
    enc = MaskEncoder(gf, n, u, t, d)
    masks = [enc.generate_mask(rng) for _ in range(n)]
    shares = [enc.encode(z, rng) for z in masks]
    survivors = list(range(n))
    agg = {
        j: enc.aggregate_shares({i: shares[i][j] for i in survivors})
        for j in range(u)
    }
    result = benchmark(enc.decode_aggregate, agg)
    assert result.shape == (d,)


def test_table1_secagg_prg_kernel(benchmark):
    """Time the SecAgg server-side PRG expansion for one dropped user's
    pairwise masks (N-1 expansions of d) at small scale."""
    gf = FiniteField()
    prg = PRG(gf)
    n, d = 30, 20_000

    def reconstruct_dropped_user_masks():
        acc = gf.zeros(d)
        for seed in range(n - 1):
            acc = gf.add(acc, prg.expand(seed, d))
        return acc

    result = benchmark(reconstruct_dropped_user_masks)
    assert result.shape == (d,)
