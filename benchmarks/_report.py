"""Shared helpers for the benchmark harness.

Every ``bench_*.py`` regenerates one of the paper's tables or figures:
the regenerated rows/series are written to ``benchmarks/results/`` (and
echoed to stdout) while pytest-benchmark times the representative kernel.
"""

from __future__ import annotations

import os
from typing import Iterable

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_report(name: str, lines: Iterable[str]) -> str:
    """Persist a regenerated table/figure to results/<name>.txt."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(lines) + "\n"
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text)
    print(f"\n--- {name} ---")
    print(text)
    return path
