"""Ablation — the paper's Sec. 6 system optimizations, quantified.

1. **Duplex chunked mask exchange**: concurrent send/receive of chunked
   shares vs a serial transport, for the offline phase's N-1 share
   exchange (paper: "improving the speed of concurrent receiving and
   sending of chunked masks").
2. **Offline/training overlap**: the multi-process pipelining of Fig. 5,
   measured as end-to-end round savings per protocol.
3. **Straggler resilience**: LightSecAgg's recovery needs only the U
   fastest responders (Remark 2) — simulated on a heterogeneous fleet.
"""

import numpy as np

from repro.coding.partition import piece_length
from repro.fl.models.zoo import PAPER_MODEL_SIZES
from repro.protocols.chunking import exchange_times
from repro.protocols.lightsecagg.params import LSAParams
from repro.simulation import SimulationConfig, TRAINING_TIMES, simulate
from repro.simulation.heterogeneous import (
    sample_fleet,
    simulate_heterogeneous_round,
)
from repro.simulation.network import TESTBED_320

from _report import write_report

N = 200
D = PAPER_MODEL_SIZES["cnn_femnist"]


def test_ablation_duplex_chunking(benchmark):
    params = LSAParams.paper_defaults(N, 0.1)
    share = piece_length(D, params.num_submasks)

    def sweep():
        return {
            chunk: exchange_times(N - 1, share, TESTBED_320, chunk_elems=chunk)
            for chunk in (1024, 8192, 65536)
        }

    results = benchmark(sweep)
    lines = [f"Ablation: offline share exchange, N={N}, share={share} elems",
             f"{'chunk':>8s}{'serial(s)':>11s}{'duplex(s)':>11s}"
             f"{'pipelined(s)':>14s}{'speedup':>9s}"]
    for chunk, t in results.items():
        lines.append(f"{chunk:8d}{t.serial:11.2f}{t.duplex:11.2f}"
                     f"{t.chunk_pipelined:14.2f}{t.serial / t.chunk_pipelined:9.2f}")
    write_report("ablation_duplex_chunking", lines)
    for t in results.values():
        assert t.chunk_pipelined <= t.duplex <= t.serial
        assert t.duplex_speedup > 1.8  # near-2x from full duplex


def test_ablation_overlap_savings(benchmark):
    cfg = SimulationConfig()

    def savings():
        out = {}
        for proto in ("lightsecagg", "secagg", "secagg+"):
            t = simulate(proto, N, D, 0.1, TRAINING_TIMES["cnn_femnist"], cfg)
            out[proto] = (t.total(False), t.total(True))
        return out

    results = benchmark(savings)
    lines = [f"Ablation: offline/training overlap savings, CNN, N={N}, p=0.1",
             f"{'protocol':14s}{'non-ov(s)':>11s}{'ov(s)':>9s}{'saved(s)':>10s}"]
    for proto, (a, b) in results.items():
        lines.append(f"{proto:14s}{a:11.1f}{b:9.1f}{a - b:10.1f}")
    write_report("ablation_overlap", lines)
    # Overlap saves min(offline, training) — most valuable for LightSecAgg
    # relative to its own total.
    lsa_rel = (results["lightsecagg"][0] - results["lightsecagg"][1]) / \
        results["lightsecagg"][0]
    sa_rel = (results["secagg"][0] - results["secagg"][1]) / results["secagg"][0]
    assert lsa_rel > sa_rel


def test_ablation_straggler_resilience(benchmark):
    params = LSAParams.paper_defaults(48, 0.1)
    rng = np.random.default_rng(3)
    fleet = sample_fleet(48, straggler_fraction=0.15,
                         straggler_slowdown=8.0, rng=rng)

    result = benchmark(
        simulate_heterogeneous_round, params, 200_000, fleet
    )
    lines = [
        "Ablation: straggler resilience of one-shot recovery (N=48, 15% "
        "of devices 8x slower)",
        f"  wait for U={params.target_survivors} fastest : "
        f"{result.recovery_wait_u * 1e3:8.2f} ms",
        f"  wait for all survivors  : {result.recovery_wait_all * 1e3:8.2f} ms",
        f"  saving                  : {result.straggler_savings * 1e3:8.2f} ms "
        f"({result.straggler_savings / result.recovery_wait_all:.0%})",
    ]
    write_report("ablation_stragglers", lines)
    assert result.recovery_wait_u < result.recovery_wait_all
