"""Fig 5 — timing diagram of a single round: non-overlapped vs overlapped.

Renders ASCII Gantt-style phase bars for LightSecAgg and SecAgg+ on a
MobileNetV3-sized model (the paper's Fig. 5 workload; SecAgg is omitted
there because it dwarfs the chart — we include its totals for reference).
Asserts the paper's point: overlapping hides the offline phase behind
training, and the benefit is largest for LightSecAgg, whose offline phase
is the heavier one.
"""

from repro.fl.models.zoo import PAPER_MODEL_SIZES
from repro.simulation import SimulationConfig, TRAINING_TIMES, simulate

from _report import write_report

N = 200
D = PAPER_MODEL_SIZES["mobilenetv3"]
TRAIN_T = TRAINING_TIMES["mobilenetv3"]
CFG = SimulationConfig()
CHART_WIDTH = 56


def _bar(label: str, length: float, scale: float, char: str) -> str:
    ticks = max(1, int(length / scale))
    return f"  {label:10s}|{char * ticks}| {length:7.1f}s"


def _diagram(proto: str) -> list:
    t = simulate(proto, N, D, 0.1, TRAIN_T, CFG)
    scale = max(t.total(False) / CHART_WIDTH, 1e-9)
    lines = [f"{proto} (total non-overlapped {t.total(False):.1f}s, "
             f"overlapped {t.total(True):.1f}s)"]
    lines.append(" non-overlapped:")
    lines.append(_bar("offline", t.offline, scale, "#"))
    lines.append(_bar("training", t.training, scale, "="))
    lines.append(_bar("upload", t.upload, scale, "+"))
    lines.append(_bar("recovery", t.recovery, scale, "*"))
    lines.append(" overlapped (offline || training):")
    lines.append(_bar("off||train", max(t.offline, t.training), scale, "#"))
    lines.append(_bar("upload", t.upload, scale, "+"))
    lines.append(_bar("recovery", t.recovery, scale, "*"))
    return lines


def test_fig5_timing_diagram(benchmark):
    def build():
        lines = [f"Fig 5 (simulated): single-round timing, MobileNetV3-sized, N={N}, p=0.1", ""]
        for proto in ("lightsecagg", "secagg+", "secagg"):
            lines.extend(_diagram(proto))
            lines.append("")
        return lines

    lines = benchmark(build)
    write_report("fig5_timing_diagram", lines)

    lsa = simulate("lightsecagg", N, D, 0.1, TRAIN_T, CFG)
    plus = simulate("secagg+", N, D, 0.1, TRAIN_T, CFG)
    # Overlap helps both protocols...
    assert lsa.total(True) < lsa.total(False)
    assert plus.total(True) < plus.total(False)
    # ...and the absolute saving is at least as large for LightSecAgg,
    # whose offline phase is the heavier one (the paper's rationale for
    # the overlapped design).
    lsa_saving = lsa.total(False) - lsa.total(True)
    plus_saving = plus.total(False) - plus.total(True)
    assert lsa_saving >= plus_saving * 0.9
