"""Ablation — impact of the design parameter U (paper Sec. 7.2).

Within T < U <= N - D, increasing U shrinks each coded symbol
(d / (U - T)) but raises decoding complexity; the paper finds
U = 0.7N optimal for p in {0.1, 0.3}.  We sweep U in both the timing
model and real protocol execution.
"""

import numpy as np

from repro.field import FiniteField
from repro.protocols import LightSecAgg, LSAParams
from repro.simulation import SimulationConfig, simulate_lightsecagg

from _report import write_report

N = 200
D_MODEL = 1_206_590
CFG = SimulationConfig()


def _sweep():
    t = N // 2
    rows = []
    for u in range(t + 1, N - 20 + 1, 13):
        times = simulate_lightsecagg(
            N, D_MODEL, 0.1, 22.8, CFG, privacy=t, target_survivors=u
        )
        rows.append((u, times))
    return rows


def test_ablation_u_simulated(benchmark):
    rows = benchmark(_sweep)
    lines = [f"Ablation (simulated): LightSecAgg total vs U (N={N}, T={N//2}, p=0.1)",
             f"{'U':>6s}{'offline':>10s}{'recovery':>10s}{'total':>10s}"]
    for u, t in rows:
        lines.append(f"{u:6d}{t.offline:10.1f}{t.recovery:10.1f}{t.total():10.1f}")
    write_report("ablation_u", lines)
    totals = {u: t.total() for u, t in rows}
    # The extreme U = T+1 (giant coded symbols) must be the worst choice.
    assert totals[N // 2 + 1] == max(totals.values())
    # Some interior U beats the boundary minimum too.
    best_u = min(totals, key=totals.get)
    assert best_u > N // 2 + 1


def test_ablation_u_real_execution():
    """Real protocol: larger U shrinks per-user recovery traffic exactly
    as d/(U-T)."""
    gf = FiniteField()
    n, t, d = 12, 4, 480
    rng = np.random.default_rng(0)
    updates = {i: gf.random(d, rng) for i in range(n)}
    share_sizes = {}
    for u in (5, 8, 11):
        params = LSAParams(n, t, n - u, u)
        proto = LightSecAgg(gf, params, d)
        result = proto.run_round(updates, set(), rng)
        share_sizes[u] = result.transcript.elements(phase="recovery") / u
    assert share_sizes[5] == d / 1
    assert share_sizes[8] == d / 4
    assert share_sizes[11] == -(-d // 7)
