"""Ablation — field modulus and PRG backend choices.

Design choices DESIGN.md calls out: the library defaults to GF(2^31 - 1)
(Mersenne; smaller residues, fastest reductions) while the paper used
GF(2^32 - 5); and the PRG can run on PCG64 (fast, models a stream cipher)
or SHA-256 counter mode (hash-based, slower).  The ablation measures both
axes on the protocol's hot kernels and checks correctness is unaffected.
"""

import numpy as np
import pytest

from repro.crypto.prg import PRG
from repro.field import DEFAULT_PRIME, PAPER_PRIME, FiniteField
from repro.protocols import LightSecAgg, LSAParams, SecAgg
from repro.testing import run_and_verify

from _report import write_report

DIM = 50_000


@pytest.mark.parametrize("q", [DEFAULT_PRIME, PAPER_PRIME],
                         ids=["mersenne31", "paper32"])
def test_field_mul_kernel(benchmark, q):
    gf = FiniteField(q)
    rng = np.random.default_rng(0)
    a = gf.random(DIM, rng)
    b = gf.random(DIM, rng)
    out = benchmark(gf.mul, a, b)
    assert out.shape == (DIM,)


@pytest.mark.parametrize("backend", ["pcg64", "sha256"])
def test_prg_expand_kernel(benchmark, backend):
    gf = FiniteField()
    prg = PRG(gf, backend=backend)
    out = benchmark(prg.expand, 12345, DIM)
    assert out.shape == (DIM,)


def test_protocol_correct_on_both_fields_and_backends():
    lines = ["Ablation: field modulus x PRG backend — correctness matrix"]
    for q, qname in ((DEFAULT_PRIME, "2^31-1"), (PAPER_PRIME, "2^32-5")):
        gf = FiniteField(q)
        params = LSAParams.from_guarantees(8, 2, 2)
        run_and_verify(LightSecAgg(gf, params, 64), 64, dropouts={3},
                       rng=np.random.default_rng(1))
        for backend in ("pcg64", "sha256"):
            run_and_verify(
                SecAgg(gf, 6, 32, prg_backend=backend), 32, dropouts={2},
                rng=np.random.default_rng(2),
            )
            lines.append(f"  q={qname:8s} prg={backend:7s} OK")
    write_report("ablation_field_prg", lines)
