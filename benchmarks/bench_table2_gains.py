"""Table 2 — LightSecAgg speedups over SecAgg / SecAgg+ for the four tasks.

Paper reference (N = 200, p = 0.1):
  task                  non-overlapped   overlapped   aggregation-only
  MNIST / LR            6.7x, 2.5x       8.0x, 2.9x   13.0x, 4.1x
  FEMNIST / CNN         11.3x, 3.7x      12.7x, 4.1x  13.2x, 4.2x
  CIFAR-10 / MobileNet  7.6x, 2.8x       9.5x, 3.3x   13.1x, 3.9x
  GLD-23K / EffNet-B0   3.3x, 1.6x       3.4x, 1.7x   13.0x, 4.1x
"""

from repro.fl.models.zoo import PAPER_MODEL_SIZES
from repro.simulation import SimulationConfig, TRAINING_TIMES, compute_gains

from _report import write_report

N = 200
CFG = SimulationConfig()


def _rows():
    lines = [f"Table 2 (simulated): LightSecAgg gains vs (SecAgg, SecAgg+), N={N}, p=0.1",
             f"{'task':22s}{'d':>10s}{'non-overlapped':>18s}{'overlapped':>15s}{'agg-only':>15s}"]
    for task, d in PAPER_MODEL_SIZES.items():
        g = compute_gains(task, N, d, 0.1, TRAINING_TIMES[task], CFG)
        lines.append(
            f"{task:22s}{d:10d}"
            f"{g.non_overlapped['secagg']:9.1f}x,{g.non_overlapped['secagg+']:5.1f}x"
            f"{g.overlapped['secagg']:8.1f}x,{g.overlapped['secagg+']:5.1f}x"
            f"{g.aggregation_only['secagg']:8.1f}x,{g.aggregation_only['secagg+']:5.1f}x"
        )
    lines.append("\nnote: the LR row is floor-dominated in our latency model and")
    lines.append("reports a smaller gain than the paper's 6.7x; all orderings hold.")
    return lines


def test_table2_report_and_gain_computation(benchmark):
    lines = _rows()
    write_report("table2_gains", lines)

    def all_tasks():
        return [
            compute_gains(task, N, d, 0.1, TRAINING_TIMES[task], CFG)
            for task, d in PAPER_MODEL_SIZES.items()
        ]

    gains = benchmark(all_tasks)
    # Shape assertions mirroring the paper's table.
    cnn = gains[1]
    assert cnn.non_overlapped["secagg"] > cnn.non_overlapped["secagg+"] > 1
    assert cnn.overlapped["secagg"] > 8
    effb0 = gains[3]
    # Training-dominant task: end-to-end gain << aggregation-only gain.
    assert effb0.non_overlapped["secagg"] < effb0.aggregation_only["secagg"]
