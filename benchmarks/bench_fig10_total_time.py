"""Fig 10 — EfficientNet-B0-sized on GLD-23K-like (d=5,288,548).

Regenerates the figure's two panels (non-overlapped and overlapped total
running time vs number of users, for dropout rates 10/30/50%) from the
calibrated timing model, and asserts the paper's qualitative shape:
LightSecAgg flattest and fastest, SecAgg slowest and steepest, dropout
rate only hurting the baselines.
"""

from repro.fl.models.zoo import PAPER_MODEL_SIZES
from repro.simulation import TRAINING_TIMES

from _report import write_report
from _sweeps import assert_figure_shape, sweep_rows, total_time_sweep

TASK = "efficientnet_b0"
D = PAPER_MODEL_SIZES[TASK]
TRAIN_T = TRAINING_TIMES[TASK]


def test_fig10_nonoverlapped(benchmark):
    series = benchmark(total_time_sweep, D, TRAIN_T, False)
    write_report(
        "fig10_nonoverlapped",
        sweep_rows("Fig 10 — EfficientNet-B0-sized on GLD-23K-like (d=5,288,548) -- non-overlapped totals (s)", series),
    )
    assert_figure_shape(series)


def test_fig10_overlapped(benchmark):
    series = benchmark(total_time_sweep, D, TRAIN_T, True)
    write_report(
        "fig10_overlapped",
        sweep_rows("Fig 10 — EfficientNet-B0-sized on GLD-23K-like (d=5,288,548) -- overlapped totals (s)", series),
    )
    assert_figure_shape(series)
