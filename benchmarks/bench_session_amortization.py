"""Measured amortization of the offline phase via ProtocolSession.

The paper's systems claim is that LightSecAgg's mask encoding/sharing is
offline work that should never sit on the per-round critical path.  This
benchmark measures it directly on this machine: per-round **online**
latency of a pooled session (offline material precomputed for all rounds
up front, in one batched field matmul) versus the one-shot ``run_round``
path that rebuilds users, re-encodes, and re-distributes masks every
round — across rounds and user counts.

Acceptance gate: with the pool pre-filled, a LightSecAgg session at
N = 32 users over 20 rounds must run its online rounds at least 3x
faster than the one-shot path.
"""

import time

import numpy as np

from _report import write_report
from repro.field import FiniteField
from repro.protocols import LightSecAgg, LSAParams

ROUNDS = 20
DIM = 4096
USER_COUNTS = (16, 32, 48)
GATE_N = 32
GATE_SPEEDUP = 3.0

GF = FiniteField()


def _measure(n, rounds=ROUNDS, dim=DIM):
    """Return (session_online_s, oneshot_s, refill_s) per-round seconds."""
    params = LSAParams.from_guarantees(n, privacy=n // 4, dropout_tolerance=n // 4)
    proto = LightSecAgg(GF, params, dim)
    rng = np.random.default_rng(0)
    updates = {i: GF.random(dim, rng) for i in range(n)}
    dropouts = set(range(0, n, 8))  # 12.5% worst-case dropouts
    expected = proto.expected_aggregate(
        updates, [i for i in range(n) if i not in dropouts]
    )

    session = proto.session(pool_size=rounds, rng=np.random.default_rng(1))
    t0 = time.perf_counter()
    session.refill()
    refill = time.perf_counter() - t0

    online = 0.0
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = session.run_round(updates, set(dropouts), rng)
        online += time.perf_counter() - t0
        assert np.array_equal(result.aggregate, expected)
    assert session.stats.pool_hits == rounds

    oneshot = 0.0
    for r in range(rounds):
        t0 = time.perf_counter()
        result = proto.run_round(updates, set(dropouts), np.random.default_rng(r))
        oneshot += time.perf_counter() - t0
        assert np.array_equal(result.aggregate, expected)

    return online / rounds, oneshot / rounds, refill / rounds


def run_sweep():
    lines = [
        f"Per-round latency, LightSecAgg, d={DIM}, {ROUNDS} rounds, "
        f"12.5% dropouts (ms/round)",
        f"{'N':>4s} {'one-shot':>10s} {'online':>10s} {'refill':>10s} "
        f"{'speedup':>8s}",
    ]
    speedups = {}
    for n in USER_COUNTS:
        online, oneshot, refill = _measure(n)
        speedups[n] = oneshot / online
        lines.append(
            f"{n:4d} {1e3 * oneshot:10.3f} {1e3 * online:10.3f} "
            f"{1e3 * refill:10.3f} {speedups[n]:7.1f}x"
        )
    lines.append(
        "online = pooled session round; refill = amortized offline cost "
        "per round (off the critical path)"
    )
    write_report("session_amortization", lines)
    return speedups


def test_session_amortization_gate():
    """Pool pre-filled, N=32, 20 rounds: online >= 3x faster than one-shot."""
    speedups = run_sweep()
    assert speedups[GATE_N] >= GATE_SPEEDUP, (
        f"session online speedup {speedups[GATE_N]:.2f}x below the "
        f"{GATE_SPEEDUP}x acceptance gate at N={GATE_N}"
    )


if __name__ == "__main__":
    test_session_amortization_gate()
