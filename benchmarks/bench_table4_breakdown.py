"""Table 4 — running-time breakdown, CNN/FEMNIST, N = 200, p in {10,30,50}%.

Paper reference (non-overlapped totals): LightSecAgg 145/145/300 s,
SecAgg 1048/1632/2216 s, SecAgg+ 471/538/608 s; recovery dominates SecAgg
and grows linearly in the dropout rate while LightSecAgg's stays flat
until p = 0.5 (where U - T = 1 inflates the coded symbols).
"""

from repro.fl.models.zoo import PAPER_MODEL_SIZES
from repro.simulation import SimulationConfig, TRAINING_TIMES, simulate

from _report import write_report

N = 200
CNN_D = PAPER_MODEL_SIZES["cnn_femnist"]
TRAIN_T = TRAINING_TIMES["cnn_femnist"]
CFG = SimulationConfig()
PROTOS = ("lightsecagg", "secagg", "secagg+")


def _breakdown():
    return {
        (proto, p): simulate(proto, N, CNN_D, p, TRAIN_T, CFG)
        for proto in PROTOS
        for p in (0.1, 0.3, 0.5)
    }


def _rows(table):
    lines = [f"Table 4 (simulated): breakdown (seconds), CNN/FEMNIST, N={N}",
             f"{'protocol':13s}{'p':>5s}{'offline':>9s}{'train':>7s}"
             f"{'upload':>8s}{'recovery':>9s}{'total':>9s}{'overlapped':>11s}"]
    for proto in PROTOS:
        for p in (0.1, 0.3, 0.5):
            t = table[(proto, p)]
            lines.append(
                f"{proto:13s}{p:5.1f}{t.offline:9.1f}{t.training:7.1f}"
                f"{t.upload:8.1f}{t.recovery:9.1f}"
                f"{t.total(False):9.1f}{t.total(True):11.1f}"
            )
    return lines


def test_table4_report_and_simulation(benchmark):
    table = benchmark(_breakdown)
    write_report("table4_breakdown", _rows(table))

    # Paper shape assertions.
    lsa = [table[("lightsecagg", p)].total() for p in (0.1, 0.3, 0.5)]
    sa = [table[("secagg", p)].total() for p in (0.1, 0.3, 0.5)]
    sp = [table[("secagg+", p)].total() for p in (0.1, 0.3, 0.5)]
    # LightSecAgg flat for p in {0.1, 0.3}, penalized at 0.5.
    assert abs(lsa[0] - lsa[1]) / lsa[0] < 0.05
    assert lsa[2] > lsa[0]
    # SecAgg grows steeply and is always the slowest.
    assert sa[0] < sa[1] < sa[2]
    for i in range(3):
        assert lsa[i] < sp[i] < sa[i]
    # SecAgg recovery dominance (the paper's primary-gain claim).
    assert table[("secagg", 0.3)].recovery > 0.5 * table[("secagg", 0.3)].total()
