"""Table 6 — randomness generation and storage vs Zhao & Sun (2021).

The paper's claim: the trusted-third-party scheme needs an amount of
randomness that grows exponentially in N, while LightSecAgg's grows
linearly (N*U total, U-T+N per user).
"""

from repro.simulation.storage import compare_storage

from _report import write_report


def _points():
    # U = 0.7N, T = N/2 (paper operating point) at small N where the
    # exponential column is still printable.
    return [compare_storage(n, int(0.7 * n), n // 2) for n in (10, 15, 20, 25, 30)]


def _rows(points):
    lines = ["Table 6 (exact formulas): symbols of F_q^{d/(U-T)}",
             f"{'N':>4s}{'U':>5s}{'T':>5s}{'ZS total rand':>16s}{'LSA total':>12s}"
             f"{'ZS per-user':>14s}{'LSA per-user':>14s}{'rand ratio':>12s}"]
    for c in points:
        lines.append(
            f"{c.num_users:4d}{c.target_survivors:5d}{c.privacy:5d}"
            f"{c.zhao_sun_randomness:16.3e}{c.lightsecagg_randomness:12d}"
            f"{c.zhao_sun_per_user:14.3e}{c.lightsecagg_per_user:14d}"
            f"{c.randomness_ratio:12.3e}"
        )
    return lines


def test_table6_grounded_in_running_code(benchmark):
    """Run the actual TTP scheme at N=8 and check the closed forms count
    exactly what the implementation generates and stores."""
    import numpy as np

    from repro.field import FiniteField
    from repro.protocols.lightsecagg.params import LSAParams
    from repro.protocols.zhao_sun import TrustedThirdPartyMasking
    from repro.simulation.storage import (
        zhao_sun_storage_per_user,
        zhao_sun_total_randomness,
    )

    gf = FiniteField()
    n, u, t = 8, 6, 3
    params = LSAParams(n, t, n - u, u)
    rng = np.random.default_rng(0)
    ttp = benchmark(TrustedThirdPartyMasking, gf, params, 16, rng)
    assert ttp.randomness_symbols == zhao_sun_total_randomness(n, u, t)
    import statistics

    mean_storage = statistics.mean(
        ttp.storage_symbols_per_user(i) for i in range(n)
    )
    assert abs(mean_storage - zhao_sun_storage_per_user(n, u, t)) < 1e-9


def test_table6_report_and_formulas(benchmark):
    points = benchmark(_points)
    write_report("table6_storage", _rows(points))
    ratios = [c.randomness_ratio for c in points]
    # Exponential vs linear separation: the ratio itself grows rapidly.
    assert all(a < b for a, b in zip(ratios, ratios[1:]))
    assert ratios[-1] > 1e3 * ratios[0]
    # LightSecAgg per-user storage stays linear: U - T + N.
    for c in points:
        assert c.lightsecagg_per_user == (
            c.target_survivors - c.privacy + c.num_users
        )
