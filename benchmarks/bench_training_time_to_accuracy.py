"""End-to-end time-to-accuracy — the abstract's "significantly reduces the
total training time" claim, made measurable.

Trains a real model federatedly (the convergence curve is protocol-
independent, which the FL tests verify), then composes the measured curve
with each protocol's per-round systems time.
"""

import numpy as np

from repro.field import FiniteField
from repro.fl import (
    LocalTrainingConfig,
    SecureFederatedAveraging,
    iid_partition,
    logistic_regression,
    make_mnist_like,
)
from repro.fl.datasets.synthetic import train_test_split
from repro.protocols import LightSecAgg, LSAParams
from repro.simulation.training_time import project_training_time

from _report import write_report

TARGET = 0.9
N_SYSTEM = 200  # systems projection scale
D_CNN = 1_206_590


def _measure_curve():
    gf = FiniteField()
    full = make_mnist_like(900, seed=21, noise=1.3)
    train, test = train_test_split(full, 0.25, seed=1)
    clients = iid_partition(train, 8, seed=1)
    model = logistic_regression(seed=0)
    proto = LightSecAgg(gf, LSAParams.from_guarantees(8, 2, 2), model.dim)
    trainer = SecureFederatedAveraging(
        model, clients, proto,
        local_config=LocalTrainingConfig(epochs=1, batch_size=32, lr=0.05),
    )
    hist = trainer.fit(6, dropout_rate=0.1,
                       rng=np.random.default_rng(0), test_set=test)
    return hist.accuracies


def test_time_to_accuracy(benchmark):
    curve = _measure_curve()
    proj = benchmark(
        project_training_time,
        curve, TARGET, N_SYSTEM, D_CNN, 0.1, 22.8,
    )
    lines = [
        f"Time to {TARGET:.0%} accuracy (measured curve x simulated round "
        f"times, N={N_SYSTEM}, CNN-sized model)",
        f"  accuracy curve: {', '.join(f'{a:.3f}' for a in curve)}",
        f"  rounds needed : {proj.rounds_needed}",
    ]
    for proto, secs in sorted(proj.seconds.items(), key=lambda kv: kv[1]):
        lines.append(f"  {proto:13s}: {secs:10.1f} s")
    lines.append(
        f"  end-to-end speedup: {proj.speedup_over('secagg'):.1f}x vs SecAgg, "
        f"{proj.speedup_over('secagg+'):.1f}x vs SecAgg+"
    )
    write_report("training_time_to_accuracy", lines)
    assert proj.speedup_over("secagg") > 5
    assert proj.speedup_over("secagg+") > 1.5
