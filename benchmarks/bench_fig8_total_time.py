"""Fig 8 — logistic regression on MNIST-like (d=7,850).

Regenerates the figure's two panels (non-overlapped and overlapped total
running time vs number of users, for dropout rates 10/30/50%) from the
calibrated timing model, and asserts the paper's qualitative shape:
LightSecAgg flattest and fastest, SecAgg slowest and steepest, dropout
rate only hurting the baselines.
"""

from repro.fl.models.zoo import PAPER_MODEL_SIZES
from repro.simulation import TRAINING_TIMES

from _report import write_report
from _sweeps import assert_figure_shape, sweep_rows, total_time_sweep

TASK = "logistic_regression"
D = PAPER_MODEL_SIZES[TASK]
TRAIN_T = TRAINING_TIMES[TASK]


def test_fig8_nonoverlapped(benchmark):
    series = benchmark(total_time_sweep, D, TRAIN_T, False)
    write_report(
        "fig8_nonoverlapped",
        sweep_rows("Fig 8 — logistic regression on MNIST-like (d=7,850) -- non-overlapped totals (s)", series),
    )
    # The LR model is floor-dominated; require only that SecAgg's
    # growth strictly exceeds LightSecAgg's (see _sweeps docstring).
    assert_figure_shape(series, growth_factor=1.02)


def test_fig8_overlapped(benchmark):
    series = benchmark(total_time_sweep, D, TRAIN_T, True)
    write_report(
        "fig8_overlapped",
        sweep_rows("Fig 8 — logistic regression on MNIST-like (d=7,850) -- overlapped totals (s)", series),
    )
    # The LR model is floor-dominated; require only that SecAgg's
    # growth strictly exceeds LightSecAgg's (see _sweeps docstring).
    assert_figure_shape(series, growth_factor=1.02)
