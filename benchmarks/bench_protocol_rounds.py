"""Measured (not simulated) protocol rounds at laptop scale.

Times one full secure-aggregation round of each protocol with identical
inputs (N = 24 users, d = 5,000), directly on this machine.  These are the
ground-truth counterparts of the timing model: the recovery-dominance and
ordering claims must hold in real execution, not just in the cost model.
"""

import numpy as np
import pytest

from repro.field import FiniteField
from repro.protocols import LightSecAgg, LSAParams, SecAgg, SecAggPlus

N = 24
D = 5_000
DROPOUTS = frozenset({1, 7, 13})

GF = FiniteField()
UPDATES = {i: GF.random(D, np.random.default_rng(i)) for i in range(N)}


def _expected():
    survivors = [i for i in range(N) if i not in DROPOUTS]
    total = UPDATES[survivors[0]].copy()
    for i in survivors[1:]:
        total = GF.add(total, UPDATES[i])
    return total


EXPECTED = _expected()


@pytest.mark.parametrize(
    "name,factory",
    [
        (
            "lightsecagg",
            lambda: LightSecAgg(
                GF, LSAParams.from_guarantees(N, N // 4, N // 4), D
            ),
        ),
        ("secagg", lambda: SecAgg(GF, N, D)),
        ("secagg+", lambda: SecAggPlus(GF, N, D, graph_seed=0)),
    ],
)
def test_measured_round(benchmark, name, factory):
    proto = factory()
    rng = np.random.default_rng(0)
    result = benchmark(proto.run_round, UPDATES, set(DROPOUTS), rng)
    assert np.array_equal(result.aggregate, EXPECTED)


def test_measured_server_work_ordering():
    """Real execution: SecAgg's server PRG work exceeds LightSecAgg's
    entire recovery payload, and grows with dropouts."""
    rng = np.random.default_rng(0)
    lsa = LightSecAgg(GF, LSAParams.from_guarantees(N, N // 4, N // 4), D)
    sa = SecAgg(GF, N, D)
    r_lsa = lsa.run_round(UPDATES, set(DROPOUTS), rng)
    r_sa0 = sa.run_round(UPDATES, set(), rng)
    r_sa3 = sa.run_round(UPDATES, set(DROPOUTS), rng)
    assert r_sa3.metrics.server_prg_elements > r_sa0.metrics.server_prg_elements
    assert r_lsa.metrics.server_prg_elements == 0
