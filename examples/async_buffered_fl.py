"""Asynchronous buffered FL: async-LightSecAgg vs FedBuff (paper Fig. 7/11).

SecAgg / SecAgg+ cannot run here at all — with user updates arriving from
different global rounds, their pairwise masks never cancel (paper Remark
1).  Async LightSecAgg handles the mix of timestamps because mask encoding
commutes with addition.  This script shows both staleness strategies from
the paper: constant s(tau) = 1 and polynomial s(tau) = 1/(1 + tau).

Run:  python examples/async_buffered_fl.py  [--rounds 6]
"""

import argparse

import numpy as np

from repro.asyncfl import (
    AsyncLightSecAggTrainer,
    FedBuffTrainer,
    constant_staleness,
    polynomial_staleness,
)
from repro.fl import (
    LocalTrainingConfig,
    iid_partition,
    logistic_regression,
    make_mnist_like,
)
from repro.fl.datasets.synthetic import train_test_split

NUM_USERS = 20
BUFFER_K = 5
TAU_MAX = 6


def run(trainer_cls, staleness_fn, clients, test, rounds, label):
    trainer = trainer_cls(
        logistic_regression(seed=0),
        clients,
        buffer_size=BUFFER_K,
        tau_max=TAU_MAX,
        local_config=LocalTrainingConfig(epochs=1, batch_size=32, lr=0.05),
        seed=11,
        staleness_fn=staleness_fn,
    )
    hist = trainer.fit(rounds, test_set=test)
    accs = ", ".join(f"{a:.3f}" for a in hist.accuracies)
    print(f"{label:32s} {accs}")
    return hist.accuracies[-1]


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--rounds", type=int, default=6)
    args = parser.parse_args()

    full = make_mnist_like(1500, seed=4, noise=1.2)
    train, test = train_test_split(full, 0.25, seed=1)
    clients = iid_partition(train, NUM_USERS, seed=1)

    print(f"N={NUM_USERS}, buffer K={BUFFER_K}, tau_max={TAU_MAX}")
    print("accuracy per buffered round:")
    for fn, fn_name in (
        (constant_staleness, "constant"),
        (polynomial_staleness(1.0), "poly(alpha=1)"),
    ):
        a = run(FedBuffTrainer, fn, clients, test, args.rounds,
                f"fedbuff / {fn_name}")
        b = run(AsyncLightSecAggTrainer, fn, clients, test, args.rounds,
                f"async-lightsecagg / {fn_name}")
        print(f"  -> gap {abs(a - b):.4f} (quantization noise only)")


if __name__ == "__main__":
    main()
