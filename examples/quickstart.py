"""Quickstart: one LightSecAgg round, verified against the plain sum.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import FiniteField, LightSecAgg, LSAParams

N = 10  # users
D_MODEL = 1_000  # model dimension
T = 3  # privacy: any 3 users may collude
D_DROP = 3  # resiliency: any 3 users may drop


def main() -> None:
    rng = np.random.default_rng(0)
    gf = FiniteField()

    params = LSAParams.from_guarantees(
        num_users=N, privacy=T, dropout_tolerance=D_DROP
    )
    print(f"LightSecAgg with N={N}, T={T}, D={D_DROP} -> "
          f"U={params.target_survivors} (T < U <= N - D)")

    protocol = LightSecAgg(gf, params, model_dim=D_MODEL)

    # Each user holds a (quantized) model update in the field.
    updates = {i: gf.random(D_MODEL, rng) for i in range(N)}

    # Users 2 and 7 upload their masked models, then go offline.
    dropouts = {2, 7}
    result = protocol.run_round(updates, dropouts, rng)

    expected = protocol.expected_aggregate(updates, result.survivors)
    assert np.array_equal(result.aggregate, expected)
    print(f"survivors: {result.survivors}")
    print(f"aggregate verified: sum of {len(result.survivors)} updates "
          f"recovered exactly, with {len(result.transcript)} messages")
    print(f"recovery traffic: "
          f"{result.transcript.elements(phase='recovery')} field elements "
          f"({result.transcript.elements(phase='recovery') * 4 / 1024:.1f} KiB) "
          f"-- independent of how many users dropped")


if __name__ == "__main__":
    main()
