"""Why secure aggregation: gradient inversion succeeds on individual
updates and fails on aggregates.

The paper's threat model (Sec. 1-2) assumes an honest-but-curious server.
This demo shows concretely what such a server can do: with access to one
user's plain softmax-regression gradient it reconstructs that user's input
image *exactly* (up to scale).  With LightSecAgg the server only ever sees
(a) masked updates that are uniformly random, and (b) the aggregate — on
which the same attack fails.

Run:  python examples/privacy_attack_demo.py
"""

import numpy as np

from repro import FiniteField, LightSecAgg, LSAParams, ModelQuantizer
from repro.attacks import (
    attack_success,
    invert_logistic_gradient,
    logistic_gradient,
)
from repro.quantization import QuantizationConfig

IN_DIM, CLASSES, USERS = 64, 10, 12


def main() -> None:
    rng = np.random.default_rng(0)
    weights = rng.normal(0, 0.1, size=(IN_DIM, CLASSES))
    bias = np.zeros(CLASSES)
    inputs = [rng.normal(size=IN_DIM) for _ in range(USERS)]
    labels = rng.integers(0, CLASSES, USERS)

    # --- attack on an individual update (no secure aggregation)
    gw, gb = logistic_gradient(inputs[0], int(labels[0]), weights, bias)
    res = invert_logistic_gradient(gw, gb, true_input=inputs[0])
    print("attack on ONE user's plain gradient:")
    print(f"  recovered label: {res.recovered_label} (true {labels[0]})")
    print(f"  cosine(reconstruction, true input) = "
          f"{res.cosine_similarity:.6f}  -> success={attack_success(res)}")

    # --- what the server sees under LightSecAgg: a masked update
    gf = FiniteField()
    quant = ModelQuantizer(gf, QuantizationConfig(levels=1 << 16, clip=4.0))
    flat = np.concatenate([gw.reshape(-1), gb])
    params = LSAParams.from_guarantees(USERS, privacy=4, dropout_tolerance=3)
    protocol = LightSecAgg(gf, params, model_dim=flat.size)
    field_updates = {}
    for i in range(USERS):
        gwi, gbi = logistic_gradient(inputs[i], int(labels[i]), weights, bias)
        field_updates[i] = quant.quantize(
            np.concatenate([gwi.reshape(-1), gbi]), rng
        )
    result = protocol.run_round(field_updates, dropouts={3}, rng=rng)

    # --- attack on the securely aggregated update
    agg = quant.dequantize(result.aggregate)
    agg_w = agg[: IN_DIM * CLASSES].reshape(IN_DIM, CLASSES)
    agg_b = agg[IN_DIM * CLASSES:]
    res_agg = invert_logistic_gradient(agg_w, agg_b, true_input=inputs[0])
    print(f"\nattack on the SECURELY AGGREGATED gradient of {USERS} users:")
    print(f"  cosine(reconstruction, user 0 input) = "
          f"{res_agg.cosine_similarity:.6f}  -> success={attack_success(res_agg)}")
    assert attack_success(res) and not attack_success(res_agg)
    print("\nsecure aggregation defeats the inversion attack.")


if __name__ == "__main__":
    main()
