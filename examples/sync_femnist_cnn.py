"""Synchronous secure FL: CNN on a FEMNIST-like task with user dropouts.

Reproduces (at laptop scale) the paper's flagship workload — the McMahan
CNN on FEMNIST with 10% of the users dropping every round — and shows that
secure aggregation changes nothing about convergence: the LightSecAgg run
matches an insecure FedAvg run.

Run:  python examples/sync_femnist_cnn.py  [--rounds 3]
"""

import argparse

import numpy as np

from repro import FiniteField, LightSecAgg, LSAParams, NaiveAggregation
from repro.fl import (
    LocalTrainingConfig,
    SecureFederatedAveraging,
    iid_partition,
    mcmahan_cnn,
    make_classification,
)
from repro.fl.datasets.synthetic import train_test_split

NUM_USERS = 8
DROPOUT_RATE = 0.1


def build_trainer(protocol_factory, clients, seed=0):
    # A scaled-down CNN (20x20 inputs, 10 classes) keeps this demo fast;
    # swap input_shape=(1, 28, 28), num_classes=62 for the paper-sized run.
    model = mcmahan_cnn(input_shape=(1, 20, 20), num_classes=10, seed=seed)
    protocol = protocol_factory(model.dim)
    return SecureFederatedAveraging(
        model,
        clients,
        protocol,
        local_config=LocalTrainingConfig(epochs=2, batch_size=32, lr=0.01),
    )


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--rounds", type=int, default=3)
    args = parser.parse_args()

    gf = FiniteField()
    # A 20x20 / 10-class FEMNIST-like task keeps this demo fast; use
    # make_femnist_like() (28x28, 62 classes) for the paper-sized run.
    full = make_classification(640, (1, 20, 20), 10, noise=0.8, seed=3,
                               name="femnist-small")
    train, test = train_test_split(full, 0.25, seed=1)
    clients = iid_partition(train, NUM_USERS, seed=1)

    params = LSAParams.paper_defaults(NUM_USERS, DROPOUT_RATE)
    print(f"params: N={NUM_USERS}, T={params.privacy}, "
          f"D={params.dropout_tolerance}, U={params.target_survivors}")

    secure = build_trainer(lambda d: LightSecAgg(gf, params, d), clients)
    naive = build_trainer(lambda d: NaiveAggregation(gf, NUM_USERS, d), clients)

    for name, trainer in (("lightsecagg", secure), ("fedavg (insecure)", naive)):
        rng = np.random.default_rng(7)
        hist = trainer.fit(
            args.rounds, dropout_rate=DROPOUT_RATE, rng=rng, test_set=test
        )
        accs = ", ".join(f"{a:.3f}" for a in hist.accuracies)
        print(f"{name:20s} accuracy per round: {accs}")

    gap = abs(secure.history.accuracies[-1] - naive.history.accuracies[-1])
    print(f"final accuracy gap (quantization noise only): {gap:.4f}")


if __name__ == "__main__":
    main()
