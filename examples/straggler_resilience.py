"""Straggler resilience of one-shot recovery (paper Remark 2, in systems
terms).

Runs the event-driven system runtime (`repro.system`) on a heterogeneous
fleet where a few devices are an order of magnitude slower, and shows that
LightSecAgg's recovery phase completes after the U-th fastest response —
the stragglers are simply never on the critical path, while a
wait-for-everyone design would stall on them.

Run:  python examples/straggler_resilience.py
"""

import numpy as np

from repro import FiniteField
from repro.protocols.lightsecagg.params import LSAParams
from repro.simulation.heterogeneous import (
    UserProfile,
    sample_fleet,
    simulate_heterogeneous_round,
)
from repro.system import SystemRuntime

N = 16
DIM = 50_000
SLOWDOWN = 12.0


def main() -> None:
    gf = FiniteField()
    rng = np.random.default_rng(0)
    params = LSAParams.from_guarantees(N, privacy=5, dropout_tolerance=3)
    print(f"N={N}, U={params.target_survivors} "
          f"(recovery needs only the {params.target_survivors} fastest "
          f"responders)")

    # Three devices are 12x slower in both compute and bandwidth.
    fleet = [UserProfile() for _ in range(N - 3)] + [
        UserProfile(compute_scale=1 / SLOWDOWN, bandwidth_scale=1 / SLOWDOWN)
    ] * 3
    updates = {i: gf.random(DIM, rng) for i in range(N)}

    runtime = SystemRuntime(gf, params, DIM, fleet=fleet, training_time=1.0)
    result = runtime.run_round(updates, rng=rng)

    stragglers = {N - 3, N - 2, N - 1}
    print(f"recovery responders: {sorted(result.responders)}")
    print(f"stragglers {sorted(stragglers)} on critical path: "
          f"{bool(stragglers & set(result.responders))}")
    print(f"round finished at t={result.finish_time:.3f}s "
          f"(upload complete {result.upload_complete:.3f}s, "
          f"recovery {result.recovery_complete:.3f}s)")

    # Closed-form view of the same effect: U-th order statistic vs max.
    analytic = simulate_heterogeneous_round(
        params, DIM,
        sample_fleet(N, straggler_fraction=0.2, straggler_slowdown=SLOWDOWN,
                     rng=np.random.default_rng(1)),
    )
    print(f"\nanalytic model: wait-for-U {analytic.recovery_wait_u * 1e3:.1f} ms"
          f" vs wait-for-all {analytic.recovery_wait_all * 1e3:.1f} ms"
          f"  (saving {analytic.straggler_savings / analytic.recovery_wait_all:.0%})")
    assert not stragglers & set(result.responders)


if __name__ == "__main__":
    main()
