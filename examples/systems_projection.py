"""Systems projection: regenerate the paper's Table 2/3/4 summaries.

Uses the calibrated timing model to print (a) the per-phase breakdown of
one FL round for all three protocols (Table 4), (b) the LightSecAgg
speedups for all four paper tasks (Table 2), and (c) the bandwidth
sensitivity (Table 3).

Run:  python examples/systems_projection.py
"""

from repro.fl.models.zoo import PAPER_MODEL_SIZES
from repro.simulation import (
    BANDWIDTH_SETTINGS,
    SimulationConfig,
    TRAINING_TIMES,
    compute_gains,
    simulate,
)

N = 200
CNN_D = PAPER_MODEL_SIZES["cnn_femnist"]
CFG = SimulationConfig()


def table4() -> None:
    print("=" * 72)
    print(f"Table 4 (simulated): per-phase breakdown, CNN/FEMNIST, N={N}")
    print("=" * 72)
    header = f"{'protocol':14s} {'p':>4s} {'offline':>9s} {'train':>7s} " \
             f"{'upload':>8s} {'recovery':>9s} {'total':>9s} {'overlap':>9s}"
    print(header)
    for p in (0.1, 0.3, 0.5):
        for proto in ("lightsecagg", "secagg", "secagg+"):
            t = simulate(proto, N, CNN_D, p, TRAINING_TIMES["cnn_femnist"], CFG)
            print(
                f"{proto:14s} {p:4.1f} {t.offline:9.1f} {t.training:7.1f} "
                f"{t.upload:8.1f} {t.recovery:9.1f} "
                f"{t.total(False):9.1f} {t.total(True):9.1f}"
            )
        print()


def table2() -> None:
    print("=" * 72)
    print(f"Table 2 (simulated): LightSecAgg gains, N={N}, p=0.1")
    print("=" * 72)
    print(f"{'task':22s} {'d':>9s}  {'non-overlapped':>16s} "
          f"{'overlapped':>13s} {'agg-only':>12s}")
    for task, d in PAPER_MODEL_SIZES.items():
        g = compute_gains(task, N, d, 0.1, TRAINING_TIMES[task], CFG)
        print(
            f"{task:22s} {d:9d}  "
            f"{g.non_overlapped['secagg']:6.1f}x,{g.non_overlapped['secagg+']:5.1f}x "
            f"{g.overlapped['secagg']:6.1f}x,{g.overlapped['secagg+']:5.1f}x "
            f"{g.aggregation_only['secagg']:6.1f}x,{g.aggregation_only['secagg+']:5.1f}x"
        )


def table3() -> None:
    print("=" * 72)
    print(f"Table 3 (simulated): overlapped gain vs bandwidth, CNN, N={N}")
    print("=" * 72)
    for bw in BANDWIDTH_SETTINGS:
        cfg = SimulationConfig(bandwidth=bw)
        g = compute_gains("cnn", N, CNN_D, 0.1,
                          TRAINING_TIMES["cnn_femnist"], cfg)
        print(f"{bw.name:14s} vs SecAgg {g.overlapped['secagg']:5.1f}x   "
              f"vs SecAgg+ {g.overlapped['secagg+']:5.1f}x")


if __name__ == "__main__":
    table4()
    table2()
    table3()
