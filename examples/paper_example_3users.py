"""The paper's 3-user worked example (Fig. 3 / Sec. 4), executed verbatim.

The paper illustrates LightSecAgg with N = 3, T = 1, D = 1, U = 2 and the
explicit encoding

    ~z_{i,1} = -z_i + n_i,   ~z_{i,2} = 2 z_i + n_i,   ~z_{i,3} = z_i + n_i

i.e. generator matrix  W = [[-1, 2, 1],
                            [ 1, 1, 1]]   (top row mixes z, bottom row n).

User 1 drops after uploading; users 2 and 3 send their aggregated encoded
masks and the server recovers

    z_2 + z_3 = (~z_{2,2} + ~z_{3,2}) - (~z_{2,3} + ~z_{3,3})     (eq. 4)

in one shot.  This script runs that algebra in GF(q) with real vectors and
checks every identity, then cross-checks the SecAgg comparison the paper
makes: 4 PRG mask reconstructions (cost 4d) vs LightSecAgg's single
recovery (cost d).

Run:  python examples/paper_example_3users.py
"""

import numpy as np

from repro import FiniteField
from repro.field.linalg import is_mds

D_MODEL = 8


def main() -> None:
    gf = FiniteField()
    rng = np.random.default_rng(0)

    # The paper's T-private MDS matrix (columns = users).
    w = gf.array([[-1, 2, 1],
                  [1, 1, 1]])
    assert is_mds(gf, w), "any 2 columns must be invertible"
    # T-privacy: the n-row (bottom) alone is MDS too (any 1x1 nonzero).
    assert np.all(w[1] != 0)

    # Offline: each user picks z_i, n_i and encodes three shares.
    x = {i: gf.random(D_MODEL, rng) for i in (1, 2, 3)}
    z = {i: gf.random(D_MODEL, rng) for i in (1, 2, 3)}
    n = {i: gf.random(D_MODEL, rng) for i in (1, 2, 3)}
    shares = {}  # shares[(i, j)] = ~z_{i,j}, user i's share held by user j
    for i in (1, 2, 3):
        for j_idx, j in enumerate((1, 2, 3)):
            shares[(i, j)] = gf.add(
                gf.mul(z[i], w[0, j_idx]), gf.mul(n[i], w[1, j_idx])
            )
    print("offline: each user encoded and distributed 3 shares "
          f"(-z+n, 2z+n, z+n) of its {D_MODEL}-dim mask")

    # Masking: ~x_i = x_i + z_i; user 1 then drops.
    masked = {i: gf.add(x[i], z[i]) for i in (1, 2, 3)}
    survivors = (2, 3)
    print("user 1 uploaded ~x_1 = x_1 + z_1 and dropped")

    # One-shot recovery (eq. 4): users 2, 3 send aggregated shares.
    agg_at_2 = gf.add(shares[(2, 2)], shares[(3, 2)])  # 2(z2+z3) + n2+n3
    agg_at_3 = gf.add(shares[(2, 3)], shares[(3, 3)])  # (z2+z3) + n2+n3
    z_sum = gf.sub(agg_at_2, agg_at_3)
    assert np.array_equal(z_sum, gf.add(z[2], z[3])), "eq. (4) must hold"
    print("server recovered z_2 + z_3 in ONE subtraction (eq. 4) "
          "— no per-user mask reconstruction")

    # Aggregate recovery.
    masked_sum = gf.add(masked[2], masked[3])
    aggregate = gf.sub(masked_sum, z_sum)
    assert np.array_equal(aggregate, gf.add(x[2], x[3]))
    print("aggregate x_2 + x_3 verified exactly")

    # The paper's cost comparison for this example (Fig. 2 vs Fig. 3):
    secagg_cost = 4 * D_MODEL  # reconstruct n_2, n_3, z_{1,2}, z_{1,3}
    lsa_cost = 1 * D_MODEL  # one aggregate-mask recovery
    print(f"server cost: SecAgg {secagg_cost} (= 4d), "
          f"LightSecAgg {lsa_cost} (= d) -> 4x reduction, as in the paper")


if __name__ == "__main__":
    main()
