"""Tests for big-int limb conversion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CodingError
from repro.utils.ints import int_to_limbs, limbs_needed, limbs_to_int

Q = (1 << 31) - 1


class TestLimbs:
    def test_round_trip_small(self):
        limbs = int_to_limbs(12345, Q, 3)
        assert limbs_to_int(limbs, Q) == 12345

    def test_round_trip_256_bit(self):
        value = 2**255 + 987654321
        count = limbs_needed(256, Q)
        assert limbs_to_int(int_to_limbs(value, Q, count), Q) == value

    def test_limbs_needed_monotone(self):
        assert limbs_needed(31, Q) >= 1
        assert limbs_needed(256, Q) > limbs_needed(64, Q)

    def test_value_too_large(self):
        with pytest.raises(CodingError):
            int_to_limbs(Q**2, Q, 1)

    def test_negative_rejected(self):
        with pytest.raises(CodingError):
            int_to_limbs(-1, Q, 2)

    def test_zero(self):
        assert limbs_to_int(int_to_limbs(0, Q, 4), Q) == 0

    def test_limbs_are_reduced(self):
        limbs = int_to_limbs(2**200, Q, limbs_needed(256, Q))
        assert all(0 <= int(l) < Q for l in limbs)

    def test_bits_validation(self):
        with pytest.raises(CodingError):
            limbs_needed(0, Q)


@given(st.integers(0, 2**256 - 1), st.sampled_from([Q, (1 << 32) - 5, 97]))
@settings(max_examples=100, deadline=None)
def test_round_trip_property(value, q):
    count = limbs_needed(256, q)
    assert limbs_to_int(int_to_limbs(value, q, count), q) == value
