"""Statistical verification of paper Lemma 2.

Lemma 2 states that for the stochastic rounding estimator ``Q_c`` applied
to an unbiased gradient estimator with variance ``sigma_l^2``:

1. ``E[Q_c(g(x))] = grad F(x)`` (unbiasedness is preserved), and
2. ``E||Q_c(g(x)) - grad F(x)||^2 <= d/(4c^2) + sigma_l^2``.

We verify both empirically on a synthetic quadratic objective where the
exact gradient is known.
"""

import numpy as np
import pytest

from repro.quantization.stochastic import (
    rounding_variance_bound,
    stochastic_round,
)

DIM = 32
TRUE_GRAD = np.linspace(-1.0, 1.0, DIM)
SIGMA_L = 0.05


def noisy_gradient(rng: np.random.Generator) -> np.ndarray:
    """Unbiased gradient estimator with per-coordinate variance SIGMA_L^2."""
    return TRUE_GRAD + rng.normal(0.0, SIGMA_L, size=DIM)


@pytest.mark.parametrize("levels", [4, 16, 256])
def test_unbiasedness_of_quantized_gradient(levels):
    rng = np.random.default_rng(0)
    trials = 20_000
    acc = np.zeros(DIM)
    for _ in range(trials):
        acc += stochastic_round(noisy_gradient(rng), levels, rng)
    mean = acc / trials
    # Standard error per coordinate ~ sqrt(sigma^2 + 1/4c^2)/sqrt(trials).
    tol = 6 * np.sqrt(SIGMA_L**2 + 1 / (4 * levels**2)) / np.sqrt(trials)
    assert np.max(np.abs(mean - TRUE_GRAD)) < tol


@pytest.mark.parametrize("levels", [4, 16, 256])
def test_variance_bound_of_quantized_gradient(levels):
    rng = np.random.default_rng(1)
    trials = 5_000
    sq_errors = np.empty(trials)
    for k in range(trials):
        q = stochastic_round(noisy_gradient(rng), levels, rng)
        sq_errors[k] = np.sum((q - TRUE_GRAD) ** 2)
    bound = rounding_variance_bound(levels, DIM) + DIM * SIGMA_L**2
    assert sq_errors.mean() <= bound * 1.05


def test_variance_shrinks_with_levels():
    """The d/(4c^2) term must vanish as c grows (Remark 6)."""
    rng = np.random.default_rng(2)
    means = []
    for levels in (2, 8, 32):
        errs = [
            np.sum(
                (stochastic_round(TRUE_GRAD, levels, rng) - TRUE_GRAD) ** 2
            )
            for _ in range(2000)
        ]
        means.append(np.mean(errs))
    assert means[0] > means[1] > means[2]
    # Quartering the grid step should cut variance ~16x.
    assert means[0] / means[1] > 8
