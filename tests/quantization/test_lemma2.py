"""Statistical verification of paper Lemma 2.

Lemma 2 states that for the stochastic rounding estimator ``Q_c`` applied
to an unbiased gradient estimator with variance ``sigma_l^2``:

1. ``E[Q_c(g(x))] = grad F(x)`` (unbiasedness is preserved), and
2. ``E||Q_c(g(x)) - grad F(x)||^2 <= d/(4c^2) + sigma_l^2``.

We verify both empirically on a synthetic quadratic objective where the
exact gradient is known.
"""

import numpy as np
import pytest

from repro.field.arithmetic import FiniteField
from repro.quantization import ModelQuantizer, QuantizationConfig
from repro.quantization.stochastic import (
    rounding_variance_bound,
    stochastic_round,
)
from repro.wire import (
    FrameAssembler,
    PayloadWriter,
    decode_frame,
    encode_frame,
)

DIM = 32
TRUE_GRAD = np.linspace(-1.0, 1.0, DIM)
SIGMA_L = 0.05


def noisy_gradient(rng: np.random.Generator) -> np.ndarray:
    """Unbiased gradient estimator with per-coordinate variance SIGMA_L^2."""
    return TRUE_GRAD + rng.normal(0.0, SIGMA_L, size=DIM)


@pytest.mark.parametrize("levels", [4, 16, 256])
def test_unbiasedness_of_quantized_gradient(levels):
    rng = np.random.default_rng(0)
    trials = 20_000
    acc = np.zeros(DIM)
    for _ in range(trials):
        acc += stochastic_round(noisy_gradient(rng), levels, rng)
    mean = acc / trials
    # Standard error per coordinate ~ sqrt(sigma^2 + 1/4c^2)/sqrt(trials).
    tol = 6 * np.sqrt(SIGMA_L**2 + 1 / (4 * levels**2)) / np.sqrt(trials)
    assert np.max(np.abs(mean - TRUE_GRAD)) < tol


@pytest.mark.parametrize("levels", [4, 16, 256])
def test_variance_bound_of_quantized_gradient(levels):
    rng = np.random.default_rng(1)
    trials = 5_000
    sq_errors = np.empty(trials)
    for k in range(trials):
        q = stochastic_round(noisy_gradient(rng), levels, rng)
        sq_errors[k] = np.sum((q - TRUE_GRAD) ** 2)
    bound = rounding_variance_bound(levels, DIM) + DIM * SIGMA_L**2
    assert sq_errors.mean() <= bound * 1.05


def _through_packed_wire(field_matrix: np.ndarray, gf: FiniteField):
    """Field matrix -> packed frame -> torn byte stream -> field matrix.

    The full transport pipeline a quantized update rides: bit-packed at
    the field's ``ceil(log2 q)`` width, framed, fed to the reassembler
    in chunks that tear headers and payload alike, decoded back.
    """
    bits = int(gf.q - 1).bit_length()
    w = PayloadWriter()
    w.put_packed_array(field_matrix, bits=bits)
    frame = encode_frame(1, 0, w)
    assembler = FrameAssembler()
    frames = []
    step = 4093  # odd chunk size: every split lands mid-element somewhere
    for i in range(0, len(frame), step):
        frames.extend(assembler.feed(frame[i : i + step]))
    assert frames == [frame]
    _, _, reader = decode_frame(frames[0])
    out = reader.get_packed_array()
    assert reader.remaining == 0
    return out


class TestLemma2ThroughThePackedWire:
    """Lemma 2's statistics survive the full wire pipeline — quantize ->
    bit-pack -> frame -> torn stream -> reassemble -> unpack ->
    dequantize — because the packed encoding is lossless on field
    elements.  A rounding (or truncation) bug anywhere in the codec
    would bias the estimator or inflate the variance, failing these
    bounds."""

    @pytest.mark.parametrize("levels", [16, 256])
    def test_unbiasedness_and_variance_bound_survive_the_wire(self, levels):
        gf = FiniteField()
        quantizer = ModelQuantizer(gf, QuantizationConfig(levels=levels))
        rng = np.random.default_rng(4)
        trials = 20_000
        gradients = TRUE_GRAD + rng.normal(
            0.0, SIGMA_L, size=(trials, DIM)
        )
        field_matrix = quantizer.quantize(gradients, rng)

        received = _through_packed_wire(field_matrix, gf)
        # Losslessness first: what arrives is what was sent, bit for bit.
        np.testing.assert_array_equal(received, field_matrix)

        decoded = quantizer.dequantize(received)
        mean = decoded.mean(axis=0)
        tol = 6 * np.sqrt(SIGMA_L**2 + 1 / (4 * levels**2)) / np.sqrt(trials)
        assert np.max(np.abs(mean - TRUE_GRAD)) < tol

        sq_errors = np.sum((decoded - TRUE_GRAD) ** 2, axis=1)
        bound = rounding_variance_bound(levels, DIM) + DIM * SIGMA_L**2
        assert sq_errors.mean() <= bound * 1.05

    def test_packed_field_elements_are_smaller_on_the_wire(self):
        """The same matrix costs >= 1.8x less packed than raw — the
        bandwidth claim, measured at the quantization layer."""
        gf = FiniteField()
        quantizer = ModelQuantizer(gf, QuantizationConfig(levels=1 << 16))
        rng = np.random.default_rng(5)
        field_matrix = quantizer.quantize(
            rng.standard_normal((64, DIM)) * 0.25, rng
        )
        raw, packed = PayloadWriter(), PayloadWriter()
        raw.put_array(field_matrix)
        packed.put_packed_array(
            field_matrix, bits=int(gf.q - 1).bit_length()
        )
        assert raw.nbytes / packed.nbytes >= 1.8


def test_variance_shrinks_with_levels():
    """The d/(4c^2) term must vanish as c grows (Remark 6)."""
    rng = np.random.default_rng(2)
    means = []
    for levels in (2, 8, 32):
        errs = [
            np.sum(
                (stochastic_round(TRUE_GRAD, levels, rng) - TRUE_GRAD) ** 2
            )
            for _ in range(2000)
        ]
        means.append(np.mean(errs))
    assert means[0] > means[1] > means[2]
    # Quartering the grid step should cut variance ~16x.
    assert means[0] / means[1] > 8
