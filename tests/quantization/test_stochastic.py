"""Tests for stochastic rounding (paper eq. 29)."""

import numpy as np
import pytest

from repro.exceptions import QuantizationError
from repro.quantization.stochastic import (
    rounding_variance_bound,
    stochastic_round,
    stochastic_round_to_int,
)


class TestGridProperties:
    def test_output_on_grid(self, rng):
        x = rng.normal(size=1000)
        out = stochastic_round(x, levels=16, rng=rng)
        assert np.allclose(out * 16, np.round(out * 16))

    def test_error_bound(self, rng):
        x = rng.normal(size=1000)
        out = stochastic_round(x, levels=64, rng=rng)
        assert np.all(np.abs(out - x) < 1.0 / 64 + 1e-12)

    def test_exact_grid_points_unchanged(self, rng):
        x = np.asarray([0.0, 0.25, -0.5, 1.0])
        out = stochastic_round(x, levels=4, rng=rng)
        assert np.allclose(out, x)

    def test_negative_values(self, rng):
        x = np.asarray([-0.3, -1.7])
        out = stochastic_round(x, levels=10, rng=rng)
        assert np.all(np.abs(out - x) < 0.1 + 1e-12)

    def test_invalid_levels(self):
        with pytest.raises(QuantizationError):
            stochastic_round(np.zeros(2), levels=0)


class TestUnbiasedness:
    """Lemma 2 part 1: E[Q_c(x)] = x."""

    def test_mean_converges(self):
        rng = np.random.default_rng(0)
        x = np.full(200_000, 0.3371)
        out = stochastic_round(x, levels=8, rng=rng)
        # std of mean ~ (1/8)/sqrt(n) ~ 3e-4; allow 5 sigma.
        assert abs(out.mean() - 0.3371) < 1.5e-3

    def test_probabilities_match_fraction(self):
        rng = np.random.default_rng(1)
        x = np.full(100_000, 0.625)  # c=2 -> 1.25 -> 60% floor(0.5), 25%...
        out = stochastic_round(x, levels=2, rng=rng)
        frac_up = np.mean(out > 0.55)
        assert abs(frac_up - 0.25) < 0.01


class TestVariance:
    """Lemma 2 part 2: Var[Q_c(x)] <= 1/(4c^2) per coordinate."""

    @pytest.mark.parametrize("levels", [2, 8, 64])
    def test_variance_bound(self, levels):
        rng = np.random.default_rng(2)
        x = np.full(100_000, 0.123456)
        out = stochastic_round(x, levels=levels, rng=rng)
        var = out.var()
        assert var <= 1.0 / (4 * levels**2) * 1.05

    def test_variance_bound_helper(self):
        assert rounding_variance_bound(10, 400) == 400 / (4 * 100)
        with pytest.raises(QuantizationError):
            rounding_variance_bound(0, 4)


class TestIntVariant:
    def test_matches_float_variant_scaled(self):
        x = np.asarray([0.5, -0.25, 1.125])
        rng1 = np.random.default_rng(3)
        rng2 = np.random.default_rng(3)
        ints = stochastic_round_to_int(x, 8, rng1)
        floats = stochastic_round(x, 8, rng2)
        assert np.array_equal(ints, (floats * 8).astype(np.int64))

    def test_dtype(self, rng):
        out = stochastic_round_to_int(np.asarray([0.1]), 4, rng)
        assert out.dtype == np.int64

    def test_invalid_levels(self):
        with pytest.raises(QuantizationError):
            stochastic_round_to_int(np.zeros(2), -1)
