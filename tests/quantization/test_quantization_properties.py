"""Property-based tests for the quantization layer (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field import DEFAULT_PRIME, PAPER_PRIME, FiniteField
from repro.quantization import (
    ModelQuantizer,
    QuantizationConfig,
    from_field,
    stochastic_round,
    to_field,
)

FIELDS = [FiniteField(DEFAULT_PRIME), FiniteField(PAPER_PRIME)]

field_st = st.sampled_from(FIELDS)
levels_st = st.sampled_from([1, 2, 16, 1 << 10, 1 << 16])
floats_st = st.lists(
    st.floats(min_value=-100.0, max_value=100.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=32,
)


@given(field_st, floats_st, levels_st, st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_quantize_dequantize_error_bound(gf, xs, levels, seed):
    rng = np.random.default_rng(seed)
    quant = ModelQuantizer(gf, QuantizationConfig(levels=levels))
    x = np.asarray(xs)
    out = quant.dequantize(quant.quantize(x, rng))
    assert np.max(np.abs(out - x)) < 1.0 / levels + 1e-9


@given(field_st, floats_st, st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_field_addition_commutes_with_quantized_sum(gf, xs, seed):
    """Summing in the field equals summing grid values in the reals (no
    wrap-around at these magnitudes)."""
    rng = np.random.default_rng(seed)
    levels = 1 << 10
    quant = ModelQuantizer(gf, QuantizationConfig(levels=levels))
    x = np.asarray(xs)
    y = np.asarray(list(reversed(xs)))
    qx, qy = quant.quantize(x, rng), quant.quantize(y, rng)
    summed = quant.dequantize(gf.add(qx, qy))
    separate = quant.dequantize(qx) + quant.dequantize(qy)
    assert np.allclose(summed, separate, atol=1e-12)


@given(
    field_st,
    st.lists(st.integers(-10**6, 10**6), min_size=1, max_size=32),
)
@settings(max_examples=60, deadline=None)
def test_twos_complement_round_trip(gf, values):
    arr = np.asarray(values, dtype=np.int64)
    assert np.array_equal(from_field(gf, to_field(gf, arr)), arr)


@given(floats_st, levels_st, st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_stochastic_round_on_grid_and_close(xs, levels, seed):
    rng = np.random.default_rng(seed)
    x = np.asarray(xs)
    out = stochastic_round(x, levels, rng)
    scaled = out * levels
    assert np.allclose(scaled, np.round(scaled), atol=1e-6)
    assert np.max(np.abs(out - x)) < 1.0 / levels + 1e-9
