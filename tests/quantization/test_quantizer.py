"""Tests for the end-to-end model quantizer."""

import numpy as np
import pytest

from repro.exceptions import QuantizationError
from repro.quantization.quantizer import ModelQuantizer, QuantizationConfig


class TestConfig:
    def test_defaults(self):
        cfg = QuantizationConfig()
        assert cfg.levels == 1 << 16
        assert cfg.clip is None

    def test_validation(self):
        with pytest.raises(QuantizationError):
            QuantizationConfig(levels=0)
        with pytest.raises(QuantizationError):
            QuantizationConfig(clip=-1.0)


class TestRoundTrip:
    def test_reconstruction_error_bound(self, gf, rng):
        quant = ModelQuantizer(gf, QuantizationConfig(levels=1 << 12))
        x = rng.normal(0, 1, size=1000)
        out = quant.dequantize(quant.quantize(x, rng))
        assert np.max(np.abs(out - x)) < 1.0 / (1 << 12) + 1e-12

    def test_unbiased(self, gf):
        quant = ModelQuantizer(gf, QuantizationConfig(levels=4))
        rng = np.random.default_rng(0)
        x = np.full(100_000, 0.777)
        out = quant.dequantize(quant.quantize(x, rng))
        assert abs(out.mean() - 0.777) < 2e-3

    def test_clip_applied(self, gf, rng):
        quant = ModelQuantizer(gf, QuantizationConfig(levels=1 << 8, clip=1.0))
        x = np.asarray([5.0, -5.0, 0.5])
        out = quant.dequantize(quant.quantize(x, rng))
        assert out[0] == pytest.approx(1.0)
        assert out[1] == pytest.approx(-1.0)
        assert out[2] == pytest.approx(0.5, abs=1 / 256)

    def test_scale_parameter(self, gf, rng):
        quant = ModelQuantizer(gf, QuantizationConfig(levels=1 << 8))
        x = np.asarray([1.0, -2.0])
        field_vec = quant.quantize(x, rng)
        scaled = gf.mul(field_vec, 3)
        out = quant.dequantize(scaled, scale=3)
        assert np.allclose(out, x, atol=1 / 256)

    def test_invalid_scale(self, gf):
        quant = ModelQuantizer(gf)
        with pytest.raises(QuantizationError):
            quant.dequantize(gf.zeros(2), scale=0)

    def test_aggregation_in_field(self, gf, rng):
        """Sum of quantized vectors dequantizes to ~ sum of originals."""
        quant = ModelQuantizer(gf, QuantizationConfig(levels=1 << 16))
        xs = [rng.normal(0, 0.5, size=64) for _ in range(10)]
        acc = gf.zeros(64)
        for x in xs:
            acc = gf.add(acc, quant.quantize(x, rng))
        out = quant.dequantize(acc)
        assert np.allclose(out, sum(xs), atol=10 / (1 << 16) + 1e-9)


class TestBudget:
    def test_budget_pass(self, gf):
        quant = ModelQuantizer(gf, QuantizationConfig(levels=1 << 16))
        quant.check_budget(num_users=100, magnitude_bound=10.0)

    def test_budget_fail(self, gf):
        quant = ModelQuantizer(gf, QuantizationConfig(levels=1 << 24))
        with pytest.raises(QuantizationError, match="wrap-around"):
            quant.check_budget(num_users=1000, magnitude_bound=100.0)

    def test_budget_invalid_users(self, gf):
        quant = ModelQuantizer(gf)
        with pytest.raises(QuantizationError):
            quant.check_budget(0, 1.0)

    def test_wraparound_actually_corrupts(self, gf, rng):
        """Demonstrate the Fig.-12 failure mode: too-large c_l corrupts sums."""
        quant = ModelQuantizer(gf, QuantizationConfig(levels=1 << 29))
        # Each value embeds fine (1.5 * 2^29 < q/2) but the 8-user sum wraps.
        xs = [np.full(4, 1.5) for _ in range(8)]
        acc = gf.zeros(4)
        for x in xs:
            acc = gf.add(acc, quant.quantize(x, rng))
        out = quant.dequantize(acc)
        assert not np.allclose(out, 12.0, atol=0.5)

    def test_repr(self, gf):
        assert "levels" in repr(ModelQuantizer(gf))
