"""Tests for the two's-complement field embedding (paper eqs. 31/36)."""

import numpy as np
import pytest

from repro.exceptions import QuantizationError
from repro.quantization.twos_complement import from_field, headroom, to_field


class TestRoundTrip:
    def test_positive_negative_zero(self, gf_any):
        half = (gf_any.q - 1) // 2
        values = np.asarray([0, 1, -1, half, -half, 42, -42], dtype=np.int64)
        assert np.array_equal(from_field(gf_any, to_field(gf_any, values)), values)

    def test_negative_mapping(self, gf):
        out = to_field(gf, np.asarray([-3], dtype=np.int64))
        assert int(out[0]) == gf.q - 3

    def test_overflow_rejected(self, gf):
        half = (gf.q - 1) // 2
        with pytest.raises(QuantizationError, match="wrap-around"):
            to_field(gf, np.asarray([half + 1], dtype=np.int64))
        with pytest.raises(QuantizationError, match="wrap-around"):
            to_field(gf, np.asarray([-(half + 1)], dtype=np.int64))

    def test_floats_rejected(self, gf):
        with pytest.raises(QuantizationError, match="integers"):
            to_field(gf, np.asarray([1.5]))

    def test_empty(self, gf):
        out = to_field(gf, np.asarray([], dtype=np.int64))
        assert out.shape == (0,)


class TestFieldAdditionIsSignedAddition:
    def test_sum_of_signed_values(self, gf, rng):
        """Field-adding embedded values == integer addition while in range."""
        a = rng.integers(-1000, 1000, size=100)
        b = rng.integers(-1000, 1000, size=100)
        fa, fb = to_field(gf, a), to_field(gf, b)
        summed = gf.add(fa, fb)
        assert np.array_equal(from_field(gf, summed), a + b)

    def test_many_term_sum(self, gf, rng):
        terms = [rng.integers(-500, 500, size=20) for _ in range(50)]
        acc = gf.zeros(20)
        for t in terms:
            acc = gf.add(acc, to_field(gf, t))
        assert np.array_equal(from_field(gf, acc), sum(terms))


class TestHeadroom:
    def test_formula(self, gf):
        half = (gf.q - 1) // 2
        assert headroom(gf, 1000) == half // 1000

    def test_headroom_is_safe(self, gf):
        """Summing exactly `headroom` values at the bound must round-trip."""
        m = 10_000
        n = headroom(gf, m)
        total = n * m
        embedded = to_field(gf, np.asarray([m], dtype=np.int64))
        acc = gf.zeros(1)
        for _ in range(min(n, 1000)):  # cap the loop; check the max total directly
            acc = gf.add(acc, embedded)
        direct = to_field(gf, np.asarray([total], dtype=np.int64))
        assert int(from_field(gf, direct)[0]) == total

    def test_invalid_bound(self, gf):
        with pytest.raises(QuantizationError):
            headroom(gf, 0)
