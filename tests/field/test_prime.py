"""Tests for prime utilities."""

import pytest

from repro.exceptions import FieldError
from repro.field.prime import (
    DEFAULT_PRIME,
    MAX_UINT64_SAFE_MODULUS,
    PAPER_PRIME,
    is_prime,
    next_prime,
    previous_prime,
    validate_modulus,
)


class TestIsPrime:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 65537):
            assert is_prime(p)

    def test_small_composites(self):
        for n in (0, 1, 4, 6, 9, 15, 91, 65536):
            assert not is_prime(n)

    def test_default_prime_is_mersenne_31(self):
        assert DEFAULT_PRIME == 2**31 - 1
        assert is_prime(DEFAULT_PRIME)

    def test_paper_prime(self):
        assert PAPER_PRIME == 2**32 - 5
        assert is_prime(PAPER_PRIME)

    def test_carmichael_numbers_rejected(self):
        # Fermat pseudoprimes that fool naive tests.
        for n in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_prime(n)

    def test_large_semiprime_rejected(self):
        assert not is_prime(DEFAULT_PRIME * 3)

    def test_negative(self):
        assert not is_prime(-7)


class TestNextPreviousPrime:
    def test_next_prime(self):
        assert next_prime(1) == 2
        assert next_prime(2) == 3
        assert next_prime(14) == 17
        assert next_prime(2**31 - 2) == 2**31 - 1

    def test_previous_prime(self):
        assert previous_prime(3) == 2
        assert previous_prime(100) == 97
        assert previous_prime(2**32) == PAPER_PRIME

    def test_previous_prime_below_smallest(self):
        with pytest.raises(FieldError):
            previous_prime(2)

    def test_round_trip(self):
        p = 1009
        assert previous_prime(next_prime(p) + 1) == next_prime(p)


class TestValidateModulus:
    def test_accepts_valid(self):
        assert validate_modulus(97) == 97
        assert validate_modulus(DEFAULT_PRIME) == DEFAULT_PRIME
        assert validate_modulus(PAPER_PRIME) == PAPER_PRIME

    def test_rejects_composite(self):
        with pytest.raises(FieldError, match="not prime"):
            validate_modulus(100)

    def test_rejects_too_large(self):
        with pytest.raises(FieldError, match="too large"):
            validate_modulus(next_prime(MAX_UINT64_SAFE_MODULUS))

    def test_rejects_non_int(self):
        with pytest.raises(FieldError, match="int"):
            validate_modulus(97.0)

    def test_largest_safe_modulus_is_paper_prime(self):
        # No prime exists in (2^32 - 5, 2^32).
        assert previous_prime(MAX_UINT64_SAFE_MODULUS) == PAPER_PRIME
