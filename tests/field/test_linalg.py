"""Tests for Gauss-Jordan linear algebra over GF(q)."""

import numpy as np
import pytest

from repro.exceptions import FieldError, SingularMatrixError
from repro.field import FiniteField
from repro.field.linalg import det, inv, is_invertible, is_mds, rank, solve
from repro.field.vandermonde import distinct_points, vandermonde


class TestSolve:
    def test_solve_round_trip_vector(self, gf_any, rng):
        a = gf_any.random((8, 8), rng)
        x = gf_any.random(8, rng)
        b = gf_any.matvec(a, x)
        assert np.array_equal(solve(gf_any, a, b), x)

    def test_solve_round_trip_matrix_rhs(self, gf, rng):
        a = gf.random((5, 5), rng)
        x = gf.random((5, 3), rng)
        b = gf.matmul(a, x)
        assert np.array_equal(solve(gf, a, b), x)

    def test_solve_singular_raises(self, gf):
        a = gf.array([[1, 2], [2, 4]])  # rank 1
        with pytest.raises(SingularMatrixError):
            solve(gf, a, gf.array([1, 2]))

    def test_solve_non_square_raises(self, gf):
        with pytest.raises(FieldError):
            solve(gf, gf.zeros((2, 3)), gf.zeros(2))

    def test_solve_rhs_mismatch_raises(self, gf):
        with pytest.raises(FieldError):
            solve(gf, gf.ones((2, 2)), gf.zeros(3))

    def test_solve_identity(self, gf, rng):
        eye = gf.array(np.eye(4, dtype=np.int64))
        b = gf.random(4, rng)
        assert np.array_equal(solve(gf, eye, b), b)


class TestInv:
    def test_inverse_round_trip(self, gf_any, rng):
        a = gf_any.random((6, 6), rng)
        ia = inv(gf_any, a)
        eye = np.eye(6, dtype=np.uint64)
        assert np.array_equal(gf_any.matmul(a, ia), eye)
        assert np.array_equal(gf_any.matmul(ia, a), eye)

    def test_inverse_of_inverse(self, gf, rng):
        a = gf.random((4, 4), rng)
        assert np.array_equal(inv(gf, inv(gf, a)), a)

    def test_singular_raises(self, gf):
        with pytest.raises(SingularMatrixError):
            inv(gf, gf.zeros((3, 3)))

    def test_scalar_matrix(self, gf):
        a = gf.array([[5]])
        assert int(inv(gf, a)[0, 0]) == pow(5, gf.q - 2, gf.q)


class TestDetRank:
    def test_det_identity(self, gf):
        assert det(gf, gf.array(np.eye(5, dtype=np.int64))) == 1

    def test_det_singular_zero(self, gf):
        assert det(gf, gf.array([[1, 2], [2, 4]])) == 0

    def test_det_2x2_formula(self, gf_small, rng):
        for _ in range(20):
            a = gf_small.random((2, 2), rng)
            expected = (
                int(a[0, 0]) * int(a[1, 1]) - int(a[0, 1]) * int(a[1, 0])
            ) % gf_small.q
            assert det(gf_small, a) == expected

    def test_det_multiplicative(self, gf_small, rng):
        a = gf_small.random((3, 3), rng)
        b = gf_small.random((3, 3), rng)
        lhs = det(gf_small, gf_small.matmul(a, b))
        rhs = det(gf_small, a) * det(gf_small, b) % gf_small.q
        assert lhs == rhs

    def test_det_row_swap_flips_sign(self, gf_small, rng):
        a = gf_small.random((3, 3), rng)
        while det(gf_small, a) == 0:
            a = gf_small.random((3, 3), rng)
        swapped = a.copy()
        swapped[[0, 1]] = swapped[[1, 0]]
        assert det(gf_small, swapped) == (-det(gf_small, a)) % gf_small.q

    def test_rank_full(self, gf, rng):
        a = gf.random((5, 5), rng)
        assert rank(gf, a) == 5  # random matrices are a.s. full rank

    def test_rank_deficient(self, gf):
        a = gf.array([[1, 2, 3], [2, 4, 6], [0, 0, 1]])
        assert rank(gf, a) == 2

    def test_rank_rectangular(self, gf, rng):
        a = gf.random((3, 7), rng)
        assert rank(gf, a) == 3

    def test_is_invertible(self, gf):
        assert is_invertible(gf, gf.array([[1, 1], [0, 1]]))
        assert not is_invertible(gf, gf.array([[1, 1], [1, 1]]))


class TestIsMds:
    def test_vandermonde_is_mds(self, gf):
        pts = distinct_points(gf, 6)
        v = vandermonde(gf, pts, 3)
        assert is_mds(gf, v)

    def test_matrix_with_zero_column_not_mds(self, gf):
        pts = distinct_points(gf, 5)
        v = vandermonde(gf, pts, 3).copy()
        v[:, 2] = 0
        assert not is_mds(gf, v)

    def test_tall_matrix_rejected(self, gf):
        with pytest.raises(FieldError):
            is_mds(gf, gf.zeros((4, 2)))
