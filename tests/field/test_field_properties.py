"""Property-based tests of the field axioms (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field import DEFAULT_PRIME, PAPER_PRIME, FiniteField

FIELDS = [FiniteField(DEFAULT_PRIME), FiniteField(PAPER_PRIME), FiniteField(97)]

field_st = st.sampled_from(FIELDS)
elem_st = st.integers(min_value=0, max_value=2**40)
vec_st = st.lists(elem_st, min_size=1, max_size=16)


@given(field_st, vec_st, vec_st)
@settings(max_examples=60, deadline=None)
def test_addition_commutes(gf, xs, ys):
    n = min(len(xs), len(ys))
    a, b = gf.array(xs[:n]), gf.array(ys[:n])
    assert np.array_equal(gf.add(a, b), gf.add(b, a))


@given(field_st, vec_st, vec_st, vec_st)
@settings(max_examples=60, deadline=None)
def test_addition_associates(gf, xs, ys, zs):
    n = min(len(xs), len(ys), len(zs))
    a, b, c = gf.array(xs[:n]), gf.array(ys[:n]), gf.array(zs[:n])
    assert np.array_equal(gf.add(gf.add(a, b), c), gf.add(a, gf.add(b, c)))


@given(field_st, vec_st)
@settings(max_examples=60, deadline=None)
def test_additive_inverse(gf, xs):
    a = gf.array(xs)
    assert np.all(gf.add(a, gf.neg(a)) == 0)


@given(field_st, vec_st, vec_st)
@settings(max_examples=60, deadline=None)
def test_multiplication_commutes(gf, xs, ys):
    n = min(len(xs), len(ys))
    a, b = gf.array(xs[:n]), gf.array(ys[:n])
    assert np.array_equal(gf.mul(a, b), gf.mul(b, a))


@given(field_st, vec_st, vec_st, vec_st)
@settings(max_examples=60, deadline=None)
def test_distributivity(gf, xs, ys, zs):
    n = min(len(xs), len(ys), len(zs))
    a, b, c = gf.array(xs[:n]), gf.array(ys[:n]), gf.array(zs[:n])
    lhs = gf.mul(a, gf.add(b, c))
    rhs = gf.add(gf.mul(a, b), gf.mul(a, c))
    assert np.array_equal(lhs, rhs)


@given(field_st, vec_st)
@settings(max_examples=60, deadline=None)
def test_multiplicative_inverse(gf, xs):
    a = gf.array(xs)
    nz = a[a != 0]
    if nz.size:
        assert np.all(gf.mul(nz, gf.inv(nz)) == 1)


@given(field_st, vec_st)
@settings(max_examples=60, deadline=None)
def test_sub_is_add_neg(gf, xs):
    a = gf.array(xs)
    b = gf.array(list(reversed(xs)))
    assert np.array_equal(gf.sub(a, b), gf.add(a, gf.neg(b)))


@given(field_st, st.integers(0, 2**40), st.integers(0, 50))
@settings(max_examples=60, deadline=None)
def test_pow_matches_python_pow(gf, base, exp):
    out = gf.pow(gf.array([base]), exp)
    assert int(out[0]) == pow(base % gf.q, exp, gf.q)


@given(field_st, vec_st)
@settings(max_examples=60, deadline=None)
def test_signed_embedding_round_trip(gf, xs):
    half = (gf.q - 1) // 2
    signed = np.asarray([x % (2 * half + 1) - half for x in xs], dtype=np.int64)
    assert np.array_equal(gf.to_signed(gf.array(signed)), signed)
