"""Property suite for the division-free reduction kernels.

Every reducer is checked against the ``np.mod`` integer-division oracle
over adversarial uint64 inputs — full-range random words, ``(q-1)**2``
boundary products, empty arrays, non-contiguous views — for moduli
covering the Mersenne default, small primes, and primes just below
``2**32`` (where lazy batching historically degraded to one division
per rank-1 term).  A second group pins the cross-reducer bit-identity
contract on the composite kernels (matmul, encode_batch) and the
single-pass negative-exponent ``pow``.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.mask_encoding import MaskEncoder
from repro.exceptions import FieldError
from repro.field import (
    DEFAULT_PRIME,
    PAPER_PRIME,
    REDUCER_ENV,
    BarrettReducer,
    FiniteField,
    MersenneReducer,
    NumpyModReducer,
    available_reducer_kinds,
    mersenne_exponent,
    select_reducer,
)

# Mersenne default, small primes (incl. small Mersennes 127 = 2**7-1 and
# 8191 = 2**13-1), and two primes just below 2**32.
MODULI = [DEFAULT_PRIME, 3, 97, 127, 8191, 65537, 4294967279, PAPER_PRIME]

U64_MAX = (1 << 64) - 1


def reducers_for(q):
    return [select_reducer(q, kind) for kind in available_reducer_kinds(q)]


def oracle(x, q):
    return np.mod(np.asarray(x, dtype=np.uint64), np.uint64(q))


# ---------------------------------------------------------------------------
# reduce() vs the oracle
# ---------------------------------------------------------------------------
class TestReduceVsOracle:
    @pytest.mark.parametrize("q", MODULI)
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_random_uint64_inputs(self, q, data):
        words = data.draw(
            st.lists(st.integers(0, U64_MAX), min_size=0, max_size=64)
        )
        x = np.asarray(words, dtype=np.uint64)
        want = oracle(x, q)
        for red in reducers_for(q):
            got = red.reduce(x)
            assert np.array_equal(got, want), red.kind

    @pytest.mark.parametrize("q", MODULI)
    def test_boundary_values(self, q):
        boundary = [
            0, 1, q - 1, q, q + 1, 2 * q - 1, 2 * q,
            (q - 1) ** 2,            # max raw product of residues
            (q - 1) ** 2 + q - 1,    # product plus a residue
            (U64_MAX // max(1, (q - 1) ** 2)) * (q - 1) ** 2,  # max lazy batch
            U64_MAX - 1, U64_MAX,
        ]
        x = np.asarray(boundary, dtype=np.uint64)
        want = oracle(x, q)
        for red in reducers_for(q):
            assert np.array_equal(red.reduce(x), want), red.kind

    @pytest.mark.parametrize("q", MODULI)
    def test_empty_and_noncontiguous(self, q):
        rng = np.random.default_rng(7)
        base = rng.integers(0, U64_MAX, size=101, dtype=np.uint64)
        views = [
            np.empty(0, dtype=np.uint64),
            base[::2],
            base[::-1],
            base[:100].reshape(10, 10).T,
            base[:96].reshape(4, 4, 6)[:, 1:3, ::2],
        ]
        for x in views:
            want = oracle(x, q)
            for red in reducers_for(q):
                got = red.reduce(x)
                assert got.shape == want.shape
                assert np.array_equal(got, want), red.kind

    @pytest.mark.parametrize("q", MODULI)
    def test_scalar_inputs_match_np_mod(self, q):
        for value in (0, q - 1, q, (q - 1) ** 2, U64_MAX):
            want = np.mod(np.uint64(value), np.uint64(q))
            for red in reducers_for(q):
                got = red.reduce(np.uint64(value))
                assert got == want, red.kind

    @pytest.mark.parametrize("q", MODULI)
    def test_reduce_does_not_mutate_input(self, q):
        rng = np.random.default_rng(3)
        x = rng.integers(0, U64_MAX, size=64, dtype=np.uint64)
        keep = x.copy()
        for red in reducers_for(q):
            red.reduce(x)
            assert np.array_equal(x, keep), red.kind

    @pytest.mark.parametrize("q", MODULI)
    def test_reduce_out_aliasing_input(self, q):
        rng = np.random.default_rng(4)
        for red in reducers_for(q):
            x = rng.integers(0, U64_MAX, size=64, dtype=np.uint64)
            want = oracle(x, q)
            got = red.reduce(x, out=x)
            assert np.array_equal(got, want), red.kind
            assert np.array_equal(x, want), red.kind


# ---------------------------------------------------------------------------
# fold() / reduce_semi() contracts
# ---------------------------------------------------------------------------
class TestPartialReduction:
    @pytest.mark.parametrize("q", MODULI)
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_fold_is_congruent_and_bounded(self, q, data):
        words = data.draw(
            st.lists(st.integers(0, U64_MAX), min_size=1, max_size=32)
        )
        x = np.asarray(words, dtype=np.uint64)
        for red in reducers_for(q):
            folded = red.fold(x)
            assert np.all(folded <= np.uint64(red.fold_max)), red.kind
            assert np.array_equal(oracle(folded, q), oracle(x, q)), red.kind

    @pytest.mark.parametrize("q", MODULI)
    def test_fold_leaves_room_for_a_product(self, q):
        # The lazy-accumulation invariant: after a fold, at least one
        # more raw product of residues fits without uint64 overflow.
        for red in reducers_for(q):
            assert red.fold_max + (q - 1) ** 2 <= U64_MAX, red.kind
            assert red.lazy_terms(after_fold=True) >= 1, red.kind

    @pytest.mark.parametrize("q", MODULI)
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_fold_bound_is_sound(self, q, data):
        # fold_bound(x_max) must dominate fold(x) for every x <= x_max;
        # the limb-split matmul relies on this to prove overflow safety.
        x_max = data.draw(st.integers(0, U64_MAX))
        words = data.draw(
            st.lists(st.integers(0, x_max), min_size=1, max_size=32)
        )
        x = np.asarray(words, dtype=np.uint64)
        for red in reducers_for(q):
            bound = red.fold_bound(x_max)
            assert bound <= red.fold_max, red.kind
            assert np.all(red.fold(x) <= np.uint64(bound)), red.kind

    @pytest.mark.parametrize("q", MODULI)
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_reduce_bounded_matches_oracle(self, q, data):
        # reduce_bounded must be a full reduction for any declared bound
        # covering its inputs, whichever fold/semi chain it picks.
        x_max = data.draw(st.integers(0, U64_MAX))
        words = data.draw(
            st.lists(st.integers(0, x_max), min_size=0, max_size=32)
        )
        x = np.asarray(words, dtype=np.uint64)
        want = oracle(x, q)
        for red in reducers_for(q):
            assert np.array_equal(red.reduce_bounded(x, x_max), want), red.kind
            out = np.empty_like(x)
            red.reduce_bounded(x, x_max, out=out)
            assert np.array_equal(out, want), red.kind

    @pytest.mark.parametrize("q", MODULI)
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_reduce_semi_below_2q(self, q, data):
        words = data.draw(
            st.lists(st.integers(0, 2 * q - 1), min_size=0, max_size=32)
        )
        x = np.asarray(words, dtype=np.uint64)
        want = oracle(x, q)
        for red in reducers_for(q):
            assert np.array_equal(red.reduce_semi(x), want), red.kind


# ---------------------------------------------------------------------------
# selection
# ---------------------------------------------------------------------------
class TestSelection:
    def test_auto_picks_mersenne_for_mersenne_primes(self):
        assert isinstance(select_reducer(DEFAULT_PRIME), MersenneReducer)
        assert isinstance(select_reducer(8191), MersenneReducer)

    def test_auto_picks_barrett_otherwise(self):
        assert isinstance(select_reducer(PAPER_PRIME), BarrettReducer)
        assert isinstance(select_reducer(97), BarrettReducer)

    def test_mersenne_exponent(self):
        assert mersenne_exponent(DEFAULT_PRIME) == 31
        assert mersenne_exponent(127) == 7
        assert mersenne_exponent(97) is None

    def test_explicit_kind_wins(self):
        assert isinstance(
            select_reducer(DEFAULT_PRIME, "numpy_mod"), NumpyModReducer
        )
        assert isinstance(select_reducer(DEFAULT_PRIME, "barrett"), BarrettReducer)

    def test_mersenne_on_general_modulus_raises(self):
        with pytest.raises(FieldError, match="2\\*\\*k - 1"):
            select_reducer(97, "mersenne")

    def test_unknown_kind_raises(self):
        with pytest.raises(FieldError, match="unknown reducer"):
            select_reducer(97, "montgomery")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(REDUCER_ENV, "numpy_mod")
        gf = FiniteField()
        assert gf.reducer.kind == "numpy_mod"
        # Explicit constructor argument beats the environment.
        assert FiniteField(reducer="auto").reducer.kind == "mersenne"

    def test_env_auto_and_unset(self, monkeypatch):
        monkeypatch.setenv(REDUCER_ENV, "auto")
        assert FiniteField().reducer.kind == "mersenne"
        monkeypatch.delenv(REDUCER_ENV)
        assert FiniteField(PAPER_PRIME).reducer.kind == "barrett"

    def test_repr_names_kernel(self):
        assert "mersenne" in repr(FiniteField())
        assert "barrett" in repr(FiniteField(PAPER_PRIME))

    def test_available_kinds(self):
        assert available_reducer_kinds(DEFAULT_PRIME) == (
            "mersenne", "barrett", "numpy_mod",
        )
        assert available_reducer_kinds(PAPER_PRIME) == ("barrett", "numpy_mod")


# ---------------------------------------------------------------------------
# cross-reducer bit-identity of the composite kernels
# ---------------------------------------------------------------------------
class TestBitIdentityAcrossReducers:
    @pytest.mark.parametrize("q", [DEFAULT_PRIME, 97, 65537, PAPER_PRIME])
    def test_matmul_byte_equal(self, q):
        rng = np.random.default_rng(11)
        fields = [FiniteField(q, reducer=k) for k in available_reducer_kinds(q)]
        a = fields[0].random((9, 21), rng)
        b = fields[0].random((21, 333), rng)
        results = [gf.matmul(a, b) for gf in fields]
        baseline = results[-1]  # numpy_mod oracle is always last
        for gf, got in zip(fields, results):
            assert got.tobytes() == baseline.tobytes(), gf.reducer.kind

    @pytest.mark.parametrize("q", [DEFAULT_PRIME, PAPER_PRIME])
    def test_matmul_worst_case_residues(self, q):
        # All-(q-1) operands maximize every raw product and every lazy
        # accumulator along both kernels' fold/batch boundaries.
        for k in (1, 2, 5, 33, 48, 97):
            a = np.full((3, k), q - 1, dtype=np.uint64)
            b = np.full((k, 4), q - 1, dtype=np.uint64)
            expected = (k * (q - 1) ** 2) % q
            for kind in available_reducer_kinds(q):
                gf = FiniteField(q, reducer=kind)
                out = gf.matmul(a, b)
                assert np.all(out.astype(object) == expected), (kind, k)

    @pytest.mark.parametrize("q", [DEFAULT_PRIME, PAPER_PRIME])
    def test_encode_batch_byte_equal(self, q):
        results = {}
        for kind in available_reducer_kinds(q):
            gf = FiniteField(q, reducer=kind)
            enc = MaskEncoder(
                gf, num_users=8, target_survivors=6, privacy=2, model_dim=100
            )
            masks = gf.random((5, 100), np.random.default_rng(23))
            coded = enc.encode_batch(masks, np.random.default_rng(29))
            results[kind] = coded
        baseline = results["numpy_mod"]
        for kind, coded in results.items():
            assert coded.tobytes() == baseline.tobytes(), kind

    def test_near_2exp32_runs_batched_lazy_path(self):
        # The acceptance case: a modulus near 2**32 must take the
        # division-free batched path (fold-based accumulation), not the
        # per-term-division branch, and still match the oracle exactly.
        gf = FiniteField(PAPER_PRIME)
        assert gf.reducer.division_free
        assert gf.reducer.lazy_terms(after_fold=True) >= 1
        rng = np.random.default_rng(5)
        a = gf.random((16, 48), rng)
        b = gf.random((48, 2048), rng)
        oracle_gf = FiniteField(PAPER_PRIME, reducer="numpy_mod")
        assert np.array_equal(gf.matmul(a, b), oracle_gf.matmul(a, b))


# ---------------------------------------------------------------------------
# pow negative-exponent regression (single-pass exponent mapping)
# ---------------------------------------------------------------------------
class TestPowNegativeExponent:
    @pytest.mark.parametrize("q", [DEFAULT_PRIME, 97, PAPER_PRIME])
    def test_pow_negative_matches_inv_of_pow(self, q):
        gf = FiniteField(q)
        rng = np.random.default_rng(13)
        a = gf.array(rng.integers(1, q, 32))
        for e in (1, 2, 3, 7, 31, q - 2, q - 1, q, 2 * q + 5):
            assert np.array_equal(gf.pow(a, -e), gf.inv(gf.pow(a, e))), e

    def test_pow_negative_zero_base_raises(self):
        gf = FiniteField()
        with pytest.raises(FieldError, match="inverse"):
            gf.pow([0, 1], -3)

    def test_pow_exponent_multiple_of_group_order(self):
        # a**-(q-1) == a**(q-1) == 1 for every nonzero a (Fermat).
        gf = FiniteField(97)
        a = gf.array(np.arange(1, 97))
        assert np.all(gf.pow(a, -(gf.q - 1)) == 1)
        assert np.all(gf.pow(a, gf.q - 1) == 1)
