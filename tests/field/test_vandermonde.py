"""Tests for Vandermonde matrices and Lagrange interpolation."""

import numpy as np
import pytest

from repro.exceptions import FieldError
from repro.field.vandermonde import (
    distinct_points,
    interpolate,
    lagrange_coeffs,
    vandermonde,
)


class TestDistinctPoints:
    def test_basic(self, gf):
        pts = distinct_points(gf, 5)
        assert pts.tolist() == [1, 2, 3, 4, 5]

    def test_start_offset(self, gf):
        assert distinct_points(gf, 3, start=10).tolist() == [10, 11, 12]

    def test_field_too_small(self, gf_small):
        with pytest.raises(FieldError):
            distinct_points(gf_small, 97)

    def test_negative_count(self, gf):
        with pytest.raises(FieldError):
            distinct_points(gf, -1)


class TestVandermonde:
    def test_shape_and_entries(self, gf):
        v = vandermonde(gf, [2, 3], 3)
        assert v.shape == (3, 2)
        assert v[:, 0].tolist() == [1, 2, 4]
        assert v[:, 1].tolist() == [1, 3, 9]

    def test_duplicate_points_rejected(self, gf):
        with pytest.raises(FieldError, match="distinct"):
            vandermonde(gf, [1, 1, 2], 2)

    def test_evaluation_equivalence(self, gf, rng):
        """V.T @ coeffs evaluates the polynomial at the points."""
        coeffs = gf.random(4, rng)
        pts = distinct_points(gf, 6)
        v = vandermonde(gf, pts, 4)
        values = gf.matvec(v.T.copy(), coeffs)
        for p, val in zip(pts.tolist(), values.tolist()):
            expected = 0
            for k, c in enumerate(coeffs.tolist()):
                expected = (expected + c * pow(p, k, gf.q)) % gf.q
            assert val == expected


class TestLagrange:
    def test_coeffs_identity_at_sample_points(self, gf):
        s = distinct_points(gf, 4)
        coeffs = lagrange_coeffs(gf, s, s)
        assert np.array_equal(coeffs, np.eye(4, dtype=np.uint64))

    def test_coeffs_rows_sum_to_one(self, gf, rng):
        """Interpolating the constant-1 polynomial reproduces 1 anywhere."""
        s = distinct_points(gf, 5)
        e = distinct_points(gf, 7, start=100)
        coeffs = lagrange_coeffs(gf, s, e)
        row_sums = gf.sum(coeffs, axis=1)
        assert np.all(row_sums == 1)

    def test_duplicate_sample_points_rejected(self, gf):
        with pytest.raises(FieldError, match="distinct"):
            lagrange_coeffs(gf, [1, 1], [5])

    def test_interpolate_recovers_polynomial(self, gf_any, rng):
        """Sampling then re-evaluating anywhere matches direct evaluation."""
        q = gf_any.q
        coeffs = [int(c) for c in gf_any.random(4, rng).tolist()]

        def poly(x: int) -> int:
            return sum(c * pow(x, k, q) for k, c in enumerate(coeffs)) % q

        sample_pts = [3, 7, 11, 19]
        samples = gf_any.array([poly(x) for x in sample_pts])
        eval_pts = [1, 30, 55]
        values = interpolate(gf_any, sample_pts, samples, eval_pts)
        assert values.tolist() == [poly(x) for x in eval_pts]

    def test_interpolate_matrix_samples(self, gf, rng):
        """Column-wise interpolation of several polynomials at once."""
        width = 5
        sample_pts = distinct_points(gf, 3)
        samples = gf.random((3, width), rng)
        eval_pts = distinct_points(gf, 2, start=50)
        out = interpolate(gf, sample_pts, samples, eval_pts)
        assert out.shape == (2, width)
        for j in range(width):
            col = interpolate(gf, sample_pts, samples[:, j], eval_pts)
            assert np.array_equal(out[:, j], col)

    def test_round_trip_through_different_basis(self, gf, rng):
        """Encode at alpha points, decode back to beta points."""
        beta = distinct_points(gf, 4)
        alpha = distinct_points(gf, 9, start=10)
        data = gf.random(4, rng)
        coded = interpolate(gf, beta, data, alpha)
        chosen = [1, 3, 4, 7]
        back = interpolate(
            gf, alpha[chosen], coded[chosen], beta
        )
        assert np.array_equal(back, data)
