"""Tests for vectorized GF(q) arithmetic."""

import numpy as np
import pytest

from repro.exceptions import FieldError
from repro.field import FiniteField


class TestConstruction:
    def test_array_reduces(self, gf_any):
        arr = gf_any.array([0, 1, gf_any.q, gf_any.q + 5])
        assert arr.tolist() == [0, 1, 0, 5]
        assert arr.dtype == np.uint64

    def test_array_negative_values(self, gf_any):
        arr = gf_any.array([-1, -2])
        assert arr.tolist() == [gf_any.q - 1, gf_any.q - 2]

    def test_array_rejects_floats(self, gf):
        with pytest.raises(FieldError, match="integers"):
            gf.array(np.asarray([1.5, 2.5]))

    def test_zeros_ones(self, gf):
        assert gf.zeros(3).tolist() == [0, 0, 0]
        assert gf.ones((2, 2)).tolist() == [[1, 1], [1, 1]]

    def test_is_valid(self, gf):
        assert gf.is_valid(gf.array([1, 2, 3]))
        assert not gf.is_valid(np.asarray([1, 2, 3]))  # wrong dtype
        bad = np.asarray([gf.q], dtype=np.uint64)
        assert not gf.is_valid(bad)

    def test_equality_and_hash(self):
        assert FiniteField(97) == FiniteField(97)
        assert FiniteField(97) != FiniteField(101)
        assert hash(FiniteField(97)) == hash(FiniteField(97))

    def test_repr(self, gf):
        assert "2147483647" in repr(gf)


class TestElementwiseOps:
    def test_add_wraps(self, gf_any):
        q = gf_any.q
        out = gf_any.add([q - 1], [1])
        assert out.tolist() == [0]

    def test_sub_wraps(self, gf_any):
        out = gf_any.sub([0], [1])
        assert out.tolist() == [gf_any.q - 1]

    def test_neg(self, gf_any):
        assert gf_any.neg([0]).tolist() == [0]
        assert gf_any.neg([1]).tolist() == [gf_any.q - 1]

    def test_mul_max_operands_exact(self, gf_any):
        """The critical overflow case: (q-1)^2 must be exact in uint64."""
        q = gf_any.q
        out = gf_any.mul([q - 1], [q - 1])
        assert out.tolist() == [pow(q - 1, 2, q)]

    def test_mul_matches_python_pow(self, gf_any, rng):
        a = gf_any.random(100, rng)
        b = gf_any.random(100, rng)
        out = gf_any.mul(a, b)
        for ai, bi, oi in zip(a.tolist(), b.tolist(), out.tolist()):
            assert oi == ai * bi % gf_any.q

    def test_pow_matches_python(self, gf_any, rng):
        a = gf_any.random(20, rng)
        for e in (0, 1, 2, 7, 31):
            out = gf_any.pow(a, e)
            for ai, oi in zip(a.tolist(), out.tolist()):
                assert oi == pow(ai, e, gf_any.q)

    def test_pow_negative_exponent(self, gf, rng):
        a = gf.array(rng.integers(1, gf.q, 10))
        assert np.array_equal(gf.pow(a, -1), gf.inv(a))
        assert np.array_equal(gf.pow(a, -2), gf.inv(gf.mul(a, a)))

    def test_inv(self, gf_any, rng):
        a = gf_any.array(rng.integers(1, gf_any.q, 50))
        inv = gf_any.inv(a)
        assert np.all(gf_any.mul(a, inv) == 1)

    def test_inv_zero_raises(self, gf_any):
        with pytest.raises(FieldError, match="inverse"):
            gf_any.inv([0])

    def test_div(self, gf, rng):
        a = gf.random(20, rng)
        b = gf.array(rng.integers(1, gf.q, 20))
        assert np.array_equal(gf.mul(gf.div(a, b), b), a)

    def test_broadcasting(self, gf):
        mat = gf.array([[1, 2], [3, 4]])
        out = gf.mul(mat, 2)
        assert out.tolist() == [[2, 4], [6, 8]]


class TestReductions:
    def test_sum_scalar(self, gf_any, rng):
        a = gf_any.random(1000, rng)
        assert int(gf_any.sum(a)) == sum(a.tolist()) % gf_any.q

    def test_sum_axis(self, gf, rng):
        a = gf.random((4, 5), rng)
        col = gf.sum(a, axis=0)
        expected = [sum(a[:, j].tolist()) % gf.q for j in range(5)]
        assert col.tolist() == expected

    def test_dot(self, gf_any, rng):
        a = gf_any.random(64, rng)
        b = gf_any.random(64, rng)
        expected = sum(x * y for x, y in zip(a.tolist(), b.tolist())) % gf_any.q
        assert int(gf_any.dot(a, b)) == expected

    def test_dot_shape_mismatch(self, gf):
        with pytest.raises(FieldError):
            gf.dot(gf.zeros(3), gf.zeros(4))

    def test_matmul_identity(self, gf, rng):
        a = gf.random((6, 6), rng)
        eye = gf.array(np.eye(6, dtype=np.int64))
        assert np.array_equal(gf.matmul(a, eye), a)

    def test_matmul_matches_naive(self, gf_any, rng):
        a = gf_any.random((3, 4), rng)
        b = gf_any.random((4, 2), rng)
        out = gf_any.matmul(a, b)
        q = gf_any.q
        for i in range(3):
            for j in range(2):
                expected = sum(
                    int(a[i, k]) * int(b[k, j]) for k in range(4)
                ) % q
                assert int(out[i, j]) == expected

    def test_matmul_large_contraction_chunked(self, gf_paper, rng):
        """Exercise the chunked accumulation path (k > 4096)."""
        k = 5000
        a = gf_paper.random((2, k), rng)
        b = gf_paper.random((k, 2), rng)
        out = gf_paper.matmul(a, b)
        expected = sum(int(a[0, i]) * int(b[i, 0]) for i in range(k)) % gf_paper.q
        assert int(out[0, 0]) == expected

    def test_matmul_shape_errors(self, gf):
        with pytest.raises(FieldError):
            gf.matmul(gf.zeros((2, 3)), gf.zeros((2, 3)))

    def test_matmul_width_blocking_is_invisible(self, gf_any, rng):
        """Results are identical whichever width-block size is in effect."""
        a = gf_any.random((5, 17), rng)
        b = gf_any.random((17, 64), rng)
        want = gf_any.matmul(a, b)
        old_block = type(gf_any).MATMUL_BLOCK_ELEMS
        old_f64_block = type(gf_any).MATMUL_F64_BLOCK_ELEMS
        try:
            # Force many tiny blocks (width 1 per block at m=5) on both
            # the legacy and the limb-split kernels.
            type(gf_any).MATMUL_BLOCK_ELEMS = 5
            type(gf_any).MATMUL_F64_BLOCK_ELEMS = 5
            got = gf_any.matmul(a, b)
        finally:
            type(gf_any).MATMUL_BLOCK_ELEMS = old_block
            type(gf_any).MATMUL_F64_BLOCK_ELEMS = old_f64_block
        assert np.array_equal(got, want)

    def test_matmul_lazy_reduction_spans_batches(self, gf_any, rng):
        """k across several lazy-reduction batches, worst-case residues.

        All-(q-1) operands maximize every raw product, pinning the
        accumulate-then-reduce bound; compare against exact object math.
        """
        k = 19  # not a multiple of any lazy batch size in use
        a = np.full((3, k), gf_any.q - 1, dtype=np.uint64)
        b = np.full((k, 4), gf_any.q - 1, dtype=np.uint64)
        out = gf_any.matmul(a, b)
        expected = (k * (gf_any.q - 1) ** 2) % gf_any.q
        assert np.all(out.astype(object) == expected)

    def test_matvec(self, gf, rng):
        a = gf.random((4, 6), rng)
        x = gf.random(6, rng)
        assert np.array_equal(gf.matvec(a, x), gf.matmul(a, x[:, None])[:, 0])

    def test_matvec_requires_vector(self, gf):
        with pytest.raises(FieldError):
            gf.matvec(gf.zeros((2, 2)), gf.zeros((2, 2)))


class TestSignedEmbedding:
    def test_to_signed_round_trip(self, gf_any):
        half = (gf_any.q - 1) // 2
        values = np.asarray([-half, -1, 0, 1, half], dtype=np.int64)
        embedded = gf_any.array(values)
        assert np.array_equal(gf_any.to_signed(embedded), values)

    def test_random_uniform_range(self, gf, rng):
        a = gf.random(10_000, rng)
        assert a.min() >= 0 and a.max() < gf.q
        # Crude uniformity check: the mean should be near q/2.
        assert abs(float(a.mean()) / gf.q - 0.5) < 0.02
