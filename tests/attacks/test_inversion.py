"""Tests for the gradient-inversion attack and its defeat by aggregation."""

import numpy as np
import pytest

from repro.attacks import (
    attack_success,
    invert_logistic_gradient,
    logistic_gradient,
)
from repro.exceptions import ReproError


@pytest.fixture
def problem(rng):
    in_dim, classes = 32, 5
    weights = rng.normal(0, 0.1, size=(in_dim, classes))
    bias = np.zeros(classes)
    x = rng.normal(0, 1, size=in_dim)
    y = 3
    return x, y, weights, bias


class TestAttackOnIndividualGradient:
    def test_exact_reconstruction(self, problem):
        x, y, w, b = problem
        gw, gb = logistic_gradient(x, y, w, b)
        result = invert_logistic_gradient(gw, gb, true_input=x)
        assert result.recovered_label == y
        assert attack_success(result)
        # Up to scale: reconstruction is exactly proportional to x.
        assert result.cosine_similarity > 0.9999

    def test_label_recovery_all_classes(self, rng):
        w = rng.normal(0, 0.1, size=(16, 4))
        b = np.zeros(4)
        for y in range(4):
            x = rng.normal(size=16)
            gw, gb = logistic_gradient(x, y, w, b)
            assert invert_logistic_gradient(gw, gb).recovered_label == y

    def test_shape_validation(self):
        with pytest.raises(ReproError):
            invert_logistic_gradient(np.zeros((3, 2)), np.zeros(3))

    def test_rejects_non_single_example_gradient(self, rng):
        with pytest.raises(ReproError, match="negative"):
            invert_logistic_gradient(np.zeros((4, 3)), np.ones(3))


class TestAggregationDefeatsAttack:
    def test_aggregated_gradient_resists(self, rng):
        """The paper's motivation in reverse: an aggregate of many users'
        gradients does not reveal any single user's input."""
        in_dim, classes, users = 32, 5, 30
        w = rng.normal(0, 0.1, size=(in_dim, classes))
        b = np.zeros(classes)
        inputs = [rng.normal(size=in_dim) for _ in range(users)]
        labels = rng.integers(0, classes, users)
        agg_w = np.zeros_like(w)
        agg_b = np.zeros_like(b)
        for x, y in zip(inputs, labels):
            gw, gb = logistic_gradient(x, int(y), w, b)
            agg_w += gw
            agg_b += gb
        result = invert_logistic_gradient(agg_w, agg_b, true_input=inputs[0])
        assert not attack_success(result)
        assert abs(result.cosine_similarity) < 0.7

    def test_success_threshold(self, problem):
        x, y, w, b = problem
        gw, gb = logistic_gradient(x, y, w, b)
        res = invert_logistic_gradient(gw, gb, true_input=x)
        assert attack_success(res, threshold=0.99)
        assert not attack_success(res, threshold=1.1)
