"""Tests for the public verification helpers."""

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.protocols import LightSecAgg, LSAParams, NaiveAggregation, SecAgg
from repro.testing import (
    assert_exact_aggregate,
    assert_field_vector,
    chi_square_uniformity,
    make_random_updates,
    run_and_verify,
)


class TestMakeUpdates:
    def test_shape_and_range(self, gf, rng):
        updates = make_random_updates(gf, 5, 16, rng)
        assert set(updates) == set(range(5))
        for u in updates.values():
            assert u.shape == (16,)
            assert int(u.max()) < gf.q


class TestFieldVectorAssert:
    def test_accepts_valid(self, gf, rng):
        assert_field_vector(gf, gf.random(8, rng), 8)

    def test_rejects_wrong_shape(self, gf):
        with pytest.raises(ReproError, match="shape"):
            assert_field_vector(gf, gf.zeros(7), 8)

    def test_rejects_wrong_dtype(self, gf):
        with pytest.raises(ReproError, match="uint64"):
            assert_field_vector(gf, np.zeros(8), 8)

    def test_rejects_out_of_field(self, gf):
        bad = np.full(8, gf.q, dtype=np.uint64)
        with pytest.raises(ReproError, match="modulus"):
            assert_field_vector(gf, bad, 8)


class TestRunAndVerify:
    def test_all_protocols(self, gf):
        params = LSAParams.from_guarantees(6, 2, 2)
        for proto in (
            LightSecAgg(gf, params, 12),
            SecAgg(gf, 6, 12),
            NaiveAggregation(gf, 6, 12),
        ):
            result = run_and_verify(proto, 12, dropouts={1},
                                    rng=np.random.default_rng(0))
            assert result.survivors == [0, 2, 3, 4, 5]

    def test_detects_corruption(self, gf, rng):
        proto = NaiveAggregation(gf, 4, 8)
        updates = make_random_updates(gf, 4, 8, rng)
        result = proto.run_round(updates, set(), rng)
        result.aggregate[0] = (result.aggregate[0] + np.uint64(1)) % np.uint64(gf.q)
        with pytest.raises(ReproError, match="mismatch"):
            assert_exact_aggregate(proto, result, updates)


class TestChiSquare:
    def test_uniform_passes(self, rng):
        samples = rng.integers(0, 97, 20_000)
        chi2 = chi_square_uniformity(samples.tolist(), 97, 160.0)
        assert chi2 < 160.0

    def test_biased_fails(self):
        samples = [0] * 1000 + [1] * 10
        with pytest.raises(ReproError, match="rejected"):
            chi_square_uniformity(samples, 97, 160.0)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            chi_square_uniformity([], 97, 160.0)


class TestConformanceSuite:
    def test_all_protocols_conform(self, gf):
        from repro.protocols import SecAggPlus
        from repro.protocols.lightsecagg import EncryptedLightSecAgg
        from repro.testing import conformance_suite

        params = LSAParams.from_guarantees(6, 2, 2)
        factories = [
            lambda: LightSecAgg(gf, params, 24),
            lambda: EncryptedLightSecAgg(gf, params, 24),
            lambda: SecAgg(gf, 6, 24),
            lambda: SecAggPlus(gf, 6, 24, graph_seed=1),
            lambda: NaiveAggregation(gf, 6, 24),
        ]
        for factory in factories:
            assert conformance_suite(factory, max_dropouts=2) == 9

    def test_suite_catches_broken_protocol(self, gf):
        from repro.testing import conformance_suite

        class BrokenProtocol(NaiveAggregation):
            def run_round(self, updates, dropouts, rng=None):
                result = super().run_round(updates, dropouts, rng)
                result.aggregate[0] ^= np.uint64(1)  # corrupt one word
                return result

        with pytest.raises(ReproError, match="mismatch"):
            conformance_suite(lambda: BrokenProtocol(gf, 4, 8))
