"""Tests for LightSecAgg parameter validation (paper Sec. 4.1 constraints)."""

import pytest

from repro.exceptions import ParameterError
from repro.protocols.lightsecagg.params import LSAParams, choose_target_survivors


class TestValidation:
    def test_valid(self):
        p = LSAParams(10, privacy=3, dropout_tolerance=3, target_survivors=7)
        assert p.num_submasks == 4

    def test_theorem1_boundary(self):
        # T + D < N: T=4, D=5, N=10 is allowed (U must be in (4, 5]).
        LSAParams(10, 4, 5, 5)
        with pytest.raises(ParameterError, match="T \\+ D < N"):
            LSAParams(10, 5, 5, 5)

    def test_u_range(self):
        with pytest.raises(ParameterError):
            LSAParams(10, 3, 3, 3)  # U must exceed T
        with pytest.raises(ParameterError):
            LSAParams(10, 3, 3, 8)  # U must be <= N - D

    def test_negative_params(self):
        with pytest.raises(ParameterError):
            LSAParams(10, -1, 3, 5)
        with pytest.raises(ParameterError):
            LSAParams(10, 3, -1, 5)

    def test_tiny_n(self):
        with pytest.raises(ParameterError):
            LSAParams(1, 0, 0, 1)


class TestChooseU:
    def test_prefers_seventy_percent(self):
        # Sec. 7.2: U = floor(0.7 N) optimal for p in {0.1, 0.3}.
        assert choose_target_survivors(200, 100, 20) == 140
        assert choose_target_survivors(200, 100, 60) == 140

    def test_clamps_to_feasible_high(self):
        # p = 0.5-ish: U can only be T + 1.
        assert choose_target_survivors(200, 100, 99) == 101

    def test_clamps_to_feasible_low(self):
        assert choose_target_survivors(10, 1, 1) == 7

    def test_infeasible(self):
        with pytest.raises(ParameterError):
            choose_target_survivors(10, 5, 5)


class TestFactories:
    def test_from_guarantees_default_u(self):
        p = LSAParams.from_guarantees(100, privacy=50, dropout_tolerance=10)
        assert p.target_survivors == 70

    def test_from_guarantees_explicit_u(self):
        p = LSAParams.from_guarantees(100, 50, 10, target_survivors=60)
        assert p.target_survivors == 60

    def test_paper_defaults(self):
        p = LSAParams.paper_defaults(200, dropout_rate=0.1)
        assert p.privacy == 100
        assert p.dropout_tolerance == 20
        assert p.target_survivors == 140

    def test_paper_defaults_half_dropout_clamped(self):
        p = LSAParams.paper_defaults(200, dropout_rate=0.5)
        assert p.privacy == 100
        assert p.dropout_tolerance == 99  # clamped: U = N/2 + 1
        assert p.target_survivors == 101
