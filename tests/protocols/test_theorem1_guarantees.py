"""Verification of Theorem 1: privacy + dropout-resiliency of LightSecAgg.

Dropout-resiliency is checked *exhaustively* for small N (every dropout set
of size <= D recovers the exact aggregate — worst-case, not probabilistic,
matching Remark 4).

Privacy is checked two ways:

* **Structurally** — for every T-subset of colluders, the linear map from
  the T random padding sub-masks onto the colluders' observations is
  invertible, which makes those observations one-time-padded (the exact
  argument behind Lemma 1).
* **Statistically** — the empirical distribution of a colluding set's view
  is indistinguishable (chi-square) between two different fixed models,
  i.e. the view carries no information about the masked update.
"""

from itertools import combinations

import numpy as np
import pytest

from repro.coding.mask_encoding import MaskEncoder
from repro.field import FiniteField
from repro.field.linalg import is_invertible
from repro.protocols import LightSecAgg, LSAParams


class TestDropoutResiliency:
    @pytest.mark.parametrize(
        "n,t,d_tol",
        [(4, 1, 1), (5, 1, 2), (5, 2, 1), (6, 2, 2), (6, 1, 3)],
    )
    def test_worst_case_every_dropout_set(self, gf, rng, n, t, d_tol):
        params = LSAParams.from_guarantees(n, t, d_tol)
        proto = LightSecAgg(gf, params, 8)
        updates = {i: gf.random(8, rng) for i in range(n)}
        for size in range(d_tol + 1):
            for dropouts in combinations(range(n), size):
                result = proto.run_round(updates, set(dropouts), rng)
                survivors = [i for i in range(n) if i not in dropouts]
                expected = proto.expected_aggregate(updates, survivors)
                assert np.array_equal(result.aggregate, expected), (
                    n, t, d_tol, dropouts,
                )

    def test_tradeoff_boundary(self, gf, rng):
        """T + D = N - 1 is achievable (Theorem 1's boundary)."""
        n = 6
        for t in range(0, n - 1):
            d_tol = n - 1 - t
            params = LSAParams.from_guarantees(n, t, d_tol)
            proto = LightSecAgg(gf, params, 5)
            updates = {i: gf.random(5, rng) for i in range(n)}
            dropouts = set(range(d_tol))  # drop the maximum number
            result = proto.run_round(updates, dropouts, rng)
            survivors = [i for i in range(n) if i not in dropouts]
            expected = proto.expected_aggregate(updates, survivors)
            assert np.array_equal(result.aggregate, expected), t


class TestPrivacyStructural:
    @pytest.mark.parametrize("generator", ["lagrange", "vandermonde"])
    @pytest.mark.parametrize("n,u,t", [(5, 3, 1), (6, 4, 2), (7, 5, 3)])
    def test_collusion_view_is_one_time_padded(self, gf, generator, n, u, t):
        """For every T-subset of users, the T x T generator block acting on
        the random paddings is invertible => their shares of any z are
        uniform (Lemma 1's condition I(z_i; shares_T) = 0)."""
        enc = MaskEncoder(gf, n, u, t, 8, generator=generator)
        g = enc.code.generator_matrix  # (U, N); rows U-T.. are paddings
        padding_block = g[u - t:, :]
        for colluders in combinations(range(n), t):
            sub = padding_block[:, list(colluders)]
            assert is_invertible(gf, sub), colluders


class TestPrivacyStatistical:
    def test_colluder_view_independent_of_model(self):
        """Chi-square two-sample test: a colluding user's received share has
        the same distribution whatever the honest user's mask (hence
        masked model) is."""
        gf = FiniteField(97)
        enc = MaskEncoder(gf, num_users=4, target_survivors=3, privacy=1,
                          model_dim=2)
        rng = np.random.default_rng(0)
        trials = 6000

        def sample_view(mask_value: int) -> np.ndarray:
            z = gf.array([mask_value, mask_value])
            counts = np.zeros(97)
            for _ in range(trials):
                shares = enc.encode(z, rng)
                counts[int(shares[3][0])] += 1  # colluder = user 3
            return counts

        c1 = sample_view(5)
        c2 = sample_view(92)
        # Two-sample chi-square; dof = 96, 99.9% quantile ~ 148.
        total = c1 + c2
        expected = total / 2
        nonzero = expected > 0
        chi2 = float(
            (((c1 - expected) ** 2 + (c2 - expected) ** 2) / expected)[nonzero].sum()
        )
        assert chi2 < 2 * 160, chi2

    def test_masked_update_uniform(self):
        """The uploaded masked model x + z is itself uniform in the field."""
        gf = FiniteField(97)
        rng = np.random.default_rng(1)
        x = gf.array([17])
        samples = [
            int(gf.add(x, gf.random(1, rng))[0]) for _ in range(20_000)
        ]
        counts = np.bincount(samples, minlength=97)
        expected = len(samples) / 97
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 < 160, chi2

    def test_aggregate_reveals_only_sum(self, gf, rng):
        """Two different update sets with the same sum produce identical
        aggregates (the protocol output is a function of the sum only)."""
        params = LSAParams.from_guarantees(4, 1, 1)
        proto = LightSecAgg(gf, params, 6)
        base = {i: gf.random(6, rng) for i in range(4)}
        shifted = dict(base)
        delta = gf.random(6, rng)
        shifted[0] = gf.add(base[0], delta)
        shifted[1] = gf.sub(base[1], delta)
        r1 = proto.run_round(base, set(), rng)
        r2 = proto.run_round(shifted, set(), rng)
        assert np.array_equal(r1.aggregate, r2.aggregate)
