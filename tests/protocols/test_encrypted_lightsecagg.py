"""Tests for the channel-encrypted LightSecAgg variant."""

import numpy as np
import pytest

from repro.protocols import NaiveAggregation
from repro.protocols.lightsecagg.encrypted import EncryptedLightSecAgg
from repro.protocols.lightsecagg.params import LSAParams


@pytest.fixture
def proto(gf):
    params = LSAParams.from_guarantees(6, privacy=2, dropout_tolerance=2)
    return EncryptedLightSecAgg(gf, params, model_dim=14)


class TestCorrectness:
    def test_matches_naive(self, gf, rng, proto):
        updates = {i: gf.random(14, rng) for i in range(6)}
        result = proto.run_round(updates, {1, 4}, rng)
        naive = NaiveAggregation(gf, 6, 14).run_round(updates, {1, 4}, rng)
        assert np.array_equal(result.aggregate, naive.aggregate)

    def test_no_dropouts(self, gf, rng, proto):
        updates = {i: gf.random(14, rng) for i in range(6)}
        result = proto.run_round(updates, set(), rng)
        expected = proto.expected_aggregate(updates, list(range(6)))
        assert np.array_equal(result.aggregate, expected)

    def test_offline_dropouts_not_supported(self, gf, rng, proto):
        updates = {i: gf.random(14, rng) for i in range(6)}
        with pytest.raises(NotImplementedError):
            proto.run_round(updates, set(), rng, offline_dropouts={0})


class TestRelayAccounting:
    def test_share_traffic_doubles_through_relay(self, gf, rng, proto):
        """Every share crosses two hops (user->server, server->peer), so
        the offline share traffic is twice the peer-to-peer variant's."""
        from repro.protocols import LightSecAgg

        updates = {i: gf.random(14, rng) for i in range(6)}
        enc = proto.run_round(updates, set(), rng)
        base = LightSecAgg(gf, proto.params, 14).run_round(updates, set(), rng)
        enc_share_traffic = enc.transcript.elements(
            phase="offline", key_sized=False
        )
        base_share_traffic = base.transcript.elements(
            phase="offline", key_sized=False
        )
        assert enc_share_traffic == 2 * base_share_traffic

    def test_key_advertisement_traffic_present(self, gf, rng, proto):
        updates = {i: gf.random(14, rng) for i in range(6)}
        result = proto.run_round(updates, set(), rng)
        assert result.transcript.elements(phase="offline", key_sized=True) > 0

    def test_recovery_unchanged(self, gf, rng, proto):
        updates = {i: gf.random(14, rng) for i in range(6)}
        result = proto.run_round(updates, {0}, rng)
        share_dim = -(-14 // proto.params.num_submasks)
        assert result.transcript.elements(phase="recovery") == (
            proto.params.target_survivors * share_dim
        )
