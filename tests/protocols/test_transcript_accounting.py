"""Cross-layer consistency: measured transcripts vs Table-1 formulas.

The systems model (`repro.simulation.costmodel`) charges analytic element
counts; the protocols record what actually crossed the network.  For the
``d``-sized rows the two must agree *exactly* at any scale (up to the
documented padding ceil) — these tests pin that correspondence, so the
timing results are provably grounded in the implementation's real traffic.
"""

import numpy as np
import pytest

from repro.field import FiniteField
from repro.protocols import LightSecAgg, LSAParams, SecAgg, SecAggPlus
from repro.protocols.base import SERVER
from repro.testing import make_random_updates


class TestLightSecAggTraffic:
    @pytest.mark.parametrize("n,t,u,dim", [(8, 2, 6, 48), (10, 3, 7, 100)])
    def test_offline_elements_exact(self, gf, rng, n, t, u, dim):
        params = LSAParams(n, t, n - u, u)
        proto = LightSecAgg(gf, params, dim)
        updates = make_random_updates(gf, n, dim, rng)
        result = proto.run_round(updates, set(), rng)
        share_dim = -(-dim // (u - t))
        # Formula: each user sends (N-1) shares of d/(U-T); total N(N-1).
        assert result.transcript.elements(phase="offline") == (
            n * (n - 1) * share_dim
        )
        # Per-user view matches the Table-1 "offline comm (U)" row.
        per_user = result.transcript.per_user_sent(phase="offline")
        assert all(v == (n - 1) * share_dim for v in per_user.values())

    def test_online_comm_server_row(self, gf, rng):
        """Server receives N*d masked models + U*(d/(U-T)) recovery shares."""
        n, t, u, dim = 8, 2, 6, 48
        params = LSAParams(n, t, n - u, u)
        proto = LightSecAgg(gf, params, dim)
        updates = make_random_updates(gf, n, dim, rng)
        result = proto.run_round(updates, {1}, rng)
        share_dim = dim // (u - t)
        to_server = result.transcript.elements(receiver=SERVER)
        assert to_server == n * dim + u * share_dim


class TestSecAggTraffic:
    def test_upload_row(self, gf, rng):
        n, dim = 6, 64
        proto = SecAgg(gf, n, dim)
        updates = make_random_updates(gf, n, dim, rng)
        result = proto.run_round(updates, set(), rng)
        # Online comm (U): exactly d model elements per user.
        assert result.transcript.elements(phase="upload") == n * dim

    def test_offline_scales_with_n_squared(self, gf, rng):
        """SecAgg offline traffic (key-sized) grows ~N^2 in total."""
        def offline_total(n):
            proto = SecAgg(gf, n, 16)
            updates = make_random_updates(gf, n, 16, rng)
            result = proto.run_round(updates, set(), rng)
            return result.transcript.elements(phase="offline")

        t6, t12 = offline_total(6), offline_total(12)
        # Shamir share traffic dominates: ~N(N-1) pairs -> ratio ~4.4.
        assert 3.0 < t12 / t6 < 5.0

    def test_secagg_plus_offline_scales_with_degree(self, gf, rng):
        n, dim = 16, 16
        updates = make_random_updates(gf, n, dim, rng)

        def offline_for_degree(k):
            proto = SecAggPlus(gf, n, dim, degree=k, graph_seed=0)
            return proto.run_round(updates, set(), rng).transcript.elements(
                phase="offline", key_sized=True
            )

        t4, t8 = offline_for_degree(4), offline_for_degree(8)
        # Share traffic doubles with degree (key relay adds a small extra).
        assert 1.5 < t8 / t4 < 2.5


class TestRecoveryComparison:
    def test_traffic_flat_but_secagg_compute_grows(self, gf, rng):
        """The precise Sec.-3-vs-4 contrast: *both* protocols keep recovery
        traffic flat in the number of drops (SecAgg swaps same-sized b- and
        sk-shares), but SecAgg's server-side PRG *computation* grows with
        each drop while LightSecAgg's decode work is exactly constant."""
        n, dim = 10, 40
        params = LSAParams.from_guarantees(n, 2, 3)
        lsa = LightSecAgg(gf, params, dim)
        sa = SecAgg(gf, n, dim, shamir_threshold=2)
        updates = make_random_updates(gf, n, dim, rng)

        lsa_traffic, lsa_work, sa_work = [], [], []
        for drops in (set(), {0}, {0, 1}, {0, 1, 2}):
            r_lsa = lsa.run_round(updates, drops, rng)
            r_sa = sa.run_round(updates, drops, rng)
            lsa_traffic.append(
                r_lsa.transcript.elements(phase="recovery")
            )
            lsa_work.append(r_lsa.metrics.server_decode_ops)
            sa_work.append(r_sa.metrics.server_prg_elements)
        assert len(set(lsa_traffic)) == 1
        assert len(set(lsa_work)) == 1
        # SecAgg: survivors' b expansions shrink by d per drop but the
        # dropped users' pairwise expansions add (N-1-drops)*d — net growth.
        assert sa_work == sorted(sa_work) and sa_work[0] < sa_work[-1]
