"""Property-based tests across all secure-aggregation protocols."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field import FiniteField
from repro.protocols import (
    LightSecAgg,
    LSAParams,
    NaiveAggregation,
    SecAgg,
    SecAggPlus,
)

GF = FiniteField()


@st.composite
def lsa_scenario(draw):
    """Random feasible (N, T, D, U), dims, updates and dropout set."""
    n = draw(st.integers(3, 9))
    t = draw(st.integers(0, n - 2))
    d_tol = draw(st.integers(0, n - t - 1))
    u = draw(st.integers(t + 1, n - d_tol))
    dim = draw(st.integers(1, 30))
    num_drops = draw(st.integers(0, d_tol))
    seed = draw(st.integers(0, 2**31 - 1))
    return n, t, d_tol, u, dim, num_drops, seed


@given(lsa_scenario())
@settings(max_examples=40, deadline=None)
def test_lightsecagg_correct_for_random_params(scenario):
    n, t, d_tol, u, dim, num_drops, seed = scenario
    rng = np.random.default_rng(seed)
    params = LSAParams(n, t, d_tol, u)
    proto = LightSecAgg(GF, params, dim)
    updates = {i: GF.random(dim, rng) for i in range(n)}
    dropouts = set(
        rng.choice(n, size=num_drops, replace=False).tolist()
    ) if num_drops else set()
    result = proto.run_round(updates, dropouts, rng)
    survivors = [i for i in range(n) if i not in dropouts]
    expected = proto.expected_aggregate(updates, survivors)
    assert np.array_equal(result.aggregate, expected)


@st.composite
def pairwise_scenario(draw):
    n = draw(st.integers(3, 8))
    dim = draw(st.integers(1, 25))
    num_drops = draw(st.integers(0, max(0, n // 2 - 1)))
    seed = draw(st.integers(0, 2**31 - 1))
    return n, dim, num_drops, seed


@given(pairwise_scenario())
@settings(max_examples=15, deadline=None)
def test_secagg_matches_naive_for_random_inputs(scenario):
    n, dim, num_drops, seed = scenario
    rng = np.random.default_rng(seed)
    updates = {i: GF.random(dim, rng) for i in range(n)}
    dropouts = set(
        rng.choice(n, size=num_drops, replace=False).tolist()
    ) if num_drops else set()
    secure = SecAgg(GF, n, dim, shamir_threshold=1)
    naive = NaiveAggregation(GF, n, dim)
    a = secure.run_round(updates, dropouts, rng).aggregate
    b = naive.run_round(updates, dropouts, rng).aggregate
    assert np.array_equal(a, b)


@given(st.integers(6, 14), st.integers(1, 20), st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_secagg_plus_matches_naive_random(n, dim, seed):
    rng = np.random.default_rng(seed)
    updates = {i: GF.random(dim, rng) for i in range(n)}
    dropouts = {int(rng.integers(0, n))}
    secure = SecAggPlus(GF, n, dim, graph_seed=seed % 97, shamir_threshold=1)
    naive = NaiveAggregation(GF, n, dim)
    a = secure.run_round(updates, dropouts, rng).aggregate
    b = naive.run_round(updates, dropouts, rng).aggregate
    assert np.array_equal(a, b)


@given(lsa_scenario())
@settings(max_examples=20, deadline=None)
def test_lightsecagg_recovery_traffic_invariant(scenario):
    """Recovery traffic is exactly U * ceil(dim / (U - T)) regardless of
    which users dropped — the protocol's defining property."""
    n, t, d_tol, u, dim, num_drops, seed = scenario
    rng = np.random.default_rng(seed)
    params = LSAParams(n, t, d_tol, u)
    proto = LightSecAgg(GF, params, dim)
    updates = {i: GF.random(dim, rng) for i in range(n)}
    dropouts = set(
        rng.choice(n, size=num_drops, replace=False).tolist()
    ) if num_drops else set()
    result = proto.run_round(updates, dropouts, rng)
    share_dim = -(-dim // (u - t))
    assert result.transcript.elements(phase="recovery") == u * share_dim
