"""Tests for Remark 2: users dropping *during* the offline phase.

LightSecAgg only needs U users to survive at any point — users who vanish
mid-share-distribution are simply excluded and their partial shares are
never consulted.
"""

from itertools import combinations

import numpy as np
import pytest

from repro.exceptions import DropoutError
from repro.protocols import LightSecAgg, LSAParams


@pytest.fixture
def proto(gf):
    params = LSAParams.from_guarantees(6, privacy=1, dropout_tolerance=3)
    return LightSecAgg(gf, params, 12)


class TestOfflineDropouts:
    def test_offline_dropout_excluded_from_aggregate(self, proto, gf, rng):
        updates = {i: gf.random(12, rng) for i in range(6)}
        result = proto.run_round(updates, set(), rng, offline_dropouts={2})
        survivors = [0, 1, 3, 4, 5]
        assert result.survivors == survivors
        expected = proto.expected_aggregate(updates, survivors)
        assert np.array_equal(result.aggregate, expected)

    def test_mixed_offline_and_upload_dropouts(self, proto, gf, rng):
        updates = {i: gf.random(12, rng) for i in range(6)}
        result = proto.run_round(
            updates, {4}, rng, offline_dropouts={1}
        )
        survivors = [0, 2, 3, 5]
        assert result.survivors == survivors
        expected = proto.expected_aggregate(updates, survivors)
        assert np.array_equal(result.aggregate, expected)

    def test_every_single_offline_dropout(self, proto, gf, rng):
        updates = {i: gf.random(12, rng) for i in range(6)}
        for victim in range(6):
            result = proto.run_round(
                updates, set(), rng, offline_dropouts={victim}
            )
            survivors = [i for i in range(6) if i != victim]
            expected = proto.expected_aggregate(updates, survivors)
            assert np.array_equal(result.aggregate, expected), victim

    def test_offline_dropouts_up_to_tolerance(self, proto, gf, rng):
        updates = {i: gf.random(12, rng) for i in range(6)}
        for drops in combinations(range(6), 2):
            result = proto.run_round(
                updates, set(), rng, offline_dropouts=set(drops)
            )
            survivors = [i for i in range(6) if i not in drops]
            expected = proto.expected_aggregate(updates, survivors)
            assert np.array_equal(result.aggregate, expected), drops

    def test_offline_dropout_never_uploads(self, proto, gf, rng):
        updates = {i: gf.random(12, rng) for i in range(6)}
        result = proto.run_round(updates, set(), rng, offline_dropouts={3})
        # Only 5 model uploads happened.
        assert result.transcript.elements(phase="upload") == 5 * 12

    def test_too_many_total_dropouts(self, proto, gf, rng):
        updates = {i: gf.random(12, rng) for i in range(6)}
        with pytest.raises(DropoutError):
            proto.run_round(
                updates, {0, 1}, rng, offline_dropouts={2, 3}
            )
