"""Cross-protocol property tests for the multi-round session engine.

The contract under test: for every protocol, driving R rounds through one
stateful ``protocol.session()`` produces **bit-identical** field sums to R
independent one-shot ``run_round`` calls on the same inputs, under random
mixes of worst-case and offline dropouts.  Plus the pool semantics —
sessions with a pool smaller than the round count refill transparently,
and a session fails loudly (``ProtocolError``) when survivors fall below
``U`` mid-stream without corrupting later rounds.
"""

import numpy as np
import pytest

from repro.exceptions import DropoutError, ProtocolError
from repro.field import FiniteField
from repro.protocols import (
    EncryptedLightSecAgg,
    EncryptedLightSecAggSession,
    LightSecAgg,
    LightSecAggSession,
    LSAParams,
    NaiveAggregation,
    ProtocolSession,
    SecAgg,
    ZhaoSunAggregation,
)

N, DIM = 10, 23
ZS_N, ZS_DIM = 8, 9  # Zhao & Sun enumerates surviving sets; keep N small


def make_protocol(name, gf):
    params = LSAParams.from_guarantees(N, privacy=2, dropout_tolerance=3)
    zs_params = LSAParams.from_guarantees(ZS_N, privacy=2, dropout_tolerance=2)
    return {
        "naive": lambda: NaiveAggregation(gf, N, DIM),
        "lightsecagg": lambda: LightSecAgg(gf, params, DIM),
        "lightsecagg-encrypted": lambda: EncryptedLightSecAgg(gf, params, DIM),
        "pairwise": lambda: SecAgg(gf, N, DIM),
        "zhao-sun": lambda: ZhaoSunAggregation(gf, zs_params, ZS_DIM),
    }[name]()


ALL_PROTOCOLS = [
    "naive", "lightsecagg", "lightsecagg-encrypted", "pairwise", "zhao-sun",
]


def random_dropouts(proto, rng):
    """A random worst-case dropout set the protocol can tolerate."""
    n = proto.num_users
    if isinstance(proto, (LightSecAgg, ZhaoSunAggregation)):
        max_drop = proto.params.dropout_tolerance
    else:
        # Pairwise protocols tolerate up to threshold-limited dropouts;
        # naive tolerates anything short of everyone.  Keep both modest.
        max_drop = 2
    count = int(rng.integers(0, max_drop + 1))
    if count == 0:
        return set()
    return set(rng.choice(n, size=count, replace=False).tolist())


class TestSessionOneShotEquivalence:
    """session.run_round over R rounds == R independent run_round calls."""

    @pytest.mark.parametrize("name", ALL_PROTOCOLS)
    def test_bit_identical_across_rounds(self, gf, name):
        rng = np.random.default_rng(99)
        proto = make_protocol(name, gf)
        n, dim = proto.num_users, proto.model_dim
        rounds = 5
        session = proto.session(pool_size=3, rng=np.random.default_rng(1))
        for r in range(rounds):
            updates = {i: gf.random(dim, rng) for i in range(n)}
            dropouts = random_dropouts(proto, rng)
            got = session.run_round(
                updates, set(dropouts), np.random.default_rng(1000 + r)
            )
            want = proto.run_round(
                updates, set(dropouts), np.random.default_rng(2000 + r)
            )
            assert got.survivors == want.survivors, (name, r)
            assert np.array_equal(got.aggregate, want.aggregate), (name, r)

    def test_lightsecagg_offline_dropout_mix(self, gf):
        """Random mixes of worst-case and offline dropouts (Remark 2)."""
        rng = np.random.default_rng(5)
        params = LSAParams.from_guarantees(N, privacy=2, dropout_tolerance=4)
        proto = LightSecAgg(gf, params, DIM)
        session = proto.session(pool_size=2, rng=np.random.default_rng(2))
        for r in range(6):
            updates = {i: gf.random(DIM, rng) for i in range(N)}
            ids = rng.choice(N, size=4, replace=False).tolist()
            split = int(rng.integers(0, 5))
            worst, offline = set(ids[:split]), set(ids[split:])
            got = session.run_round(
                updates, worst, rng, offline_dropouts=offline
            )
            want = proto.run_round(
                updates, worst, np.random.default_rng(r),
                offline_dropouts=offline,
            )
            assert got.survivors == want.survivors, r
            assert np.array_equal(got.aggregate, want.aggregate), r

    def test_encrypted_session_rejects_offline_dropouts(self, gf):
        params = LSAParams.from_guarantees(N, privacy=2, dropout_tolerance=3)
        proto = EncryptedLightSecAgg(gf, params, DIM)
        session = proto.session(pool_size=1)
        rng = np.random.default_rng(0)
        updates = {i: gf.random(DIM, rng) for i in range(N)}
        with pytest.raises(NotImplementedError):
            session.run_round(updates, set(), rng, offline_dropouts={0})

    @pytest.mark.parametrize("name", ALL_PROTOCOLS)
    def test_session_types(self, gf, name):
        proto = make_protocol(name, gf)
        session = proto.session()
        assert isinstance(session, ProtocolSession)
        if name == "lightsecagg":
            assert type(session) is LightSecAggSession
        elif name == "lightsecagg-encrypted":
            assert type(session) is EncryptedLightSecAggSession
        else:
            assert type(session) is ProtocolSession  # replay fallback


class TestPoolSemantics:
    def test_pool_smaller_than_rounds_refills(self, gf):
        params = LSAParams.from_guarantees(N, privacy=2, dropout_tolerance=3)
        proto = LightSecAgg(gf, params, DIM)
        rng = np.random.default_rng(3)
        session = proto.session(pool_size=2, rng=np.random.default_rng(4))
        updates = {i: gf.random(DIM, rng) for i in range(N)}
        expected = proto.expected_aggregate(updates, list(range(N)))
        for r in range(7):
            result = session.run_round(updates, set(), rng)
            assert np.array_equal(result.aggregate, expected), r
        # 7 rounds through a 2-deep pool: every refill adds 2 rounds, so at
        # least ceil(7/2) refills ran and hits+misses account for them all.
        assert session.stats.rounds == 7
        assert session.stats.refills >= 4
        assert session.stats.pool_hits + session.stats.pool_misses == 7
        assert session.stats.pool_misses == session.stats.refills
        assert session.stats.precomputed_rounds >= 7

    def test_explicit_refill_prefills_pool(self, gf):
        params = LSAParams.from_guarantees(N, privacy=2, dropout_tolerance=3)
        proto = LightSecAgg(gf, params, DIM)
        session = proto.session(pool_size=5, rng=np.random.default_rng(0))
        assert session.pool_level == 0
        added = session.refill()
        assert added == 5 and session.pool_level == 5
        assert session.refill() == 0  # already full
        rng = np.random.default_rng(1)
        updates = {i: gf.random(DIM, rng) for i in range(N)}
        session.run_round(updates, set(), rng)
        assert session.pool_level == 4
        assert session.stats.pool_hits == 1
        assert session.stats.pool_misses == 0

    def test_survivors_below_u_raises_protocol_error(self, gf):
        """Mid-stream catastrophic dropout fails loudly and recoverably."""
        params = LSAParams.from_guarantees(
            N, privacy=2, dropout_tolerance=3, target_survivors=7
        )
        proto = LightSecAgg(gf, params, DIM)
        rng = np.random.default_rng(6)
        session = proto.session(pool_size=3, rng=np.random.default_rng(7))
        updates = {i: gf.random(DIM, rng) for i in range(N)}
        session.run_round(updates, {0}, rng)  # healthy round
        level_before = session.pool_level
        with pytest.raises(ProtocolError, match="need U=7"):
            session.run_round(updates, {0, 1, 2, 3}, rng)  # 6 < U = 7
        # The failed round consumed no pool material...
        assert session.pool_level == level_before
        # ...and the session remains usable afterwards.
        result = session.run_round(updates, {9}, rng)
        expected = proto.expected_aggregate(updates, result.survivors)
        assert np.array_equal(result.aggregate, expected)

    def test_replay_session_dropout_also_protocol_error(self, gf):
        proto = SecAgg(gf, 6, DIM, shamir_threshold=2)
        session = proto.session()
        rng = np.random.default_rng(8)
        updates = {i: gf.random(DIM, rng) for i in range(6)}
        with pytest.raises(ProtocolError):
            session.run_round(updates, {0, 1, 2, 3}, rng)

    def test_closed_session_rejects_rounds(self, gf):
        proto = NaiveAggregation(gf, N, DIM)
        rng = np.random.default_rng(9)
        updates = {i: gf.random(DIM, rng) for i in range(N)}
        with proto.session() as session:
            session.run_round(updates, set(), rng)
        with pytest.raises(ProtocolError, match="closed"):
            session.run_round(updates, set(), rng)

    def test_invalid_pool_size_rejected(self, gf):
        proto = NaiveAggregation(gf, N, DIM)
        with pytest.raises(ProtocolError):
            proto.session(pool_size=0)


class TestAmortizedAccounting:
    def test_online_transcript_has_no_offline_traffic(self, gf):
        params = LSAParams.from_guarantees(N, privacy=2, dropout_tolerance=3)
        proto = LightSecAgg(gf, params, DIM)
        session = proto.session(pool_size=2, rng=np.random.default_rng(0))
        session.refill()
        rng = np.random.default_rng(1)
        updates = {i: gf.random(DIM, rng) for i in range(N)}
        result = session.run_round(updates, {1}, rng)
        assert result.transcript.elements(phase="offline") == 0
        assert result.transcript.elements(phase="upload") == N * DIM
        assert result.transcript.elements(phase="recovery") > 0
        # The offline traffic is accounted in the session, per refill, and
        # matches the one-shot path's per-round share exchange.
        one = proto.run_round(updates, {1}, rng)
        per_round = one.transcript.elements(phase="offline")
        assert session.offline_elements() == 2 * per_round

    def test_online_metrics_report_no_encode_work(self, gf):
        params = LSAParams.from_guarantees(N, privacy=2, dropout_tolerance=3)
        proto = LightSecAgg(gf, params, DIM)
        session = proto.session(pool_size=1, rng=np.random.default_rng(0))
        rng = np.random.default_rng(2)
        updates = {i: gf.random(DIM, rng) for i in range(N)}
        result = session.run_round(updates, set(), rng)
        assert result.metrics.user_encode_ops == 0
        assert result.metrics.extra["amortized_encode_ops"] > 0
        one = proto.run_round(updates, set(), rng)
        assert result.metrics.server_decode_ops == one.metrics.server_decode_ops


class TestZhaoSunAdapter:
    def test_matches_naive_oracle(self, gf, rng):
        params = LSAParams.from_guarantees(ZS_N, privacy=2, dropout_tolerance=2)
        proto = ZhaoSunAggregation(gf, params, ZS_DIM)
        naive = NaiveAggregation(gf, ZS_N, ZS_DIM)
        updates = {i: gf.random(ZS_DIM, rng) for i in range(ZS_N)}
        for dropouts in (set(), {0}, {3, 5}):
            got = proto.run_round(updates, set(dropouts), rng)
            want = naive.run_round(updates, set(dropouts), rng)
            assert got.survivors == want.survivors
            assert np.array_equal(got.aggregate, want.aggregate)

    def test_too_many_dropouts_raise(self, gf, rng):
        params = LSAParams.from_guarantees(ZS_N, privacy=2, dropout_tolerance=2)
        proto = ZhaoSunAggregation(gf, params, ZS_DIM)
        updates = {i: gf.random(ZS_DIM, rng) for i in range(ZS_N)}
        too_many = set(range(ZS_N - params.target_survivors + 1))
        with pytest.raises(DropoutError):
            proto.run_round(updates, too_many, rng)

    def test_transcript_reflects_ttp_storage_blowup(self, gf, rng):
        """Offline traffic counts the per-surviving-set symbol storage."""
        params = LSAParams.from_guarantees(ZS_N, privacy=2, dropout_tolerance=2)
        proto = ZhaoSunAggregation(gf, params, ZS_DIM)
        updates = {i: gf.random(ZS_DIM, rng) for i in range(ZS_N)}
        result = proto.run_round(updates, set(), rng)
        offline = result.transcript.elements(phase="offline")
        # Far more than LightSecAgg's N shares per user: every user stores
        # one symbol per admissible surviving set containing it.
        assert offline > ZS_N * ZS_N * piece_len(ZS_DIM, params.num_submasks)


def piece_len(d, pieces):
    return -(-d // pieces)
