"""Tests for SecAgg+ (sparse-graph pairwise masking) and its graphs."""

import numpy as np
import pytest

from repro.exceptions import DropoutError, ProtocolError
from repro.protocols import NaiveAggregation, SecAggPlus, secagg_plus_degree
from repro.protocols.pairwise.graph import (
    complete_graph,
    regular_graph,
    validate_adjacency,
)


class TestGraphs:
    def test_complete_graph(self):
        adj = complete_graph(4)
        assert adj[0] == [1, 2, 3]
        validate_adjacency(adj, 4)

    def test_complete_graph_too_small(self):
        with pytest.raises(ProtocolError):
            complete_graph(1)

    def test_degree_scales_logarithmically(self):
        d10 = secagg_plus_degree(10)
        d1000 = secagg_plus_degree(1000)
        assert d10 < d1000 < 1000 - 1
        # Sub-linear growth: degree(1000)/degree(10) << 100.
        assert d1000 / d10 < 5

    def test_degree_parity(self):
        for n in range(4, 60):
            k = secagg_plus_degree(n)
            assert (k * n) % 2 == 0, (n, k)
            assert 1 <= k <= n - 1

    def test_regular_graph_properties(self):
        adj = regular_graph(20, 6, seed=3)
        validate_adjacency(adj, 20)
        assert all(len(v) == 6 for v in adj.values())

    def test_regular_graph_saturates_to_complete(self):
        adj = regular_graph(5, 6, seed=0)
        assert adj == complete_graph(5)

    def test_regular_graph_parity_check(self):
        with pytest.raises(ProtocolError):
            regular_graph(5, 3, seed=0)  # 15 odd

    def test_regular_graph_deterministic(self):
        assert regular_graph(16, 4, seed=7) == regular_graph(16, 4, seed=7)

    def test_validate_adjacency_catches_asymmetry(self):
        adj = {0: [1], 1: []}
        with pytest.raises(ProtocolError, match="asymmetric"):
            validate_adjacency(adj, 2)

    def test_validate_adjacency_catches_self_loop(self):
        adj = {0: [0, 1], 1: [0]}
        with pytest.raises(ProtocolError, match="self-loop"):
            validate_adjacency(adj, 2)

    def test_validate_adjacency_catches_duplicates(self):
        adj = {0: [1, 1], 1: [0]}
        with pytest.raises(ProtocolError, match="duplicate"):
            validate_adjacency(adj, 2)


class TestSecAggPlusCorrectness:
    def test_no_dropouts(self, gf, rng):
        proto = SecAggPlus(gf, 12, 9, graph_seed=1)
        updates = {i: gf.random(9, rng) for i in range(12)}
        result = proto.run_round(updates, set(), rng)
        expected = proto.expected_aggregate(updates, list(range(12)))
        assert np.array_equal(result.aggregate, expected)

    def test_with_dropouts(self, gf, rng):
        proto = SecAggPlus(gf, 12, 9, graph_seed=1)
        updates = {i: gf.random(9, rng) for i in range(12)}
        result = proto.run_round(updates, {2, 7}, rng)
        survivors = [i for i in range(12) if i not in (2, 7)]
        expected = proto.expected_aggregate(updates, survivors)
        assert np.array_equal(result.aggregate, expected)

    def test_explicit_degree(self, gf, rng):
        proto = SecAggPlus(gf, 10, 9, degree=4, graph_seed=2)
        assert proto.degree == 4
        updates = {i: gf.random(9, rng) for i in range(10)}
        result = proto.run_round(updates, {0}, rng)
        survivors = list(range(1, 10))
        expected = proto.expected_aggregate(updates, survivors)
        assert np.array_equal(result.aggregate, expected)

    def test_matches_naive(self, gf, rng):
        proto = SecAggPlus(gf, 14, 15, graph_seed=4)
        naive = NaiveAggregation(gf, 14, 15)
        updates = {i: gf.random(15, rng) for i in range(14)}
        a = proto.run_round(updates, {3}, rng).aggregate
        b = naive.run_round(updates, {3}, rng).aggregate
        assert np.array_equal(a, b)

    def test_small_n_falls_back_to_complete(self, gf, rng):
        proto = SecAggPlus(gf, 4, 9)
        updates = {i: gf.random(9, rng) for i in range(4)}
        result = proto.run_round(updates, {1}, rng)
        expected = proto.expected_aggregate(updates, [0, 2, 3])
        assert np.array_equal(result.aggregate, expected)

    def test_neighborhood_dropout_failure(self, gf, rng):
        """If a user's surviving neighbors fall below the threshold,
        reconstruction must fail loudly rather than corrupt the sum."""
        proto = SecAggPlus(gf, 10, 5, degree=4, shamir_threshold=3, graph_seed=0)
        updates = {i: gf.random(5, rng) for i in range(10)}
        # Drop a user and all-but-three of its neighbors... find a user
        # whose neighborhood we can decimate.
        victim = 0
        neighbors = proto.adjacency[victim]
        dropouts = {victim} | set(neighbors[:2])
        try:
            result = proto.run_round(updates, dropouts, rng)
        except DropoutError:
            return  # acceptable: loud failure
        survivors = [i for i in range(10) if i not in dropouts]
        expected = proto.expected_aggregate(updates, survivors)
        assert np.array_equal(result.aggregate, expected)


class TestCommunicationScaling:
    def test_offline_traffic_sublinear_vs_secagg(self, gf, rng):
        """SecAgg+ users exchange O(log N) shares vs N for SecAgg."""
        from repro.protocols import SecAgg

        n, dim = 24, 7
        updates = {i: gf.random(dim, rng) for i in range(n)}
        full = SecAgg(gf, n, dim).run_round(updates, set(), rng)
        sparse = SecAggPlus(gf, n, dim, degree=6, graph_seed=0).run_round(
            updates, set(), rng
        )
        full_offline = full.transcript.elements(phase="offline")
        sparse_offline = sparse.transcript.elements(phase="offline")
        assert sparse_offline < full_offline
