"""Cross-protocol equivalence and comparative-cost tests.

All secure protocols must compute the identical field sum as the naive
oracle on the same inputs; their *costs* must differ in the direction the
paper claims (LightSecAgg's server recovery flat in dropouts, SecAgg's
growing).
"""

import numpy as np
import pytest

from repro.field import FiniteField
from repro.protocols import (
    LightSecAgg,
    LSAParams,
    NaiveAggregation,
    SecAgg,
    SecAggPlus,
)


def all_protocols(gf, n, dim):
    params = LSAParams.from_guarantees(n, privacy=n // 4, dropout_tolerance=n // 4)
    return {
        "naive": NaiveAggregation(gf, n, dim),
        "lightsecagg": LightSecAgg(gf, params, dim),
        "secagg": SecAgg(gf, n, dim),
        "secagg+": SecAggPlus(gf, n, dim, graph_seed=0),
    }


class TestEquivalence:
    @pytest.mark.parametrize("dropouts", [set(), {0}, {1, 5}, {2, 3, 6}])
    def test_all_protocols_agree(self, gf, rng, dropouts):
        n, dim = 12, 19
        protos = all_protocols(gf, n, dim)
        updates = {i: gf.random(dim, rng) for i in range(n)}
        results = {
            name: p.run_round(updates, set(dropouts), rng).aggregate
            for name, p in protos.items()
        }
        baseline = results.pop("naive")
        for name, agg in results.items():
            assert np.array_equal(agg, baseline), name

    def test_agreement_across_fields(self, rng):
        for q in [(1 << 31) - 1, (1 << 32) - 5]:
            gf = FiniteField(q)
            protos = all_protocols(gf, 8, 9)
            updates = {i: gf.random(9, rng) for i in range(8)}
            results = [
                p.run_round(updates, {1}, rng).aggregate
                for p in protos.values()
            ]
            for agg in results[1:]:
                assert np.array_equal(agg, results[0]), q


class TestComparativeCosts:
    def test_lsa_server_work_flat_secagg_grows(self, gf, rng):
        n, dim = 10, 40
        params = LSAParams.from_guarantees(n, 2, 3)
        lsa = LightSecAgg(gf, params, dim)
        secagg = SecAgg(gf, n, dim)
        updates = {i: gf.random(dim, rng) for i in range(n)}

        lsa_work = []
        secagg_work = []
        for dropouts in (set(), {0}, {0, 1}, {0, 1, 2}):
            r1 = lsa.run_round(updates, dropouts, rng)
            r2 = secagg.run_round(updates, dropouts, rng)
            lsa_work.append(r1.metrics.server_decode_ops)
            secagg_work.append(r2.metrics.server_prg_elements)
        # LightSecAgg: decoding cost identical for every dropout pattern.
        assert len(set(lsa_work)) == 1
        # SecAgg: PRG re-expansion grows with each extra drop.
        assert secagg_work[1] > secagg_work[0]
        assert secagg_work[2] > secagg_work[1]
        assert secagg_work[3] > secagg_work[2]

    def test_recovery_traffic_ordering(self, gf, rng):
        """Per-user recovery upload: LSA sends d/(U-T), SecAgg sends shares
        per target — for large d, LSA's recovery traffic is far below a
        model upload, while SecAgg's is key-sized but per-target."""
        n, dim = 8, 400
        params = LSAParams.from_guarantees(n, 2, 2)
        lsa = LightSecAgg(gf, params, dim)
        updates = {i: gf.random(dim, rng) for i in range(n)}
        result = lsa.run_round(updates, {0}, rng)
        per_responder = result.transcript.elements(phase="recovery") / (
            params.target_survivors
        )
        assert per_responder == pytest.approx(
            dim / params.num_submasks, rel=0.2
        )
        assert per_responder < dim  # much cheaper than re-uploading a model

    def test_offline_tradeoff(self, gf, rng):
        """LightSecAgg pays d-sized offline traffic where SecAgg pays only
        key-sized traffic — the paper's acknowledged trade-off."""
        n, dim = 8, 500
        params = LSAParams.from_guarantees(n, 2, 2)
        lsa = LightSecAgg(gf, params, dim)
        secagg = SecAgg(gf, n, dim)
        updates = {i: gf.random(dim, rng) for i in range(n)}
        lsa_off = lsa.run_round(updates, set(), rng).transcript.elements(
            phase="offline"
        )
        sa_off = secagg.run_round(updates, set(), rng).transcript.elements(
            phase="offline"
        )
        assert lsa_off > sa_off
