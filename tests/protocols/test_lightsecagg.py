"""End-to-end tests of the LightSecAgg protocol (paper Alg. 1)."""

from itertools import combinations

import numpy as np
import pytest

from repro.exceptions import DropoutError, ProtocolError
from repro.field import FiniteField
from repro.protocols import LightSecAgg, LSAParams, NaiveAggregation
from repro.protocols.base import SERVER
from repro.protocols.lightsecagg import LSAServer, LSAUser


def make_protocol(gf, n=6, t=2, d_tol=2, dim=17, **kw):
    params = LSAParams.from_guarantees(n, privacy=t, dropout_tolerance=d_tol)
    return LightSecAgg(gf, params, dim, **kw), params


class TestCorrectness:
    def test_no_dropouts(self, gf, rng):
        proto, _ = make_protocol(gf)
        updates = {i: gf.random(17, rng) for i in range(6)}
        result = proto.run_round(updates, set(), rng)
        expected = proto.expected_aggregate(updates, list(range(6)))
        assert np.array_equal(result.aggregate, expected)

    def test_every_dropout_pattern_up_to_d(self, gf, rng):
        """Theorem 1 worst-case resiliency: *any* D-subset may drop."""
        proto, params = make_protocol(gf, n=5, t=1, d_tol=2, dim=9)
        updates = {i: gf.random(9, rng) for i in range(5)}
        for size in range(params.dropout_tolerance + 1):
            for dropouts in combinations(range(5), size):
                result = proto.run_round(updates, set(dropouts), rng)
                survivors = [i for i in range(5) if i not in dropouts]
                expected = proto.expected_aggregate(updates, survivors)
                assert np.array_equal(result.aggregate, expected), dropouts

    def test_vandermonde_generator(self, gf, rng):
        proto, _ = make_protocol(gf, generator="vandermonde")
        updates = {i: gf.random(17, rng) for i in range(6)}
        result = proto.run_round(updates, {0}, rng)
        expected = proto.expected_aggregate(updates, [1, 2, 3, 4, 5])
        assert np.array_equal(result.aggregate, expected)

    def test_paper_field(self, gf_paper, rng):
        params = LSAParams.from_guarantees(4, 1, 1)
        proto = LightSecAgg(gf_paper, params, 11)
        updates = {i: gf_paper.random(11, rng) for i in range(4)}
        result = proto.run_round(updates, {2}, rng)
        expected = proto.expected_aggregate(updates, [0, 1, 3])
        assert np.array_equal(result.aggregate, expected)

    def test_matches_naive_oracle(self, gf, rng):
        proto, _ = make_protocol(gf, n=8, t=2, d_tol=3, dim=33)
        naive = NaiveAggregation(gf, 8, 33)
        updates = {i: gf.random(33, rng) for i in range(8)}
        dropouts = {1, 6}
        a = proto.run_round(updates, dropouts, rng).aggregate
        b = naive.run_round(updates, dropouts, rng).aggregate
        assert np.array_equal(a, b)

    def test_dim_not_divisible_by_submasks(self, gf, rng):
        """Padding path: d % (U - T) != 0."""
        params = LSAParams(6, 2, 2, 4)  # U - T = 2
        proto = LightSecAgg(gf, params, 15)  # 15 odd
        updates = {i: gf.random(15, rng) for i in range(6)}
        result = proto.run_round(updates, {3}, rng)
        expected = proto.expected_aggregate(updates, [0, 1, 2, 4, 5])
        assert np.array_equal(result.aggregate, expected)

    def test_too_many_dropouts(self, gf, rng):
        proto, params = make_protocol(gf, n=5, t=1, d_tol=1)
        updates = {i: gf.random(17, rng) for i in range(5)}
        with pytest.raises(DropoutError):
            proto.run_round(updates, {0, 1, 2}, rng)

    def test_deterministic_given_rng(self, gf):
        proto, _ = make_protocol(gf)
        updates = {
            i: FiniteField().random(17, np.random.default_rng(i)) for i in range(6)
        }
        r1 = proto.run_round(updates, {1}, np.random.default_rng(9))
        r2 = proto.run_round(updates, {1}, np.random.default_rng(9))
        assert np.array_equal(r1.aggregate, r2.aggregate)


class TestTranscript:
    def test_message_counts(self, gf, rng):
        n, dim = 6, 17
        proto, params = make_protocol(gf, n=n, dim=dim)
        updates = {i: gf.random(dim, rng) for i in range(n)}
        result = proto.run_round(updates, {2}, rng)
        t = result.transcript
        share_dim = -(-dim // params.num_submasks)
        # Offline: every user sends N-1 shares.
        assert t.elements(phase="offline") == n * (n - 1) * share_dim
        # Upload: all N users upload d (worst-case dropout point).
        assert t.elements(phase="upload") == n * dim
        # Recovery: exactly U survivors answer with one share each.
        assert t.elements(phase="recovery") == params.target_survivors * share_dim

    def test_recovery_traffic_independent_of_dropouts(self, gf, rng):
        """The LightSecAgg selling point: recovery cost does not grow with
        the number of dropped users."""
        proto, params = make_protocol(gf, n=8, t=2, d_tol=3, dim=24)
        updates = {i: gf.random(24, rng) for i in range(8)}
        r0 = proto.run_round(updates, set(), rng)
        r3 = proto.run_round(updates, {0, 4, 7}, rng)
        assert r0.transcript.elements(phase="recovery") == r3.transcript.elements(
            phase="recovery"
        )
        assert r0.metrics.server_decode_ops == r3.metrics.server_decode_ops

    def test_no_server_prg_work(self, gf, rng):
        proto, _ = make_protocol(gf)
        updates = {i: gf.random(17, rng) for i in range(6)}
        result = proto.run_round(updates, {1}, rng)
        assert result.metrics.server_prg_elements == 0


class TestUserServerStateMachines:
    def test_user_requires_offline_before_mask(self, gf):
        params = LSAParams(4, 1, 1, 3)
        user = LSAUser(0, gf, params, 8)
        with pytest.raises(ProtocolError):
            user.mask_update(gf.zeros(8))

    def test_user_rejects_duplicate_share(self, gf, rng):
        params = LSAParams(4, 1, 1, 3)
        user = LSAUser(0, gf, params, 8)
        share = gf.zeros(user.encoder.share_dim)
        user.receive_share(1, share)
        with pytest.raises(ProtocolError):
            user.receive_share(1, share)

    def test_user_rejects_bad_share_shape(self, gf):
        params = LSAParams(4, 1, 1, 3)
        user = LSAUser(0, gf, params, 8)
        with pytest.raises(ProtocolError):
            user.receive_share(1, gf.zeros(999))

    def test_user_aggregate_requires_all_survivor_shares(self, gf, rng):
        params = LSAParams(4, 1, 1, 3)
        user = LSAUser(0, gf, params, 8)
        user.receive_share(1, gf.zeros(user.encoder.share_dim))
        with pytest.raises(ProtocolError, match="lacks shares"):
            user.aggregate_encoded_masks([1, 2])

    def test_user_id_range_checked(self, gf):
        params = LSAParams(4, 1, 1, 3)
        with pytest.raises(ProtocolError):
            LSAUser(4, gf, params, 8)

    def test_server_requires_enough_survivors(self, gf, rng):
        params = LSAParams(4, 1, 1, 3)
        server = LSAServer(gf, params, 8)
        for i in range(4):
            server.receive_masked_update(i, gf.random(8, rng))
        with pytest.raises(DropoutError):
            server.identify_survivors([0, 1])

    def test_server_rejects_unknown_survivor(self, gf, rng):
        params = LSAParams(4, 1, 1, 3)
        server = LSAServer(gf, params, 8)
        server.receive_masked_update(0, gf.random(8, rng))
        with pytest.raises(ProtocolError, match="never uploaded"):
            server.identify_survivors([0, 1, 2])

    def test_server_rejects_duplicate_upload(self, gf, rng):
        params = LSAParams(4, 1, 1, 3)
        server = LSAServer(gf, params, 8)
        server.receive_masked_update(0, gf.random(8, rng))
        with pytest.raises(ProtocolError, match="duplicate"):
            server.receive_masked_update(0, gf.random(8, rng))

    def test_server_share_phase_ordering(self, gf, rng):
        params = LSAParams(4, 1, 1, 3)
        server = LSAServer(gf, params, 8)
        with pytest.raises(ProtocolError):
            server.receive_aggregated_shares(0, gf.zeros(3))

    def test_server_rejects_share_from_non_survivor(self, gf, rng):
        params = LSAParams(4, 1, 1, 3)
        server = LSAServer(gf, params, 8)
        for i in range(4):
            server.receive_masked_update(i, gf.random(8, rng))
        server.identify_survivors([0, 1, 2])
        with pytest.raises(ProtocolError, match="not in the surviving set"):
            server.receive_aggregated_shares(3, gf.zeros(3))

    def test_server_recover_needs_u_shares(self, gf, rng):
        params = LSAParams(4, 1, 1, 3)
        server = LSAServer(gf, params, 8)
        for i in range(4):
            server.receive_masked_update(i, gf.random(8, rng))
        server.identify_survivors([0, 1, 2, 3])
        with pytest.raises(DropoutError):
            server.recover_aggregate()
