"""End-to-end tests of the SecAgg baseline (paper Sec. 3, eq. 1)."""

from itertools import combinations

import numpy as np
import pytest

from repro.exceptions import DropoutError, ProtocolError
from repro.protocols import NaiveAggregation, SecAgg
from repro.protocols.pairwise.user import PairwiseUser
from repro.crypto.prg import PRG
from repro.crypto.dh import DiffieHellman


class TestCorrectness:
    def test_no_dropouts(self, gf, rng):
        proto = SecAgg(gf, 5, 13)
        updates = {i: gf.random(13, rng) for i in range(5)}
        result = proto.run_round(updates, set(), rng)
        expected = proto.expected_aggregate(updates, list(range(5)))
        assert np.array_equal(result.aggregate, expected)

    def test_single_dropout(self, gf, rng):
        proto = SecAgg(gf, 4, 9)
        updates = {i: gf.random(9, rng) for i in range(4)}
        result = proto.run_round(updates, {1}, rng)
        expected = proto.expected_aggregate(updates, [0, 2, 3])
        assert np.array_equal(result.aggregate, expected)

    def test_all_dropout_patterns(self, gf, rng):
        n = 5
        proto = SecAgg(gf, n, 7, shamir_threshold=1)
        updates = {i: gf.random(7, rng) for i in range(n)}
        for size in range(3):
            for dropouts in combinations(range(n), size):
                result = proto.run_round(updates, set(dropouts), rng)
                survivors = [i for i in range(n) if i not in dropouts]
                expected = proto.expected_aggregate(updates, survivors)
                assert np.array_equal(result.aggregate, expected), dropouts

    def test_matches_naive(self, gf, rng):
        proto = SecAgg(gf, 6, 21)
        naive = NaiveAggregation(gf, 6, 21)
        updates = {i: gf.random(21, rng) for i in range(6)}
        a = proto.run_round(updates, {0, 5}, rng).aggregate
        b = naive.run_round(updates, {0, 5}, rng).aggregate
        assert np.array_equal(a, b)

    def test_sha256_prg_backend(self, gf, rng):
        proto = SecAgg(gf, 4, 9, prg_backend="sha256")
        updates = {i: gf.random(9, rng) for i in range(4)}
        result = proto.run_round(updates, {2}, rng)
        expected = proto.expected_aggregate(updates, [0, 1, 3])
        assert np.array_equal(result.aggregate, expected)

    def test_paper_field(self, gf_paper, rng):
        proto = SecAgg(gf_paper, 4, 9)
        updates = {i: gf_paper.random(9, rng) for i in range(4)}
        result = proto.run_round(updates, {0}, rng)
        expected = proto.expected_aggregate(updates, [1, 2, 3])
        assert np.array_equal(result.aggregate, expected)

    def test_too_many_dropouts_fail_reconstruction(self, gf, rng):
        """With threshold t, reconstruction needs t+1 surviving neighbors."""
        proto = SecAgg(gf, 4, 9, shamir_threshold=2)
        updates = {i: gf.random(9, rng) for i in range(4)}
        with pytest.raises(DropoutError):
            # 3 drops leave a single survivor < t+1 = 3 shares.
            proto.run_round(updates, {0, 1, 2}, rng)


class TestServerWork:
    def test_prg_work_grows_with_dropouts(self, gf, rng):
        """The SecAgg bottleneck: per-drop pairwise mask re-expansion."""
        proto = SecAgg(gf, 6, 11)
        updates = {i: gf.random(11, rng) for i in range(6)}
        r0 = proto.run_round(updates, set(), rng)
        r2 = proto.run_round(updates, {0, 1}, rng)
        assert r2.metrics.server_prg_elements > r0.metrics.server_prg_elements
        # No drops: one b_i expansion per survivor.
        assert r0.metrics.server_prg_elements == 6 * 11
        # Two drops: 4 survivors' b_i + 2 dropped x 4 surviving neighbors.
        assert r2.metrics.server_prg_elements == (4 + 2 * 4) * 11

    def test_offline_traffic_is_key_sized(self, gf, rng):
        proto = SecAgg(gf, 5, 50)
        updates = {i: gf.random(50, rng) for i in range(5)}
        result = proto.run_round(updates, set(), rng)
        # All offline traffic is key-sized (seeds/keys), never d-sized.
        assert result.transcript.elements(phase="offline", key_sized=False) == 0
        assert result.transcript.elements(phase="offline", key_sized=True) > 0


class TestSecurityInvariants:
    def test_masked_update_differs_from_plain(self, gf, rng):
        proto = SecAgg(gf, 4, 32)
        updates = {i: gf.random(32, rng) for i in range(4)}
        result = proto.run_round(updates, set(), rng)
        # The aggregate is correct yet each upload was masked; verify by
        # checking the sum of plain updates != any single plain update.
        assert not np.array_equal(result.aggregate, updates[0])

    def test_user_never_reveals_both_kinds(self, gf, rng):
        """Revealing both b and sk for one target breaks privacy; the server
        API refuses such a collection."""
        from repro.protocols.pairwise.server import PairwiseServer
        from repro.protocols.pairwise.graph import complete_graph

        server = PairwiseServer(
            gf, 3, complete_graph(3), 5, 1, PRG(gf), DiffieHellman()
        )
        for i in range(3):
            server.receive_masked_update(i, gf.random(5, rng))
        with pytest.raises(ProtocolError, match="both"):
            server.recover_aggregate(
                [0, 1], [2],
                collected_b_shares={0: [], 1: [], 2: []},
                collected_sk_shares={2: []},
                shamir_factory=lambda i: None,
            )


class TestPairwiseUserValidation:
    def _user(self, gf, **kw):
        defaults = dict(
            user_id=0,
            gf=gf,
            num_users=3,
            neighbors=[1, 2],
            model_dim=5,
            shamir_threshold=1,
        )
        defaults.update(kw)
        return PairwiseUser(**defaults)

    def test_self_neighbor_rejected(self, gf):
        with pytest.raises(ProtocolError):
            self._user(gf, neighbors=[0, 1])

    def test_threshold_too_large(self, gf):
        with pytest.raises(ProtocolError):
            self._user(gf, shamir_threshold=2)

    def test_phase_ordering(self, gf, rng):
        user = self._user(gf)
        with pytest.raises(ProtocolError):
            user.agree_pairwise({1: 2, 2: 3})
        with pytest.raises(ProtocolError):
            user.share_secrets(rng)
        with pytest.raises(ProtocolError):
            user.mask_update(gf.zeros(5))

    def test_missing_neighbor_key(self, gf, rng):
        user = self._user(gf)
        user.generate_keys(rng)
        with pytest.raises(ProtocolError, match="missing public key"):
            user.agree_pairwise({1: 2})

    def test_reveal_unknown_target(self, gf, rng):
        user = self._user(gf)
        with pytest.raises(ProtocolError):
            user.reveal_share(1, "b")

    def test_reveal_unknown_kind(self, gf, rng):
        user = self._user(gf)
        with pytest.raises(ProtocolError):
            user.reveal_share(1, "seed")
