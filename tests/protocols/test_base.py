"""Tests for protocol base abstractions: transcript, dropout sampling."""

import numpy as np
import pytest

from repro.exceptions import DropoutError, ProtocolError
from repro.field import FiniteField
from repro.protocols.base import (
    SERVER,
    Transcript,
    sample_dropouts,
)
from repro.protocols.naive import NaiveAggregation


class TestTranscript:
    def test_record_and_filter(self):
        t = Transcript()
        t.record(0, SERVER, "upload", 100)
        t.record(1, SERVER, "upload", 100)
        t.record(0, 1, "offline", 5, is_key_sized=True)
        assert t.elements() == 205
        assert t.elements(phase="upload") == 200
        assert t.elements(sender=0) == 105
        assert t.elements(receiver=SERVER) == 200
        assert t.elements(key_sized=True) == 5
        assert len(t) == 3

    def test_per_user_sent(self):
        t = Transcript()
        t.record(0, SERVER, "upload", 10)
        t.record(0, 1, "offline", 5)
        t.record(SERVER, 0, "offline", 7)  # server traffic excluded
        assert t.per_user_sent() == {0: 15}
        assert t.per_user_sent(phase="offline") == {0: 5}

    def test_unknown_phase_rejected(self):
        t = Transcript()
        with pytest.raises(ProtocolError):
            t.record(0, 1, "setup", 1)

    def test_negative_size_rejected(self):
        t = Transcript()
        with pytest.raises(ProtocolError):
            t.record(0, 1, "upload", -1)


class TestSampleDropouts:
    def test_count(self, rng):
        drops = sample_dropouts(100, 0.3, rng)
        assert len(drops) == 30
        assert all(0 <= i < 100 for i in drops)

    def test_zero_rate(self, rng):
        assert sample_dropouts(50, 0.0, rng) == set()

    def test_invalid_rate(self, rng):
        with pytest.raises(ProtocolError):
            sample_dropouts(10, 1.0, rng)
        with pytest.raises(ProtocolError):
            sample_dropouts(10, -0.1, rng)

    def test_deterministic_with_seed(self):
        a = sample_dropouts(100, 0.2, np.random.default_rng(5))
        b = sample_dropouts(100, 0.2, np.random.default_rng(5))
        assert a == b


class TestInputValidation:
    def test_updates_must_cover_all_users(self, gf, rng):
        proto = NaiveAggregation(gf, 4, 8)
        updates = {i: gf.random(8, rng) for i in range(3)}
        with pytest.raises(ProtocolError):
            proto.run_round(updates, set(), rng)

    def test_dropout_ids_in_range(self, gf, rng):
        proto = NaiveAggregation(gf, 4, 8)
        updates = {i: gf.random(8, rng) for i in range(4)}
        with pytest.raises(ProtocolError):
            proto.run_round(updates, {7}, rng)

    def test_all_dropped_rejected(self, gf, rng):
        proto = NaiveAggregation(gf, 3, 8)
        updates = {i: gf.random(8, rng) for i in range(3)}
        with pytest.raises(DropoutError):
            proto.run_round(updates, {0, 1, 2}, rng)

    def test_inconsistent_shapes_rejected(self, gf, rng):
        proto = NaiveAggregation(gf, 3, 8)
        updates = {0: gf.random(8, rng), 1: gf.random(8, rng), 2: gf.random(9, rng)}
        with pytest.raises(ProtocolError):
            proto.run_round(updates, set(), rng)

    def test_too_few_users(self, gf):
        with pytest.raises(ProtocolError):
            NaiveAggregation(gf, 1, 8)


class TestNaive:
    def test_aggregate_correct(self, gf, rng):
        proto = NaiveAggregation(gf, 5, 16)
        updates = {i: gf.random(16, rng) for i in range(5)}
        result = proto.run_round(updates, {1, 3}, rng)
        expected = proto.expected_aggregate(updates, [0, 2, 4])
        assert np.array_equal(result.aggregate, expected)
        assert result.survivors == [0, 2, 4]
        # Only survivors upload in the naive protocol's accounting.
        assert result.transcript.elements(phase="upload") == 3 * 16
