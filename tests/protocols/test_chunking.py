"""Tests for chunked mask transfer and the duplex exchange model."""

import numpy as np
import pytest

from repro.exceptions import ProtocolError
from repro.protocols.chunking import (
    Chunk,
    chunk_vector,
    exchange_times,
    reassemble,
)
from repro.simulation.network import LTE_4G, TESTBED_320


class TestChunkReassemble:
    def test_round_trip_exact_multiple(self, gf, rng):
        vec = gf.random(64, rng)
        chunks = chunk_vector(vec, 16, source=1, dest=2)
        assert len(chunks) == 4
        assert np.array_equal(reassemble(chunks), vec)

    def test_round_trip_ragged(self, gf, rng):
        vec = gf.random(70, rng)
        chunks = chunk_vector(vec, 16)
        assert len(chunks) == 5
        assert chunks[-1].payload.shape == (6,)
        assert np.array_equal(reassemble(chunks), vec)

    def test_out_of_order_reassembly(self, gf, rng):
        vec = gf.random(48, rng)
        chunks = chunk_vector(vec, 16)
        assert np.array_equal(reassemble(list(reversed(chunks))), vec)

    def test_missing_chunk_detected(self, gf, rng):
        chunks = chunk_vector(gf.random(48, rng), 16)
        with pytest.raises(ProtocolError, match="missing"):
            reassemble(chunks[:-1])

    def test_duplicate_chunk_detected(self, gf, rng):
        chunks = chunk_vector(gf.random(48, rng), 16)
        with pytest.raises(ProtocolError):
            reassemble(chunks + [chunks[0]])

    def test_mixed_transfers_detected(self, gf, rng):
        a = chunk_vector(gf.random(16, rng), 16, source=0, dest=1)
        b = chunk_vector(gf.random(16, rng), 16, source=2, dest=1)
        with pytest.raises(ProtocolError, match="mixed"):
            reassemble([a[0], b[0]])

    def test_single_chunk(self, gf, rng):
        vec = gf.random(5, rng)
        chunks = chunk_vector(vec, 100)
        assert len(chunks) == 1
        assert np.array_equal(reassemble(chunks), vec)

    def test_validation(self, gf):
        with pytest.raises(ProtocolError):
            chunk_vector(gf.zeros(4), 0)
        with pytest.raises(ProtocolError):
            chunk_vector(gf.zeros((2, 2)), 2)
        with pytest.raises(ProtocolError):
            reassemble([])

    def test_chunks_are_copies(self, gf, rng):
        vec = gf.random(16, rng)
        chunks = chunk_vector(vec, 8)
        vec[0] = np.uint64(0) if vec[0] else np.uint64(1)
        assert not np.array_equal(chunks[0].payload[0], vec[0])


class TestExchangeModel:
    def test_duplex_halves_serial(self):
        t = exchange_times(num_peers=199, share_elems=30_000,
                           bandwidth=TESTBED_320)
        assert t.duplex_speedup == pytest.approx(2.0, rel=0.01)

    def test_pipelining_beats_plain_duplex(self):
        t = exchange_times(num_peers=199, share_elems=30_000,
                           bandwidth=TESTBED_320)
        assert t.chunk_pipelined <= t.duplex

    def test_slow_link_dominated_by_wire_time(self):
        t = exchange_times(num_peers=100, share_elems=100_000,
                           bandwidth=LTE_4G)
        wire = LTE_4G.seconds(100 * 100_000)
        assert t.chunk_pipelined >= wire
        assert t.chunk_pipelined < wire * 1.5

    def test_zero_peers(self):
        t = exchange_times(0, 1000, TESTBED_320)
        assert t.serial >= 0 and t.duplex >= 0

    def test_validation(self):
        with pytest.raises(ProtocolError):
            exchange_times(-1, 10, TESTBED_320)
