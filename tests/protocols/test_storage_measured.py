"""Measured storage accounting: real protocol objects vs Table 1/5 formulas.

The complexity table's offline-storage row is ``(1 + N/(U-T)) d`` for
LightSecAgg and ``d + N s`` for SecAgg.  These tests count the actual
field elements held by user objects after the offline phase and check the
formulas (exactly, up to the documented padding ceil).
"""

import numpy as np
import pytest

from repro.coding.partition import piece_length
from repro.field import FiniteField
from repro.protocols import LSAParams
from repro.protocols.lightsecagg.user import LSAUser
from repro.protocols.pairwise.graph import complete_graph
from repro.protocols.pairwise.user import SEED_BITS, PairwiseUser
from repro.utils.ints import limbs_needed


class TestLSAStorage:
    @pytest.mark.parametrize("n,t,d_tol,dim", [(6, 2, 2, 24), (8, 3, 2, 100)])
    def test_held_elements_match_formula(self, gf, rng, n, t, d_tol, dim):
        params = LSAParams.from_guarantees(n, t, d_tol)
        users = [LSAUser(i, gf, params, dim) for i in range(n)]
        for user in users:
            shares = user.offline_encode(rng)
            for j, share in shares.items():
                users[j].receive_share(user.user_id, share)

        share_dim = piece_length(dim, params.num_submasks)
        for user in users:
            held = sum(v.size for v in user.held_shares.values())
            own_mask = user.mask.size
            # (1 + N/(U-T)) d, with the padding ceil on each share.
            assert held == n * share_dim
            assert own_mask == dim
            assert held + own_mask == dim + n * share_dim

    def test_storage_grows_as_u_minus_t_shrinks(self, gf, rng):
        """Smaller U-T means bigger coded shares — the p=0.5 penalty."""
        dim = 120
        wide = LSAParams(10, 2, 2, 8)  # U-T = 6
        narrow = LSAParams(10, 2, 2, 3)  # U-T = 1
        u_wide = LSAUser(0, gf, wide, dim)
        u_narrow = LSAUser(0, gf, narrow, dim)
        assert u_narrow.encoder.share_dim > u_wide.encoder.share_dim
        assert u_narrow.encoder.share_dim == dim  # U-T=1: full-size shares


class TestSecAggStorage:
    def test_share_storage_is_key_sized(self, gf, rng):
        """SecAgg users store only seed/key shares — O(N s), not O(N d)."""
        n, dim = 5, 1000
        users = [
            PairwiseUser(
                i, gf, n, [j for j in range(n) if j != i], dim,
                shamir_threshold=1,
            )
            for i in range(n)
        ]
        publics = {u.user_id: u.generate_keys(rng) for u in users}
        for u in users:
            u.agree_pairwise(publics)
        for u in users:
            shares = u.share_secrets(rng)
            for j, payload in shares.items():
                users[j].receive_shares(u.user_id, payload)

        seed_limbs = limbs_needed(SEED_BITS, gf.q)
        sk_limbs = limbs_needed(users[0].dh.prime.bit_length(), gf.q)
        for u in users:
            stored = sum(
                kinds["b"].y.size + kinds["sk"].y.size
                for kinds in u._received_shares.values()
            )
            # One (b, sk) share pair per neighbor, each key-sized.
            assert stored == (n - 1) * (seed_limbs + sk_limbs)
            assert stored < dim  # strictly below one model's worth
