"""Tests for the Zhao & Sun TTP comparator and its storage accounting."""

from itertools import combinations

import numpy as np
import pytest

from repro.exceptions import DropoutError, ProtocolError
from repro.field import FiniteField
from repro.protocols.lightsecagg.params import LSAParams
from repro.protocols.zhao_sun import TrustedThirdPartyMasking
from repro.simulation.storage import (
    lightsecagg_total_randomness,
    zhao_sun_storage_per_user,
    zhao_sun_total_randomness,
)


@pytest.fixture
def scheme(gf, rng):
    params = LSAParams(6, privacy=2, dropout_tolerance=2, target_survivors=4)
    return TrustedThirdPartyMasking(gf, params, model_dim=12, rng=rng), params


class TestCorrectness:
    def test_no_dropouts(self, gf, rng, scheme):
        ttp, params = scheme
        updates = {i: gf.random(12, rng) for i in range(6)}
        aggregate, survivors = ttp.run_round(updates)
        expected = gf.zeros(12)
        for i in survivors:
            expected = gf.add(expected, updates[i])
        assert np.array_equal(aggregate, expected)

    def test_every_admissible_surviving_set(self, gf, rng, scheme):
        ttp, params = scheme
        updates = {i: gf.random(12, rng) for i in range(6)}
        for size in range(params.target_survivors, 7):
            for survivors in combinations(range(6), size):
                dropouts = set(range(6)) - set(survivors)
                aggregate, got = ttp.run_round(updates, dropouts)
                assert got == sorted(survivors)
                expected = gf.zeros(12)
                for i in survivors:
                    expected = gf.add(expected, updates[i])
                assert np.array_equal(aggregate, expected), survivors

    def test_any_u_responders(self, gf, rng, scheme):
        ttp, params = scheme
        survivors = frozenset({0, 1, 3, 5})
        for responders in combinations(sorted(survivors), params.target_survivors):
            mask = ttp.recover_aggregate_mask(survivors, list(responders))
            expected = gf.zeros(12)
            for i in survivors:
                expected = gf.add(expected, ttp.masks[i])
            assert np.array_equal(mask, expected)

    def test_too_few_survivors(self, gf, rng, scheme):
        ttp, _ = scheme
        with pytest.raises(DropoutError):
            ttp.recover_aggregate_mask(frozenset({0, 1, 2}), [0, 1, 2])

    def test_responders_outside_set_rejected(self, gf, rng, scheme):
        ttp, _ = scheme
        with pytest.raises(DropoutError):
            ttp.recover_aggregate_mask(frozenset({0, 1, 2, 3}), [0, 1, 4, 5])

    def test_large_n_refused(self, gf, rng):
        params = LSAParams(20, 5, 5, 14)
        with pytest.raises(ProtocolError, match="N <= 16"):
            TrustedThirdPartyMasking(gf, params, 8, rng)


class TestStorageAccountingMatchesTable6:
    """The implementation's symbol counts must equal the closed forms used
    by the Table 6 benchmark — grounding the formulas in running code."""

    @pytest.mark.parametrize("n,u,t", [(5, 3, 1), (6, 4, 2), (7, 5, 2)])
    def test_total_randomness(self, gf, rng, n, u, t):
        params = LSAParams(n, t, n - u, u)
        ttp = TrustedThirdPartyMasking(gf, params, model_dim=8, rng=rng)
        assert ttp.randomness_symbols == zhao_sun_total_randomness(n, u, t)

    @pytest.mark.parametrize("n,u,t", [(5, 3, 1), (6, 4, 2)])
    def test_mean_per_user_storage(self, gf, rng, n, u, t):
        params = LSAParams(n, t, n - u, u)
        ttp = TrustedThirdPartyMasking(gf, params, model_dim=8, rng=rng)
        mean_storage = np.mean(
            [ttp.storage_symbols_per_user(i) for i in range(n)]
        )
        assert mean_storage == pytest.approx(zhao_sun_storage_per_user(n, u, t))

    def test_exceeds_lightsecagg_randomness(self, gf, rng):
        n, u, t = 6, 4, 2
        params = LSAParams(n, t, n - u, u)
        ttp = TrustedThirdPartyMasking(gf, params, model_dim=8, rng=rng)
        assert ttp.randomness_symbols > lightsecagg_total_randomness(n, u, t)


class TestPrivacyStructure:
    def test_masked_upload_is_masked(self, gf, rng, scheme):
        ttp, _ = scheme
        update = gf.random(12, rng)
        assert not np.array_equal(ttp.mask_update(0, update), update)

    def test_noise_fresh_per_subset(self, gf, rng, scheme):
        """Different surviving sets use independent noise — the stored
        symbols for two sets must differ even for the same user."""
        ttp, _ = scheme
        s1 = frozenset({0, 1, 2, 3})
        s2 = frozenset({0, 1, 2, 4})
        assert not np.array_equal(ttp.storage[0][s1], ttp.storage[0][s2])
