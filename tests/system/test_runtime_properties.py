"""Property-based tests for the event-driven runtime."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field import FiniteField
from repro.protocols import NaiveAggregation
from repro.protocols.lightsecagg.params import LSAParams
from repro.simulation.heterogeneous import UserProfile
from repro.system import SystemRuntime

GF = FiniteField()


@st.composite
def runtime_scenario(draw):
    n = draw(st.integers(4, 9))
    t = draw(st.integers(1, n - 3))
    d_tol = draw(st.integers(0, min(2, n - t - 2)))
    u = draw(st.integers(t + 1, n - d_tol))
    dim = draw(st.integers(1, 40))
    num_drops = draw(st.integers(0, d_tol))
    train_time = draw(st.sampled_from([0.0, 1.0, 5.0]))
    overlap = draw(st.booleans())
    seed = draw(st.integers(0, 2**31 - 1))
    return n, t, d_tol, u, dim, num_drops, train_time, overlap, seed


@given(runtime_scenario())
@settings(max_examples=25, deadline=None)
def test_system_runtime_always_exact(scenario):
    n, t, d_tol, u, dim, num_drops, train_time, overlap, seed = scenario
    rng = np.random.default_rng(seed)
    params = LSAParams(n, t, d_tol, u)
    fleet = [
        UserProfile(
            compute_scale=float(rng.uniform(0.2, 2.0)),
            bandwidth_scale=float(rng.uniform(0.2, 2.0)),
        )
        for _ in range(n)
    ]
    runtime = SystemRuntime(
        GF, params, dim, fleet=fleet, training_time=train_time,
        overlap=overlap,
    )
    updates = {i: GF.random(dim, rng) for i in range(n)}
    dropouts = set(
        rng.choice(n, size=num_drops, replace=False).tolist()
    ) if num_drops else set()
    result = runtime.run_round(updates, dropouts, rng)
    oracle = NaiveAggregation(GF, n, dim).run_round(updates, dropouts, rng)
    assert np.array_equal(result.aggregate, oracle.aggregate)
    assert result.finish_time >= result.recovery_complete >= 0
    assert len(result.responders) == params.target_survivors
