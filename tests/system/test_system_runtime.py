"""Tests for the event-driven system runtime (Fig. 4/5 reproduction)."""

import numpy as np
import pytest

from repro.exceptions import DropoutError, SimulationError
from repro.field import FiniteField
from repro.protocols import NaiveAggregation
from repro.protocols.lightsecagg.params import LSAParams
from repro.simulation.heterogeneous import UserProfile, sample_fleet
from repro.system import EventSimulator, SerialResource, SystemRuntime


@pytest.fixture
def params():
    return LSAParams.from_guarantees(8, privacy=2, dropout_tolerance=2)


def make_updates(gf, n, dim, rng):
    return {i: gf.random(dim, rng) for i in range(n)}


class TestEventCore:
    def test_events_run_in_time_order(self):
        sim = EventSimulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        end = sim.run()
        assert order == ["a", "b", "c"]
        assert end == 3.0

    def test_ties_fifo(self):
        sim = EventSimulator()
        order = []
        sim.schedule(1.0, lambda: order.append(1))
        sim.schedule(1.0, lambda: order.append(2))
        sim.run()
        assert order == [1, 2]

    def test_scheduling_in_past_rejected(self):
        sim = EventSimulator()
        sim.schedule(5.0, lambda: sim.schedule(1.0, lambda: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_run_until(self):
        sim = EventSimulator()
        hits = []
        sim.schedule(1.0, lambda: hits.append(1))
        sim.schedule(10.0, lambda: hits.append(2))
        sim.run(until=5.0)
        assert hits == [1]

    def test_serial_resource_serializes(self):
        sim = EventSimulator()
        ends = []
        res = SerialResource()
        res.acquire(sim, 0.0, 2.0, ends.append)
        res.acquire(sim, 0.0, 3.0, ends.append)  # queued behind the first
        sim.run()
        assert ends == [2.0, 5.0]
        assert res.total_busy == 5.0

    def test_negative_duration_rejected(self):
        sim = EventSimulator()
        with pytest.raises(SimulationError):
            SerialResource().acquire(sim, 0.0, -1.0, lambda t: None)


class TestCorrectness:
    def test_aggregate_matches_naive(self, gf, rng, params):
        runtime = SystemRuntime(gf, params, model_dim=40, training_time=1.0)
        updates = make_updates(gf, 8, 40, rng)
        result = runtime.run_round(updates, dropouts={3}, rng=rng)
        naive = NaiveAggregation(gf, 8, 40).run_round(updates, {3}, rng)
        assert np.array_equal(result.aggregate, naive.aggregate)
        assert result.survivors == naive.survivors

    def test_no_dropouts(self, gf, rng, params):
        runtime = SystemRuntime(gf, params, model_dim=24)
        updates = make_updates(gf, 8, 24, rng)
        result = runtime.run_round(updates, rng=rng)
        expected = NaiveAggregation(gf, 8, 24).run_round(updates, set(), rng)
        assert np.array_equal(result.aggregate, expected.aggregate)

    def test_max_dropouts(self, gf, rng, params):
        runtime = SystemRuntime(gf, params, model_dim=24)
        updates = make_updates(gf, 8, 24, rng)
        result = runtime.run_round(updates, dropouts={0, 7}, rng=rng)
        assert result.survivors == [1, 2, 3, 4, 5, 6]

    def test_too_many_dropouts(self, gf, rng, params):
        runtime = SystemRuntime(gf, params, model_dim=24)
        updates = make_updates(gf, 8, 24, rng)
        with pytest.raises(DropoutError):
            runtime.run_round(updates, dropouts={0, 1, 2, 3}, rng=rng)

    def test_fleet_size_validated(self, gf, params):
        with pytest.raises(SimulationError):
            SystemRuntime(gf, params, 24, fleet=[UserProfile()] * 3)


class TestTimingBehaviour:
    def test_overlap_faster_than_serial(self, gf, rng, params):
        """Fig. 5: the overlapped pipeline hides offline work behind
        training."""
        updates = make_updates(gf, 8, 40, rng)
        t_overlap = SystemRuntime(
            gf, params, 40, training_time=5.0, overlap=True
        ).run_round(updates, rng=np.random.default_rng(0)).finish_time
        t_serial = SystemRuntime(
            gf, params, 40, training_time=5.0, overlap=False
        ).run_round(updates, rng=np.random.default_rng(0)).finish_time
        assert t_overlap < t_serial

    def test_phase_ordering(self, gf, rng, params):
        runtime = SystemRuntime(gf, params, 40, training_time=2.0)
        result = runtime.run_round(make_updates(gf, 8, 40, rng), rng=rng)
        assert 0 < result.upload_complete <= result.recovery_complete
        assert result.recovery_complete <= result.finish_time
        for i in result.survivors:
            assert result.spans[i].upload_done <= result.upload_complete

    def test_recovery_uses_fastest_u_responders(self, gf, rng):
        """With stragglers in the fleet, the decode starts after the U-th
        response, and slow devices are not among the chosen responders."""
        params = LSAParams.from_guarantees(10, privacy=3, dropout_tolerance=2)
        fleet = [UserProfile()] * 8 + [
            UserProfile(compute_scale=0.02, bandwidth_scale=0.02)
        ] * 2
        runtime = SystemRuntime(gf, params, 4_000, fleet=fleet)
        result = runtime.run_round(
            make_updates(gf, 10, 4_000, rng), rng=rng
        )
        assert len(result.responders) == params.target_survivors
        # The two stragglers (ids 8, 9) are not needed for recovery.
        assert 8 not in result.responders
        assert 9 not in result.responders

    def test_straggler_in_upload_path_still_blocks(self, gf, rng):
        """Uploads need *all* survivors; recovery needs only U.  A slow
        survivor delays upload_complete but not the recovery wait."""
        params = LSAParams.from_guarantees(8, privacy=2, dropout_tolerance=2)
        slow_fleet = [UserProfile()] * 7 + [UserProfile(bandwidth_scale=0.05)]
        fast = SystemRuntime(gf, params, 8_000).run_round(
            make_updates(gf, 8, 8_000, rng), rng=np.random.default_rng(1)
        )
        slow = SystemRuntime(gf, params, 8_000, fleet=slow_fleet).run_round(
            make_updates(gf, 8, 8_000, rng), rng=np.random.default_rng(1)
        )
        assert slow.upload_complete > fast.upload_complete

    def test_heterogeneous_fleet_correctness_preserved(self, gf, rng):
        params = LSAParams.from_guarantees(8, privacy=2, dropout_tolerance=2)
        fleet = sample_fleet(8, straggler_fraction=0.3,
                             straggler_slowdown=5.0,
                             rng=np.random.default_rng(2))
        updates = make_updates(gf, 8, 32, rng)
        result = SystemRuntime(gf, params, 32, fleet=fleet).run_round(
            updates, dropouts={5}, rng=rng
        )
        expected = NaiveAggregation(gf, 8, 32).run_round(updates, {5}, rng)
        assert np.array_equal(result.aggregate, expected.aggregate)
