"""Tests for the session-driven event loop (pooled offline material)."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.field import FiniteField
from repro.protocols.lightsecagg.params import LSAParams
from repro.simulation.heterogeneous import UserProfile
from repro.system import SystemRuntime, SystemSession


@pytest.fixture
def params():
    return LSAParams.from_guarantees(8, privacy=2, dropout_tolerance=2)


def make_updates(gf, n, dim, rng):
    return {i: gf.random(dim, rng) for i in range(n)}


def expected_sum(gf, updates, survivors):
    return gf.sum(np.stack([updates[i] for i in survivors]), axis=0)


class TestSystemSession:
    def test_pooled_round_is_correct(self, gf, params, rng):
        rt = SystemRuntime(gf, params, model_dim=40)
        session = rt.session(pool_size=3, rng=rng)
        session.refill()
        updates = make_updates(gf, 8, 40, rng)
        result = session.run_round(updates, {1}, rng)
        assert result.offline_pooled
        assert np.array_equal(
            result.aggregate,
            expected_sum(gf, updates, [i for i in range(8) if i != 1]),
        )

    def test_pooled_round_skips_offline_critical_path(self, gf, params, rng):
        rt = SystemRuntime(gf, params, model_dim=60, training_time=0.0)
        updates = make_updates(gf, 8, 60, rng)
        one_shot = rt.run_round(updates, set(), rng)
        session = rt.session(pool_size=1, rng=rng)
        session.refill()
        pooled = session.run_round(updates, set(), rng)
        assert all(s.offline_done == 0.0 for s in pooled.spans.values())
        assert pooled.finish_time < one_shot.finish_time
        assert session.background_seconds > 0.0

    def test_session_refills_when_pool_drains(self, gf, params, rng):
        rt = SystemRuntime(gf, params, model_dim=30)
        session = rt.session(pool_size=2, rng=rng)
        updates = make_updates(gf, 8, 30, rng)
        results = []
        for r in range(5):
            result = session.run_round(updates, set(), rng)
            results.append(result)
            assert np.array_equal(
                result.aggregate, expected_sum(gf, updates, list(range(8)))
            ), r
        assert session.stats.rounds == 5
        assert session.stats.pool_hits + session.stats.pool_misses == 5
        # Rounds 0 and 3 miss the empty pool (each kicks a 2-round refill);
        # rounds 1, 2, and 4 are hits.
        assert session.stats.refills == 2
        assert [r.offline_pooled for r in results] == [
            False, True, True, False, True,
        ]

    def test_pool_miss_pays_offline_on_critical_path(self, gf, params, rng):
        """A cold-start miss must not look as fast as a pooled round."""
        rt = SystemRuntime(gf, params, model_dim=60, training_time=0.0)
        session = rt.session(pool_size=1, rng=rng)
        updates = make_updates(gf, 8, 60, rng)
        miss = session.run_round(updates, set(), rng)  # pool empty
        hit = session.run_round(updates, set(), rng)  # refilled by the miss
        assert not miss.offline_pooled and hit.offline_pooled
        assert miss.finish_time > hit.finish_time
        assert any(s.offline_done > 0.0 for s in miss.spans.values())

    def test_background_time_accumulates_per_refill(self, gf, params, rng):
        rt = SystemRuntime(gf, params, model_dim=30)
        session = rt.session(pool_size=2, rng=rng)
        session.refill()
        first = session.background_seconds
        assert first > 0
        session.refill(2)
        assert session.background_seconds > first

    def test_heterogeneous_fleet_slows_background_refill(self, gf, params, rng):
        fast = SystemRuntime(gf, params, model_dim=30)
        slow_fleet = [UserProfile()] * 7 + [
            UserProfile(compute_scale=0.25, bandwidth_scale=0.25)
        ]
        slow = SystemRuntime(gf, params, model_dim=30, fleet=slow_fleet)
        s_fast = fast.session(pool_size=2, rng=rng)
        s_slow = slow.session(pool_size=2, rng=rng)
        s_fast.refill()
        s_slow.refill()
        assert s_slow.background_seconds > s_fast.background_seconds

    def test_training_still_gates_upload_on_pool_hit(self, gf, params, rng):
        rt = SystemRuntime(gf, params, model_dim=30, training_time=2.0)
        session = rt.session(pool_size=1, rng=rng)
        session.refill()
        updates = make_updates(gf, 8, 30, rng)
        result = session.run_round(updates, set(), rng)
        assert result.finish_time >= 2.0
        assert all(s.training_done >= 2.0 for s in result.spans.values())

    def test_invalid_pool_size(self, gf, params):
        rt = SystemRuntime(gf, params, model_dim=30)
        with pytest.raises(SimulationError):
            SystemSession(rt, pool_size=0)
