"""Tests for the (n, k) MDS erasure code."""

from itertools import combinations

import numpy as np
import pytest

from repro.coding.mds import MDSCode
from repro.exceptions import CodingError, NotEnoughSharesError
from repro.field.linalg import is_mds


@pytest.fixture(params=["lagrange", "vandermonde"])
def generator(request):
    return request.param


class TestConstruction:
    def test_invalid_params(self, gf):
        with pytest.raises(CodingError):
            MDSCode(gf, n=3, k=4)
        with pytest.raises(CodingError):
            MDSCode(gf, n=3, k=0)

    def test_unknown_generator(self, gf):
        with pytest.raises(CodingError, match="generator"):
            MDSCode(gf, n=4, k=2, generator="fourier")

    def test_field_too_small(self, gf_small):
        with pytest.raises(CodingError, match="too small"):
            MDSCode(gf_small, n=90, k=20)

    def test_generator_matrix_is_mds(self, gf, generator):
        code = MDSCode(gf, n=7, k=3, generator=generator)
        assert is_mds(gf, code.generator_matrix)

    def test_repr(self, gf):
        assert "MDSCode" in repr(MDSCode(gf, 4, 2))


class TestRoundTrip:
    def test_all_k_subsets_decode(self, gf, generator, rng):
        n, k, width = 6, 3, 4
        code = MDSCode(gf, n=n, k=k, generator=generator)
        data = gf.random((k, width), rng)
        coded = code.encode(data)
        for subset in combinations(range(n), k):
            shares = {j: coded[j] for j in subset}
            assert np.array_equal(code.decode(shares), data), subset

    def test_scalar_symbols(self, gf, generator, rng):
        code = MDSCode(gf, n=5, k=2, generator=generator)
        data = gf.random(2, rng)
        coded = code.encode(data)
        assert coded.shape == (5,)
        out = code.decode({1: coded[1], 3: coded[3]})
        assert np.array_equal(out, data)

    def test_extra_shares_ignored(self, gf, generator, rng):
        code = MDSCode(gf, n=6, k=3, generator=generator)
        data = gf.random((3, 2), rng)
        coded = code.encode(data)
        shares = {j: coded[j] for j in range(6)}
        assert np.array_equal(code.decode(shares), data)

    def test_paper_prime_field(self, gf_paper, generator, rng):
        code = MDSCode(gf_paper, n=8, k=5, generator=generator)
        data = gf_paper.random((5, 3), rng)
        coded = code.encode(data)
        shares = {j: coded[j] for j in (0, 2, 4, 6, 7)}
        assert np.array_equal(code.decode(shares), data)

    def test_linearity(self, gf, generator, rng):
        """encode(a) + encode(b) == encode(a + b) — the LightSecAgg core."""
        code = MDSCode(gf, n=6, k=3, generator=generator)
        a = gf.random((3, 4), rng)
        b = gf.random((3, 4), rng)
        lhs = gf.add(code.encode(a), code.encode(b))
        rhs = code.encode(gf.add(a, b))
        assert np.array_equal(lhs, rhs)


class TestErrors:
    def test_not_enough_shares(self, gf, rng):
        code = MDSCode(gf, n=5, k=3)
        data = gf.random((3, 2), rng)
        coded = code.encode(data)
        with pytest.raises(NotEnoughSharesError):
            code.decode({0: coded[0], 1: coded[1]})

    def test_wrong_data_rows(self, gf, rng):
        code = MDSCode(gf, n=5, k=3)
        with pytest.raises(CodingError):
            code.encode(gf.random((4, 2), rng))

    def test_share_index_out_of_range(self, gf, rng):
        code = MDSCode(gf, n=5, k=2)
        coded = code.encode(gf.random((2, 2), rng))
        with pytest.raises(CodingError, match="out of range"):
            code.decode({0: coded[0], 9: coded[1]})

    def test_inconsistent_share_shapes(self, gf, rng):
        code = MDSCode(gf, n=5, k=2)
        with pytest.raises(CodingError, match="inconsistent"):
            code.decode({0: gf.zeros(3), 1: gf.zeros(4)})


class TestDecodeAt:
    def test_reencode_matches(self, gf, rng):
        """decode_at on the alpha points reproduces the coded symbols."""
        code = MDSCode(gf, n=6, k=3, generator="lagrange")
        data = gf.random((3, 2), rng)
        coded = code.encode(data)
        shares = {j: coded[j] for j in (0, 2, 5)}
        again = code.decode_at(shares, code.alpha)
        assert np.array_equal(again, coded)

    def test_vandermonde_rejected(self, gf, rng):
        code = MDSCode(gf, n=5, k=2, generator="vandermonde")
        coded = code.encode(gf.random((2, 2), rng))
        with pytest.raises(CodingError):
            code.decode_at({0: coded[0], 1: coded[1]}, [1])
