"""Tests for vector partitioning with padding."""

import numpy as np
import pytest

from repro.coding.partition import (
    padded_length,
    partition,
    piece_length,
    unpartition,
)
from repro.exceptions import CodingError


class TestPaddedLength:
    def test_exact_multiple(self):
        assert padded_length(12, 4) == 12

    def test_rounds_up(self):
        assert padded_length(13, 4) == 16
        assert padded_length(1, 4) == 4

    def test_zero_length(self):
        assert padded_length(0, 4) == 0

    def test_invalid_pieces(self):
        with pytest.raises(CodingError):
            padded_length(10, 0)

    def test_negative_length(self):
        with pytest.raises(CodingError):
            padded_length(-1, 2)


class TestPieceLength:
    def test_divisible(self):
        assert piece_length(12, 4) == 3

    def test_padded(self):
        assert piece_length(13, 4) == 4


class TestPartitionRoundTrip:
    @pytest.mark.parametrize("d,pieces", [(12, 4), (13, 4), (1, 5), (100, 7)])
    def test_round_trip(self, d, pieces):
        vec = np.arange(d, dtype=np.uint64)
        parts = partition(vec, pieces)
        assert parts.shape == (pieces, piece_length(d, pieces))
        back = unpartition(parts, d)
        assert np.array_equal(back, vec)

    def test_padding_is_zero(self):
        vec = np.ones(5, dtype=np.uint64)
        parts = partition(vec, 3)
        assert parts.reshape(-1)[5:].tolist() == [0]

    def test_partition_requires_1d(self):
        with pytest.raises(CodingError):
            partition(np.zeros((2, 2), dtype=np.uint64), 2)

    def test_unpartition_requires_2d(self):
        with pytest.raises(CodingError):
            unpartition(np.zeros(4, dtype=np.uint64), 4)

    def test_unpartition_length_check(self):
        with pytest.raises(CodingError):
            unpartition(np.zeros((2, 2), dtype=np.uint64), 5)

    def test_unpartition_returns_copy(self):
        parts = np.arange(6, dtype=np.uint64).reshape(2, 3)
        out = unpartition(parts, 6)
        out[0] = 99
        assert parts[0, 0] == 0
