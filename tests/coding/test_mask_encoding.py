"""Tests for the T-private LightSecAgg mask encoder (paper eq. 5/28)."""

from itertools import combinations

import numpy as np
import pytest

from repro.coding.mask_encoding import MaskEncoder
from repro.exceptions import CodingError, NotEnoughSharesError
from repro.field import FiniteField
from repro.field.linalg import is_invertible


class TestConstruction:
    def test_parameter_validation(self, gf):
        with pytest.raises(CodingError):
            MaskEncoder(gf, num_users=4, target_survivors=2, privacy=2, model_dim=8)
        with pytest.raises(CodingError):
            MaskEncoder(gf, num_users=4, target_survivors=5, privacy=1, model_dim=8)
        with pytest.raises(CodingError):
            MaskEncoder(gf, num_users=4, target_survivors=3, privacy=-1, model_dim=8)
        with pytest.raises(CodingError):
            MaskEncoder(gf, num_users=4, target_survivors=3, privacy=1, model_dim=0)

    def test_share_dim(self, gf):
        enc = MaskEncoder(gf, 6, target_survivors=4, privacy=2, model_dim=10)
        # d=10 split into U-T=2 pieces -> 5 each.
        assert enc.share_dim == 5
        assert enc.num_submasks == 2

    def test_share_dim_with_padding(self, gf):
        enc = MaskEncoder(gf, 6, target_survivors=5, privacy=2, model_dim=10)
        # 10 into 3 pieces -> padded to 12 -> 4 each.
        assert enc.share_dim == 4


class TestEncodeDecode:
    @pytest.mark.parametrize("generator", ["lagrange", "vandermonde"])
    def test_single_mask_recovery(self, gf, rng, generator):
        """With one user 'aggregated', decoding returns that user's mask."""
        enc = MaskEncoder(gf, 5, 4, 2, 13, generator=generator)
        z = enc.generate_mask(rng)
        shares = enc.encode(z, rng)
        agg = {j: shares[j] for j in range(4)}
        assert np.array_equal(enc.decode_aggregate(agg), z)

    def test_aggregate_recovery_every_survivor_subset(self, gf, rng):
        """Exhaustive: every dropout pattern up to D recovers exactly."""
        n, u, t, d = 5, 3, 1, 7
        enc = MaskEncoder(gf, n, u, t, d)
        masks = [enc.generate_mask(rng) for _ in range(n)]
        shares = [enc.encode(z, rng) for z in masks]
        for surv_size in range(u, n + 1):
            for survivors in combinations(range(n), surv_size):
                expected = gf.zeros(d)
                for i in survivors:
                    expected = gf.add(expected, masks[i])
                # Any U of the survivors respond.
                responders = survivors[:u]
                agg = {
                    j: enc.aggregate_shares(
                        {i: shares[i][j] for i in survivors}
                    )
                    for j in responders
                }
                assert np.array_equal(enc.decode_aggregate(agg), expected)

    def test_any_u_responders_work(self, gf, rng):
        n, u, t, d = 6, 4, 2, 11
        enc = MaskEncoder(gf, n, u, t, d)
        masks = [enc.generate_mask(rng) for _ in range(n)]
        shares = [enc.encode(z, rng) for z in masks]
        survivors = [0, 1, 3, 4, 5]
        expected = gf.zeros(d)
        for i in survivors:
            expected = gf.add(expected, masks[i])
        for responders in combinations(survivors, u):
            agg = {
                j: enc.aggregate_shares({i: shares[i][j] for i in survivors})
                for j in responders
            }
            assert np.array_equal(enc.decode_aggregate(agg), expected)

    def test_too_few_aggregated_shares(self, gf, rng):
        enc = MaskEncoder(gf, 5, 4, 2, 8)
        z = enc.generate_mask(rng)
        shares = enc.encode(z, rng)
        with pytest.raises(NotEnoughSharesError):
            enc.decode_aggregate({0: shares[0], 1: shares[1]})

    def test_mask_shape_checked(self, gf, rng):
        enc = MaskEncoder(gf, 5, 4, 2, 8)
        with pytest.raises(CodingError):
            enc.encode(gf.zeros(9), rng)

    def test_aggregate_shares_empty(self, gf):
        enc = MaskEncoder(gf, 5, 4, 2, 8)
        with pytest.raises(CodingError):
            enc.aggregate_shares({})

    def test_deterministic_given_rng(self, gf):
        enc = MaskEncoder(gf, 5, 4, 2, 8)
        z = enc.generate_mask(np.random.default_rng(7))
        s1 = enc.encode(z, np.random.default_rng(9))
        s2 = enc.encode(z, np.random.default_rng(9))
        assert np.array_equal(s1, s2)

    def test_paper_prime(self, gf_paper, rng):
        enc = MaskEncoder(gf_paper, 4, 3, 1, 9)
        masks = [enc.generate_mask(rng) for _ in range(4)]
        shares = [enc.encode(z, rng) for z in masks]
        survivors = [0, 2, 3]
        agg = {
            j: enc.aggregate_shares({i: shares[i][j] for i in survivors})
            for j in survivors
        }
        expected = gf_paper.add(gf_paper.add(masks[0], masks[2]), masks[3])
        assert np.array_equal(enc.decode_aggregate(agg), expected)


class TestTPrivacy:
    """Structural and statistical checks of the T-privacy property."""

    @pytest.mark.parametrize("generator", ["lagrange", "vandermonde"])
    def test_padding_mixing_submatrix_invertible(self, gf, generator):
        """The paper's T-private-MDS condition: the submatrix mapping the T
        random paddings into any T coded shares must be invertible — then
        those shares are uniform regardless of z."""
        n, u, t = 6, 4, 2
        enc = MaskEncoder(gf, n, u, t, 8, generator=generator)
        g = enc.code.generator_matrix  # (U, N)
        padding_rows = g[u - t:, :]  # (T, N)
        for cols in combinations(range(n), t):
            sub = padding_rows[:, list(cols)]
            assert is_invertible(gf, sub), cols

    def test_t_shares_statistically_uniform(self, gf_small):
        """Empirical: with fixed z, any T shares look uniform over GF(97)."""
        n, u, t, d = 4, 3, 1, 2
        enc = MaskEncoder(gf_small, n, u, t, d)
        z = gf_small.array([5, 10])
        rng = np.random.default_rng(0)
        samples = []
        for _ in range(4000):
            shares = enc.encode(z, rng)
            samples.append(int(shares[0][0]))
        counts = np.bincount(samples, minlength=97)
        # Chi-square against uniform; dof=96, 99.9% quantile ~ 148.
        expected = len(samples) / 97
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 < 160, chi2

    def test_t_plus_one_shares_determine_coded_values(self, gf_small):
        """Sanity: privacy does NOT extend to T+1 shares — with U-T=... the
        shares do depend on z, so decoding from U shares must recover it."""
        n, u, t, d = 4, 3, 1, 2
        enc = MaskEncoder(gf_small, n, u, t, d)
        rng = np.random.default_rng(1)
        z1 = enc.generate_mask(rng)
        shares = enc.encode(z1, rng)
        agg = {j: shares[j] for j in range(u)}
        assert np.array_equal(enc.decode_aggregate(agg), z1)
