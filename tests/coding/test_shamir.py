"""Tests for Shamir secret sharing."""

from itertools import combinations

import numpy as np
import pytest

from repro.coding.shamir import ShamirSecretSharing, ShamirShare
from repro.exceptions import CodingError, NotEnoughSharesError


class TestConstruction:
    def test_threshold_bounds(self, gf):
        with pytest.raises(CodingError):
            ShamirSecretSharing(gf, num_shares=3, threshold=3)
        with pytest.raises(CodingError):
            ShamirSecretSharing(gf, num_shares=3, threshold=-1)

    def test_field_size_bound(self, gf_small):
        with pytest.raises(CodingError):
            ShamirSecretSharing(gf_small, num_shares=97, threshold=2)


class TestReconstruct:
    def test_scalar_round_trip(self, gf, rng):
        sss = ShamirSecretSharing(gf, num_shares=5, threshold=2)
        shares = sss.share(42, rng)
        assert len(shares) == 5
        subset = [shares[1], shares[3], shares[5]]
        assert sss.reconstruct_scalar(subset) == 42

    def test_all_minimal_subsets(self, gf, rng):
        sss = ShamirSecretSharing(gf, num_shares=6, threshold=2)
        secret = 123456
        shares = sss.share(secret, rng)
        for xs in combinations(range(1, 7), 3):
            subset = [shares[x] for x in xs]
            assert sss.reconstruct_scalar(subset) == secret

    def test_vector_secret(self, gf, rng):
        sss = ShamirSecretSharing(gf, num_shares=4, threshold=1)
        secret = gf.random(10, rng)
        shares = sss.share(secret, rng)
        out = sss.reconstruct([shares[2], shares[4]])
        assert np.array_equal(out, secret)

    def test_extra_shares_ignored(self, gf, rng):
        sss = ShamirSecretSharing(gf, num_shares=5, threshold=2)
        shares = sss.share(7, rng)
        assert sss.reconstruct_scalar(list(shares.values())) == 7

    def test_not_enough_shares(self, gf, rng):
        sss = ShamirSecretSharing(gf, num_shares=5, threshold=3)
        shares = sss.share(7, rng)
        with pytest.raises(NotEnoughSharesError):
            sss.reconstruct([shares[1], shares[2], shares[3]])

    def test_duplicate_shares_not_counted(self, gf, rng):
        sss = ShamirSecretSharing(gf, num_shares=5, threshold=2)
        shares = sss.share(7, rng)
        with pytest.raises(NotEnoughSharesError):
            sss.reconstruct([shares[1], shares[1], shares[1]])

    def test_scalar_accessor_rejects_vectors(self, gf, rng):
        sss = ShamirSecretSharing(gf, num_shares=4, threshold=1)
        shares = sss.share(gf.random(3, rng), rng)
        with pytest.raises(CodingError):
            sss.reconstruct_scalar([shares[1], shares[2]])

    def test_zero_threshold_is_replication(self, gf, rng):
        """t=0 means any single share reveals the secret (degree-0 poly)."""
        sss = ShamirSecretSharing(gf, num_shares=3, threshold=0)
        shares = sss.share(99, rng)
        for s in shares.values():
            assert sss.reconstruct_scalar([s]) == 99


class TestPrivacy:
    def test_t_shares_uniform(self, gf_small):
        """With threshold t, any t shares of a fixed secret are uniform."""
        sss = ShamirSecretSharing(gf_small, num_shares=3, threshold=1)
        rng = np.random.default_rng(0)
        values = [int(sss.share(11, rng)[2].y[0]) for _ in range(4000)]
        counts = np.bincount(values, minlength=97)
        expected = len(values) / 97
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 < 160, chi2

    def test_different_secrets_same_share_marginal(self, gf_small):
        """Share distributions should not depend on the secret."""
        sss = ShamirSecretSharing(gf_small, num_shares=3, threshold=1)
        rng = np.random.default_rng(1)
        means = []
        for secret in (0, 48, 96):
            vals = [int(sss.share(secret, rng)[1].y[0]) for _ in range(2000)]
            means.append(np.mean(vals))
        # All marginals uniform -> means all near 48 (= (q-1)/2).
        assert max(means) - min(means) < 5.0


class TestShareDataclass:
    def test_share_fields(self, gf, rng):
        sss = ShamirSecretSharing(gf, num_shares=2, threshold=1)
        shares = sss.share(5, rng)
        s = shares[1]
        assert isinstance(s, ShamirShare)
        assert s.x == 1
        assert s.y.shape == (1,)
