"""Property-based tests of the coding layer (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.mask_encoding import MaskEncoder
from repro.coding.mds import MDSCode
from repro.coding.partition import partition, piece_length, unpartition
from repro.coding.shamir import ShamirSecretSharing
from repro.field import FiniteField

GF = FiniteField()


@st.composite
def nk_params(draw):
    k = draw(st.integers(1, 6))
    n = draw(st.integers(k, k + 6))
    return n, k


@st.composite
def lsa_params(draw):
    t = draw(st.integers(0, 3))
    u = draw(st.integers(t + 1, t + 4))
    n = draw(st.integers(u, u + 4))
    d = draw(st.integers(1, 40))
    return n, u, t, d


@given(nk_params(), st.integers(1, 8), st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_mds_round_trip_random_subsets(params, width, pyrandom):
    n, k = params
    rng = np.random.default_rng(pyrandom.randint(0, 2**31))
    code = MDSCode(GF, n=n, k=k)
    data = GF.random((k, width), rng)
    coded = code.encode(data)
    subset = sorted(pyrandom.sample(range(n), k))
    out = code.decode({j: coded[j] for j in subset})
    assert np.array_equal(out, data)


@given(lsa_params(), st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_mask_encoder_aggregate_recovery(params, pyrandom):
    n, u, t, d = params
    rng = np.random.default_rng(pyrandom.randint(0, 2**31))
    enc = MaskEncoder(GF, n, u, t, d)
    num_survivors = pyrandom.randint(u, n)
    survivors = sorted(pyrandom.sample(range(n), num_survivors))
    masks = {i: enc.generate_mask(rng) for i in survivors}
    shares = {i: enc.encode(masks[i], rng) for i in survivors}
    responders = sorted(pyrandom.sample(survivors, u))
    agg = {
        j: enc.aggregate_shares({i: shares[i][j] for i in survivors})
        for j in responders
    }
    expected = GF.zeros(d)
    for i in survivors:
        expected = GF.add(expected, masks[i])
    assert np.array_equal(enc.decode_aggregate(agg), expected)


@given(
    st.integers(0, 4),
    st.integers(0, 2**31 - 2),
    st.randoms(use_true_random=False),
)
@settings(max_examples=40, deadline=None)
def test_shamir_round_trip(threshold, secret, pyrandom):
    n = threshold + 1 + pyrandom.randint(0, 3)
    rng = np.random.default_rng(pyrandom.randint(0, 2**31))
    sss = ShamirSecretSharing(GF, num_shares=n, threshold=threshold)
    shares = sss.share(secret, rng)
    chosen = pyrandom.sample(sorted(shares), threshold + 1)
    assert sss.reconstruct_scalar([shares[x] for x in chosen]) == secret


@given(st.integers(0, 200), st.integers(1, 20))
@settings(max_examples=60, deadline=None)
def test_partition_round_trip(d, pieces):
    if d == 0:
        return
    vec = np.arange(d, dtype=np.uint64)
    parts = partition(vec, pieces)
    assert parts.shape == (pieces, piece_length(d, pieces))
    assert np.array_equal(unpartition(parts, d), vec)


@given(lsa_params(), st.randoms(use_true_random=False))
@settings(max_examples=30, deadline=None)
def test_mask_encoding_linearity(params, pyrandom):
    """share-sum of encodings == encoding of mask-sum (with zero padding)."""
    n, u, t, d = params
    rng = np.random.default_rng(pyrandom.randint(0, 2**31))
    enc = MaskEncoder(GF, n, u, t, d)
    z1, z2 = enc.generate_mask(rng), enc.generate_mask(rng)
    s1 = enc.encode(z1, rng)
    s2 = enc.encode(z2, rng)
    summed_shares = GF.add(s1, s2)
    # Decoding the summed shares recovers z1 + z2.
    agg = {j: summed_shares[j] for j in range(u)}
    assert np.array_equal(enc.decode_aggregate(agg), GF.add(z1, z2))
