"""Service stress tests (marked ``slow``; excluded from tier-1 via -m).

Hammers the consumer/refiller concurrency contract far past what the
fast tests cover: long free-running drains with no settle barrier, many
cohorts sharing one refill worker, and repeated start/stop cycles.
Run with ``python -m pytest -m slow tests/service``.
"""

import numpy as np
import pytest

from repro.field import FiniteField
from repro.protocols import LightSecAgg, LSAParams
from repro.service import (
    AggregationService,
    BackgroundRefiller,
    RefillMode,
    ServiceConfig,
)

pytestmark = pytest.mark.slow

N, DIM = 8, 64


@pytest.fixture
def proto(gf):
    params = LSAParams.from_guarantees(N, privacy=2, dropout_tolerance=2)
    return LightSecAgg(gf, params, DIM)


class TestFreeRunningContention:
    def test_long_unsettled_drain_stays_correct(self, gf, proto):
        """200 rounds with the consumer racing the refiller, no barrier.

        Correctness must hold even when the consumer outruns the
        refiller (inline refills fill the gap); every aggregate is
        checked against the exact expected sum.
        """
        session = proto.session(
            pool_size=8, low_water=4, rng=np.random.default_rng(0)
        )
        rng = np.random.default_rng(1)
        with BackgroundRefiller(poll_interval_s=0.0001) as refiller:
            refiller.register(session)
            for r in range(200):
                updates = {i: gf.random(DIM, rng) for i in range(N)}
                dropouts = set(
                    rng.choice(N, size=int(rng.integers(0, 3)),
                               replace=False).tolist()
                )
                result = session.run_round(updates, dropouts, rng)
                expected = proto.expected_aggregate(
                    updates, result.survivors
                )
                assert np.array_equal(result.aggregate, expected), r
        assert session.stats.rounds == 200
        assert (
            session.stats.pool_hits + session.stats.pool_misses == 200
        )

    def test_many_cohorts_share_one_refiller(self, gf):
        cfg = ServiceConfig(
            num_cohorts=6,
            num_users=N,
            model_dim=96,
            num_shards=3,
            pool_size=4,
            low_water=2,
            refill_mode=RefillMode.BACKGROUND,
            dropout_tolerance=2,
            privacy=2,
            seed=3,
        )
        with AggregationService(cfg, gf=gf) as svc:
            svc.run_synthetic(rounds=25, dropout_rate=0.1, settle=True)
            snap = svc.status()
        assert snap["metrics"]["total_rounds"] == 6 * 25
        assert snap["metrics"]["total_stalls"] == 0

    def test_repeated_start_stop_cycles_never_wedge(self, gf, proto):
        for cycle in range(20):
            session = proto.session(
                pool_size=2, low_water=1, rng=np.random.default_rng(cycle)
            )
            refiller = BackgroundRefiller(poll_interval_s=0.0001).start()
            refiller.register(session)
            refiller.stop(timeout=30.0)
            assert not refiller.running, cycle
