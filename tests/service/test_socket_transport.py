"""SocketTransport: localhost parity, supervision, reconnect/re-pin.

The acceptance criteria pinned here:

* rounds driven through ``SocketTransport`` (sessions behind TCP
  connections to a ``ShardWorkerServer``, spoken to in reassembled wire
  frames) are **bit-identical** to ``InlineTransport`` across mixed
  dropout / offline-dropout patterns — at session level and through the
  full ``AggregationService`` stack;
* a worker lost mid-round surfaces as :class:`TransportError` (never a
  hang), and a **killed-then-restarted** worker is re-pinned from its
  specs with the service completing subsequent rounds;
* one connection batches several cohorts' shards (slots), and tearing
  one cohort down leaves its neighbours serving.
"""

import time

import numpy as np
import pytest

from repro.exceptions import DropoutError, ProtocolError, ReproError, TransportError
from repro.service import (
    AggregationService,
    BackgroundRefiller,
    InlineTransport,
    RefillMode,
    ServiceConfig,
    ShardPlan,
    ShardSessionSpec,
    ShardWorkerServer,
    ShardedSession,
    SocketTransport,
    TransportKind,
    WireFormat,
    build_transport,
)

N, DIM, SHARDS = 8, 37, 3

# Sub-second supervision knobs so dead-worker tests resolve quickly.
FAST = dict(heartbeat_interval_s=0.1, heartbeat_timeout_s=2.0)


def make_specs(shards=SHARDS, dim=DIM, pool_size=3, low_water=1,
               protocol="lightsecagg", seed=0):
    plan = ShardPlan(dim, shards)
    return plan, [
        ShardSessionSpec(
            protocol=protocol,
            num_users=N,
            shard_dim=plan.widths[s],
            privacy=2,
            dropout_tolerance=2,
            pool_size=pool_size,
            low_water=low_water,
            seed=(seed, 0, s),
        )
        for s in range(shards)
    ]


def mixed_dropout_rounds(gf, rounds=6, seed=11):
    """A deterministic stream of (updates, dropouts, offline_dropouts)."""
    rng = np.random.default_rng(seed)
    for r in range(rounds):
        updates = {i: gf.random(DIM, rng) for i in range(N)}
        dropouts = set(
            rng.choice(N, size=int(rng.integers(0, 3)), replace=False).tolist()
        )
        offline = {int(rng.integers(0, N))} if r % 3 == 2 else set()
        yield updates, dropouts, offline - dropouts


def wait_for(predicate, timeout_s=10.0, interval_s=0.01):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


@pytest.fixture
def server():
    server = ShardWorkerServer().start()
    yield server
    server.stop()


@pytest.fixture
def socket_session(server):
    plan, specs = make_specs()
    transport = SocketTransport(specs, connect=[server.address], **FAST)
    session = ShardedSession(plan, transport=transport)
    yield session, transport
    transport.close()


class TestSocketInlineBitIdentity:
    def test_rounds_bit_identical_across_mixed_dropouts(self, gf,
                                                        socket_session):
        """Aggregate, survivors, transcript, and pool dynamics all match."""
        remote, _ = socket_session
        plan, specs = make_specs()
        inline = ShardedSession(
            plan, transport=InlineTransport.from_specs(specs, gf=gf)
        )
        for updates, dropouts, offline in mixed_dropout_rounds(gf):
            kwargs = {"offline_dropouts": offline} if offline else {}
            got = remote.run_round(updates, set(dropouts), **kwargs)
            want = inline.run_round(updates, set(dropouts), **kwargs)
            assert got.survivors == want.survivors
            assert np.array_equal(got.aggregate, want.aggregate)
            assert len(got.transcript) == len(want.transcript)
            for phase in ("offline", "upload", "recovery"):
                assert got.transcript.elements(
                    phase=phase
                ) == want.transcript.elements(phase=phase)
            assert got.metrics.server_decode_ops == want.metrics.server_decode_ops
            assert got.metrics.extra == want.metrics.extra
        for counter in ("rounds", "refills", "pool_hits", "pool_misses",
                        "precomputed_rounds"):
            assert getattr(remote.stats, counter) == getattr(
                inline.stats, counter
            ), counter  # refill_seconds is wall-clock, not a count
        assert remote.pool_level == inline.pool_level
        inline.close()

    def test_shards_round_robin_across_two_workers(self, gf, server):
        """Multiple --connect addresses: same results, work spread out."""
        with ShardWorkerServer() as second:
            plan, specs = make_specs()
            transport = SocketTransport(
                specs, connect=[server.address, second.address], **FAST
            )
            assert transport.num_workers == 2
            remote = ShardedSession(plan, transport=transport)
            inline = ShardedSession(
                plan, transport=InlineTransport.from_specs(specs, gf=gf)
            )
            try:
                for updates, dropouts, _ in mixed_dropout_rounds(gf, rounds=3):
                    got = remote.run_round(updates, set(dropouts))
                    want = inline.run_round(updates, set(dropouts))
                    assert got.survivors == want.survivors
                    assert np.array_equal(got.aggregate, want.aggregate)
                assert server.connection_count == 1
                assert second.connection_count == 1
            finally:
                transport.close()
                inline.close()

    def test_service_level_parity_all_backends(self, gf, server):
        """The full service stack: inline/socket x sync/background."""
        outputs = {}
        for kind in (TransportKind.INLINE, TransportKind.SOCKET):
            for mode in (RefillMode.SYNC, RefillMode.BACKGROUND):
                cfg = ServiceConfig(
                    num_cohorts=1,
                    num_users=N,
                    model_dim=DIM,
                    num_shards=2,
                    pool_size=3,
                    low_water=0 if mode is RefillMode.SYNC else 1,
                    refill_mode=mode,
                    dropout_tolerance=2,
                    privacy=2,
                    transport=kind,
                    connect=(
                        (server.address,)
                        if kind is TransportKind.SOCKET
                        else None
                    ),
                    seed=5,
                )
                with AggregationService(cfg, gf=gf) as svc:
                    outputs[(kind, mode)] = svc.run_synthetic(
                        rounds=4,
                        dropout_rate=0.2,
                        rng=np.random.default_rng(9),
                    )
        base = outputs[(TransportKind.INLINE, RefillMode.SYNC)]
        for key, results in outputs.items():
            for sweep, base_sweep in zip(results, base):
                assert sweep[0].survivors == base_sweep[0].survivors, key
                assert np.array_equal(
                    sweep[0].aggregate, base_sweep[0].aggregate
                ), key


class TestWorkerLossAndRepin:
    def test_lost_worker_mid_stream_raises_transport_error(self, gf, server,
                                                           socket_session):
        session, transport = socket_session
        rng = np.random.default_rng(0)
        updates = {i: gf.random(DIM, rng) for i in range(N)}
        session.run_round(updates, {1})
        # Stop the worker BEFORE cutting the link: with the worker still
        # up, the receiver thread can notice the dead socket and
        # ensure_connected() can legitimately repair it before the next
        # round (designed recovery, but a race against this assertion).
        # With the worker gone every path — send on the dead fd, or a
        # reconnect attempt — must surface as TransportError.
        server.stop()
        sock = transport._clients[0]._sock
        if sock is not None:  # the receiver may already have torn it down
            sock.close()  # the link dies under us
        with pytest.raises(TransportError):
            session.run_round(updates, {1})

    def test_killed_then_restarted_worker_is_repinned(self, gf):
        """Acceptance: after the worker host is killed and a new one
        started on the same address, the next request reconnects, replays
        the SessionSetup (rebuilding sessions from their specs), and the
        service completes subsequent rounds."""
        server = ShardWorkerServer().start()
        cfg = ServiceConfig(
            num_cohorts=1, num_users=N, model_dim=DIM, num_shards=2,
            pool_size=3, low_water=1, refill_mode=RefillMode.SYNC,
            dropout_tolerance=2, privacy=2,
            transport=TransportKind.SOCKET, connect=(server.address,),
            seed=3,
        )
        svc = AggregationService(cfg, gf=gf).start()
        try:
            rng = np.random.default_rng(1)
            updates = {i: gf.random(DIM, rng) for i in range(N)}
            svc.run_round(0, updates, {1})

            server.stop()  # the worker is killed
            with pytest.raises((TransportError, ProtocolError)):
                svc.run_round(0, updates, {1})

            restarted = ShardWorkerServer(port=server.port).start()
            try:
                result = svc.run_round(0, updates, {2})
                assert result.survivors == [i for i in range(N) if i != 2]
                expected_cfg_field = svc.status()
                assert expected_cfg_field["transport"]["workers_alive"] == 1
                reconnects = svc.metrics.snapshot()["transports"]["socket"][
                    "reconnects"
                ]
                assert reconnects >= 1
                # And it keeps serving: another full round works too.
                svc.run_round(0, updates, set())
            finally:
                svc.stop()
                restarted.stop()
        finally:
            svc.stop()
            server.stop()

    def test_heartbeat_detects_dead_worker_without_traffic(self, server):
        _, specs = make_specs(shards=1)
        transport = SocketTransport(
            specs, connect=[server.address],
            heartbeat_interval_s=0.05, heartbeat_timeout_s=1.0,
        )
        try:
            client = transport._clients[0]
            assert client.alive
            server.stop()
            # No request is issued; supervision alone must notice.
            assert wait_for(lambda: not client.alive, timeout_s=10.0)
        finally:
            transport.close()

    def test_round_error_propagates_and_connection_stays_usable(self, gf,
                                                                socket_session):
        session, _ = socket_session
        rng = np.random.default_rng(0)
        updates = {i: gf.random(DIM, rng) for i in range(N)}
        # Dropping all but one user leaves survivors < U: the worker's
        # DropoutError crosses the wire and re-raises as itself.
        with pytest.raises(DropoutError, match="survivors"):
            session.run_round(updates, set(range(N - 1)))
        result = session.run_round(updates, {1})
        assert result.survivors == [i for i in range(N) if i != 1]

    def test_unsupported_phase_kwargs_rejected(self, gf, socket_session):
        session, _ = socket_session
        rng = np.random.default_rng(0)
        updates = {i: gf.random(DIM, rng) for i in range(N)}
        with pytest.raises(TransportError, match="phase kwargs"):
            session.run_round(updates, set(), mystery_kwarg=1)


class TestConnectionBatching:
    def test_two_cohorts_share_one_connection(self, gf, server):
        """Both cohorts' shards ride one TCP connection (distinct slots),
        and closing the service releases it via the Shutdown handshake."""
        cfg = ServiceConfig(
            num_cohorts=2, num_users=N, model_dim=DIM, num_shards=2,
            pool_size=3, low_water=1, refill_mode=RefillMode.BACKGROUND,
            dropout_tolerance=2, privacy=2,
            transport=TransportKind.SOCKET, connect=(server.address,),
            seed=5,
        )
        with AggregationService(cfg, gf=gf) as svc:
            svc.run_synthetic(
                rounds=2, dropout_rate=0.1, rng=np.random.default_rng(2)
            )
            assert server.connection_count == 1  # 2 cohorts x 2 shards
        assert wait_for(lambda: server.connection_count == 0)

    def test_teardown_of_one_cohort_leaves_the_other_serving(self, gf,
                                                             server):
        plan, specs_a = make_specs(seed=0)
        _, specs_b = make_specs(seed=1)
        transport_a = SocketTransport(specs_a, connect=[server.address],
                                      cohort_id=0, **FAST)
        transport_b = SocketTransport(specs_b, connect=[server.address],
                                      cohort_id=1, **FAST)
        session_b = ShardedSession(plan, transport=transport_b)
        try:
            assert server.connection_count == 1
            transport_a.close()  # releases cohort A's slots only
            rng = np.random.default_rng(3)
            updates = {i: gf.random(DIM, rng) for i in range(N)}
            result = session_b.run_round(updates, {4})
            assert result.survivors == [i for i in range(N) if i != 4]
            assert server.connection_count == 1  # still shared, still up
        finally:
            transport_b.close()

    def test_background_refiller_drives_socket_handles(self, gf,
                                                       socket_session):
        """The refiller's scatter/gather path keeps remote pools topped."""
        session, transport = socket_session
        session.refill()
        refiller = BackgroundRefiller(poll_interval_s=0.001)
        for handle in transport.shard_handles:
            refiller.register(handle, cohort_id=0)
        with refiller:
            rng = np.random.default_rng(2)
            updates = {i: gf.random(DIM, rng) for i in range(N)}
            for _ in range(4):
                session.run_round(updates, set())
                refiller.notify()
                assert refiller.wait_until_idle(timeout=10.0)
            assert session.pool_level >= 2  # topped back above low water
        assert refiller.refills > 0


class TestConstructionAndConfig:
    def test_build_transport_dispatch(self, gf, server):
        _, specs = make_specs(shards=1)
        transport = build_transport(
            "socket", specs, gf=gf, connect=[server.address]
        )
        assert isinstance(transport, SocketTransport)
        assert transport.kind == "socket"
        transport.close()

    def test_missing_or_bad_connect_rejected(self, server):
        _, specs = make_specs(shards=1)
        with pytest.raises(ProtocolError, match="worker address"):
            build_transport("socket", specs)
        with pytest.raises(TransportError, match="host:port"):
            SocketTransport(specs, connect=["not-an-address"])
        with pytest.raises(TransportError, match="cannot connect"):
            SocketTransport(specs, connect=["127.0.0.1:1"], **FAST)

    def test_dead_second_address_releases_the_first_connection(self, server):
        """Regression: failing to reach a later --connect address must
        release (not leak) the client already acquired for an earlier
        one — the shared pool would otherwise pin it forever."""
        _, specs = make_specs(shards=2)
        assert wait_for(lambda: server.connection_count == 0)
        with pytest.raises(TransportError, match="cannot connect"):
            SocketTransport(
                specs, connect=[server.address, "127.0.0.1:1"], **FAST
            )
        # The good address's pooled client was refcount-released, which
        # closes it with the Shutdown handshake; the worker sees the
        # connection go away.
        assert wait_for(lambda: server.connection_count == 0)
        # And the address is reusable afterwards (no poisoned pool entry).
        transport = SocketTransport(specs, connect=[server.address], **FAST)
        transport.close()

    def test_service_config_validates_connect(self, server):
        with pytest.raises(ReproError, match="connect"):
            ServiceConfig(transport=TransportKind.SOCKET)
        with pytest.raises(ReproError, match="socket transport"):
            ServiceConfig(connect=("127.0.0.1:7000",))  # inline + connect
        with pytest.raises(ReproError, match="host:port"):
            ServiceConfig(
                transport=TransportKind.SOCKET, connect=("nope",)
            )
        cfg = ServiceConfig(
            transport=TransportKind.SOCKET, connect=(server.address,)
        )
        assert cfg.connect == (server.address,)

    def test_closed_transport_rejects_requests(self, server):
        plan, specs = make_specs(shards=1)
        transport = SocketTransport(specs, connect=[server.address], **FAST)
        transport.close()
        assert transport.closed
        with pytest.raises(ProtocolError, match="closed"):
            transport.shard_handles[0].refill()
        with pytest.raises(ProtocolError, match="closed"):
            ShardedSession(plan, transport=transport).run_round({}, set())
        transport.close()  # idempotent

    def test_socket_transport_validates_wire_format(self, server):
        _, specs = make_specs(shards=1)
        with pytest.raises(ProtocolError, match="wire format"):
            SocketTransport(
                specs, connect=[server.address], wire_format="gzip", **FAST
            )

    def test_naive_replay_shards_over_sockets(self, gf, server):
        plan, specs = make_specs(shards=2, protocol="naive")
        transport = SocketTransport(specs, connect=[server.address], **FAST)
        session = ShardedSession(plan, transport=transport)
        try:
            assert not session.supports_pool
            assert session.refill() == 0
            rng = np.random.default_rng(3)
            updates = {i: gf.random(DIM, rng) for i in range(N)}
            result = session.run_round(updates, {2})
            from repro.protocols import NaiveAggregation

            expected = NaiveAggregation(gf, N, DIM).expected_aggregate(
                updates, result.survivors
            )
            assert np.array_equal(result.aggregate, expected)
        finally:
            transport.close()


# ----------------------------------------------------------------------
# quantized + packed end-to-end parity
# ----------------------------------------------------------------------
def _quantized_lane(gf, kind, wire_format, connect=None, rounds=4,
                    seed=21):
    """Run the quantized round path through one transport lane.

    Every lane uses identical rng streams, so quantization (which is
    coordinator-side) produces identical field vectors — any divergence
    in the returned aggregates is the wire's fault.
    """
    cfg = ServiceConfig(
        num_cohorts=1, num_users=N, model_dim=DIM, num_shards=2,
        pool_size=3, low_water=0, refill_mode=RefillMode.SYNC,
        dropout_tolerance=2, privacy=2,
        transport=kind, wire_format=wire_format,
        connect=connect, seed=7,
        # Byte accounting below compares lanes against each other; keep
        # the 8-byte trace_id tail out of it so the numbers measure the
        # element encoding alone (tracing's own wire claims are pinned
        # in tests/obs/test_trace_wire.py).
        tracing=False,
    )
    outputs = []
    with AggregationService(cfg, gf=gf) as svc:
        rng = np.random.default_rng(seed)
        for r in range(rounds):
            real_updates = {
                i: rng.standard_normal(DIM) * 0.25 for i in range(N)
            }
            dropouts = set(
                rng.choice(N, size=int(rng.integers(0, 3)),
                           replace=False).tolist()
            )
            real_agg, result = svc.run_quantized_round(
                0, real_updates, dropouts, rng=rng
            )
            outputs.append(
                (real_agg.tobytes(), result.aggregate.tobytes(),
                 tuple(result.survivors))
            )
        snapshot = svc.metrics.snapshot()["transports"]
    return outputs, snapshot


LANES = [
    pytest.param(TransportKind.INLINE, WireFormat.PACKED, id="inline-packed"),
    pytest.param(TransportKind.PROCESS, WireFormat.RAW, id="process-raw"),
    pytest.param(TransportKind.PROCESS, WireFormat.PACKED,
                 id="process-packed"),
    pytest.param(TransportKind.SOCKET, WireFormat.RAW, id="socket-raw"),
    pytest.param(TransportKind.SOCKET, WireFormat.PACKED,
                 id="socket-packed"),
    pytest.param(TransportKind.SHM, WireFormat.RAW, id="shm"),
]


class TestQuantizedPackedParity:
    """Tentpole acceptance: real model updates quantized into GF(q)
    travel every transport lane — raw, bit-packed, or by shm reference —
    and come back byte-identical to the inline baseline across mixed
    dropout patterns."""

    @pytest.mark.parametrize("kind,wire_format", LANES)
    def test_lane_byte_identical_to_inline_raw(self, gf, server, kind,
                                               wire_format):
        connect = (server.address,) if kind is TransportKind.SOCKET else None
        baseline, _ = _quantized_lane(gf, TransportKind.INLINE,
                                      WireFormat.RAW)
        lane, snapshot = _quantized_lane(gf, kind, wire_format,
                                         connect=connect)
        assert lane == baseline  # real aggregate, field aggregate, survivors
        stats = snapshot[kind.value]
        if kind is TransportKind.SHM:
            # the vector volume rode shared memory, not the pipe
            assert stats["shm_bytes"] > stats["bytes_sent"]
        elif kind is not TransportKind.INLINE:
            assert stats["bytes_sent"] > 0

    def test_packed_lane_sends_fewer_bytes_than_raw(self, gf, server):
        _, raw = _quantized_lane(gf, TransportKind.SOCKET, WireFormat.RAW,
                                 connect=(server.address,))
        _, packed = _quantized_lane(gf, TransportKind.SOCKET,
                                    WireFormat.PACKED,
                                    connect=(server.address,))
        assert packed["socket"]["bytes_sent"] < raw["socket"]["bytes_sent"]
        assert (packed["socket"]["bytes_received"]
                < raw["socket"]["bytes_received"])


class TestMixedVersionInterop:
    """A packed-configured coordinator against a worker that does not
    advertise the capability keeps speaking raw — and the frames it
    sends are byte-identical to a raw-configured coordinator's."""

    def test_old_worker_negotiates_down_to_raw(self, gf, server):
        with ShardWorkerServer(capabilities=0) as old:
            baseline, raw_stats = _quantized_lane(
                gf, TransportKind.SOCKET, WireFormat.RAW,
                connect=(server.address,),
            )
            lane, old_stats = _quantized_lane(
                gf, TransportKind.SOCKET, WireFormat.PACKED,
                connect=(old.address,),
            )
        assert lane == baseline
        # The fallback is not merely correct but byte-identical: the
        # same raw frames a raw-configured coordinator would send.
        assert old_stats["socket"]["bytes_sent"] == raw_stats["socket"][
            "bytes_sent"
        ]
        assert old_stats["socket"]["bytes_received"] == raw_stats["socket"][
            "bytes_received"
        ]

    def test_new_worker_acknowledges_only_what_it_supports(self, gf,
                                                           server):
        _, specs = make_specs(shards=1)
        transport = SocketTransport(
            specs, connect=[server.address], wire_format="packed", **FAST
        )
        try:
            from repro.wire import CAP_PACKED_ARRAYS

            client = transport._clients[0]
            assert client.supports(CAP_PACKED_ARRAYS)
        finally:
            transport.close()
