"""Buffered-async round engine: oracle bit-identity + elastic membership.

The acceptance criteria pinned here:

* a buffered cohort drains **bit-identical** to the single-process
  :class:`~repro.asyncfl.secure_aggregator.AsyncSecureAggregator`
  oracle fed the same deliveries and the same drain rng stream — on
  inline (1 and 3 shards), process, and socket transports, across mixed
  staleness, recovery dropouts, and join/leave churn between drains;
* elastic membership re-keys the mask pool: joins/leaves between drains
  invalidate precomputed rounds and subsequent drains still match an
  oracle built for the *new* member set;
* seal/drain ordering holds under concurrent submitters — every update
  drains exactly once, drain indices are a gapless permutation, and the
  buffer never overfills;
* the sync path is untouched: a sync cohort's status dict and round
  behavior are byte-for-byte what they were before the engine split.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asyncfl import AsyncDelivery, AsyncSecureAggregator
from repro.exceptions import ProtocolError, ReproError
from repro.field import FiniteField
from repro.protocols.lightsecagg.params import LSAParams
from repro.quantization import ModelQuantizer, QuantizationConfig
from repro.service import (
    AggregationService,
    RefillMode,
    ServiceConfig,
    ShardWorkerServer,
    TransportKind,
)
from repro.service.engines import (
    RoundPhase,
    SyncRoundEngine,
    build_staleness,
    drain_stream,
)

N, K, DIM = 6, 4, 48


@pytest.fixture(scope="module")
def gf():
    return FiniteField()


def buffered_config(**overrides):
    base = dict(
        num_cohorts=1, num_users=N, model_dim=DIM, pool_size=3,
        low_water=1, refill_mode=RefillMode.BACKGROUND,
        kind="buffered", buffer_size=K, seed=7,
    )
    base.update(overrides)
    return ServiceConfig(**base)


class Oracle:
    """AsyncSecureAggregator driven with the engine's own rng stream."""

    def __init__(self, gf, num_users, *, staleness_fn="constant",
                 staleness_alpha=1.0, quant_levels=1 << 16, seed=7):
        self.gf = gf
        self.seed = seed
        self.params = LSAParams.from_guarantees(
            num_users, privacy=1, dropout_tolerance=1
        )
        self.quantizer = ModelQuantizer(
            gf, QuantizationConfig(levels=quant_levels)
        )
        self.staleness = build_staleness(staleness_fn, alpha=staleness_alpha)

    def aggregate(self, cohort_id, drain_index, deliveries, recovery=()):
        agg = AsyncSecureAggregator(
            self.gf, self.params, DIM, self.quantizer, self.staleness
        )
        return agg.aggregate(
            deliveries,
            rng=drain_stream(self.seed, cohort_id, drain_index),
            recovery_dropouts=set(recovery),
        )


def submit_all(cohort, subs, dropouts_on_first=()):
    """Push (user_id, download_round, update) tuples; return the drain."""
    result = None
    for i, (uid, dl, vec) in enumerate(subs):
        out = cohort.submit_update(
            uid, vec, download_round=dl,
            dropouts=set(dropouts_on_first) if i == 0 else None,
        )
        if out["drained"]:
            result = out
    assert result is not None, "buffer never sealed"
    return result


def deliveries_for(subs, current_round):
    return [
        AsyncDelivery(user_id=uid, staleness=current_round - dl, update=vec)
        for uid, dl, vec in subs
    ]


class TestOracleBitIdentity:
    """Service drains == single-process oracle, per transport."""

    def _drive(self, gf, svc, *, staleness_fn="constant",
               staleness_alpha=1.0):
        cohort = svc.scheduler.cohorts[0]
        rng = np.random.default_rng(31)
        oracle = Oracle(gf, N, staleness_fn=staleness_fn,
                        staleness_alpha=staleness_alpha)

        # drain 0: fresh updates, one recovery dropout (member 5).
        subs0 = [(i, 0, rng.normal(size=DIM)) for i in range(K)]
        out0 = submit_all(cohort, subs0, dropouts_on_first=(5,))
        expected0 = oracle.aggregate(0, 0, deliveries_for(subs0, 0),
                                     recovery=(5,))
        np.testing.assert_array_equal(out0["aggregate"], expected0)
        assert out0["drain_index"] == 0 and out0["num_updates"] == K

        # drain 1: mixed staleness — some clients trained on round 0.
        subs1 = [(0, 0, rng.normal(size=DIM)),
                 (2, 1, rng.normal(size=DIM)),
                 (3, 1, rng.normal(size=DIM)),
                 (4, 0, rng.normal(size=DIM))]
        out1 = submit_all(cohort, subs1)
        expected1 = oracle.aggregate(0, 1, deliveries_for(subs1, 1))
        np.testing.assert_array_equal(out1["aggregate"], expected1)
        assert out1["staleness"] == [1, 0, 0, 1]

        # churn: one join and one leave between drains (acceptance bar).
        joined = cohort.join_member()
        assert joined["user_id"] == N and joined["num_users"] == N + 1
        left = cohort.leave_member(1)
        assert left["num_users"] == N

        # drain 2 against an oracle for the *new* member set; the
        # departed member 1 observed as a recovery dropout maps through
        # sorted-member slots (member 6 -> slot 5).
        members = sorted(cohort.engine.members())
        assert members == [0, 2, 3, 4, 5, 6]
        subs2 = [(0, 2, rng.normal(size=DIM)),
                 (2, 1, rng.normal(size=DIM)),
                 (6, 2, rng.normal(size=DIM)),
                 (5, 0, rng.normal(size=DIM))]
        out2 = submit_all(cohort, subs2, dropouts_on_first=(6,))
        oracle2 = Oracle(gf, N, staleness_fn=staleness_fn,
                         staleness_alpha=staleness_alpha)
        expected2 = oracle2.aggregate(
            0, 2, deliveries_for(subs2, 2),
            recovery={members.index(6)},
        )
        np.testing.assert_array_equal(out2["aggregate"], expected2)
        assert cohort.status()["drains"] == 3

    def test_inline_one_shard(self, gf):
        with AggregationService(buffered_config(), gf=gf) as svc:
            self._drive(gf, svc)

    def test_inline_three_shards_polynomial_staleness(self, gf):
        config = buffered_config(
            num_shards=3, staleness_fn="polynomial", staleness_alpha=0.5
        )
        with AggregationService(config, gf=gf) as svc:
            self._drive(gf, svc, staleness_fn="polynomial",
                        staleness_alpha=0.5)

    def test_process_transport(self, gf):
        config = buffered_config(
            num_shards=2, transport=TransportKind.PROCESS, num_workers=2
        )
        with AggregationService(config, gf=gf) as svc:
            self._drive(gf, svc)

    def test_socket_transport(self, gf):
        server = ShardWorkerServer().start()
        try:
            config = buffered_config(
                num_shards=2, transport=TransportKind.SOCKET,
                connect=(server.address,),
            )
            with AggregationService(config, gf=gf) as svc:
                self._drive(gf, svc)
        finally:
            server.stop()

    def test_hinge_staleness(self, gf):
        config = buffered_config(staleness_fn="hinge", staleness_alpha=2.0)
        with AggregationService(config, gf=gf) as svc:
            cohort = svc.scheduler.cohorts[0]
            rng = np.random.default_rng(5)
            subs = [(i, 0, rng.normal(size=DIM)) for i in range(K)]
            out = submit_all(cohort, subs)
            oracle = Oracle(gf, N, staleness_fn="hinge", staleness_alpha=2.0)
            np.testing.assert_array_equal(
                out["aggregate"], oracle.aggregate(0, 0,
                                                   deliveries_for(subs, 0))
            )


class TestLifecycle:
    def test_phase_transitions_and_status(self, gf):
        with AggregationService(buffered_config(), gf=gf) as svc:
            cohort = svc.scheduler.cohorts[0]
            engine = cohort.engine
            assert cohort.kind == "buffered"
            assert engine.round_phase is RoundPhase.IDLE

            rng = np.random.default_rng(0)
            for i in range(K - 1):
                out = cohort.submit_update(i, rng.normal(size=DIM))
                assert not out["drained"]
                assert out["buffer_fill"] == i + 1
                assert engine.round_phase is RoundPhase.FILLING

            status = cohort.status()
            assert status["kind"] == "buffered"
            assert status["buffer_fill"] == K - 1
            assert status["buffer_capacity"] == K
            assert status["drains"] == 0

            out = cohort.submit_update(K - 1, rng.normal(size=DIM))
            assert out["drained"] and out["round"] == 1
            assert engine.round_phase is RoundPhase.IDLE
            phases = [t.phase for t in engine.transitions]
            assert phases[-4:] == [
                RoundPhase.FILLING, RoundPhase.SEALED,
                RoundPhase.AGGREGATING, RoundPhase.IDLE,
            ]
            assert all(
                t.started_at_time > 0 for t in engine.transitions
            )

    def test_scheduler_sweep_skips_buffered(self, gf):
        config = buffered_config()
        with AggregationService(config, gf=gf) as svc:
            rng = np.random.default_rng(1)
            report = svc.run_synthetic(rounds=2, dropout_rate=0.0, rng=rng)
            assert svc.metrics.total_rounds == 0
            cohort = svc.scheduler.cohorts[0]
            assert cohort.rounds == 0
            assert report is not None

    def test_download_round_validation(self, gf):
        with AggregationService(buffered_config(), gf=gf) as svc:
            cohort = svc.scheduler.cohorts[0]
            with pytest.raises(ProtocolError, match="download_round"):
                cohort.submit_update(
                    0, np.zeros(DIM), download_round=3
                )

    def test_wrong_shape_rejected(self, gf):
        with AggregationService(buffered_config(), gf=gf) as svc:
            with pytest.raises(ProtocolError, match="shape"):
                svc.submit_update(0, 0, np.zeros(DIM + 1))

    def test_sync_cohort_rejects_buffered_surface(self, gf):
        config = ServiceConfig(
            num_cohorts=1, num_users=N, model_dim=DIM, pool_size=2,
            low_water=1, refill_mode=RefillMode.BACKGROUND,
        )
        with AggregationService(config, gf=gf) as svc:
            cohort = svc.scheduler.cohorts[0]
            assert cohort.kind == "sync"
            assert isinstance(cohort.engine, SyncRoundEngine)
            for call in (
                lambda: cohort.submit_update(0, np.zeros(DIM)),
                cohort.join_member,
                lambda: cohort.leave_member(0),
            ):
                with pytest.raises(ProtocolError, match="sync"):
                    call()
            # the sync status dict is pinned elsewhere to exactly these
            # keys; the engine split must not have widened it.
            assert set(cohort.status()) == {
                "cohort_id", "phase", "rounds", "stalls",
                "pool_level", "pool_size",
            }


class TestElasticMembership:
    def test_join_invalidates_pool_and_rekeys(self, gf):
        with AggregationService(buffered_config(), gf=gf) as svc:
            cohort = svc.scheduler.cohorts[0]
            out = cohort.join_member()
            assert out["user_id"] == N
            assert out["num_users"] == N + 1
            assert out["invalidated_rounds"] >= 0
            # the new member can submit immediately
            res = cohort.submit_update(N, np.zeros(DIM))
            assert res["buffer_fill"] == 1

    def test_member_ids_never_reused(self, gf):
        with AggregationService(buffered_config(), gf=gf) as svc:
            cohort = svc.scheduler.cohorts[0]
            cohort.join_member()          # -> member 6
            cohort.leave_member(6)
            out = cohort.join_member()    # id 6 is burned
            assert out["user_id"] == 7

    def test_leave_validations(self, gf):
        with AggregationService(buffered_config(), gf=gf) as svc:
            cohort = svc.scheduler.cohorts[0]
            with pytest.raises(ProtocolError, match="no member"):
                cohort.leave_member(99)
            # N=6, buffer K=4: leaving below the seal threshold refuses
            cohort.leave_member(0)
            cohort.leave_member(1)
            with pytest.raises(ProtocolError):
                cohort.leave_member(2)

    def test_departed_member_cannot_submit(self, gf):
        with AggregationService(buffered_config(), gf=gf) as svc:
            cohort = svc.scheduler.cohorts[0]
            cohort.leave_member(2)
            with pytest.raises(ProtocolError, match="no member 2"):
                cohort.submit_update(2, np.zeros(DIM))


class TestConcurrentSubmitters:
    """Seal/drain ordering under racing submitters."""

    @pytest.mark.parametrize("threads,per_thread", [(4, 3), (6, 4)])
    def test_every_update_drains_exactly_once(self, gf, threads,
                                              per_thread):
        total = threads * per_thread
        assert total % K == 0
        with AggregationService(buffered_config(), gf=gf) as svc:
            cohort = svc.scheduler.cohorts[0]
            results, errors = [], []
            lock = threading.Lock()

            def worker(slot):
                rng = np.random.default_rng(slot)
                try:
                    for _ in range(per_thread):
                        out = cohort.submit_update(
                            slot % N, rng.normal(size=DIM)
                        )
                        with lock:
                            results.append(out)
                except Exception as exc:  # noqa: BLE001 — fail the test
                    errors.append(exc)

            ts = [threading.Thread(target=worker, args=(i,))
                  for i in range(threads)]
            for t in ts:
                t.start()
            for t in ts:
                t.join(timeout=120)
            assert errors == []

            drains = [r for r in results if r["drained"]]
            fills = [r for r in results if not r["drained"]]
            # every submission is accounted for, each drain took K
            assert len(results) == total
            assert sum(d["num_updates"] for d in drains) == total
            # drain indices are a gapless permutation
            assert sorted(d["drain_index"] for d in drains) == list(
                range(total // K)
            )
            # the buffer never overfilled
            assert all(1 <= r["buffer_fill"] < K for r in fills)
            assert cohort.status()["drains"] == total // K
            assert cohort.status()["buffer_fill"] == 0


@st.composite
def op_sequences(draw):
    """Sequential op scripts: submit / join / leave interleavings."""
    ops = draw(st.lists(
        st.sampled_from(["submit", "submit", "submit", "join", "leave"]),
        min_size=K, max_size=24,
    ))
    return ops


class TestSealDrainOrderingProperties:
    @settings(max_examples=25, deadline=None)
    @given(ops=op_sequences(), seed=st.integers(0, 2**16))
    def test_invariants_over_random_op_interleavings(self, ops, seed):
        gf = FiniteField()
        config = buffered_config(seed=seed)
        svc = AggregationService(config, gf=gf)
        try:
            cohort = svc.scheduler.cohorts[0]
            engine = cohort.engine
            rng = np.random.default_rng(seed)
            drains_seen = []
            for op in ops:
                members = sorted(engine.members())
                if op == "submit":
                    uid = int(members[int(rng.integers(len(members)))])
                    out = cohort.submit_update(uid, rng.normal(size=DIM))
                    if out["drained"]:
                        drains_seen.append(out["drain_index"])
                        assert out["num_updates"] == K
                    else:
                        assert 1 <= out["buffer_fill"] < K
                elif op == "join":
                    cohort.join_member()
                else:
                    uid = int(members[int(rng.integers(len(members)))])
                    try:
                        cohort.leave_member(uid)
                    except ProtocolError:
                        pass  # geometry floor / below seal threshold
                # invariants after every op
                status = cohort.status()
                assert 0 <= status["buffer_fill"] < K
                assert status["num_users"] == len(engine.members())
                assert status["num_users"] >= max(2, K)
            # drain indices arrive in order with no gaps
            assert drains_seen == list(range(len(drains_seen)))
            assert engine.round_phase in (
                RoundPhase.IDLE, RoundPhase.FILLING
            )
        finally:
            svc.stop()


class TestConfigValidation:
    def test_buffer_size_bounds(self, gf):
        with pytest.raises(ReproError, match="buffer_size"):
            buffered_config(buffer_size=N + 1)
        with pytest.raises(ReproError, match="buffer_size"):
            buffered_config(buffer_size=0)

    def test_sync_rejects_buffered_knobs(self, gf):
        with pytest.raises(ReproError, match="buffer_size"):
            ServiceConfig(
                num_cohorts=1, num_users=N, model_dim=DIM,
                pool_size=2, buffer_size=3,
            )

    def test_unknown_staleness_fn(self, gf):
        with pytest.raises(ReproError, match="staleness_fn"):
            buffered_config(staleness_fn="exponential")

    def test_kind_round_trips_through_describe(self, gf):
        config = buffered_config(staleness_fn="polynomial")
        spec = config.cohort_spec()
        assert spec.kind == "buffered" and spec.buffer_size == K
        described = spec.describe()
        assert described["kind"] == "buffered"
        assert described["buffer_size"] == K
        assert described["staleness_fn"] == "polynomial"
