"""End-to-end aggregation service: cohorts, scheduler, metrics, FL.

Covers the acceptance criterion at service level: the sharded +
background-refilled service produces bit-identical aggregates to the
single-shard synchronous path, with zero online stalls at steady state
(vs >= 1 per pool cycle for synchronous refill).
"""

import threading

import numpy as np
import pytest

from repro.exceptions import ProtocolError, ReproError
from repro.field import FiniteField
from repro.protocols import LightSecAgg, LSAParams
from repro.service import (
    AggregationService,
    Cohort,
    CohortPhase,
    CohortScheduler,
    RefillMode,
    ServiceConfig,
)

N, DIM = 8, 41


def config(**overrides):
    base = dict(
        num_cohorts=2,
        num_users=N,
        model_dim=DIM,
        num_shards=2,
        pool_size=4,
        low_water=2,
        refill_mode=RefillMode.BACKGROUND,
        dropout_tolerance=2,
        privacy=2,
        seed=0,
    )
    base.update(overrides)
    return ServiceConfig(**base)


class TestServiceBitIdentity:
    def test_sharded_background_matches_single_shard_sync(self, gf):
        """Same update/dropout streams through both deployments."""
        sync_cfg = config(
            num_shards=1, low_water=0, refill_mode=RefillMode.SYNC,
            num_cohorts=1,
        )
        shard_cfg = config(num_shards=3, num_cohorts=1)
        rounds = 6
        aggregates = {}
        for key, cfg in (("sync", sync_cfg), ("sharded", shard_cfg)):
            with AggregationService(cfg, gf=gf) as svc:
                results = svc.run_synthetic(
                    rounds=rounds,
                    dropout_rate=0.2,
                    rng=np.random.default_rng(77),
                    settle=True,
                )
            aggregates[key] = [r[0] for r in results]
        for got, want in zip(aggregates["sharded"], aggregates["sync"]):
            assert got.survivors == want.survivors
            assert np.array_equal(got.aggregate, want.aggregate)

    def test_aggregates_match_expected_sum(self, gf):
        with AggregationService(config(), gf=gf) as svc:
            rng = np.random.default_rng(5)
            updates = {i: gf.random(DIM, rng) for i in range(N)}
            result = svc.run_round(1, updates, {3})
        expected = LightSecAgg(
            gf,
            LSAParams.from_guarantees(N, privacy=2, dropout_tolerance=2),
            DIM,
        ).expected_aggregate(updates, result.survivors)
        assert np.array_equal(result.aggregate, expected)


class TestStallAccounting:
    def test_background_zero_stalls_sync_stalls_every_cycle(self, gf):
        rounds = 8
        with AggregationService(
            config(num_cohorts=1, num_shards=1), gf=gf
        ) as svc:
            svc.run_synthetic(rounds=rounds, settle=True)
            bg_stalls = svc.metrics.total_stalls
        with AggregationService(
            config(
                num_cohorts=1, num_shards=1, low_water=0,
                refill_mode=RefillMode.SYNC,
            ),
            gf=gf,
        ) as svc:
            svc.run_synthetic(rounds=rounds)
            sync_stalls = svc.metrics.total_stalls
        assert bg_stalls == 0
        # Warm pool of 4 drains after round 4; rounds 5..8 hit one empty
        # pool (the inline refill tops it back up for three more rounds).
        assert sync_stalls >= 1

    def test_pool_depth_series_is_recorded(self, gf):
        with AggregationService(config(num_cohorts=1), gf=gf) as svc:
            svc.run_synthetic(rounds=3, settle=True)
            snap = svc.status()
        series = snap["metrics"]["cohorts"][0]["pool_depth_series"]
        assert len(series) >= 3
        times = [t for t, _ in series]
        assert times == sorted(times)


class TestCohortStateMachine:
    def make_cohort(self, gf, **kw):
        params = LSAParams.from_guarantees(N, privacy=2, dropout_tolerance=2)
        session = LightSecAgg(gf, params, DIM).session(
            pool_size=2, rng=np.random.default_rng(0)
        )
        return Cohort(0, session, **kw)

    def test_round_cycles_through_phases_back_to_idle(self, gf):
        cohort = self.make_cohort(gf)
        assert cohort.phase is CohortPhase.IDLE
        rng = np.random.default_rng(1)
        updates = {i: gf.random(DIM, rng) for i in range(N)}
        cohort.run_round(updates, set(), rng)
        assert cohort.phase is CohortPhase.IDLE
        assert cohort.rounds == 1

    def test_failed_round_returns_to_idle(self, gf):
        cohort = self.make_cohort(gf)
        rng = np.random.default_rng(2)
        updates = {i: gf.random(DIM, rng) for i in range(N)}
        with pytest.raises(ProtocolError):
            cohort.run_round(updates, set(range(N - 1)), rng)
        assert cohort.phase is CohortPhase.IDLE
        cohort.run_round(updates, set(), rng)  # still usable
        assert cohort.rounds == 1

    def test_closed_cohort_rejects_rounds(self, gf):
        cohort = self.make_cohort(gf)
        cohort.close()
        assert cohort.phase is CohortPhase.CLOSED
        rng = np.random.default_rng(3)
        updates = {i: gf.random(DIM, rng) for i in range(N)}
        with pytest.raises(ProtocolError, match="cohort 0 is closed"):
            cohort.run_round(updates, set(), rng)

    def test_close_racing_aggregating_round_lets_it_complete(self):
        """Regression: close() landing while a round is AGGREGATING used
        to make the success path's AGGREGATING -> IDLE transition throw
        *after* the session round had already committed its pool
        accounting.  Semantics now: the in-flight round completes and
        returns its result; the cohort stays CLOSED; later rounds fail
        with a clear closed-cohort error."""
        aggregating = threading.Event()
        release = threading.Event()
        sentinel = object()

        class _GatedSession:
            supports_pool = False
            closed = False

            def run_round(self, updates, dropouts, rng=None, **kw):
                aggregating.set()
                assert release.wait(timeout=30.0)
                return sentinel

            def close(self):
                self.closed = True

        cohort = Cohort(3, _GatedSession())
        results = []
        runner = threading.Thread(
            target=lambda: results.append(cohort.run_round({}, set()))
        )
        runner.start()
        assert aggregating.wait(timeout=30.0)
        assert cohort.phase is CohortPhase.AGGREGATING
        cohort.close()  # races the in-flight round
        release.set()
        runner.join(timeout=30.0)
        assert not runner.is_alive()
        assert results == [sentinel]  # the round completed and returned
        assert cohort.phase is CohortPhase.CLOSED
        assert cohort.rounds == 1
        with pytest.raises(ProtocolError, match="cohort 3 is closed"):
            cohort.run_round({}, set())

    def test_stall_counted_on_cold_pool(self, gf):
        cohort = self.make_cohort(gf)
        rng = np.random.default_rng(4)
        updates = {i: gf.random(DIM, rng) for i in range(N)}
        cohort.run_round(updates, set(), rng)  # cold pool: stall
        cohort.run_round(updates, set(), rng)  # warmed by inline refill
        assert cohort.stalls == 1

    def test_status_snapshot(self, gf):
        cohort = self.make_cohort(gf)
        status = cohort.status()
        assert status == {
            "cohort_id": 0,
            "phase": "idle",
            "rounds": 0,
            "stalls": 0,
            "pool_level": 0,
            "pool_size": 2,
        }


class TestSchedulerAndConfig:
    def test_round_robin_visits_every_live_cohort(self, gf):
        with AggregationService(config(num_cohorts=3), gf=gf) as svc:
            svc.cohorts[1].close()
            results = svc.run_synthetic(rounds=2)
        assert all(sorted(sweep) == [0, 2] for sweep in results)
        assert svc.cohorts[0].rounds == 2 and svc.cohorts[2].rounds == 2

    def test_duplicate_cohort_ids_rejected(self, gf):
        params = LSAParams.from_guarantees(N, privacy=2, dropout_tolerance=2)
        mk = lambda: Cohort(
            7, LightSecAgg(gf, params, DIM).session(pool_size=1)
        )
        with pytest.raises(ProtocolError):
            CohortScheduler([mk(), mk()])
        with pytest.raises(ProtocolError):
            CohortScheduler([])

    def test_invalid_configs_rejected(self):
        for bad in (
            dict(num_cohorts=0),
            dict(num_shards=0),
            dict(num_shards=DIM + 1),
            dict(pool_size=0),
            dict(low_water=4),
            dict(protocol="zhao-sun"),
        ):
            with pytest.raises(ReproError):
                config(**bad)

    def test_shard_dim_pair_fails_at_config_build_with_clear_message(self):
        """The bad (num_shards, model_dim) pair that ShardPlan would reject
        is caught when the config is built, naming both knobs and the
        valid range — not later, inside session construction."""
        with pytest.raises(
            ReproError,
            match=r"cannot split model_dim=41 into 64 non-empty shards: "
                  r"num_shards must be in \[1, model_dim\]",
        ):
            config(num_shards=64)

    def test_infeasible_protocol_geometry_fails_at_config_build(self):
        # T + D >= N violates Theorem 1; previously this surfaced as a
        # ParameterError from deep inside LSAParams during cohort
        # construction.  Now the config names the offending triple.
        with pytest.raises(
            ReproError, match=r"infeasible protocol geometry for N=8, T=5, D=4"
        ):
            config(privacy=5, dropout_tolerance=4)
        with pytest.raises(ReproError, match="need >= 2 users"):
            config(num_users=1, num_shards=1)

    def test_transport_knobs_validated(self):
        from repro.service import TransportKind

        with pytest.raises(ReproError, match="num_workers only applies"):
            config(num_workers=2)  # default transport is INLINE
        with pytest.raises(ReproError, match=">= 1 worker"):
            config(transport=TransportKind.PROCESS, num_workers=0)
        with pytest.raises(ReproError, match="must be a TransportKind"):
            config(transport="process")
        cfg = config(transport=TransportKind.PROCESS, num_workers=2)
        assert cfg.num_workers == 2

    def test_naive_protocol_cohorts_run_without_pools(self, gf):
        cfg = config(
            protocol="naive", num_shards=2, num_cohorts=1,
            refill_mode=RefillMode.BACKGROUND,
        )
        with AggregationService(cfg, gf=gf) as svc:
            svc.run_synthetic(rounds=2)
            snap = svc.status()
        assert snap["metrics"]["total_rounds"] == 2
        assert snap["refiller"]["refills"] == 0  # nothing poolable

    def test_service_stop_is_clean_and_idempotent(self, gf):
        svc = AggregationService(config(), gf=gf).start()
        svc.run_synthetic(rounds=1)
        svc.stop()
        svc.stop()
        assert all(c.phase is CohortPhase.CLOSED for c in svc.cohorts)
        assert svc.refiller is not None and not svc.refiller.running


class TestServiceDrivesFL:
    def test_sharded_session_under_secure_fedavg(self, gf):
        """The FL loop runs unchanged over a service-layer session."""
        from repro.fl import (
            LocalTrainingConfig,
            SecureFederatedAveraging,
            iid_partition,
            logistic_regression,
            make_mnist_like,
        )
        from repro.service import ShardedSession, ShardPlan

        clients = iid_partition(make_mnist_like(240, seed=3), N, seed=1)
        dim = logistic_regression(seed=0).dim
        params = LSAParams.from_guarantees(N, privacy=2, dropout_tolerance=2)
        plan = ShardPlan(dim, 2)
        sharded = ShardedSession(
            plan,
            [
                LightSecAgg(gf, params, w).session(
                    pool_size=2, rng=np.random.default_rng([9, s])
                )
                for s, w in enumerate(plan.widths)
            ],
        )

        def make_trainer(session):
            return SecureFederatedAveraging(
                logistic_regression(seed=0),
                clients,
                LightSecAgg(gf, params, dim),
                local_config=LocalTrainingConfig(
                    epochs=1, batch_size=32, lr=0.05
                ),
                session_rng=np.random.default_rng(123),
                session=session,
            )

        fed_sharded = make_trainer(sharded)
        fed_single = make_trainer(None)
        for r in range(3):
            rec_a = fed_sharded.run_round(
                dropouts={r % N}, rng=np.random.default_rng(r)
            )
            rec_b = fed_single.run_round(
                dropouts={r % N}, rng=np.random.default_rng(r)
            )
            assert rec_a.survivors == rec_b.survivors
        # Bit-exact: the sharded aggregate is the same field sum.
        assert np.array_equal(
            fed_sharded.global_params, fed_single.global_params
        )
