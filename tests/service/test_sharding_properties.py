"""Property tests: ShardPlan scatter→gather round-trips arbitrary vectors.

Randomized over dims and shard counts — including dims not divisible by
the shard count and shard width 1 — these pin the partition invariants
the whole sharded-execution stack (and its bit-identity guarantee)
rests on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import ShardPlan

# (dim, num_shards) with 1 <= num_shards <= dim; dims stay small enough
# for tier-1 speed while covering width-1 and non-divisible geometries.
plans = st.integers(min_value=1, max_value=257).flatmap(
    lambda dim: st.tuples(
        st.just(dim), st.integers(min_value=1, max_value=dim)
    )
)


@settings(max_examples=80, deadline=None)
@given(geometry=plans, seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_scatter_gather_round_trips_any_vector(geometry, seed):
    dim, shards = geometry
    plan = ShardPlan(dim, shards)
    vec = np.random.default_rng(seed).integers(
        0, 2**31 - 1, size=dim, dtype=np.uint64
    )
    pieces = plan.scatter(vec)
    assert len(pieces) == shards
    assert np.array_equal(plan.gather(pieces), vec)


@settings(max_examples=80, deadline=None)
@given(geometry=plans)
def test_widths_partition_the_vector_evenly(geometry):
    dim, shards = geometry
    plan = ShardPlan(dim, shards)
    # Widths cover the vector exactly, are near-even, and every shard is
    # non-empty (width 1 is the floor, hit whenever shards == dim).
    assert sum(plan.widths) == dim
    assert max(plan.widths) - min(plan.widths) <= 1
    assert min(plan.widths) >= 1
    # Slices are contiguous, ordered, and disjoint.
    cursor = 0
    for s in range(shards):
        sl = plan.slice(s)
        assert sl.start == cursor and sl.stop - sl.start == plan.widths[s]
        cursor = sl.stop
    assert cursor == dim


@settings(max_examples=80, deadline=None)
@given(geometry=plans, seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_scattered_pieces_alias_the_source_vector(geometry, seed):
    """Scatter is zero-copy: pieces are views, so updates scale by O(d)."""
    dim, shards = geometry
    plan = ShardPlan(dim, shards)
    vec = np.random.default_rng(seed).integers(
        0, 2**31 - 1, size=dim, dtype=np.uint64
    )
    for piece in plan.scatter(vec):
        assert piece.base is vec
