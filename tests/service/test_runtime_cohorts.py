"""Runtime cohort membership: add/remove while the service is live.

The service used to freeze its cohort set at construction; these tests
pin the daemon-grade contract that replaced it:

* cohorts created at runtime are immediately servable and their results
  are bit-identical to a statically configured cohort with the same
  spec (same ``(seed, cohort_id, shard)`` derivation);
* removing a cohort mid-round lets the in-flight round finish with its
  result, detaches the cohort from scheduler + refiller + transport,
  and never perturbs its neighbours;
* creates and closes racing from many threads keep the registry
  consistent, and the metrics ledger stays honest (every completed
  round is counted exactly once, no counters for retired ids grow).
"""

import threading

import numpy as np
import pytest

from repro.exceptions import ProtocolError
from repro.field import FiniteField
from repro.service import (
    AggregationService,
    CohortSpec,
    RefillMode,
    ServiceConfig,
)

N, DIM = 6, 48


@pytest.fixture(scope="module")
def gf():
    return FiniteField()


def make_service(gf, *, build_cohorts=False, **kwargs):
    config = ServiceConfig(
        num_users=N, model_dim=DIM, pool_size=3, low_water=1,
        refill_mode=RefillMode.BACKGROUND, **kwargs
    )
    return AggregationService(
        config, gf=gf, build_cohorts=build_cohorts
    ).start()


def spec(**overrides):
    fields = dict(num_users=N, model_dim=DIM, pool_size=3, low_water=1)
    fields.update(overrides)
    return CohortSpec(**fields)


def run_one_round(gf, svc, cohort_id, seed=9):
    rng = np.random.default_rng(seed)
    updates = {i: gf.random(DIM, rng) for i in range(N)}
    return updates, svc.run_round(cohort_id, updates, {1})


class TestRuntimeAdd:
    def test_added_cohort_matches_static_cohort_bitwise(self, gf):
        """A cohort added at runtime derives the same shard seeds as a
        statically built cohort with the same id, so equal inputs give
        equal aggregates."""
        static = make_service(gf, build_cohorts=True, num_cohorts=1)
        try:
            updates, static_result = run_one_round(gf, static, 0)
        finally:
            static.stop()

        dynamic = make_service(gf)
        try:
            cohort = dynamic.add_cohort(spec())
            assert cohort.cohort_id == 0
            _, dynamic_result = run_one_round(gf, dynamic, 0)
        finally:
            dynamic.stop()
        assert np.array_equal(
            static_result.aggregate, dynamic_result.aggregate
        )
        assert static_result.survivors == dynamic_result.survivors

    def test_added_cohort_pool_is_warm(self, gf):
        svc = make_service(gf)
        try:
            cohort = svc.add_cohort(spec(pool_size=4))
            assert cohort.status()["pool_level"] == 4
            _, result = run_one_round(gf, svc, cohort.cohort_id)
            assert svc.metrics.snapshot()["total_stalls"] == 0
        finally:
            svc.stop()

    def test_heterogeneous_specs_coexist(self, gf):
        """Cohorts with different geometry live side by side — per-cohort
        specs, not one service-wide plan."""
        svc = make_service(gf)
        try:
            small = svc.add_cohort(spec(model_dim=32))
            big = svc.add_cohort(spec(model_dim=128, num_shards=2))
            rng = np.random.default_rng(1)
            r_small = svc.run_round(
                small.cohort_id,
                {i: gf.random(32, rng) for i in range(N)}, set(),
            )
            r_big = svc.run_round(
                big.cohort_id,
                {i: gf.random(128, rng) for i in range(N)}, set(),
            )
            assert r_small.aggregate.shape == (32,)
            assert r_big.aggregate.shape == (128,)
        finally:
            svc.stop()


class TestRuntimeRemove:
    def test_remove_leaves_neighbours_untouched(self, gf):
        svc = make_service(gf)
        try:
            a = svc.add_cohort(spec())
            b = svc.add_cohort(spec())
            svc.remove_cohort(a.cohort_id)
            with pytest.raises(ProtocolError, match="no cohort"):
                svc.run_round(a.cohort_id, {}, set())
            _, result = run_one_round(gf, svc, b.cohort_id)
            assert result.aggregate.shape == (DIM,)
            assert [c.cohort_id for c in svc.cohorts] == [b.cohort_id]
        finally:
            svc.stop()

    def test_remove_unknown_cohort_raises(self, gf):
        svc = make_service(gf)
        try:
            with pytest.raises(ProtocolError, match="no cohort 5"):
                svc.remove_cohort(5)
        finally:
            svc.stop()

    def test_close_mid_round_keeps_result_and_scheduler_survives(self, gf):
        """A cohort closed while the scheduler sweeps it: the round in
        flight completes (close/round race contract) and the sweep goes
        on to the neighbours instead of dying."""
        svc = make_service(gf)
        try:
            a = svc.add_cohort(spec())
            b = svc.add_cohort(spec())
            started = threading.Event()
            original = a.session.run_round

            def slow(*args, **kwargs):
                started.set()
                return original(*args, **kwargs)

            a.session.run_round = slow

            def update_fn(cohort, _idx):
                rng = np.random.default_rng(cohort.cohort_id)
                return {i: gf.random(DIM, rng) for i in range(N)}, set()

            sweep_result = {}

            def sweep():
                sweep_result["value"] = svc.scheduler.run_sweep(
                    update_fn, np.random.default_rng(0)
                )

            t = threading.Thread(target=sweep)
            t.start()
            assert started.wait(timeout=30)
            svc.remove_cohort(a.cohort_id)
            t.join(timeout=30)
            assert not t.is_alive()
            results = sweep_result["value"]
            # cohort a's in-flight round kept its result; b's ran too
            assert a.cohort_id in results
            assert b.cohort_id in results
        finally:
            svc.stop()


class TestConcurrentMembership:
    def test_parallel_creates_get_unique_ids(self, gf):
        svc = make_service(gf)
        try:
            created = []
            lock = threading.Lock()

            def create():
                cohort = svc.add_cohort(spec(pool_size=2, low_water=0))
                with lock:
                    created.append(cohort.cohort_id)

            threads = [threading.Thread(target=create) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert sorted(created) == list(range(8))
            assert len(svc.cohorts) == 8
        finally:
            svc.stop()

    def test_churn_with_rounds_keeps_metrics_honest(self, gf):
        """Three threads: one serving rounds on a stable cohort, two
        creating/destroying churn cohorts.  The stable cohort's round
        count is exact, retired cohorts stop accruing, and the registry
        ends consistent."""
        svc = make_service(gf)
        try:
            stable = svc.add_cohort(spec())
            rounds_target = 12
            errors = []

            def serve():
                try:
                    for seed in range(rounds_target):
                        run_one_round(gf, svc, stable.cohort_id, seed=seed)
                except Exception as exc:  # noqa: BLE001 — fail the test
                    errors.append(exc)

            def churn():
                try:
                    for _ in range(4):
                        cohort = svc.add_cohort(
                            spec(pool_size=2, low_water=0)
                        )
                        run_one_round(gf, svc, cohort.cohort_id)
                        svc.remove_cohort(cohort.cohort_id)
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=serve)] + [
                threading.Thread(target=churn) for _ in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert errors == []

            snapshot = svc.metrics.snapshot()
            per_cohort = snapshot["cohorts"]
            assert per_cohort[stable.cohort_id]["rounds"] == rounds_target
            # every churn cohort ran exactly one round before retiring
            churn_rounds = sum(
                stats["rounds"] for cid, stats in per_cohort.items()
                if cid != stable.cohort_id
            )
            assert churn_rounds == 8
            assert snapshot["total_rounds"] == rounds_target + 8
            # registry: only the stable cohort remains
            assert [c.cohort_id for c in svc.cohorts] == [stable.cohort_id]
        finally:
            svc.stop()
