"""Prometheus exposition: golden-file pinning + scrape thread safety.

The metric names, types, label keys, and histogram bucket bounds in
``render_prometheus`` are a public interface — dashboards and alert
rules bind to them — so the full exposition of a deterministic recorded
history is pinned byte-for-byte in ``golden/metrics.prom``.  If this
test fails because you *meant* to change the exposition, regenerate
with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/service/test_prometheus.py -k golden

A second battery scrapes a live service from several threads while
rounds run, checking every scrape is well-formed and counters are
monotonic — the render-under-one-lock consistency contract.
"""

import os
import re
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.field import FiniteField
from repro.service import AggregationService, RefillMode, ServiceConfig
from repro.service.metrics import LATENCY_BUCKETS_S, ServiceMetrics

GOLDEN = Path(__file__).parent / "golden" / "metrics.prom"

_UPTIME = re.compile(r"^(repro_uptime_seconds) .*$", re.MULTILINE)
_LAST_ROUND = re.compile(
    r"^(repro_last_round_unix_seconds\{[^}]*\}) .*$", re.MULTILINE
)


def normalize(text: str) -> str:
    """Replace the wall-clock-dependent samples with placeholders."""
    text = _UPTIME.sub(r"\1 <UPTIME>", text)
    return _LAST_ROUND.sub(r"\1 <UNIX_TIME>", text)


def deterministic_history() -> ServiceMetrics:
    """A fixed recorded history exercising every metric family."""
    metrics = ServiceMetrics()
    # cohort 0: three clean rounds at known latencies (buckets 0.005,
    # 0.025, and +Inf), pool sampled 4 -> 3 -> 2
    metrics.record_round(0, 0.004, stalled=False, pool_level_before=4)
    metrics.record_round(0, 0.020, stalled=False, pool_level_before=3)
    metrics.record_round(0, 11.0, stalled=False, pool_level_before=2)
    # cohort 1: one stalled round, one background refill of 2 rounds
    metrics.record_round(1, 0.5, stalled=True, pool_level_before=0)
    metrics.record_refill(1, rounds_added=2, pool_level_after=2)
    # two transport backends, one with traffic + a reconnect
    metrics.record_transport_round(
        "inline", 0.25, bytes_sent=0, bytes_received=0
    )
    metrics.record_transport_round(
        "socket", 1.5, bytes_sent=2048, bytes_received=4096,
        stalled_shards=1, shm_bytes=0,
    )
    metrics.record_transport_reconnect("socket")
    # trace phases: collect is fast, shard_compute spreads two buckets,
    # reconstruct lands sub-millisecond
    metrics.record_phase("collect", 0.0008)
    metrics.record_phase("shard_compute", 0.02)
    metrics.record_phase("shard_compute", 0.3)
    metrics.record_phase("reconstruct", 0.004)
    # cohort 2: a buffered-async cohort — the buffer fills to capacity,
    # drains once with staleness spread {0, 1, 5}, and sees one
    # join/leave churn pair
    metrics.record_submit(2, buffer_fill=1, buffer_capacity=3)
    metrics.record_submit(2, buffer_fill=2, buffer_capacity=3)
    metrics.record_submit(2, buffer_fill=3, buffer_capacity=3)
    metrics.record_drain(2, staleness=[0, 1, 5])
    metrics.record_membership(2, "join")
    metrics.record_membership(2, "leave")
    return metrics


class TestGolden:
    def test_exposition_matches_golden_file(self):
        rendered = normalize(deterministic_history().render_prometheus())
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            GOLDEN.parent.mkdir(exist_ok=True)
            GOLDEN.write_text(rendered)
        assert GOLDEN.exists(), (
            f"{GOLDEN} missing; regenerate with REPRO_REGEN_GOLDEN=1"
        )
        assert rendered == GOLDEN.read_text()

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        text = deterministic_history().render_prometheus()
        buckets = re.findall(
            r'repro_round_latency_seconds_bucket\{cohort="0",le="([^"]+)"\} '
            r"(\d+)",
            text,
        )
        assert [b[0] for b in buckets][-1] == "+Inf"
        counts = [int(b[1]) for b in buckets]
        assert counts == sorted(counts)  # cumulative, never decreasing
        assert counts[-1] == 3  # every observation lands somewhere
        assert len(buckets) == len(LATENCY_BUCKETS_S) + 1
        # _sum/_count close the family
        assert 'repro_round_latency_seconds_count{cohort="0"} 3' in text

    def test_every_family_has_help_and_type(self):
        text = deterministic_history().render_prometheus()
        sample_names = set()
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            name = line.split("{")[0].split(" ")[0]
            stripped = re.sub(r"_(bucket|sum|count)$", "", name)
            sample_names.add(
                stripped
                if f"# TYPE {stripped} histogram" in text
                else name
            )
        for name in sample_names:
            assert f"# HELP {name} " in text, name
            assert f"# TYPE {name} " in text, name

    def test_integral_floats_render_without_dot(self):
        text = deterministic_history().render_prometheus()
        # online_seconds for cohort 1 is exactly 0.5; transport socket
        # round_seconds is exactly 1.5 — floats keep their dot.
        assert 'repro_online_seconds_total{cohort="1"} 0.5' in text
        # bytes are integers — no trailing .0 anywhere
        assert 'repro_transport_bytes_sent_total{transport="socket"} 2048' \
            in text
        assert ".0\n" not in text.replace("version", "")


SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.+eE\-]+$|^\+Inf$"
)


class TestScrapeUnderLoad:
    def test_concurrent_scrapes_are_consistent(self, gf=FiniteField()):
        """Scrape /metrics-style renders from 3 threads while rounds run;
        every scrape parses and every counter is monotonic."""
        config = ServiceConfig(
            num_cohorts=2, num_users=5, model_dim=32, pool_size=2,
            low_water=1, refill_mode=RefillMode.BACKGROUND,
        )
        svc = AggregationService(config, gf=gf).start()
        stop = threading.Event()
        errors = []

        def rounds():
            rng = np.random.default_rng(0)
            try:
                for r in range(10):
                    updates = {i: gf.random(32, rng) for i in range(5)}
                    svc.run_round(r % 2, updates, set())
            except Exception as exc:  # noqa: BLE001 — fail the test
                errors.append(exc)
            finally:
                stop.set()

        last_rounds_total = [0.0, 0.0, 0.0]

        def scrape(slot):
            try:
                while not stop.is_set():
                    text = svc.metrics.render_prometheus()
                    for line in text.splitlines():
                        if line.startswith("#") or not line:
                            continue
                        name, _, value = line.rpartition(" ")
                        assert name, f"malformed sample: {line!r}"
                        float(value)  # parses as a number
                    total = sum(
                        float(line.rpartition(" ")[2])
                        for line in text.splitlines()
                        if line.startswith("repro_rounds_total{")
                    )
                    assert total >= last_rounds_total[slot]
                    last_rounds_total[slot] = total
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=rounds)] + [
            threading.Thread(target=scrape, args=(i,)) for i in range(3)
        ]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
        finally:
            stop.set()
            svc.stop()
        assert errors == []
        assert svc.metrics.total_rounds == 10
