"""Background refill pipeline: correctness, triggers, and shutdown.

The contracts under test:

* **Bit-identity** — a background-refilled session produces exactly the
  aggregates a synchronous session (and the one-shot protocol path)
  produces, across mixed worst-case/offline dropout patterns.  The
  aggregate is the exact field sum of the surviving updates no matter
  which masks a refill drew, so this must hold bit-for-bit.
* **Low-water trigger semantics** — ``needs_refill`` fires exactly when
  the pool drains to ``low_water`` (and is below ``pool_size``), never
  on closed or non-pooled sessions, and the refiller tops up to full.
* **Clean shutdown** — ``stop()`` with a refill in flight lets the
  refill complete, delivers its material, and joins the worker.
"""

import threading
import time

import numpy as np
import pytest

from repro.exceptions import ProtocolError
from repro.field import FiniteField
from repro.protocols import LightSecAgg, LSAParams, NaiveAggregation
from repro.service import BackgroundRefiller, ServiceMetrics

N, DIM = 10, 33


@pytest.fixture
def proto(gf):
    params = LSAParams.from_guarantees(N, privacy=2, dropout_tolerance=3)
    return LightSecAgg(gf, params, DIM)


def drain_rounds(session, proto, gf, rounds, seed, refiller=None):
    """Run ``rounds`` mixed-dropout rounds; return the aggregates."""
    rng = np.random.default_rng(seed)
    out = []
    for r in range(rounds):
        updates = {i: gf.random(DIM, rng) for i in range(N)}
        ids = rng.choice(N, size=3, replace=False).tolist()
        split = int(rng.integers(0, 4))
        worst, offline = set(ids[:split]), set(ids[split:])
        result = session.run_round(
            updates, worst, rng, offline_dropouts=offline
        )
        expected = proto.expected_aggregate(updates, result.survivors)
        assert np.array_equal(result.aggregate, expected), r
        out.append((result.survivors, result.aggregate))
        if refiller is not None:
            # Steady state: client think time exceeds refill time.
            refiller.wait_until_idle(timeout=30.0)
    return out


class TestBackgroundBitIdentity:
    def test_background_matches_sync_across_mixed_dropouts(self, gf, proto):
        sync_session = proto.session(pool_size=3, rng=np.random.default_rng(0))
        bg_session = proto.session(
            pool_size=3, low_water=1, rng=np.random.default_rng(1)
        )
        with BackgroundRefiller(poll_interval_s=0.0005) as refiller:
            refiller.register(bg_session)
            refiller.wait_until_idle(timeout=30.0)  # warm the pool
            got = drain_rounds(bg_session, proto, gf, 8, seed=42,
                               refiller=refiller)
        want = drain_rounds(sync_session, proto, gf, 8, seed=42)
        for (s_got, a_got), (s_want, a_want) in zip(got, want):
            assert s_got == s_want
            assert np.array_equal(a_got, a_want)

    def test_background_session_never_misses_at_steady_state(self, gf, proto):
        session = proto.session(
            pool_size=4, low_water=2, rng=np.random.default_rng(2)
        )
        with BackgroundRefiller(poll_interval_s=0.0005) as refiller:
            refiller.register(session)
            refiller.wait_until_idle(timeout=30.0)
            drain_rounds(session, proto, gf, 10, seed=7, refiller=refiller)
        assert session.stats.rounds == 10
        assert session.stats.pool_misses == 0
        assert session.stats.pool_hits == 10

    def test_sync_session_stalls_once_per_pool_cycle(self, gf, proto):
        """The baseline the background pipeline eliminates: >= 1 miss/K."""
        session = proto.session(pool_size=3, rng=np.random.default_rng(3))
        drain_rounds(session, proto, gf, 9, seed=11)
        assert session.stats.pool_misses == 3  # rounds 0, 3, 6


class TestLowWaterSemantics:
    def test_trigger_fires_at_low_water_not_above(self, gf, proto):
        session = proto.session(
            pool_size=4, low_water=2, rng=np.random.default_rng(0)
        )
        assert session.needs_refill  # empty pool is at/below low water
        session.refill()
        assert session.pool_level == 4 and not session.needs_refill
        rng = np.random.default_rng(1)
        updates = {i: gf.random(DIM, rng) for i in range(N)}
        session.run_round(updates, set(), rng)
        assert session.pool_level == 3 and not session.needs_refill
        session.run_round(updates, set(), rng)
        assert session.pool_level == 2 and session.needs_refill

    def test_full_pool_never_triggers(self, gf, proto):
        session = proto.session(pool_size=1, rng=np.random.default_rng(0))
        session.refill()
        assert not session.needs_refill

    def test_closed_and_replay_sessions_never_trigger(self, gf, proto):
        closed = proto.session(pool_size=2, low_water=1)
        closed.close()
        assert not closed.needs_refill
        replay = NaiveAggregation(gf, N, DIM).session(pool_size=2, low_water=1)
        assert not replay.supports_pool and not replay.needs_refill

    def test_invalid_low_water_rejected(self, proto):
        with pytest.raises(ProtocolError):
            proto.session(pool_size=2, low_water=2)
        with pytest.raises(ProtocolError):
            proto.session(pool_size=2, low_water=-1)

    def test_refiller_tops_up_to_full_and_records_metrics(self, gf, proto):
        metrics = ServiceMetrics()
        session = proto.session(
            pool_size=4, low_water=1, rng=np.random.default_rng(4)
        )
        with BackgroundRefiller(metrics=metrics) as refiller:
            refiller.register(session, cohort_id=9)
            assert refiller.wait_until_idle(timeout=30.0)
        assert session.pool_level == 4
        assert refiller.refills >= 1
        snap = metrics.snapshot()
        assert snap["cohorts"][9]["background_refills"] >= 1
        assert snap["cohorts"][9]["pool_depth_series"][-1][1] == 4


class TestCleanShutdown:
    def test_stop_with_refill_in_flight_completes_it(self, gf, proto):
        """A refill the worker already started survives stop()."""
        started = threading.Event()
        release = threading.Event()
        session = proto.session(pool_size=3, rng=np.random.default_rng(5))
        inner_refill = session.refill

        def gated_refill(rounds=None):
            started.set()
            assert release.wait(timeout=30.0)
            return inner_refill(rounds)

        session.refill = gated_refill
        refiller = BackgroundRefiller(poll_interval_s=0.0005).start()
        refiller.register(session)
        assert started.wait(timeout=30.0)  # worker is mid-refill
        stopper = threading.Thread(target=refiller.stop)
        stopper.start()
        release.set()  # let the in-flight refill finish
        stopper.join(timeout=30.0)
        assert not stopper.is_alive()
        assert not refiller.running
        # The in-flight refill's material was delivered, not dropped.
        assert session.pool_level == 3

    def test_stop_skips_refills_not_yet_started(self, gf, proto):
        """After stop() no *new* refill begins, even for needy sessions."""
        session = proto.session(pool_size=2, rng=np.random.default_rng(6))
        refiller = BackgroundRefiller(poll_interval_s=0.0005).start()
        refiller.stop()
        refiller.register(session)  # registered after shutdown
        time.sleep(0.01)
        assert session.pool_level == 0

    def test_refiller_survives_session_closed_underneath(self, gf, proto):
        """Closing a session mid-watch must not kill the worker."""
        session = proto.session(pool_size=2, low_water=1)
        session.close()
        with BackgroundRefiller(poll_interval_s=0.0005) as refiller:
            refiller.register(session)
            refiller.notify()
            time.sleep(0.01)
            assert refiller.running

    def test_context_manager_stops_worker(self, gf, proto):
        with BackgroundRefiller() as refiller:
            assert refiller.running
        assert not refiller.running

    def test_start_is_idempotent(self):
        refiller = BackgroundRefiller().start()
        try:
            first = refiller._thread
            assert refiller.start()._thread is first
        finally:
            refiller.stop()

    def test_stop_timeout_keeps_worker_and_blocks_second_start(self, gf,
                                                               proto):
        """Regression: a timed-out stop() must not lie about the worker.

        With an artificially slow refill in flight, stop(timeout) used to
        join-with-timeout and unconditionally clear ``_thread`` — so
        ``running`` reported False while the worker was still alive, and
        a subsequent start() spawned a second worker beside the zombie.
        """
        started = threading.Event()
        release = threading.Event()
        session = proto.session(pool_size=3, rng=np.random.default_rng(7))
        inner_refill = session.refill

        def slow_refill(rounds=None):
            started.set()
            assert release.wait(timeout=30.0)  # artificially slow encode
            return inner_refill(rounds)

        session.refill = slow_refill
        refiller = BackgroundRefiller(poll_interval_s=0.0005).start()
        refiller.register(session)
        assert started.wait(timeout=30.0)  # worker is mid-refill

        assert refiller.stop(timeout=0.05) is False  # join timed out
        assert refiller.running  # the worker is still alive and says so
        zombie = refiller._thread
        assert zombie is not None and zombie.is_alive()
        with pytest.raises(ProtocolError, match="still stopping"):
            refiller.start()  # must NOT spawn a second worker
        worker_threads = [
            t for t in threading.enumerate() if t.name == "offline-refiller"
        ]
        assert worker_threads == [zombie]

        release.set()  # let the slow refill drain
        assert refiller.stop(timeout=30.0) is True
        assert not refiller.running and refiller._thread is None
        assert session.pool_level == 3  # in-flight material still delivered
        # After a *completed* stop, the refiller is restartable as before.
        refiller.start()
        assert refiller.running
        assert refiller.stop() is True
