"""Regression: ``Cohort.status()`` vs concurrent rounds (torn snapshots).

The pre-fix ``run_round`` incremented ``rounds``/``stalls`` and advanced
the phase machine *outside* ``_phase_lock``, so a status() scrape racing
a round's completion could observe a torn snapshot: the round counted
while the phase still said ``aggregating``, or ``rounds`` bumped with a
stall not yet recorded.  ``status()`` also read the fields lock-free.

Pinned here two ways:

* deterministically — status() must actually take the phase lock (a
  scrape blocks while the lock is held), and ``_complete_round`` commits
  counters + phase as one atomic step;
* statistically — scrape threads hammer status() during rounds that
  *all* stall (a stub session whose pool is permanently empty), so
  every consistent snapshot satisfies ``stalls == rounds``; any torn
  read breaks the equality.
"""

import sys
import threading
import time

import numpy as np
import pytest

from repro.exceptions import ProtocolError
from repro.protocols.base import AggregationResult, RoundMetrics, Transcript
from repro.service.cohort import Cohort, CohortPhase


class StubSession:
    """A pool-backed session whose pool is always empty: every round
    stalls, giving the race test its invariant (stalls == rounds)."""

    supports_pool = True
    pool_level = 0
    pool_size = 3

    def __init__(self):
        self.closed = False

    def run_round(self, updates, dropouts, rng=None, **kwargs):
        return AggregationResult(
            aggregate=np.zeros(4, dtype=np.uint64),
            survivors=sorted(set(updates) - set(dropouts)),
            transcript=Transcript(),
            metrics=RoundMetrics(),
        )

    def close(self):
        self.closed = True


def drive_rounds(cohort, rounds, errors):
    updates = {0: np.zeros(4, dtype=np.uint64), 1: np.zeros(4, dtype=np.uint64)}
    try:
        for _ in range(rounds):
            cohort.run_round(dict(updates), set())
    except Exception as exc:  # pragma: no cover - failure reporting
        errors.append(exc)


class TestStatusLocking:
    def test_status_blocks_while_phase_lock_held(self):
        """status() must serialize against phase transitions: with the
        lock held, a scrape cannot return (the lock-free pre-fix read
        returned immediately)."""
        cohort = Cohort(0, StubSession())
        seen = []
        with cohort._phase_lock:
            scraper = threading.Thread(
                target=lambda: seen.append(cohort.status())
            )
            scraper.start()
            scraper.join(timeout=0.2)
            assert scraper.is_alive(), "status() did not take the phase lock"
            assert seen == []
        scraper.join(timeout=10.0)
        assert not scraper.is_alive()
        assert seen and seen[0]["phase"] == "idle"

    def test_complete_round_is_atomic_under_the_lock(self):
        """_complete_round's counter bump and phase advance commit as
        one step — holding the lock delays both, never splits them."""
        cohort = Cohort(0, StubSession())
        cohort.phase = CohortPhase.AGGREGATING
        with cohort._phase_lock:
            committer = threading.Thread(
                target=cohort._complete_round, args=(True,)
            )
            committer.start()
            committer.join(timeout=0.2)
            assert committer.is_alive()
            # nothing moved while we hold the lock
            assert cohort.rounds == 0 and cohort.stalls == 0
            assert cohort.phase is CohortPhase.AGGREGATING
        committer.join(timeout=10.0)
        assert cohort.rounds == 1 and cohort.stalls == 1
        assert cohort.phase is CohortPhase.IDLE

    def test_complete_round_respects_terminal_close(self):
        cohort = Cohort(0, StubSession())
        cohort.phase = CohortPhase.CLOSED
        cohort._complete_round(False)  # counts the round, stays CLOSED
        assert cohort.rounds == 1
        assert cohort.phase is CohortPhase.CLOSED

    def test_complete_round_rejects_wrong_phase(self):
        cohort = Cohort(0, StubSession())
        with pytest.raises(ProtocolError, match="invalid transition"):
            cohort._complete_round(False)
        assert cohort.rounds == 1  # the round itself still happened


class TestStatusHammer:
    def test_no_torn_snapshots_under_concurrent_scrapes(self):
        """Every status() snapshot taken during a storm of always-
        stalling rounds must satisfy the machine's invariants:
        stalls == rounds (every round stalls) and phase consistency
        (an idle phase can only be reported alongside fully-committed
        counters — pre-fix, rounds could lead stalls by one)."""
        cohort = Cohort(0, StubSession())
        rounds = 400
        errors, bad = [], []
        stop = threading.Event()

        def scrape():
            while not stop.is_set():
                snap = cohort.status()
                if snap["stalls"] != snap["rounds"]:
                    bad.append(snap)

        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)  # provoke preemption inside races
        try:
            scrapers = [threading.Thread(target=scrape) for _ in range(4)]
            for t in scrapers:
                t.start()
            driver = threading.Thread(
                target=drive_rounds, args=(cohort, rounds, errors)
            )
            driver.start()
            driver.join(timeout=120.0)
            stop.set()
            for t in scrapers:
                t.join(timeout=10.0)
        finally:
            sys.setswitchinterval(old_interval)
        assert not errors
        assert not bad, f"torn snapshots observed: {bad[:3]}"
        final = cohort.status()
        assert final["rounds"] == rounds and final["stalls"] == rounds
        assert final["phase"] == "idle"

    def test_scrapes_during_rounds_see_legal_phases_only(self):
        cohort = Cohort(0, StubSession())
        legal = {"idle", "collecting", "aggregating"}
        seen, errors = set(), []
        stop = threading.Event()

        def scrape():
            while not stop.is_set():
                seen.add(cohort.status()["phase"])

        scraper = threading.Thread(target=scrape)
        scraper.start()
        driver = threading.Thread(
            target=drive_rounds, args=(cohort, 200, errors)
        )
        driver.start()
        driver.join(timeout=120.0)
        stop.set()
        scraper.join(timeout=10.0)
        assert not errors
        assert seen <= legal
        cohort.close()
        assert cohort.status()["phase"] == "closed"
