"""Shard transports: inline/process parity, worker lifecycle, refill overlap.

The acceptance criterion pinned here: rounds driven through
``ProcessPoolTransport`` (sessions in worker processes, spoken to in wire
frames) are bit-identical to ``InlineTransport`` (direct calls) across
mixed dropout patterns — same aggregates, survivors, transcripts, and
pool dynamics — and workers shut down cleanly with a refill in flight.
"""

import time

import numpy as np
import pytest

from repro.exceptions import DropoutError, ProtocolError, TransportError
from repro.field import DEFAULT_PRIME, FiniteField
from repro.service import (
    AggregationService,
    BackgroundRefiller,
    InlineTransport,
    ProcessPoolTransport,
    RefillMode,
    ServiceConfig,
    ShardPlan,
    ShardSessionSpec,
    ShardedSession,
    TransportKind,
    build_transport,
)

N, DIM, SHARDS = 8, 37, 3


def make_specs(shards=SHARDS, dim=DIM, pool_size=3, low_water=1,
               protocol="lightsecagg", seed=0):
    plan = ShardPlan(dim, shards)
    return plan, [
        ShardSessionSpec(
            protocol=protocol,
            num_users=N,
            shard_dim=plan.widths[s],
            privacy=2,
            dropout_tolerance=2,
            pool_size=pool_size,
            low_water=low_water,
            seed=(seed, 0, s),
        )
        for s in range(shards)
    ]


def mixed_dropout_rounds(gf, rounds=6, seed=11):
    """A deterministic stream of (updates, dropouts, offline_dropouts)."""
    rng = np.random.default_rng(seed)
    for r in range(rounds):
        updates = {i: gf.random(DIM, rng) for i in range(N)}
        dropouts = set(
            rng.choice(N, size=int(rng.integers(0, 3)), replace=False).tolist()
        )
        offline = {int(rng.integers(0, N))} if r % 3 == 2 else set()
        yield updates, dropouts, offline - dropouts


@pytest.fixture
def process_session():
    plan, specs = make_specs()
    transport = ProcessPoolTransport(specs)
    session = ShardedSession(plan, transport=transport)
    yield session, transport
    transport.close()


class TestProcessInlineBitIdentity:
    def test_rounds_bit_identical_across_mixed_dropouts(self, gf,
                                                        process_session):
        """Aggregate, survivors, transcript, and pool dynamics all match."""
        process, _ = process_session
        plan, specs = make_specs()
        inline = ShardedSession(
            plan, transport=InlineTransport.from_specs(specs, gf=gf)
        )
        for updates, dropouts, offline in mixed_dropout_rounds(gf):
            kwargs = {"offline_dropouts": offline} if offline else {}
            got = process.run_round(updates, set(dropouts), **kwargs)
            want = inline.run_round(updates, set(dropouts), **kwargs)
            assert got.survivors == want.survivors
            assert np.array_equal(got.aggregate, want.aggregate)
            assert len(got.transcript) == len(want.transcript)
            for phase in ("offline", "upload", "recovery"):
                assert got.transcript.elements(
                    phase=phase
                ) == want.transcript.elements(phase=phase)
            assert got.metrics.server_decode_ops == want.metrics.server_decode_ops
            assert got.metrics.extra == want.metrics.extra
        for counter in ("rounds", "refills", "pool_hits", "pool_misses",
                        "precomputed_rounds"):
            assert getattr(process.stats, counter) == getattr(
                inline.stats, counter
            ), counter  # refill_seconds is wall-clock, not a count
        assert process.pool_level == inline.pool_level
        inline.close()

    def test_fewer_workers_than_shards_same_results(self, gf):
        plan, specs = make_specs()
        transport = ProcessPoolTransport(specs, num_workers=2)
        assert transport.num_workers == 2
        multi = ShardedSession(plan, transport=transport)
        inline = ShardedSession(
            plan, transport=InlineTransport.from_specs(specs, gf=gf)
        )
        try:
            for updates, dropouts, _ in mixed_dropout_rounds(gf, rounds=3):
                got = multi.run_round(updates, set(dropouts))
                want = inline.run_round(updates, set(dropouts))
                assert got.survivors == want.survivors
                assert np.array_equal(got.aggregate, want.aggregate)
        finally:
            transport.close()
            inline.close()

    def test_service_level_parity_all_backends(self, gf):
        """The full service stack: inline/process x sync/background."""
        outputs = {}
        for kind in (TransportKind.INLINE, TransportKind.PROCESS):
            for mode in (RefillMode.SYNC, RefillMode.BACKGROUND):
                cfg = ServiceConfig(
                    num_cohorts=1,
                    num_users=N,
                    model_dim=DIM,
                    num_shards=2,
                    pool_size=3,
                    low_water=0 if mode is RefillMode.SYNC else 1,
                    refill_mode=mode,
                    dropout_tolerance=2,
                    privacy=2,
                    transport=kind,
                    seed=5,
                )
                with AggregationService(cfg, gf=gf) as svc:
                    outputs[(kind, mode)] = svc.run_synthetic(
                        rounds=4,
                        dropout_rate=0.2,
                        rng=np.random.default_rng(9),
                    )
        base = outputs[(TransportKind.INLINE, RefillMode.SYNC)]
        for key, results in outputs.items():
            for sweep, base_sweep in zip(results, base):
                assert sweep[0].survivors == base_sweep[0].survivors, key
                assert np.array_equal(
                    sweep[0].aggregate, base_sweep[0].aggregate
                ), key


class TestProcessWorkerLifecycle:
    def test_clean_shutdown_with_refill_in_flight(self):
        """Close lands while a worker is mid-refill: the refill completes,
        every worker acknowledges shutdown and exits with code 0."""
        plan, specs = make_specs(pool_size=6)
        transport = ProcessPoolTransport(specs)
        handles = transport.shard_handles
        tickets = [h.refill_begin() for h in handles]  # refills in flight
        transport.close()
        assert transport.closed
        for client in transport._clients:
            assert not client.process.is_alive()
            assert client.process.exitcode == 0
        # The begun refills were joined by nobody; the workers still
        # completed them before acknowledging shutdown (exitcode 0 above
        # proves the serve loop exited through the Shutdown branch).
        assert len(tickets) == len(handles)

    def test_refill_join_after_close_raises_protocol_error(self):
        plan, specs = make_specs(shards=1)
        transport = ProcessPoolTransport(specs)
        transport.close()
        with pytest.raises(ProtocolError, match="closed"):
            transport.shard_handles[0].refill()
        with pytest.raises(ProtocolError, match="closed"):
            ShardedSession(plan, transport=transport).run_round({}, set())

    def test_close_is_idempotent(self):
        _, specs = make_specs(shards=1)
        transport = ProcessPoolTransport(specs)
        transport.close()
        transport.close()
        assert transport.workers_alive == 0

    def test_multi_shard_worker_with_frames_larger_than_pipe_buffer(self, gf):
        """Deadlock regression: scattering several shard requests to ONE
        worker, each frame far larger than the OS pipe buffer (~64KB).
        Without an always-draining receiver on the coordinator side, the
        worker blocks flushing shard 0's result while the coordinator
        blocks writing shard 1's request, and the round never completes."""
        dim = 2**17  # ~1MB of update payload per shard request
        plan = ShardPlan(dim, 2)
        specs = [
            ShardSessionSpec(
                protocol="naive", num_users=N, shard_dim=plan.widths[s],
                privacy=2, dropout_tolerance=2, pool_size=1, low_water=0,
                seed=(0, 0, s),
            )
            for s in range(2)
        ]
        transport = ProcessPoolTransport(specs, num_workers=1)
        session = ShardedSession(plan, transport=transport)
        try:
            rng = np.random.default_rng(0)
            updates = {i: gf.random(dim, rng) for i in range(N)}
            result = session.run_round(updates, {1})
            from repro.protocols import NaiveAggregation

            expected = NaiveAggregation(gf, N, dim).expected_aggregate(
                updates, result.survivors
            )
            assert np.array_equal(result.aggregate, expected)
        finally:
            transport.close()

    def test_round_error_propagates_and_worker_stays_usable(self, gf):
        plan, specs = make_specs(shards=2)
        transport = ProcessPoolTransport(specs)
        session = ShardedSession(plan, transport=transport)
        try:
            rng = np.random.default_rng(0)
            updates = {i: gf.random(DIM, rng) for i in range(N)}
            # Dropping all but one user leaves survivors < U: the worker's
            # DropoutError crosses the wire and re-raises as itself.
            with pytest.raises(DropoutError, match="survivors"):
                session.run_round(updates, set(range(N - 1)))
            # Both pipes were drained; the next (valid) round still works.
            result = session.run_round(updates, {1})
            assert result.survivors == [i for i in range(N) if i != 1]
        finally:
            transport.close()

    def test_unsupported_phase_kwargs_rejected(self, gf):
        plan, specs = make_specs(shards=1)
        transport = ProcessPoolTransport(specs)
        session = ShardedSession(plan, transport=transport)
        try:
            rng = np.random.default_rng(0)
            updates = {i: gf.random(DIM, rng) for i in range(N)}
            with pytest.raises(TransportError, match="phase kwargs"):
                session.run_round(updates, set(), mystery_kwarg=1)
        finally:
            transport.close()


class TestProcessHandleSurface:
    def test_cached_pool_state_tracks_rounds_and_refills(self, gf,
                                                         process_session):
        session, transport = process_session
        handle = transport.shard_handles[0]
        assert handle.supports_pool and handle.pool_level == 0
        assert handle.needs_refill  # empty pool, low_water 1
        session.refill()
        assert handle.pool_level == 3
        assert not handle.needs_refill
        rng = np.random.default_rng(1)
        updates = {i: gf.random(DIM, rng) for i in range(N)}
        session.run_round(updates, set())
        session.run_round(updates, set())
        assert handle.pool_level == 1  # refreshed by round-result frames
        assert handle.needs_refill
        assert handle.stats.pool_hits == 2
        assert handle.sync().pool_level == 1  # explicit snapshot agrees

    def test_background_refiller_drives_process_handles(self, gf,
                                                        process_session):
        """The refiller's scatter/gather path keeps worker pools topped."""
        session, transport = process_session
        session.refill()
        refiller = BackgroundRefiller(poll_interval_s=0.001)
        for handle in transport.shard_handles:
            refiller.register(handle, cohort_id=0)
        with refiller:
            rng = np.random.default_rng(2)
            updates = {i: gf.random(DIM, rng) for i in range(N)}
            for _ in range(4):
                session.run_round(updates, set())
                refiller.notify()
                assert refiller.wait_until_idle(timeout=10.0)
            assert session.pool_level >= 2  # topped back above low water
        assert refiller.refills > 0

    def test_naive_replay_shards_over_processes(self, gf):
        plan, specs = make_specs(shards=2, protocol="naive")
        transport = ProcessPoolTransport(specs)
        session = ShardedSession(plan, transport=transport)
        try:
            assert not session.supports_pool
            assert session.refill() == 0
            rng = np.random.default_rng(3)
            updates = {i: gf.random(DIM, rng) for i in range(N)}
            result = session.run_round(updates, {2})
            from repro.protocols import NaiveAggregation

            expected = NaiveAggregation(gf, N, DIM).expected_aggregate(
                updates, result.survivors
            )
            assert np.array_equal(result.aggregate, expected)
        finally:
            transport.close()


class TestTransportConstruction:
    def test_build_transport_dispatch_and_unknown_kind(self, gf):
        _, specs = make_specs(shards=1)
        inline = build_transport("inline", specs, gf=gf)
        assert isinstance(inline, InlineTransport) and inline.kind == "inline"
        inline.close()
        with pytest.raises(ProtocolError, match="unknown transport"):
            build_transport("carrier-pigeon", specs)

    def test_spec_build_matches_direct_construction(self, gf):
        _, specs = make_specs(shards=1)
        built = specs[0].build(gf)
        assert built.pool_size == specs[0].pool_size
        assert built.low_water == specs[0].low_water
        assert built.protocol.model_dim == specs[0].shard_dim
        assert built.gf is gf
        default_field = specs[0].build()
        assert default_field.gf.q == DEFAULT_PRIME

    def test_sharded_session_requires_exactly_one_source(self):
        plan, specs = make_specs(shards=1)
        with pytest.raises(ProtocolError, match="exactly one"):
            ShardedSession(plan)
        inline = InlineTransport.from_specs(specs)
        with pytest.raises(ProtocolError, match="exactly one"):
            ShardedSession(plan, inline.shard_handles, transport=inline)
        inline.close()

    def test_transport_shard_count_must_match_plan(self):
        plan, specs = make_specs(shards=2)
        inline = InlineTransport.from_specs(specs)
        with pytest.raises(ProtocolError, match="transport drives"):
            ShardedSession(ShardPlan(DIM, 3), transport=inline)
        inline.close()

    def test_invalid_worker_count_rejected(self):
        _, specs = make_specs(shards=1)
        with pytest.raises(ProtocolError, match=">= 1 worker"):
            ProcessPoolTransport(specs, num_workers=0)
