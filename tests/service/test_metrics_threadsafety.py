"""Regression: every ServiceMetrics read/write is serialized by its lock.

The pool-depth series is appended by two producer threads (the online
consumer recording rounds, the background refiller recording refills)
while consumers snapshot it; a snapshot taken mid-append must never see
a torn series, and no recorded event may be lost.  These tests hammer
the producer/consumer paths from real threads and check the final
counts are exact and every intermediate snapshot internally consistent.
"""

import threading

from repro.service import ServiceMetrics

ROUNDS_PER_THREAD = 400
PRODUCERS = 3


def test_concurrent_rounds_refills_and_snapshots_stay_consistent():
    metrics = ServiceMetrics()
    start = threading.Barrier(PRODUCERS + 2)
    errors = []

    def producer(cohort_id):
        start.wait()
        for i in range(ROUNDS_PER_THREAD):
            metrics.record_round(
                cohort_id, online_seconds=1e-6, stalled=(i % 7 == 0),
                pool_level_before=i % 5,
            )
            metrics.record_refill(cohort_id, rounds_added=1, pool_level_after=4)
            metrics.record_transport_round(
                "process", 1e-6, bytes_sent=10, bytes_received=20,
                stalled_shards=i % 2,
            )

    def sampler():
        start.wait()
        for _ in range(200):
            snap = metrics.snapshot()
            try:
                for cid, m in snap["cohorts"].items():
                    series = m["pool_depth_series"]
                    # one sample per round + one per refill, interleaved;
                    # a torn append would break the pairing invariant.
                    assert len(series) <= 2 * ROUNDS_PER_THREAD
                    assert all(
                        isinstance(t, float) and isinstance(d, int)
                        for t, d in series
                    )
                    times = [t for t, _ in series]
                    assert times == sorted(times)
                    assert m["stalls"] <= m["rounds"]
                    # accessor and snapshot must agree on a consistent copy
                    assert len(metrics.pool_depth_series(cid)) >= 0
                assert snap["total_rounds"] == sum(
                    m["rounds"] for m in snap["cohorts"].values()
                )
            except AssertionError as exc:  # pragma: no cover - failure path
                errors.append(exc)
                raise

    threads = [
        threading.Thread(target=producer, args=(cid,))
        for cid in range(PRODUCERS)
    ] + [threading.Thread(target=sampler), threading.Thread(target=sampler)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert not errors
    snap = metrics.snapshot()
    assert snap["total_rounds"] == PRODUCERS * ROUNDS_PER_THREAD
    expected_stalls = PRODUCERS * len(
        [i for i in range(ROUNDS_PER_THREAD) if i % 7 == 0]
    )
    assert snap["total_stalls"] == expected_stalls
    for cid in range(PRODUCERS):
        m = snap["cohorts"][cid]
        assert m["rounds"] == ROUNDS_PER_THREAD
        assert m["background_refills"] == ROUNDS_PER_THREAD
        assert len(m["pool_depth_series"]) == 2 * ROUNDS_PER_THREAD
        assert m["pool_depth_series"] == metrics.pool_depth_series(cid)
    t = snap["transports"]["process"]
    assert t["rounds"] == PRODUCERS * ROUNDS_PER_THREAD
    assert t["bytes_sent"] == 10 * t["rounds"]
    assert t["bytes_received"] == 20 * t["rounds"]
    assert t["shard_stalls"] == PRODUCERS * ROUNDS_PER_THREAD // 2


def test_snapshot_series_is_a_copy_not_the_internal_list():
    metrics = ServiceMetrics()
    metrics.record_round(0, 1e-6, stalled=False, pool_level_before=3)
    snap = metrics.snapshot()
    snap["cohorts"][0]["pool_depth_series"].append((999.0, 999))
    copy = metrics.pool_depth_series(0)
    copy.append((123.0, 123))
    assert len(metrics.snapshot()["cohorts"][0]["pool_depth_series"]) == 1
    assert metrics.pool_depth_series(99) == []
