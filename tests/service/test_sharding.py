"""Sharded aggregation: bit-identical reassembly and plan semantics."""

import numpy as np
import pytest

from repro.exceptions import ProtocolError
from repro.field import FiniteField
from repro.protocols import LightSecAgg, LSAParams, NaiveAggregation
from repro.service import ShardedSession, ShardPlan

N, DIM = 8, 37  # deliberately not divisible by the shard counts below


@pytest.fixture
def params():
    return LSAParams.from_guarantees(N, privacy=2, dropout_tolerance=2)


def make_sharded(gf, params, dim, shards, pool_size=3, low_water=0, seed=0):
    plan = ShardPlan(dim, shards)
    sessions = [
        LightSecAgg(gf, params, plan.widths[s]).session(
            pool_size=pool_size,
            low_water=low_water,
            rng=np.random.default_rng([seed, s]),
        )
        for s in range(shards)
    ]
    return ShardedSession(plan, sessions)


class TestShardPlan:
    def test_even_and_uneven_splits_cover_the_vector(self):
        for dim, shards in [(37, 4), (40, 4), (5, 5), (7, 1)]:
            plan = ShardPlan(dim, shards)
            assert sum(plan.widths) == dim
            assert max(plan.widths) - min(plan.widths) <= 1
            vec = np.arange(dim, dtype=np.uint64)
            assert np.array_equal(plan.gather(plan.scatter(vec)), vec)

    def test_slices_are_contiguous_and_ordered(self):
        plan = ShardPlan(10, 3)
        covered = []
        for s in range(3):
            sl = plan.slice(s)
            covered.extend(range(sl.start, sl.stop))
        assert covered == list(range(10))

    def test_invalid_plans_rejected(self):
        with pytest.raises(ProtocolError):
            ShardPlan(4, 5)  # more shards than coordinates
        with pytest.raises(ProtocolError):
            ShardPlan(4, 0)
        with pytest.raises(ProtocolError):
            ShardPlan(0, 1)

    def test_scatter_validates_shape(self):
        plan = ShardPlan(6, 2)
        with pytest.raises(ProtocolError):
            plan.scatter(np.zeros(5, dtype=np.uint64))
        with pytest.raises(ProtocolError):
            plan.gather([np.zeros(3, dtype=np.uint64)])


class TestShardedBitIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 3, 5])
    def test_matches_single_shard_session_exactly(self, gf, params, shards):
        """The acceptance criterion: sharded == single-shard, bit for bit."""
        single = LightSecAgg(gf, params, DIM).session(
            pool_size=3, rng=np.random.default_rng(99)
        )
        sharded = make_sharded(gf, params, DIM, shards)
        rng = np.random.default_rng(1)
        for r in range(6):
            updates = {i: gf.random(DIM, rng) for i in range(N)}
            dropouts = set(
                rng.choice(N, size=int(rng.integers(0, 3)),
                           replace=False).tolist()
            )
            got = sharded.run_round(updates, set(dropouts), rng)
            want = single.run_round(updates, set(dropouts), rng)
            assert got.survivors == want.survivors, r
            assert np.array_equal(got.aggregate, want.aggregate), r

    def test_mixed_offline_dropouts_forwarded_to_every_shard(self, gf):
        params = LSAParams.from_guarantees(N, privacy=2, dropout_tolerance=4)
        proto = LightSecAgg(gf, params, DIM)
        sharded = make_sharded(gf, params, DIM, 3)
        rng = np.random.default_rng(2)
        updates = {i: gf.random(DIM, rng) for i in range(N)}
        result = sharded.run_round(
            updates, {1}, rng, offline_dropouts={5, 6}
        )
        assert result.survivors == [i for i in range(N) if i not in {1, 5, 6}]
        expected = proto.expected_aggregate(updates, result.survivors)
        assert np.array_equal(result.aggregate, expected)

    def test_transcript_and_metrics_aggregate_across_shards(self, gf, params):
        sharded = make_sharded(gf, params, DIM, 2)
        single = LightSecAgg(gf, params, DIM).session(
            pool_size=3, rng=np.random.default_rng(0)
        )
        rng = np.random.default_rng(3)
        updates = {i: gf.random(DIM, rng) for i in range(N)}
        got = sharded.run_round(updates, set(), rng)
        want = single.run_round(updates, set(), rng)
        # Upload traffic covers the full vector once, across all shards.
        assert got.transcript.elements(phase="upload") == N * DIM
        assert want.transcript.elements(phase="upload") == N * DIM
        assert got.metrics.server_decode_ops > 0

    def test_replay_sessions_shard_too(self, gf):
        """Sharding composes with the non-pooled replay fallback."""
        plan = ShardPlan(DIM, 2)
        sessions = [
            NaiveAggregation(gf, N, w).session() for w in plan.widths
        ]
        sharded = ShardedSession(plan, sessions)
        assert not sharded.supports_pool and not sharded.needs_refill
        rng = np.random.default_rng(4)
        updates = {i: gf.random(DIM, rng) for i in range(N)}
        result = sharded.run_round(updates, {2}, rng)
        expected = NaiveAggregation(gf, N, DIM).expected_aggregate(
            updates, result.survivors
        )
        assert np.array_equal(result.aggregate, expected)


class TestShardedPoolSurface:
    def test_pool_level_is_min_over_shards(self, gf, params):
        sharded = make_sharded(gf, params, DIM, 2, pool_size=4, low_water=2)
        sharded.shard_sessions[0].refill(4)
        sharded.shard_sessions[1].refill(2)
        assert sharded.pool_level == 2
        assert sharded.needs_refill  # shard 1 drained to its low water of 2

    def test_refill_tops_every_shard(self, gf, params):
        sharded = make_sharded(gf, params, DIM, 3, pool_size=3)
        assert sharded.refill() == 3
        assert all(s.pool_level == 3 for s in sharded.shard_sessions)
        assert sharded.refill() == 0

    def test_close_closes_all_shards(self, gf, params):
        sharded = make_sharded(gf, params, DIM, 2)
        with sharded:
            pass
        assert sharded.closed
        assert all(s.closed for s in sharded.shard_sessions)
        rng = np.random.default_rng(0)
        updates = {i: gf.random(DIM, rng) for i in range(N)}
        with pytest.raises(ProtocolError):
            sharded.run_round(updates, set(), rng)

    def test_stats_mirror_logical_rounds(self, gf, params):
        sharded = make_sharded(gf, params, DIM, 2, pool_size=2)
        rng = np.random.default_rng(5)
        updates = {i: gf.random(DIM, rng) for i in range(N)}
        for _ in range(4):
            sharded.run_round(updates, set(), rng)
        assert sharded.stats.rounds == 4
        assert sharded.stats.pool_hits + sharded.stats.pool_misses == 4
        # Every shard refilled at rounds 0 and 2 (pool of 2, 4 rounds).
        assert sharded.stats.refills == 4

    def test_mismatched_sessions_rejected(self, gf, params):
        plan = ShardPlan(DIM, 2)
        good = LightSecAgg(gf, params, plan.widths[0]).session()
        bad_dim = LightSecAgg(gf, params, plan.widths[1] + 1).session()
        with pytest.raises(ProtocolError):
            ShardedSession(plan, [good, bad_dim])
        with pytest.raises(ProtocolError):
            ShardedSession(plan, [good])
