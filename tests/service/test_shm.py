"""Shared-memory lane lifecycle: segment hygiene and payload routing.

The shm transport's contract, pinned here: vector payloads move through
a coordinator-owned ``/dev/shm`` segment while the pipes carry only
references, and NO segment outlives the transport — not after N clean
rounds, and not after a worker is killed mid-round.  Plus the unit
surface of :class:`SegmentArena` / :class:`ShmRegistry`: the closed
namespace, bounds checks, and idempotent teardown the lane relies on.
"""

import glob

import numpy as np
import pytest

from repro.exceptions import TransportError, WireError
from repro.field import FiniteField
from repro.service import (
    ProcessPoolTransport,
    ServiceMetrics,
    ShardPlan,
    ShardSessionSpec,
    ShardedSession,
    build_transport,
)
from repro.wire.format import ShmArrayRef
from repro.wire.shm import (
    SEGMENT_PREFIX,
    SegmentArena,
    ShmRegistry,
    created_segments,
)

N, DIM, SHARDS = 8, 37, 2


def make_specs(shards=SHARDS, dim=DIM, seed=9):
    plan = ShardPlan(dim, shards)
    return plan, [
        ShardSessionSpec(
            protocol="lightsecagg",
            num_users=N,
            shard_dim=plan.widths[s],
            privacy=2,
            dropout_tolerance=2,
            pool_size=3,
            low_water=0,
            seed=(seed, 0, s),
        )
        for s in range(shards)
    ]


def dev_shm_entries():
    """``/dev/shm`` files in our namespace, as the OS sees them."""
    return sorted(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*"))


@pytest.fixture(autouse=True)
def no_preexisting_segments():
    """Every test starts and must end with a clean namespace."""
    assert created_segments() == []
    assert dev_shm_entries() == []
    yield


class TestShmLaneLeaks:
    def test_n_rounds_then_shutdown_leaves_no_segments(self, gf):
        plan, specs = make_specs()
        transport = build_transport("shm", specs, gf=gf)
        session = ShardedSession(plan, transport=transport)
        try:
            assert transport.kind == "shm"
            assert len(created_segments()) == 1
            assert len(dev_shm_entries()) == 1
            rng = np.random.default_rng(0)
            for r in range(5):
                updates = {i: gf.random(DIM, rng) for i in range(N)}
                result = session.run_round(updates, {r % N})
                assert result.aggregate.shape == (DIM,)
            # Rounds reuse the regions; no new segments appear.
            assert len(created_segments()) == 1
        finally:
            transport.close()
        assert created_segments() == []
        assert dev_shm_entries() == []

    def test_worker_killed_mid_use_still_no_leak(self, gf):
        """SIGKILL a worker, drive a round into the broken pipe, then
        close: the coordinator owns the segment and unlinks it anyway."""
        plan, specs = make_specs()
        transport = build_transport("shm", specs, gf=gf)
        session = ShardedSession(plan, transport=transport)
        try:
            rng = np.random.default_rng(1)
            updates = {i: gf.random(DIM, rng) for i in range(N)}
            session.run_round(updates, set())  # workers attached now
            victim = transport._clients[0].process
            victim.kill()
            victim.join(timeout=10.0)
            assert not victim.is_alive()
            with pytest.raises(TransportError):
                session.run_round(updates, set())
        finally:
            transport.close()
        assert created_segments() == []
        assert dev_shm_entries() == []

    def test_close_is_idempotent_and_del_backstop_safe(self, gf):
        _, specs = make_specs(shards=1)
        transport = build_transport("shm", specs, gf=gf)
        transport.close()
        transport.close()
        transport.__del__()
        assert created_segments() == []
        assert dev_shm_entries() == []


class TestShmLanePayloadRouting:
    def test_pipe_carries_references_shm_carries_elements(self, gf):
        """bytes_sent stays far below the staged matrix volume while
        shm_bytes covers it — the lane's whole reason to exist."""
        plan, specs = make_specs()
        metrics = ServiceMetrics()
        transport = build_transport("shm", specs, gf=gf, metrics=metrics)
        session = ShardedSession(plan, transport=transport)
        rounds = 3
        try:
            rng = np.random.default_rng(2)
            for _ in range(rounds):
                updates = {i: gf.random(DIM, rng) for i in range(N)}
                session.run_round(updates, set())
        finally:
            transport.close()
        lane = metrics.snapshot()["transports"]["shm"]
        assert lane["rounds"] == rounds
        # Per round: N users x DIM elements x 8 bytes staged in, plus the
        # DIM-element aggregate staged back.
        staged_floor = rounds * (N * DIM + DIM) * 8
        assert lane["shm_bytes"] >= staged_floor
        assert lane["bytes_sent"] < staged_floor
        assert lane["bytes_sent"] > 0  # the reference frames themselves

    def test_shm_lane_matches_process_lane_bit_for_bit(self, gf):
        outputs = {}
        for kind in ("process", "shm"):
            plan, specs = make_specs()
            transport = build_transport(kind, specs, gf=gf)
            session = ShardedSession(plan, transport=transport)
            try:
                rng = np.random.default_rng(3)
                outs = []
                for r in range(4):
                    updates = {i: gf.random(DIM, rng) for i in range(N)}
                    result = session.run_round(updates, {r % 3})
                    outs.append(
                        (result.aggregate.tobytes(), tuple(result.survivors))
                    )
                outputs[kind] = outs
            finally:
                transport.close()
        assert outputs["shm"] == outputs["process"]

    def test_aggregate_detached_from_reused_region(self, gf):
        """The returned aggregate must survive the next round overwriting
        the response region it was decoded from.  Driven at the transport
        layer: session-level shard concatenation would copy and mask a
        still-aliased array."""
        _, specs = make_specs(shards=1)
        transport = build_transport("shm", specs, gf=gf)
        try:
            rng = np.random.default_rng(4)
            updates = {i: gf.random(DIM, rng) for i in range(N)}
            [first] = transport.run_all([updates], set())
            kept = first.aggregate.copy()
            assert first.aggregate.flags["OWNDATA"]  # not a segment view
            updates2 = {i: gf.random(DIM, rng) for i in range(N)}
            [second] = transport.run_all([updates2], {0, 1})
            assert not np.array_equal(second.aggregate, kept)
            np.testing.assert_array_equal(first.aggregate, kept)
        finally:
            transport.close()

    def test_num_workers_fewer_than_shards(self, gf):
        plan, specs = make_specs()
        transport = build_transport("shm", specs, gf=gf, num_workers=1)
        session = ShardedSession(plan, transport=transport)
        try:
            assert transport.num_workers == 1
            rng = np.random.default_rng(5)
            updates = {i: gf.random(DIM, rng) for i in range(N)}
            result = session.run_round(updates, {2})
            assert result.aggregate.shape == (DIM,)
        finally:
            transport.close()
        assert created_segments() == []


class TestSegmentArena:
    def test_place_and_ndarray_round_trip(self):
        arena = SegmentArena(1024)
        try:
            data = np.arange(16, dtype=np.uint64).reshape(4, 4)
            ref = arena.place(64, data)
            assert ref.name == arena.name
            assert ref.offset == 64
            assert ref.shape == (4, 4)
            view = arena.ndarray(64, (4, 4))
            np.testing.assert_array_equal(view, data)
            # The view is live: writes land in the segment.
            view[0, 0] = 7
            assert arena.ndarray(64, (4, 4))[0, 0] == 7
        finally:
            arena.close()

    def test_region_overrun_rejected(self):
        arena = SegmentArena(64)
        try:
            with pytest.raises(TransportError, match="overruns"):
                arena.ndarray(32, (8,))  # needs 64B at offset 32
        finally:
            arena.close()

    def test_name_outside_namespace_rejected(self):
        with pytest.raises(TransportError, match="namespace"):
            SegmentArena(64, name="psm-stolen")

    def test_close_unlinks_and_is_idempotent(self):
        arena = SegmentArena(64)
        name = arena.name
        assert name in created_segments()
        arena.close()
        arena.close()
        assert name not in created_segments()
        assert dev_shm_entries() == []
        with pytest.raises(TransportError, match="closed"):
            arena.buf


class TestShmRegistry:
    def test_refuses_names_outside_the_namespace(self):
        registry = ShmRegistry()
        with pytest.raises(WireError, match="refusing to attach"):
            registry.resolve("psm-arbitrary-system-segment")

    def test_missing_segment_is_a_wire_error(self):
        registry = ShmRegistry()
        with pytest.raises(WireError, match="does not exist"):
            registry.resolve(f"{SEGMENT_PREFIX}never-created")

    def test_local_arena_short_circuits_attachment(self):
        arena = SegmentArena(128)
        registry = ShmRegistry()
        try:
            registry.add_local(arena)
            data = np.array([3, 1, 4], dtype=np.uint64)
            ref = arena.place(0, data)
            np.testing.assert_array_equal(registry.ndarray(ref), data)
        finally:
            registry.close()
            arena.close()
        assert created_segments() == []

    def test_ref_overrunning_segment_rejected(self):
        arena = SegmentArena(64)
        registry = ShmRegistry()
        try:
            registry.add_local(arena)
            ref = ShmArrayRef(name=arena.name, offset=32, shape=(8,))
            with pytest.raises(WireError, match="overruns"):
                registry.ndarray(ref)
        finally:
            registry.close()
            arena.close()

    def test_registry_close_never_unlinks(self):
        """A registry detaching must not destroy the creator's segment."""
        arena = SegmentArena(256)
        registry = ShmRegistry()
        try:
            registry.add_local(arena)
            registry.resolve(arena.name)
            registry.close()
            assert arena.name in created_segments()
            assert len(dev_shm_entries()) == 1
            # Still usable after the registry detached.
            arena.ndarray(0, (4,))[:] = 5
        finally:
            arena.close()
        assert created_segments() == []
