"""Tests for synthetic datasets and FL partitioners."""

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.fl.datasets.synthetic import (
    Dataset,
    dirichlet_partition,
    iid_partition,
    make_cifar10_like,
    make_classification,
    make_femnist_like,
    make_gld23k_like,
    make_mnist_like,
    shard_partition,
    train_test_split,
)


class TestFactories:
    @pytest.mark.parametrize(
        "factory,shape,classes",
        [
            (make_mnist_like, (1, 28, 28), 10),
            (make_femnist_like, (1, 28, 28), 62),
            (make_cifar10_like, (3, 32, 32), 10),
            (make_gld23k_like, (3, 64, 64), 203),
        ],
    )
    def test_shapes_match_paper_datasets(self, factory, shape, classes):
        ds = factory(num_samples=50, seed=0)
        assert ds.input_shape == shape
        assert ds.num_classes == classes
        assert len(ds) == 50

    def test_deterministic(self):
        a = make_mnist_like(20, seed=5)
        b = make_mnist_like(20, seed=5)
        assert np.array_equal(a.x, b.x) and np.array_equal(a.y, b.y)

    def test_different_seeds_differ(self):
        a = make_mnist_like(20, seed=5)
        b = make_mnist_like(20, seed=6)
        assert not np.array_equal(a.x, b.x)

    def test_validation(self):
        with pytest.raises(ReproError):
            make_classification(0, (2, 2), 3)
        with pytest.raises(ReproError):
            make_classification(10, (2, 2), 1)

    def test_learnable_at_low_noise(self):
        """Nearest-prototype classification should be nearly perfect."""
        ds = make_classification(200, (1, 6, 6), 4, noise=0.2, seed=1)
        rng = np.random.default_rng(1)
        protos = np.stack(
            [ds.x[ds.y == c].mean(axis=0) for c in range(4)]
        )
        flat_x = ds.x.reshape(len(ds), -1)
        flat_p = protos.reshape(4, -1)
        preds = np.argmin(
            ((flat_x[:, None, :] - flat_p[None]) ** 2).sum(-1), axis=1
        )
        assert (preds == ds.y).mean() > 0.95


class TestDatasetOps:
    def test_subset(self):
        ds = make_mnist_like(30, seed=0)
        sub = ds.subset(np.asarray([0, 5, 7]))
        assert len(sub) == 3
        assert np.array_equal(sub.y, ds.y[[0, 5, 7]])

    def test_batches_cover_everything(self, rng):
        ds = make_mnist_like(25, seed=0)
        seen = 0
        for xb, yb in ds.batches(8, rng):
            seen += len(yb)
            assert xb.shape[0] == yb.shape[0]
        assert seen == 25

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ReproError):
            Dataset(np.zeros((3, 2)), np.zeros(4, dtype=np.int64), 2)


class TestTrainTestSplit:
    def test_sizes(self):
        ds = make_mnist_like(100, seed=0)
        train, test = train_test_split(ds, 0.2, seed=1)
        assert len(train) == 80 and len(test) == 20

    def test_disjoint(self):
        ds = make_mnist_like(50, seed=0)
        train, test = train_test_split(ds, 0.3, seed=1)
        # No sample appears in both (check by matching rows).
        train_rows = {t.tobytes() for t in train.x}
        test_rows = {t.tobytes() for t in test.x}
        assert not (train_rows & test_rows)

    def test_invalid_fraction(self):
        ds = make_mnist_like(10, seed=0)
        with pytest.raises(ReproError):
            train_test_split(ds, 0.0)


class TestPartitioners:
    def test_iid_covers_all_samples(self):
        ds = make_mnist_like(100, seed=0)
        clients = iid_partition(ds, 7, seed=0)
        assert len(clients) == 7
        assert sum(len(c) for c in clients) == 100

    def test_iid_roughly_balanced(self):
        ds = make_mnist_like(100, seed=0)
        clients = iid_partition(ds, 7, seed=0)
        sizes = [len(c) for c in clients]
        assert max(sizes) - min(sizes) <= 1

    def test_iid_too_many_clients(self):
        ds = make_mnist_like(5, seed=0)
        with pytest.raises(ReproError):
            iid_partition(ds, 10)

    def test_dirichlet_covers_and_nonempty(self):
        ds = make_mnist_like(300, seed=0)
        clients = dirichlet_partition(ds, 10, alpha=0.3, seed=0)
        assert len(clients) == 10
        assert all(len(c) >= 1 for c in clients)
        assert sum(len(c) for c in clients) == 300

    def test_dirichlet_skew_increases_as_alpha_drops(self):
        ds = make_mnist_like(2000, seed=0)

        def label_skew(clients):
            """Mean per-client entropy of the label distribution."""
            ents = []
            for c in clients:
                p = np.bincount(c.y, minlength=10) / max(len(c), 1)
                nz = p[p > 0]
                ents.append(-(nz * np.log(nz)).sum())
            return np.mean(ents)

        uniform = label_skew(dirichlet_partition(ds, 10, alpha=100.0, seed=1))
        skewed = label_skew(dirichlet_partition(ds, 10, alpha=0.1, seed=1))
        assert skewed < uniform

    def test_dirichlet_invalid_alpha(self):
        ds = make_mnist_like(20, seed=0)
        with pytest.raises(ReproError):
            dirichlet_partition(ds, 2, alpha=0.0)

    def test_shard_partition_label_concentration(self):
        ds = make_mnist_like(500, seed=0)
        clients = shard_partition(ds, 10, shards_per_client=2, seed=0)
        assert len(clients) == 10
        # Each client should see few distinct labels (pathological non-IID).
        distinct = [len(np.unique(c.y)) for c in clients]
        assert np.mean(distinct) <= 5
