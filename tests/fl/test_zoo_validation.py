"""Validation and construction tests for the model zoo."""

import numpy as np
import pytest

from repro.fl.models import (
    lenet5_variant,
    logistic_regression,
    mcmahan_cnn,
    mlp,
)


class TestInputSizeValidation:
    def test_cnn_rejects_tiny_inputs(self):
        with pytest.raises(ValueError, match="too small"):
            mcmahan_cnn(input_shape=(1, 14, 14))
        with pytest.raises(ValueError, match="too small"):
            lenet5_variant(input_shape=(3, 12, 12))

    def test_cnn_accepts_minimum(self):
        model = mcmahan_cnn(input_shape=(1, 18, 18), num_classes=3)
        x = np.zeros((2, 1, 18, 18))
        assert model.predict(x).shape == (2,)

    def test_paper_shapes_work(self):
        assert mcmahan_cnn(input_shape=(1, 28, 28), num_classes=62).dim > 0
        assert lenet5_variant(input_shape=(3, 32, 32), num_classes=10).dim > 0


class TestDeterminism:
    @pytest.mark.parametrize("factory", [logistic_regression, mlp])
    def test_same_seed_same_params(self, factory):
        a = factory(seed=7).get_flat_params()
        b = factory(seed=7).get_flat_params()
        assert np.array_equal(a, b)

    def test_different_seed_different_params(self):
        a = logistic_regression(seed=7).get_flat_params()
        b = logistic_regression(seed=8).get_flat_params()
        assert not np.array_equal(a, b)


class TestDimConsistency:
    @pytest.mark.parametrize(
        "factory,kwargs",
        [
            (logistic_regression, {}),
            (mlp, {"hidden": 50}),
            (mcmahan_cnn, {"input_shape": (1, 20, 20), "num_classes": 5}),
            (lenet5_variant, {"input_shape": (1, 20, 20), "num_classes": 5}),
        ],
    )
    def test_flat_params_length_equals_dim(self, factory, kwargs):
        model = factory(**kwargs)
        assert model.get_flat_params().shape == (model.dim,)
