"""Multi-round oracle regression: session-driven secure FL == plain FedAvg.

``SecureFederatedAveraging`` now drives a stateful protocol session.  The
pooled sessions draw their offline randomness from a dedicated generator,
so the caller-supplied rng stream is consumed identically whether the
aggregation underneath is LightSecAgg, its encrypted variant, or the naive
oracle — which makes the global model trajectories **exactly** comparable
across protocols on the synthetic dataset.
"""

import numpy as np
import pytest

from repro.field import FiniteField
from repro.fl import (
    LocalTrainingConfig,
    SecureFederatedAveraging,
    iid_partition,
    logistic_regression,
    make_mnist_like,
)
from repro.fl.datasets.synthetic import train_test_split
from repro.protocols import (
    EncryptedLightSecAgg,
    LightSecAgg,
    LSAParams,
    NaiveAggregation,
)

N_CLIENTS = 6
ROUNDS = 3


@pytest.fixture
def fl_setup():
    gf = FiniteField()
    full = make_mnist_like(420, seed=3, noise=0.8)
    train, test = train_test_split(full, 0.2, seed=1)
    clients = iid_partition(train, N_CLIENTS, seed=1)
    return gf, clients, test


def run_training(gf, clients, test, protocol, dropouts_per_round):
    model = logistic_regression(seed=0)
    trainer = SecureFederatedAveraging(
        model,
        clients,
        protocol,
        local_config=LocalTrainingConfig(epochs=1, batch_size=32, lr=0.05),
        session_pool=2,
        session_rng=np.random.default_rng(777),
    )
    rng = np.random.default_rng(42)
    for dropouts in dropouts_per_round:
        trainer.run_round(dropouts=set(dropouts), rng=rng, test_set=test)
    return trainer


class TestSessionOracleRegression:
    @pytest.mark.parametrize("dropout_plan", [
        [set(), set(), set()],
        [{2}, {0, 5}, {1}],
    ])
    def test_lightsecagg_session_matches_fedavg_oracle(
        self, fl_setup, dropout_plan
    ):
        gf, clients, test = fl_setup
        dim = logistic_regression(seed=0).dim
        params = LSAParams.from_guarantees(N_CLIENTS, 2, 2)
        secure = run_training(
            gf, clients, test, LightSecAgg(gf, params, dim), dropout_plan
        )
        oracle = run_training(
            gf, clients, test, NaiveAggregation(gf, N_CLIENTS, dim),
            dropout_plan,
        )
        # Bit-exact: the session aggregate is the exact field sum, the
        # dequantization is deterministic, and both runs consume the
        # caller rng identically.
        assert np.array_equal(secure.global_params, oracle.global_params)
        for rs, ro in zip(secure.history.records, oracle.history.records):
            assert rs.survivors == ro.survivors
            assert rs.test_accuracy == ro.test_accuracy

    def test_encrypted_session_matches_oracle(self, fl_setup):
        gf, clients, test = fl_setup
        dim = logistic_regression(seed=0).dim
        params = LSAParams.from_guarantees(N_CLIENTS, 2, 2)
        plan = [{1}, set(), {4}]
        secure = run_training(
            gf, clients, test, EncryptedLightSecAgg(gf, params, dim), plan
        )
        oracle = run_training(
            gf, clients, test, NaiveAggregation(gf, N_CLIENTS, dim), plan
        )
        assert np.array_equal(secure.global_params, oracle.global_params)

    def test_session_state_persists_across_rounds(self, fl_setup):
        gf, clients, test = fl_setup
        dim = logistic_regression(seed=0).dim
        params = LSAParams.from_guarantees(N_CLIENTS, 2, 2)
        trainer = run_training(
            gf, clients, test, LightSecAgg(gf, params, dim),
            [set()] * ROUNDS,
        )
        assert trainer.session.stats.rounds == ROUNDS
        # pool_size=2 over 3 rounds forces at least one refill beyond the
        # initial fill.
        assert trainer.session.stats.refills >= 2

    def test_offline_traffic_attributed_to_refilling_round(self, fl_setup):
        gf, clients, test = fl_setup
        dim = logistic_regression(seed=0).dim
        params = LSAParams.from_guarantees(N_CLIENTS, 2, 2)
        trainer = run_training(
            gf, clients, test, LightSecAgg(gf, params, dim),
            [set()] * ROUNDS,
        )
        offline = [r.comm_elements["offline"] for r in trainer.history.records]
        # Round 0 triggers the first refill (2 rounds of material), round 1
        # is a pure pool hit, round 2 refills again.
        assert offline[0] > 0
        assert offline[1] == 0
        assert offline[2] > 0
        total = sum(offline)
        assert total == trainer.session.offline_elements()
