"""Tests for the synchronous secure FedAvg loop."""

import numpy as np
import pytest

from repro.exceptions import ProtocolError, ReproError
from repro.field import FiniteField
from repro.fl import (
    LocalTrainingConfig,
    SecureFederatedAveraging,
    iid_partition,
    logistic_regression,
    make_mnist_like,
)
from repro.fl.datasets.synthetic import train_test_split
from repro.fl.optim import SGD
from repro.fl.trainer import local_update
from repro.protocols import LightSecAgg, LSAParams, NaiveAggregation, SecAgg
from repro.quantization import ModelQuantizer, QuantizationConfig


@pytest.fixture
def small_fl_setup():
    gf = FiniteField()
    full = make_mnist_like(450, seed=2, noise=0.8)
    train, test = train_test_split(full, 0.2, seed=1)
    clients = iid_partition(train, 6, seed=1)
    model = logistic_regression(seed=0)
    return gf, clients, test, model


class TestOptim:
    def test_sgd_step(self):
        opt = SGD(lr=0.1)
        p = np.asarray([1.0, 2.0])
        g = np.asarray([1.0, -1.0])
        assert np.allclose(opt.step(p, g), [0.9, 2.1])

    def test_momentum_accumulates(self):
        opt = SGD(lr=1.0, momentum=0.5)
        p = np.zeros(1)
        g = np.ones(1)
        p = opt.step(p, g)  # v=1, p=-1
        p = opt.step(p, g)  # v=1.5, p=-2.5
        assert p[0] == pytest.approx(-2.5)

    def test_weight_decay(self):
        opt = SGD(lr=1.0, weight_decay=0.1)
        p = np.asarray([10.0])
        out = opt.step(p, np.zeros(1))
        assert out[0] == pytest.approx(9.0)

    def test_validation(self):
        with pytest.raises(ReproError):
            SGD(lr=0)
        with pytest.raises(ReproError):
            SGD(lr=0.1, momentum=1.0)
        with pytest.raises(ReproError):
            SGD(lr=0.1, weight_decay=-1)

    def test_shape_mismatch(self):
        opt = SGD(lr=0.1)
        with pytest.raises(ReproError):
            opt.step(np.zeros(2), np.zeros(3))


class TestLocalUpdate:
    def test_delta_sign_convention(self, small_fl_setup, rng):
        """Delta = global - local; applying x - delta reaches the local point."""
        gf, clients, test, model = small_fl_setup
        g0 = model.get_flat_params()
        cfg = LocalTrainingConfig(epochs=1, batch_size=16, lr=0.1)
        delta = local_update(model, g0, clients[0], cfg, rng)
        local_point = g0 - delta
        model.set_flat_params(local_point)
        loss_after, _ = model.evaluate(clients[0].x, clients[0].y)
        model.set_flat_params(g0)
        loss_before, _ = model.evaluate(clients[0].x, clients[0].y)
        assert loss_after < loss_before

    def test_config_validation(self):
        with pytest.raises(ReproError):
            LocalTrainingConfig(epochs=0)
        with pytest.raises(ReproError):
            LocalTrainingConfig(batch_size=0)


class TestSecureFedAvg:
    def test_learns_with_lightsecagg(self, small_fl_setup):
        gf, clients, test, model = small_fl_setup
        params = LSAParams.from_guarantees(6, privacy=2, dropout_tolerance=2)
        proto = LightSecAgg(gf, params, model.dim)
        trainer = SecureFederatedAveraging(
            model, clients, proto,
            local_config=LocalTrainingConfig(epochs=2, batch_size=32, lr=0.1),
        )
        hist = trainer.fit(3, dropout_rate=0.2,
                           rng=np.random.default_rng(0), test_set=test)
        assert hist.accuracies[-1] > 0.85

    def test_secure_matches_naive_trajectory(self, small_fl_setup):
        """Secure and naive aggregation produce near-identical trajectories
        (difference bounded by quantization error)."""
        gf, clients, test, _ = small_fl_setup
        cfg = LocalTrainingConfig(epochs=1, batch_size=32, lr=0.1)

        def run(protocol_factory):
            model = logistic_regression(seed=0)
            proto = protocol_factory(model.dim)
            trainer = SecureFederatedAveraging(
                model, clients, proto, local_config=cfg
            )
            trainer.run_round(dropouts={1}, rng=np.random.default_rng(42))
            return trainer.global_params

        lsa_params = LSAParams.from_guarantees(6, 2, 2)
        p_secure = run(lambda d: LightSecAgg(gf, lsa_params, d))
        p_naive = run(lambda d: NaiveAggregation(gf, 6, d))
        assert np.allclose(p_secure, p_naive, atol=1e-3)

    def test_secagg_protocol_plugs_in(self, small_fl_setup):
        gf, clients, test, model = small_fl_setup
        proto = SecAgg(gf, 6, model.dim)
        trainer = SecureFederatedAveraging(
            model, clients, proto,
            local_config=LocalTrainingConfig(epochs=1, batch_size=32, lr=0.1),
        )
        rec = trainer.run_round(dropouts={0}, rng=np.random.default_rng(1),
                                test_set=test)
        assert rec.survivors == [1, 2, 3, 4, 5]
        assert rec.test_accuracy is not None

    def test_weighted_aggregation(self, small_fl_setup):
        """Remark 3: integer weights recover the weighted average."""
        gf, clients, test, model = small_fl_setup
        params = LSAParams.from_guarantees(6, 2, 2)
        proto = LightSecAgg(gf, params, model.dim)
        weights = [len(c) for c in clients]
        trainer = SecureFederatedAveraging(
            model, clients, proto, weights=weights,
            local_config=LocalTrainingConfig(epochs=1, batch_size=32, lr=0.1),
        )
        rec = trainer.run_round(dropouts=set(), rng=np.random.default_rng(0),
                                test_set=test)
        assert rec.test_accuracy is not None

    def test_user_count_mismatch_rejected(self, small_fl_setup):
        gf, clients, test, model = small_fl_setup
        proto = NaiveAggregation(gf, 5, model.dim)  # wrong N
        with pytest.raises(ProtocolError):
            SecureFederatedAveraging(model, clients, proto)

    def test_quantizer_field_mismatch_rejected(self, small_fl_setup):
        gf, clients, test, model = small_fl_setup
        proto = NaiveAggregation(gf, 6, model.dim)
        bad_quant = ModelQuantizer(FiniteField(97), QuantizationConfig())
        with pytest.raises(ProtocolError):
            SecureFederatedAveraging(model, clients, proto, quantizer=bad_quant)

    def test_invalid_weights_rejected(self, small_fl_setup):
        gf, clients, test, model = small_fl_setup
        proto = NaiveAggregation(gf, 6, model.dim)
        with pytest.raises(ReproError):
            SecureFederatedAveraging(model, clients, proto, weights=[1] * 5)
        with pytest.raises(ReproError):
            SecureFederatedAveraging(model, clients, proto, weights=[0] * 6)

    def test_history_records(self, small_fl_setup):
        gf, clients, test, model = small_fl_setup
        proto = NaiveAggregation(gf, 6, model.dim)
        trainer = SecureFederatedAveraging(
            model, clients, proto,
            local_config=LocalTrainingConfig(epochs=1, batch_size=32, lr=0.05),
        )
        trainer.fit(2, rng=np.random.default_rng(0))
        assert len(trainer.history.records) == 2
        assert trainer.history.records[1].round_index == 1
        assert len(trainer.history.losses) == 2

    def test_comm_accounting_recorded(self, small_fl_setup):
        gf, clients, test, model = small_fl_setup
        params = LSAParams.from_guarantees(6, 2, 2)
        proto = LightSecAgg(gf, params, model.dim)
        trainer = SecureFederatedAveraging(
            model, clients, proto,
            local_config=LocalTrainingConfig(epochs=1, batch_size=32, lr=0.05),
        )
        rec = trainer.run_round(dropouts={2}, rng=np.random.default_rng(0))
        assert rec.comm_elements["upload"] == 6 * model.dim
        assert rec.comm_elements["offline"] > 0
        assert rec.comm_elements["recovery"] > 0
