"""Numeric gradient checks and shape tests for the layer library."""

import numpy as np
import pytest

from repro.fl.models.layers import (
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
    softmax_cross_entropy,
)


def numeric_grad_check(net, x, y, rng, num_coords=6, eps=1e-6, tol=1e-3):
    """Compare analytic flat gradient against finite differences."""
    params = net.get_flat_params()
    logits = net.forward(x, train=True)
    loss0, dlogits = softmax_cross_entropy(logits, y)
    net.backward(dlogits)
    grad = net.get_flat_grads()
    for i in rng.choice(params.size, size=min(num_coords, params.size),
                        replace=False):
        bumped = params.copy()
        bumped[i] += eps
        net.set_flat_params(bumped)
        loss1, _ = softmax_cross_entropy(net.forward(x, train=True), y)
        numeric = (loss1 - loss0) / eps
        assert abs(numeric - grad[i]) < tol * (1 + abs(grad[i])), i
    net.set_flat_params(params)


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(4, 3, rng)
        out = layer.forward(rng.normal(size=(5, 4)))
        assert out.shape == (5, 3)

    def test_gradient(self, rng):
        net = Sequential([Dense(6, 4, rng), ReLU(), Dense(4, 3, rng)])
        x = rng.normal(size=(8, 6))
        y = rng.integers(0, 3, 8)
        numeric_grad_check(net, x, y, rng)

    def test_num_params(self, rng):
        layer = Dense(4, 3, rng)
        assert layer.num_params == 4 * 3 + 3


class TestConv2D:
    def test_forward_shape_valid_conv(self, rng):
        layer = Conv2D(3, 8, 5, rng)
        out = layer.forward(rng.normal(size=(2, 3, 12, 12)))
        assert out.shape == (2, 8, 8, 8)

    def test_forward_shape_with_padding(self, rng):
        layer = Conv2D(1, 4, 3, rng, pad=1)
        out = layer.forward(rng.normal(size=(2, 1, 8, 8)))
        assert out.shape == (2, 4, 8, 8)

    def test_forward_shape_with_stride(self, rng):
        layer = Conv2D(1, 4, 3, rng, stride=2)
        out = layer.forward(rng.normal(size=(2, 1, 9, 9)))
        assert out.shape == (2, 4, 4, 4)

    def test_matches_direct_convolution(self, rng):
        """im2col result equals a naive nested-loop convolution."""
        layer = Conv2D(2, 3, 3, rng)
        x = rng.normal(size=(1, 2, 5, 5))
        out = layer.forward(x)
        w, b = layer.params["W"], layer.params["b"]
        for oc in range(3):
            for i in range(3):
                for j in range(3):
                    expected = b[oc] + np.sum(
                        w[oc] * x[0, :, i : i + 3, j : j + 3]
                    )
                    assert out[0, oc, i, j] == pytest.approx(expected)

    def test_gradient(self, rng):
        net = Sequential(
            [Conv2D(1, 3, 3, rng), ReLU(), Flatten(), Dense(3 * 4 * 4, 2, rng)]
        )
        x = rng.normal(size=(4, 1, 6, 6))
        y = rng.integers(0, 2, 4)
        numeric_grad_check(net, x, y, rng)

    def test_gradient_with_stride_and_pad(self, rng):
        net = Sequential(
            [
                Conv2D(2, 3, 3, rng, stride=2, pad=1),
                ReLU(),
                Flatten(),
                Dense(3 * 4 * 4, 2, rng),
            ]
        )
        x = rng.normal(size=(3, 2, 7, 7))
        y = rng.integers(0, 2, 3)
        numeric_grad_check(net, x, y, rng)


class TestMaxPool:
    def test_forward(self, rng):
        pool = MaxPool2D(2)
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = pool.forward(x)
        assert out.shape == (1, 1, 2, 2)
        assert out[0, 0].tolist() == [[5, 7], [13, 15]]

    def test_gradient_routes_to_max(self, rng):
        pool = MaxPool2D(2)
        x = np.asarray([[[[1.0, 2.0], [3.0, 9.0]]]])
        pool.forward(x, train=True)
        dx = pool.backward(np.asarray([[[[1.0]]]]))
        assert dx[0, 0].tolist() == [[0, 0], [0, 1.0]]

    def test_gradient_check_through_pool(self, rng):
        net = Sequential(
            [
                Conv2D(1, 2, 3, rng),
                ReLU(),
                MaxPool2D(2),
                Flatten(),
                Dense(2 * 3 * 3, 2, rng),
            ]
        )
        x = rng.normal(size=(3, 1, 8, 8))
        y = rng.integers(0, 2, 3)
        numeric_grad_check(net, x, y, rng)

    def test_tie_breaking_partitions_gradient(self):
        """Equal values in a window must not double-count gradient."""
        pool = MaxPool2D(2)
        x = np.ones((1, 1, 2, 2))
        pool.forward(x, train=True)
        dx = pool.backward(np.asarray([[[[2.0]]]]))
        assert dx.sum() == pytest.approx(2.0)


class TestSequentialFlatParams:
    def test_round_trip(self, rng):
        net = Sequential([Dense(3, 4, rng), ReLU(), Dense(4, 2, rng)])
        flat = net.get_flat_params()
        assert flat.shape == (3 * 4 + 4 + 4 * 2 + 2,)
        net.set_flat_params(flat * 2)
        assert np.allclose(net.get_flat_params(), flat * 2)

    def test_set_wrong_size(self, rng):
        net = Sequential([Dense(3, 2, rng)])
        with pytest.raises(ValueError):
            net.set_flat_params(np.zeros(5))

    def test_set_copies(self, rng):
        net = Sequential([Dense(2, 2, rng)])
        flat = np.zeros(6)
        net.set_flat_params(flat)
        flat[0] = 99
        assert net.get_flat_params()[0] == 0


class TestSoftmaxCrossEntropy:
    def test_loss_value(self):
        logits = np.asarray([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = softmax_cross_entropy(logits, np.asarray([0, 1]))
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_uniform_logits(self):
        logits = np.zeros((4, 10))
        loss, grad = softmax_cross_entropy(logits, np.zeros(4, dtype=int))
        assert loss == pytest.approx(np.log(10))
        assert grad.shape == (4, 10)

    def test_grad_sums_to_zero_per_row(self, rng):
        logits = rng.normal(size=(5, 7))
        _, grad = softmax_cross_entropy(logits, rng.integers(0, 7, 5))
        assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-12)

    def test_numerical_stability_large_logits(self):
        logits = np.asarray([[1e4, -1e4]])
        loss, grad = softmax_cross_entropy(logits, np.asarray([0]))
        assert np.isfinite(loss) and np.all(np.isfinite(grad))
