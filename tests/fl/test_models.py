"""Tests for the model zoo and flat-parameter interface."""

import numpy as np
import pytest

from repro.fl.models import (
    PAPER_MODEL_SIZES,
    SyntheticModel,
    efficientnet_b0_sized,
    lenet5_variant,
    logistic_regression,
    mcmahan_cnn,
    mlp,
    mobilenetv3_sized,
)


class TestPaperModelSizes:
    def test_logistic_regression_matches_paper(self):
        """Table 2 task 1: MNIST LR has exactly d = 7,850."""
        model = logistic_regression()
        assert model.dim == PAPER_MODEL_SIZES["logistic_regression"] == 7_850

    def test_synthetic_models_match_paper(self):
        assert mobilenetv3_sized().dim == 3_111_462
        assert efficientnet_b0_sized().dim == 5_288_548

    def test_mcmahan_cnn_magnitude(self):
        """The real CNN should be within 2x of the paper's 1,206,590 (the
        paper's variant differs in head size)."""
        model = mcmahan_cnn()
        assert 0.5 < model.dim / PAPER_MODEL_SIZES["cnn_femnist"] < 2.5


class TestTrainability:
    def _learnable_blob(self, rng, shape, classes, n=120):
        protos = rng.normal(0, 1, size=(classes,) + shape)
        y = rng.integers(0, classes, n)
        x = protos[y] + rng.normal(0, 0.3, size=(n,) + shape)
        return x, y

    @pytest.mark.parametrize(
        "factory,shape,classes",
        [
            (logistic_regression, (1, 28, 28), 10),
            (mlp, (1, 28, 28), 10),
        ],
    )
    def test_loss_decreases_with_sgd(self, rng, factory, shape, classes):
        model = factory(input_shape=shape, num_classes=classes, seed=0)
        x, y = self._learnable_blob(rng, shape, classes)
        params = model.get_flat_params()
        loss0, _ = model.loss_and_grad(x, y)
        for _ in range(30):
            model.set_flat_params(params)
            _, grad = model.loss_and_grad(x, y)
            params = params - 0.2 * grad
        model.set_flat_params(params)
        loss1, acc = model.evaluate(x, y)
        assert loss1 < loss0
        assert acc > 0.8

    def test_cnn_trains(self, rng):
        model = mcmahan_cnn(input_shape=(1, 28, 28), num_classes=5, seed=0)
        x, y = self._learnable_blob(rng, (1, 28, 28), 5, n=40)
        params = model.get_flat_params()
        loss0, _ = model.loss_and_grad(x, y)
        for _ in range(10):
            model.set_flat_params(params)
            _, grad = model.loss_and_grad(x, y)
            params = params - 0.1 * grad
        model.set_flat_params(params)
        loss1, _ = model.evaluate(x, y)
        assert loss1 < loss0

    def test_lenet_trains(self, rng):
        model = lenet5_variant(input_shape=(3, 32, 32), num_classes=4, seed=0)
        x, y = self._learnable_blob(rng, (3, 32, 32), 4, n=32)
        params = model.get_flat_params()
        loss0, _ = model.loss_and_grad(x, y)
        for _ in range(8):
            model.set_flat_params(params)
            _, grad = model.loss_and_grad(x, y)
            params = params - 0.05 * grad
        model.set_flat_params(params)
        loss1, _ = model.evaluate(x, y)
        assert loss1 < loss0


class TestFlatParams:
    def test_round_trip(self):
        model = logistic_regression()
        flat = model.get_flat_params()
        model.set_flat_params(np.arange(flat.size, dtype=np.float64))
        assert model.get_flat_params()[5] == 5.0

    def test_predict_and_evaluate(self, rng):
        model = logistic_regression(input_shape=(1, 4, 4), num_classes=3)
        x = rng.normal(size=(10, 1, 4, 4))
        preds = model.predict(x)
        assert preds.shape == (10,)
        loss, acc = model.evaluate(x, rng.integers(0, 3, 10))
        assert 0 <= acc <= 1 and loss > 0

    def test_repr(self):
        assert "7850" in repr(logistic_regression())


class TestSyntheticModel:
    def test_dim_and_interface(self):
        model = SyntheticModel(100, seed=1)
        assert model.dim == 100
        assert model.get_flat_params().shape == (100,)

    def test_gradient_descends(self):
        model = SyntheticModel(50, seed=0)
        loss0, grad = model.loss_and_grad()
        model.set_flat_params(model.get_flat_params() - 0.5 * grad)
        loss1, _ = model.loss_and_grad()
        assert loss1 < loss0

    def test_shape_validation(self):
        model = SyntheticModel(10)
        with pytest.raises(ValueError):
            model.set_flat_params(np.zeros(11))

    def test_dim_validation(self):
        with pytest.raises(ValueError):
            SyntheticModel(0)
