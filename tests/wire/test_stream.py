"""Stream reassembly: every byte-boundary split, torn headers, corruption.

The property pinned here is the one a socket transport lives on: for ANY
valid frame sequence and ANY partition of its bytes into chunks —
including one-byte feeds and splits inside the 16-byte header —
:class:`FrameAssembler` returns exactly the original frames, in order,
and a corrupt magic or version fails with :class:`WireError` as soon as
the offending byte is visible.
"""

import socket
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import WireError
from repro.wire import (
    HEADER_SIZE,
    WIRE_VERSION,
    FrameAssembler,
    Ping,
    RefillRequest,
    SetupAck,
    SnapshotRequest,
    encode_message,
    encode_segments,
    recv_frames,
    send_segments,
)


def _sample_frames(seed: int, count: int):
    """A deterministic mixed-message frame sequence."""
    rng = np.random.default_rng(seed)
    frames = []
    for i in range(count):
        kind = int(rng.integers(0, 4))
        message = (
            Ping(nonce=int(rng.integers(0, 2**63))),
            RefillRequest(int(rng.integers(0, 32)), None),
            SnapshotRequest(int(rng.integers(0, 32))),
            SetupAck(list(range(int(rng.integers(0, 5))))),
        )[kind]
        frames.append(encode_message(message, request_id=i))
    return frames


@st.composite
def frame_streams(draw):
    frames = _sample_frames(
        seed=draw(st.integers(0, 2**32 - 1)),
        count=draw(st.integers(1, 6)),
    )
    blob = b"".join(frames)
    # An arbitrary partition of the blob: sorted unique cut points.
    cuts = draw(
        st.lists(st.integers(1, max(1, len(blob) - 1)), max_size=24).map(
            lambda xs: sorted(set(xs))
        )
    )
    bounds = [0, *[c for c in cuts if c < len(blob)], len(blob)]
    chunks = [blob[a:b] for a, b in zip(bounds, bounds[1:])]
    return frames, chunks


class TestReassemblyProperty:
    @settings(max_examples=80, deadline=None)
    @given(stream=frame_streams())
    def test_any_chunking_reassembles_exactly(self, stream):
        frames, chunks = stream
        assembler = FrameAssembler()
        out = []
        for chunk in chunks:
            out.extend(assembler.feed(chunk))
        assert out == frames
        assert assembler.pending_bytes == 0

    def test_every_single_byte_boundary(self):
        """Exhaustive, not sampled: feed the stream one byte at a time."""
        frames = _sample_frames(seed=7, count=4)
        blob = b"".join(frames)
        assembler = FrameAssembler()
        out = []
        for i in range(len(blob)):
            completed = assembler.feed(blob[i : i + 1])
            # A frame can only complete on its final byte.
            assert len(completed) <= 1
            out.extend(completed)
        assert out == frames

    def test_torn_mid_header_then_completed(self):
        frame = encode_message(Ping(nonce=5), 42)
        assert len(frame) > HEADER_SIZE
        assembler = FrameAssembler()
        assert assembler.feed(frame[: HEADER_SIZE // 2]) == []
        assert assembler.pending_bytes == HEADER_SIZE // 2
        assert assembler.feed(frame[HEADER_SIZE // 2 :]) == [frame]


class TestCorruptionDetection:
    def test_corrupt_magic_fails_on_first_byte(self):
        assembler = FrameAssembler()
        with pytest.raises(WireError, match="magic"):
            assembler.feed(b"X")  # not even a full magic yet

    def test_corrupt_magic_second_byte(self):
        assembler = FrameAssembler()
        with pytest.raises(WireError, match="magic"):
            assembler.feed(b"LX")

    def test_corrupt_version_fails_before_full_header(self):
        assembler = FrameAssembler()
        with pytest.raises(WireError, match="version"):
            assembler.feed(b"LW" + bytes([WIRE_VERSION + 1]))

    def test_corruption_in_second_frame_detected(self):
        good = encode_message(Ping(nonce=1), 1)
        assembler = FrameAssembler()
        with pytest.raises(WireError, match="magic"):
            assembler.feed(good + b"ZZ")

    def test_assembler_refuses_input_after_failure(self):
        assembler = FrameAssembler()
        with pytest.raises(WireError):
            assembler.feed(b"XX")
        with pytest.raises(WireError, match="already failed"):
            assembler.feed(encode_message(Ping(), 1))

    def test_oversized_declared_length_rejected(self):
        frame = bytearray(encode_message(Ping(nonce=2), 3))
        frame[HEADER_SIZE - 4 : HEADER_SIZE] = (2**31).to_bytes(4, "little")
        assembler = FrameAssembler(max_payload=2**20)
        with pytest.raises(WireError, match="over the"):
            assembler.feed(bytes(frame))

    @settings(max_examples=30, deadline=None)
    @given(
        flip_at=st.integers(0, 2),
        tail=st.binary(max_size=8),
    )
    def test_corrupt_prefix_never_yields_a_frame(self, flip_at, tail):
        frame = bytearray(encode_message(Ping(nonce=9), 4))
        frame[flip_at] ^= 0xFF  # corrupt magic byte 0/1 or the version
        assembler = FrameAssembler()
        with pytest.raises(WireError):
            assembler.feed(bytes(frame) + tail)


class TestSocketHelpers:
    def test_vectored_send_and_chunked_recv_round_trip(self):
        """send_segments -> kernel -> recv_frames over a real socketpair,
        with a payload large enough to force partial reads."""
        rng = np.random.default_rng(0)
        from repro.wire import ShardRoundRequest

        request = ShardRoundRequest.from_updates(
            shard_id=1,
            round_id=2,
            updates={
                i: rng.integers(0, 2**31, size=4096, dtype=np.uint64)
                for i in range(8)
            },
            dropouts={3},
        )
        frame = encode_message(request, 17)
        left, right = socket.socketpair()
        sent = []
        # The ~256KB frame overruns the kernel socket buffer, so the
        # vectored send must run on its own thread while this one drains
        # — which is exactly what forces partial sendmsg completions.
        sender = threading.Thread(
            target=lambda: sent.append(
                send_segments(left, encode_segments(request, 17))
            )
        )
        try:
            sender.start()
            assembler = FrameAssembler()
            frames = []
            while not frames:
                frames = recv_frames(right, assembler)
            sender.join(timeout=30.0)
            assert sent == [len(frame)]
            assert frames == [frame]
        finally:
            sender.join(timeout=1.0)
            left.close()
            right.close()

    def test_recv_frames_raises_eof_on_closed_peer(self):
        left, right = socket.socketpair()
        left.close()
        with pytest.raises(EOFError):
            recv_frames(right, FrameAssembler())
        right.close()
