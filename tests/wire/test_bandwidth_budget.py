"""CI regression gate on the wire's byte budget.

A fixed seeded reference round (N=16, d=4096, 31-bit field elements) is
encoded both ways and measured against the committed baseline in
``benchmarks/results/wire_bytes_baseline.json``.  A change that bloats
the packed encoding by more than 5% fails here before it ships; the
raw/packed ratio >= 1.8 pins the bandwidth claim itself.

Regenerate the baseline (after a DELIBERATE format change) with::

    PYTHONPATH=src python tests/wire/test_bandwidth_budget.py
"""

import json
import os

import numpy as np
import pytest

from repro.field import FiniteField
from repro.protocols.base import SessionStats
from repro.wire import ShardRoundRequest, ShardRoundResult, encode_message

BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir,
    "benchmarks", "results", "wire_bytes_baseline.json",
)

#: The reference round's geometry — part of the baseline contract; a
#: mismatch with the JSON means the baseline must be regenerated.
REFERENCE = {"num_users": 16, "model_dim": 4096, "seed": 2026}

#: How much the packed reference round may grow before CI fails.
BUDGET_SLACK = 1.05


def _reference_frames(packed: bool):
    """The request+result frame pair of the seeded reference round."""
    gf = FiniteField()
    rng = np.random.default_rng(REFERENCE["seed"])
    n, dim = REFERENCE["num_users"], REFERENCE["model_dim"]
    updates = {i: gf.random(dim, rng) for i in range(n)}
    dropouts = {3, 11}
    request = ShardRoundRequest.from_updates(
        0, 0, updates, dropouts, packed=packed
    )
    result = ShardRoundResult(
        shard_id=0,
        round_id=0,
        aggregate=gf.random(dim, rng),
        survivors=sorted(set(range(n)) - dropouts),
        transcript_table=np.zeros((0, 5), dtype=np.int64),
        metrics_counts=(1, 2, 3),
        metrics_extra={},
        stalled=False,
        pool_level=3,
        stats=SessionStats(),
        packed=packed,
    )
    return encode_message(request, 1), encode_message(result, 2)


def reference_sizes():
    raw_req, raw_res = _reference_frames(packed=False)
    packed_req, packed_res = _reference_frames(packed=True)
    return {
        "params": dict(REFERENCE),
        "raw_round_bytes": len(raw_req) + len(raw_res),
        "packed_round_bytes": len(packed_req) + len(packed_res),
    }


@pytest.fixture(scope="module")
def baseline():
    if not os.path.exists(BASELINE_PATH):
        pytest.fail(
            f"missing wire-bytes baseline {BASELINE_PATH}; generate it "
            f"with: python {__file__}"
        )
    with open(BASELINE_PATH) as fh:
        return json.load(fh)


def test_baseline_matches_reference_geometry(baseline):
    assert baseline["params"] == REFERENCE, (
        "baseline was generated for a different reference round; "
        "regenerate it"
    )


def test_packed_round_within_committed_budget(baseline):
    """The regression gate: the packed reference round may not exceed
    the committed byte count by more than 5%."""
    sizes = reference_sizes()
    budget = baseline["packed_round_bytes"] * BUDGET_SLACK
    assert sizes["packed_round_bytes"] <= budget, (
        f"packed reference round grew to {sizes['packed_round_bytes']}B, "
        f"over the {budget:.0f}B budget "
        f"(baseline {baseline['packed_round_bytes']}B + 5%)"
    )


def test_raw_over_packed_ratio_holds(baseline):
    """The bandwidth claim: >= 1.8x smaller packed, both freshly
    measured and as committed."""
    sizes = reference_sizes()
    assert sizes["raw_round_bytes"] / sizes["packed_round_bytes"] >= 1.8
    assert (
        baseline["raw_round_bytes"] / baseline["packed_round_bytes"] >= 1.8
    )


def test_raw_encoding_is_stable_against_baseline(baseline):
    """The raw lane is the interop fallback — its size is exact, not
    budgeted: any drift means old-peer frames changed."""
    sizes = reference_sizes()
    assert sizes["raw_round_bytes"] == baseline["raw_round_bytes"]


def main():
    sizes = reference_sizes()
    os.makedirs(os.path.dirname(BASELINE_PATH), exist_ok=True)
    with open(BASELINE_PATH, "w") as fh:
        json.dump(sizes, fh, indent=2)
        fh.write("\n")
    ratio = sizes["raw_round_bytes"] / sizes["packed_round_bytes"]
    print(f"wrote {BASELINE_PATH}")
    print(
        f"raw={sizes['raw_round_bytes']}B "
        f"packed={sizes['packed_round_bytes']}B ratio={ratio:.2f}x"
    )


if __name__ == "__main__":
    main()
