"""Wire-format round trips: frames, primitives, and every message type."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DropoutError, ProtocolError, TransportError, WireError
from repro.protocols.base import (
    PHASES,
    AggregationResult,
    RoundMetrics,
    SessionStats,
    Transcript,
)
from repro.wire import (
    HEADER_SIZE,
    MAGIC,
    MAX_PAYLOAD_BYTES,
    WIRE_VERSION,
    ErrorFrame,
    PayloadReader,
    PayloadWriter,
    Ping,
    PoolSnapshot,
    RefillRequest,
    SessionSetup,
    SessionTeardown,
    SetupAck,
    ShardRoundRequest,
    ShardRoundResult,
    SnapshotRequest,
    Shutdown,
    decode_frame,
    decode_message,
    encode_frame,
    encode_message,
    encode_segments,
    frame_segments,
)


class TestFrameLayout:
    def test_header_magic_version_and_length(self):
        w = PayloadWriter()
        w.put_u32(7)
        frame = encode_frame(3, 99, w)
        assert frame[:2] == MAGIC
        assert frame[2] == WIRE_VERSION
        msg_type, request_id, reader = decode_frame(frame)
        assert (msg_type, request_id) == (3, 99)
        assert reader.get_u32() == 7
        assert reader.remaining == 0

    def test_truncated_and_corrupted_frames_rejected(self):
        frame = encode_message(Shutdown(), 1)
        with pytest.raises(WireError, match="too short"):
            decode_frame(frame[: HEADER_SIZE - 1])
        with pytest.raises(WireError, match="magic"):
            decode_frame(b"XX" + frame[2:])
        bad_version = frame[:2] + bytes([WIRE_VERSION + 1]) + frame[3:]
        with pytest.raises(WireError, match="version"):
            decode_frame(bad_version)
        with pytest.raises(WireError, match="length mismatch"):
            decode_frame(frame + b"\x00")

    def test_unknown_message_type_rejected(self):
        frame = encode_frame(200, 0, PayloadWriter())
        with pytest.raises(WireError, match="unknown wire message type"):
            decode_message(frame)

    def test_truncated_payload_rejected(self):
        w = PayloadWriter()
        w.put_u32(5)  # ShardRoundRequest.shard_id only; rest missing
        frame = encode_frame(ShardRoundRequest.TYPE, 0, w)
        with pytest.raises(WireError, match="truncated"):
            decode_message(frame)


class TestPayloadPrimitives:
    def test_scalars_round_trip(self):
        w = PayloadWriter()
        w.put_u8(255)
        w.put_u32(2**32 - 1)
        w.put_u64(2**63)
        w.put_i64(-12345)
        w.put_f64(3.5)
        w.put_str("grüße")
        r = PayloadReader(memoryview(w.getvalue()))
        assert r.get_u8() == 255
        assert r.get_u32() == 2**32 - 1
        assert r.get_u64() == 2**63
        assert r.get_i64() == -12345
        assert r.get_f64() == 3.5
        assert r.get_str() == "grüße"
        assert r.remaining == 0

    def test_array_decode_is_zero_copy_view(self):
        data = np.arange(12, dtype=np.uint64).reshape(3, 4)
        w = PayloadWriter()
        w.put_array(data)
        buf = w.getvalue()
        out = PayloadReader(memoryview(buf)).get_array()
        assert np.array_equal(out, data)
        assert out.base is not None  # a view into the frame, not a copy
        with pytest.raises(ValueError):
            out[0, 0] = 1  # frame-backed arrays are read-only

    def test_non_contiguous_and_empty_arrays(self):
        data = np.arange(20, dtype=np.uint64).reshape(4, 5)[:, ::2]
        w = PayloadWriter()
        w.put_array(data)
        w.put_array(np.zeros((0, 3), dtype=np.int64))
        r = PayloadReader(memoryview(w.getvalue()))
        assert np.array_equal(r.get_array(), data)
        assert r.get_array().shape == (0, 3)

    def test_unsupported_dtype_rejected(self):
        w = PayloadWriter()
        with pytest.raises(WireError, match="not wire-encodable"):
            w.put_array(np.zeros(3, dtype=np.complex128))

    def test_big_endian_arrays_rejected_with_pointed_error(self):
        """The wire is little-endian by definition; a big-endian array
        must fail loudly (not silently emit BE bytes a LE peer would
        misread — the latent bug this whitelist closes)."""
        for dtype in (">u4", ">u8", ">i8", ">f8"):
            w = PayloadWriter()
            with pytest.raises(WireError, match="big-endian"):
                w.put_array(np.zeros(3, dtype=dtype))
        w = PayloadWriter()
        with pytest.raises(WireError, match="big-endian"):
            w.put_packed_array(np.zeros(3, dtype=">u8"))

    def test_byteswapped_input_encodes_after_conversion(self):
        """The error message's advice works: .astype to the LE layout
        round-trips values exactly."""
        be = np.array([1, 2**40, 2**63 - 1], dtype=">u8")
        w = PayloadWriter()
        w.put_array(be.astype("<u8"))
        out = PayloadReader(memoryview(w.getvalue())).get_array()
        assert np.array_equal(out, be)

    @settings(max_examples=30, deadline=None)
    @given(
        arr=st.lists(
            st.integers(min_value=0, max_value=2**64 - 1),
            min_size=0,
            max_size=64,
        ),
        request_id=st.integers(min_value=0, max_value=2**64 - 1),
    )
    def test_u64_arrays_round_trip_any_contents(self, arr, request_id):
        data = np.asarray(arr, dtype=np.uint64)
        w = PayloadWriter()
        w.put_array(data)
        frame = encode_frame(1, request_id, w)
        _, rid, reader = decode_frame(frame)
        assert rid == request_id
        assert np.array_equal(reader.get_array(), data)


# ----------------------------------------------------------------------
# message round trips
# ----------------------------------------------------------------------
@st.composite
def round_requests(draw):
    num_users = draw(st.integers(min_value=1, max_value=8))
    width = draw(st.integers(min_value=1, max_value=16))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(seed)
    updates = {
        uid: rng.integers(0, 2**31 - 1, size=width, dtype=np.uint64)
        for uid in range(num_users)
    }
    dropouts = set(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=num_users - 1), max_size=3
            )
        )
    )
    offline = set(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=num_users - 1), max_size=2
            )
        )
    )
    return ShardRoundRequest.from_updates(
        shard_id=draw(st.integers(min_value=0, max_value=31)),
        round_id=draw(st.integers(min_value=0, max_value=2**40)),
        updates=updates,
        dropouts=dropouts,
        offline_dropouts=offline,
    )


class TestMessageRoundTrips:
    @settings(max_examples=40, deadline=None)
    @given(request=round_requests(), request_id=st.integers(0, 2**64 - 1))
    def test_round_request_round_trips(self, request, request_id):
        rid, back = decode_message(encode_message(request, request_id))
        assert rid == request_id
        assert back.shard_id == request.shard_id
        assert back.round_id == request.round_id
        assert back.user_ids == request.user_ids
        assert back.dropouts == request.dropouts
        assert back.offline_dropouts == request.offline_dropouts
        assert np.array_equal(back.updates, request.updates)
        for uid, vec in back.updates_dict().items():
            assert np.array_equal(vec, request.updates_dict()[uid])

    @settings(max_examples=40, deadline=None)
    @given(request=round_requests())
    def test_semantically_equal_requests_are_byte_equal(self, request):
        """Encoding is canonical: id sets are sorted, layouts are fixed."""
        shuffled = ShardRoundRequest(
            shard_id=request.shard_id,
            round_id=request.round_id,
            user_ids=request.user_ids,
            updates=request.updates,
            dropouts=set(sorted(request.dropouts, reverse=True)),
            offline_dropouts=set(request.offline_dropouts),
        )
        assert encode_message(request, 7) == encode_message(shuffled, 7)

    def test_directly_constructed_request_with_unsorted_ids_keeps_rows(self):
        """Row i belongs to user_ids[i]; encoding must permute ids and
        rows together, not sort ids out from under the matrix."""
        rows = np.stack(
            [np.full(4, 30, dtype=np.uint64), np.full(4, 10, dtype=np.uint64)]
        )
        request = ShardRoundRequest(
            shard_id=0, round_id=0, user_ids=[3, 1], updates=rows,
        )
        _, back = decode_message(encode_message(request, 1))
        decoded = back.updates_dict()
        assert np.array_equal(decoded[3], np.full(4, 30, dtype=np.uint64))
        assert np.array_equal(decoded[1], np.full(4, 10, dtype=np.uint64))

    def test_duplicate_or_mismatched_user_ids_rejected(self):
        rows = np.zeros((2, 4), dtype=np.uint64)
        with pytest.raises(WireError, match="duplicate user ids"):
            encode_message(
                ShardRoundRequest(0, 0, user_ids=[2, 2], updates=rows), 1
            )
        with pytest.raises(WireError, match="does not match"):
            encode_message(
                ShardRoundRequest(0, 0, user_ids=[1], updates=rows), 1
            )

    def test_round_result_rebuilds_aggregation_result(self):
        transcript = Transcript()
        transcript.record(0, -1, "upload", 10)
        transcript.record(2, -1, "recovery", 4, is_key_sized=True)
        result = AggregationResult(
            aggregate=np.arange(10, dtype=np.uint64),
            survivors=[0, 2, 3],
            transcript=transcript,
            metrics=RoundMetrics(
                server_decode_ops=44,
                server_prg_elements=0,
                user_encode_ops=7,
                extra={"pool_level": 2.0, "amortized_encode_ops": 96.0},
            ),
        )
        stats = SessionStats(rounds=5, refills=2, pool_hits=4, pool_misses=1,
                             precomputed_rounds=8, refill_seconds=0.125)
        msg = ShardRoundResult.from_result(
            3, 17, result, stalled=True, pool_level=2, stats=stats
        )
        rid, back = decode_message(encode_message(msg, 9))
        assert rid == 9
        assert back.stalled and back.pool_level == 2
        assert back.stats == stats
        rebuilt = back.to_result()
        assert np.array_equal(rebuilt.aggregate, result.aggregate)
        assert rebuilt.survivors == result.survivors
        assert rebuilt.metrics.server_decode_ops == 44
        assert rebuilt.metrics.extra == result.metrics.extra
        assert len(rebuilt.transcript) == 2
        msg_a, msg_b = rebuilt.transcript.messages
        assert (msg_a.sender, msg_a.receiver, msg_a.phase) == (0, -1, "upload")
        assert msg_b.is_key_sized and msg_b.phase == "recovery"
        for phase in PHASES:
            assert rebuilt.transcript.elements(
                phase=phase
            ) == result.transcript.elements(phase=phase)

    def test_refill_request_none_and_explicit(self):
        for rounds in (None, 0, 5):
            _, back = decode_message(
                encode_message(RefillRequest(2, rounds), 1)
            )
            assert back == RefillRequest(2, rounds)

    def test_pool_snapshot_round_trips(self):
        snap = PoolSnapshot(
            shard_id=1, pool_level=3, pool_size=4, rounds_added=2,
            closed=True,
            stats=SessionStats(rounds=9, refill_seconds=0.5),
        )
        _, back = decode_message(encode_message(snap, 12))
        assert back == snap

    def test_snapshot_request_and_shutdown(self):
        _, back = decode_message(encode_message(SnapshotRequest(5), 2))
        assert back == SnapshotRequest(5)
        _, back = decode_message(encode_message(Shutdown(), 3))
        assert isinstance(back, Shutdown)

    def test_session_setup_round_trips_specs_per_slot(self):
        from repro.service.transport import ShardSessionSpec

        specs = [
            ShardSessionSpec(
                protocol="lightsecagg", num_users=8, shard_dim=13,
                privacy=2, dropout_tolerance=2, pool_size=3, low_water=1,
                seed=(4, 0, s),
            )
            for s in range(2)
        ]
        setup = SessionSetup(entries=[(7, specs[0]), (3, specs[1])])
        rid, back = decode_message(encode_message(setup, 21))
        assert rid == 21
        # Canonical slot order on the wire; specs survive field-by-field.
        assert back.entries == [(3, specs[1]), (7, specs[0])]
        # Specs with negative seed parts (i64 on the wire) survive too.
        negative = ShardSessionSpec(
            protocol="naive", num_users=4, shard_dim=5, privacy=1,
            dropout_tolerance=1, pool_size=1, low_water=0, seed=(-3, 1),
        )
        _, back = decode_message(encode_message(SessionSetup([(0, negative)]), 1))
        assert back.entries == [(0, negative)]

    def test_setup_ack_teardown_and_ping(self):
        _, back = decode_message(encode_message(SetupAck([4, 1, 2]), 5))
        assert back == SetupAck([1, 2, 4])
        _, back = decode_message(encode_message(SessionTeardown([9, 0]), 6))
        assert back == SessionTeardown([0, 9])
        _, back = decode_message(encode_message(Ping(nonce=77), 7))
        assert back == Ping(nonce=77)

    def test_encode_segments_matches_encode_message(self):
        """The vectored-write path emits byte-identical frames."""
        msg = PoolSnapshot(
            shard_id=1, pool_level=2, pool_size=4, rounds_added=1,
            closed=False, stats=SessionStats(rounds=3),
        )
        assert b"".join(encode_segments(msg, 11)) == encode_message(msg, 11)


class _FakeHugeSegment:
    """Stands in for a >4GiB buffer without allocating one."""

    def __init__(self, nbytes: int):
        self.nbytes = nbytes

    def __len__(self) -> int:
        return self.nbytes


class TestU32LengthGuards:
    def test_payload_over_u32_max_raises_wire_error(self):
        w = PayloadWriter()
        w.segments.append(_FakeHugeSegment(MAX_PAYLOAD_BYTES + 1))
        with pytest.raises(WireError, match=str(MAX_PAYLOAD_BYTES + 1)):
            encode_frame(1, 0, w)
        with pytest.raises(WireError, match="u32 frame length"):
            frame_segments(1, 0, w)

    def test_payload_at_exactly_u32_max_passes_the_guard(self):
        """The boundary itself is legal; only the header pack is exercised
        (the fake segment would fail a real join, which never happens in
        frame_segments)."""
        w = PayloadWriter()
        w.segments.append(_FakeHugeSegment(MAX_PAYLOAD_BYTES))
        header, segment = frame_segments(2, 9, w)
        assert len(header) == HEADER_SIZE
        _, _, _, rid, length = __import__("struct").unpack("<2sBBQI", header)
        assert (rid, length) == (9, MAX_PAYLOAD_BYTES)
        assert segment is w.segments[0]

    def test_oversized_bytes_value_raises_wire_error(self):
        class _FakeHugeBytes(bytes):
            def __len__(self):
                return MAX_PAYLOAD_BYTES + 1

        w = PayloadWriter()
        with pytest.raises(WireError, match="u32 length prefix"):
            w.put_bytes(_FakeHugeBytes())
        assert w.segments == []  # nothing half-appended after the failure


class TestErrorFrames:
    @pytest.mark.parametrize(
        "exc", [ProtocolError("survivors below U"), DropoutError("too many")]
    )
    def test_known_exceptions_reraise_as_themselves(self, exc):
        frame = encode_message(ErrorFrame.from_exception(4, exc), 8)
        _, back = decode_message(frame)
        with pytest.raises(type(exc), match=str(exc)):
            back.raise_()

    def test_unknown_exception_becomes_transport_error(self):
        frame = encode_message(
            ErrorFrame.from_exception(0, ValueError("weird")), 1
        )
        _, back = decode_message(frame)
        with pytest.raises(TransportError, match="ValueError: weird"):
            back.raise_()

    def test_arbitrary_kind_cannot_smuggle_non_repro_types(self):
        """A malicious peer naming e.g. SystemExit still gets TransportError."""
        _, back = decode_message(
            encode_message(ErrorFrame(0, "SystemExit", "0"), 1)
        )
        with pytest.raises(TransportError):
            back.raise_()
