"""Property suite for the sub-word bit-packed wire encoding.

The tentpole's contract, pinned as properties: for ANY unsigned array
whose elements fit ``b <= 32`` bits — width inferred from the data or
declared up front — pack -> frame -> (arbitrarily torn) byte stream ->
decode returns the exact values, dtype, and shape.  Boundary values
``2**b - 1`` survive at every width, empty arrays and non-contiguous
views encode, a declared bound too small for the data fails loudly, and
the element bytes on the wire are exactly ``ceil(n*b/8)``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import WireError
from repro.wire import (
    HEADER_SIZE,
    FrameAssembler,
    PayloadWriter,
    ShardRoundRequest,
    decode_frame,
    decode_message,
    encode_frame,
    encode_message,
    packed_nbytes,
)

# The dtypes put_packed_array accepts, keyed by their element width.
_PACKABLE = {8: np.dtype("|u1"), 32: np.dtype("<u4"), 64: np.dtype("<u8")}


def _reader_for(writer: PayloadWriter):
    """Round one payload through a real frame; return its reader."""
    _, _, reader = decode_frame(encode_frame(1, 0, writer))
    return reader


@st.composite
def bounded_arrays(draw):
    """(array, bits) with every element < 2**bits, any packable dtype."""
    bits = draw(st.integers(1, 32))
    dtype = draw(
        st.sampled_from(
            [d for width, d in _PACKABLE.items() if bits <= width]
        )
    )
    values = draw(
        st.lists(st.integers(0, 2**bits - 1), min_size=0, max_size=40)
    )
    array = np.array(values, dtype=dtype)
    if draw(st.booleans()) and array.size and array.size % 2 == 0:
        array = array.reshape(2, -1)
    return array, bits


class TestPackedRoundTripProperty:
    @settings(max_examples=120, deadline=None)
    @given(data=bounded_arrays(), declare=st.booleans())
    def test_any_width_any_values_round_trip_exactly(self, data, declare):
        array, bits = data
        w = PayloadWriter()
        w.put_packed_array(array, bits=bits if declare else None)
        out = _reader_for(w).get_packed_array()
        assert out.dtype == array.dtype
        assert out.shape == array.shape
        np.testing.assert_array_equal(out, array)

    @settings(max_examples=120, deadline=None)
    @given(data=bounded_arrays())
    def test_element_bytes_are_exactly_ceil_n_bits_over_8(self, data):
        array, bits = data
        w = PayloadWriter()
        w.put_packed_array(array, bits=bits)
        # tag byte + rank byte + one u64 per dim + the width byte, then
        # the packed element bytes and nothing else.
        header = 2 + 8 * array.ndim + 1
        assert w.nbytes == header + packed_nbytes(array.size, bits)

    def test_boundary_value_at_every_width(self):
        """0 and 2**b - 1 survive for every b in 1..32, and the inferred
        width is exactly b (the wire size proves it)."""
        for bits in range(1, 33):
            array = np.array([0, 2**bits - 1], dtype=np.uint64)
            w = PayloadWriter()
            w.put_packed_array(array)  # width inferred from the max
            assert w.nbytes == (2 + 8 + 1) + packed_nbytes(2, bits)
            out = _reader_for(w).get_packed_array()
            np.testing.assert_array_equal(out, array)

    def test_empty_arrays_round_trip(self):
        for shape in ((0,), (0, 0), (3, 0)):
            for bits in (None, 1, 31):
                array = np.zeros(shape, dtype=np.uint64)
                w = PayloadWriter()
                w.put_packed_array(array, bits=bits)
                out = _reader_for(w).get_packed_array()
                assert out.shape == shape
                assert out.dtype == array.dtype
                assert out.size == 0

    def test_non_contiguous_views_encode_like_their_copies(self):
        base = np.arange(64, dtype=np.uint64) % 1000
        for view in (base[::2], base[::-1], base.reshape(8, 8).T,
                     base.reshape(8, 8)[:, 1:3]):
            assert not view.flags["C_CONTIGUOUS"]
            w = PayloadWriter()
            w.put_packed_array(view, bits=10)
            out = _reader_for(w).get_packed_array()
            np.testing.assert_array_equal(out, np.ascontiguousarray(view))


class TestDeclaredWidth:
    def test_data_over_the_declared_bound_rejected(self):
        w = PayloadWriter()
        with pytest.raises(WireError, match="over the declared"):
            w.put_packed_array(np.array([15], dtype=np.uint64), bits=3)

    def test_width_outside_dtype_rejected(self):
        for bits in (0, -1, 65):
            w = PayloadWriter()
            with pytest.raises(WireError, match="outside"):
                w.put_packed_array(np.array([1], dtype=np.uint64), bits=bits)
        w = PayloadWriter()
        with pytest.raises(WireError, match="outside"):
            w.put_packed_array(np.array([1], dtype=np.uint8), bits=9)

    def test_unpackable_dtypes_rejected(self):
        for dtype in (np.int64, np.float64):
            w = PayloadWriter()
            with pytest.raises(WireError, match="cannot be bit-packed"):
                w.put_packed_array(np.zeros(4, dtype=dtype))

    def test_declared_width_pins_the_layout_independent_of_data(self):
        """Two arrays with different maxima, same declared width: frames
        are the same size (the property field elements rely on)."""
        sizes = []
        for top in (1, 2**30):
            w = PayloadWriter()
            w.put_packed_array(np.array([0, top], dtype=np.uint64), bits=31)
            sizes.append(w.nbytes)
        assert sizes[0] == sizes[1]


class TestTransparentDecode:
    def test_get_array_reads_packed_arrays_too(self):
        array = np.array([1, 2, 3], dtype=np.uint64)
        w = PayloadWriter()
        w.put_packed_array(array, bits=7)
        np.testing.assert_array_equal(_reader_for(w).get_array(), array)

    def test_get_packed_array_refuses_raw_arrays(self):
        w = PayloadWriter()
        w.put_array(np.array([1, 2, 3], dtype=np.uint64))
        with pytest.raises(WireError, match="not bit-packed"):
            _reader_for(w).get_packed_array()

    def test_decoded_packed_array_is_read_only(self):
        w = PayloadWriter()
        w.put_packed_array(np.array([5], dtype=np.uint64))
        out = _reader_for(w).get_packed_array()
        with pytest.raises(ValueError):
            out[0] = 1

    def test_size_reduction_for_31_bit_field_elements(self):
        """The bandwidth diet itself: 31-bit field elements in uint64
        words shrink by >= 1.8x on the wire."""
        rng = np.random.default_rng(0)
        values = rng.integers(0, 2**31 - 1, size=4096, dtype=np.uint64)
        raw, packed = PayloadWriter(), PayloadWriter()
        raw.put_array(values)
        packed.put_packed_array(values, bits=31)
        assert raw.nbytes / packed.nbytes >= 1.8


def _packed_round_frames(seed: int, count: int):
    """Frames of packed ShardRoundRequests with bounded field vectors."""
    rng = np.random.default_rng(seed)
    frames, requests = [], []
    for i in range(count):
        request = ShardRoundRequest.from_updates(
            shard_id=i,
            round_id=i,
            updates={
                u: rng.integers(0, 2**31 - 1, size=17, dtype=np.uint64)
                for u in range(int(rng.integers(1, 5)))
            },
            dropouts=set(),
            packed=True,
        )
        requests.append(request)
        frames.append(encode_message(request, request_id=i))
    return requests, frames


class TestTornPackedFrames:
    """The stream property (test_stream.py) replayed on packed payloads:
    bit-packed element bytes reassemble across ANY chunk boundary."""

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        count=st.integers(1, 4),
        cuts=st.lists(st.integers(1, 4096), max_size=16),
    )
    def test_any_chunking_reassembles_packed_rounds(self, seed, count, cuts):
        requests, frames = _packed_round_frames(seed, count)
        blob = b"".join(frames)
        bounds = [0, *sorted({c for c in cuts if c < len(blob)}), len(blob)]
        assembler = FrameAssembler()
        out = []
        for a, b in zip(bounds, bounds[1:]):
            out.extend(assembler.feed(blob[a:b]))
        assert out == frames
        for request, frame in zip(requests, out):
            _, decoded = decode_message(frame)
            assert decoded.packed
            original = request.updates_dict()
            rebuilt = decoded.updates_dict()
            assert sorted(rebuilt) == sorted(original)
            for uid, vec in original.items():
                np.testing.assert_array_equal(rebuilt[uid], vec)

    def test_every_single_byte_boundary(self):
        """Exhaustive: one packed round frame fed one byte at a time."""
        requests, frames = _packed_round_frames(seed=3, count=1)
        blob = frames[0]
        assert len(blob) > HEADER_SIZE
        assembler = FrameAssembler()
        out = []
        for i in range(len(blob)):
            out.extend(assembler.feed(blob[i : i + 1]))
        assert out == frames
        _, decoded = decode_message(out[0])
        for uid, vec in requests[0].updates_dict().items():
            np.testing.assert_array_equal(decoded.updates_dict()[uid], vec)

    def test_mixed_raw_and_packed_frames_in_one_stream(self):
        rng = np.random.default_rng(11)
        updates = {
            0: rng.integers(0, 2**31 - 1, size=9, dtype=np.uint64)
        }
        raw = ShardRoundRequest.from_updates(0, 0, dict(updates), set())
        packed = ShardRoundRequest.from_updates(
            1, 1, dict(updates), set(), packed=True
        )
        blob = encode_message(raw, 0) + encode_message(packed, 1)
        assembler = FrameAssembler()
        frames = assembler.feed(blob)
        assert len(frames) == 2
        decoded = [decode_message(f)[1] for f in frames]
        assert [m.packed for m in decoded] == [False, True]
        for m in decoded:
            np.testing.assert_array_equal(
                m.updates_dict()[0], updates[0]
            )
        # the packed frame is the smaller one, same payload
        assert len(frames[1]) < len(frames[0])
