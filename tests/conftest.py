"""Shared fixtures for the test suite, plus a per-test timeout guard.

The timeout guard exists for the socket/worker tests: a wedged
connection or a deadlocked thread pairing must fail the one test fast
(with a traceback pointing at the blocked line) instead of hanging the
whole CI job until the runner is killed.  It is implemented here with
``SIGALRM`` rather than the ``pytest-timeout`` package so the suite has
no extra test dependency; the semantics match pytest-timeout's "signal"
method.  Override per test with ``@pytest.mark.timeout(seconds)``, or
suite-wide with the ``REPRO_TEST_TIMEOUT_S`` environment variable
(``0`` disables the guard entirely).
"""

import os
import signal
import threading

import numpy as np
import pytest

from repro.field import DEFAULT_PRIME, PAPER_PRIME, FiniteField

DEFAULT_TEST_TIMEOUT_S = float(os.environ.get("REPRO_TEST_TIMEOUT_S", "120"))


def _timeout_guard(item, stage):
    """Arm SIGALRM around one runtest stage (hookwrapper body).

    Setup and teardown are guarded too: a fixture that wedges (a worker
    server that won't stop, a refiller that won't join) hangs the job
    just as effectively as a wedged test body.
    """
    timeout = DEFAULT_TEST_TIMEOUT_S
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        timeout = float(marker.args[0])
    if (
        timeout <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_timeout(signum, frame):
        pytest.fail(
            f"test {stage} exceeded the per-test timeout of {timeout:g}s "
            f"(likely a hung socket/worker; see the traceback for the "
            f"blocked call)"
        )

    previous = signal.signal(signal.SIGALRM, _on_timeout)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_setup(item):
    yield from _timeout_guard(item, "setup")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    yield from _timeout_guard(item, "call")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_teardown(item):
    yield from _timeout_guard(item, "teardown")


@pytest.fixture
def gf() -> FiniteField:
    """The default field GF(2^31 - 1)."""
    return FiniteField(DEFAULT_PRIME)


@pytest.fixture
def gf_paper() -> FiniteField:
    """The paper's field GF(2^32 - 5)."""
    return FiniteField(PAPER_PRIME)


@pytest.fixture
def gf_small() -> FiniteField:
    """A small prime field for exhaustive checks."""
    return FiniteField(97)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(params=[DEFAULT_PRIME, PAPER_PRIME, 97, 65537])
def gf_any(request) -> FiniteField:
    """Parametrized over representative field sizes."""
    return FiniteField(request.param)
