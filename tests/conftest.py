"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.field import DEFAULT_PRIME, PAPER_PRIME, FiniteField


@pytest.fixture
def gf() -> FiniteField:
    """The default field GF(2^31 - 1)."""
    return FiniteField(DEFAULT_PRIME)


@pytest.fixture
def gf_paper() -> FiniteField:
    """The paper's field GF(2^32 - 5)."""
    return FiniteField(PAPER_PRIME)


@pytest.fixture
def gf_small() -> FiniteField:
    """A small prime field for exhaustive checks."""
    return FiniteField(97)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(params=[DEFAULT_PRIME, PAPER_PRIME, 97, 65537])
def gf_any(request) -> FiniteField:
    """Parametrized over representative field sizes."""
    return FiniteField(request.param)
