"""Shared fixtures for the test suite, plus a per-test timeout guard.

The timeout guard exists for the socket/worker tests: a wedged
connection or a deadlocked thread pairing must fail the one test fast
(with a traceback pointing at the blocked line) instead of hanging the
whole CI job until the runner is killed.  It is implemented here with
``SIGALRM`` rather than the ``pytest-timeout`` package so the suite has
no extra test dependency; the semantics match pytest-timeout's "signal"
method.  Override per test with ``@pytest.mark.timeout(seconds)``, or
suite-wide with the ``REPRO_TEST_TIMEOUT_S`` environment variable
(``0`` disables the guard entirely).
"""

import os
import signal
import threading

import numpy as np
import pytest

from repro.field import DEFAULT_PRIME, PAPER_PRIME, FiniteField

DEFAULT_TEST_TIMEOUT_S = float(os.environ.get("REPRO_TEST_TIMEOUT_S", "120"))


def _timeout_guard(item, stage):
    """Arm SIGALRM around one runtest stage (hookwrapper body).

    Setup and teardown are guarded too: a fixture that wedges (a worker
    server that won't stop, a refiller that won't join) hangs the job
    just as effectively as a wedged test body.
    """
    timeout = DEFAULT_TEST_TIMEOUT_S
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        timeout = float(marker.args[0])
    if (
        timeout <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_timeout(signum, frame):
        pytest.fail(
            f"test {stage} exceeded the per-test timeout of {timeout:g}s "
            f"(likely a hung socket/worker; see the traceback for the "
            f"blocked call)"
        )

    previous = signal.signal(signal.SIGALRM, _on_timeout)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_setup(item):
    yield from _timeout_guard(item, "setup")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    yield from _timeout_guard(item, "call")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_teardown(item):
    yield from _timeout_guard(item, "teardown")


@pytest.fixture
def gf() -> FiniteField:
    """The default field GF(2^31 - 1)."""
    return FiniteField(DEFAULT_PRIME)


@pytest.fixture
def gf_paper() -> FiniteField:
    """The paper's field GF(2^32 - 5)."""
    return FiniteField(PAPER_PRIME)


@pytest.fixture
def gf_small() -> FiniteField:
    """A small prime field for exhaustive checks."""
    return FiniteField(97)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(params=[DEFAULT_PRIME, PAPER_PRIME, 97, 65537])
def gf_any(request) -> FiniteField:
    """Parametrized over representative field sizes."""
    return FiniteField(request.param)


def validate_json_schema(instance, schema, root=None, path="$"):
    """Minimal JSON-Schema (draft-07 subset) validator.

    CI installs only numpy/pytest/hypothesis, so the trace-schema tests
    cannot depend on the ``jsonschema`` package.  This covers exactly the
    keywords ``tests/obs/golden/trace.schema.json`` uses: ``type``
    (including union types and ``null``), ``required``, ``properties``,
    ``additionalProperties`` (boolean or schema), ``items``, ``$ref``
    into ``#/definitions``, ``minimum``, and ``minLength``.  Raises
    ``AssertionError`` naming the offending path.
    """
    root = root if root is not None else schema
    ref = schema.get("$ref")
    if ref is not None:
        assert ref.startswith("#/"), f"{path}: unsupported $ref {ref!r}"
        target = root
        for part in ref[2:].split("/"):
            target = target[part]
        return validate_json_schema(instance, target, root, path)
    expected = schema.get("type")
    if expected is not None:
        kinds = expected if isinstance(expected, list) else [expected]
        checks = {
            "null": lambda v: v is None,
            "boolean": lambda v: isinstance(v, bool),
            "integer": lambda v: isinstance(v, int)
            and not isinstance(v, bool),
            "number": lambda v: isinstance(v, (int, float))
            and not isinstance(v, bool),
            "string": lambda v: isinstance(v, str),
            "object": lambda v: isinstance(v, dict),
            "array": lambda v: isinstance(v, list),
        }
        assert any(checks[k](instance) for k in kinds), (
            f"{path}: expected {expected}, got {type(instance).__name__} "
            f"({instance!r})"
        )
    if isinstance(instance, (int, float)) and not isinstance(instance, bool):
        if "minimum" in schema:
            assert instance >= schema["minimum"], (
                f"{path}: {instance} < minimum {schema['minimum']}"
            )
    if isinstance(instance, str) and "minLength" in schema:
        assert len(instance) >= schema["minLength"], (
            f"{path}: length {len(instance)} < {schema['minLength']}"
        )
    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            assert name in instance, f"{path}: missing required {name!r}"
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, value in instance.items():
            if key in props:
                validate_json_schema(value, props[key], root, f"{path}.{key}")
            elif extra is False:
                raise AssertionError(f"{path}: unexpected property {key!r}")
            elif isinstance(extra, dict):
                validate_json_schema(value, extra, root, f"{path}.{key}")
    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            validate_json_schema(item, schema["items"], root, f"{path}[{i}]")


@pytest.fixture(name="validate_json_schema")
def validate_json_schema_fixture():
    return validate_json_schema
