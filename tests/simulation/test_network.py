"""Tests for the network model."""

import pytest

from repro.exceptions import SimulationError
from repro.simulation.network import (
    BANDWIDTH_SETTINGS,
    ELEMENT_BYTES,
    LTE_4G,
    NR_5G,
    TESTBED_320,
    BandwidthProfile,
)


class TestProfiles:
    def test_paper_settings(self):
        """Table 3's three bandwidths: 98, 320, 802 Mbps."""
        assert LTE_4G.mbps == 98.0
        assert TESTBED_320.mbps == 320.0
        assert NR_5G.mbps == 802.0
        assert len(BANDWIDTH_SETTINGS) == 3

    def test_element_bytes(self):
        # q < 2^32 -> 4 bytes per element on the wire.
        assert ELEMENT_BYTES == 4

    def test_transfer_time(self):
        # 1e6 elements * 4 B * 8 b = 32 Mb over 320 Mb/s = 0.1 s.
        assert TESTBED_320.seconds(1_000_000) == pytest.approx(0.1)

    def test_faster_link_is_faster(self):
        n = 10_000_000
        assert NR_5G.seconds(n) < TESTBED_320.seconds(n) < LTE_4G.seconds(n)

    def test_zero_elements(self):
        assert TESTBED_320.seconds(0) == 0.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            BandwidthProfile("bad", 0.0)
        with pytest.raises(SimulationError):
            TESTBED_320.seconds(-1)
