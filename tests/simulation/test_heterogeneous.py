"""Tests for the heterogeneous / straggler round simulation."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.protocols.lightsecagg.params import LSAParams
from repro.simulation.heterogeneous import (
    HeterogeneousRoundResult,
    UserProfile,
    sample_fleet,
    simulate_heterogeneous_round,
)


def uniform_fleet(n):
    return [UserProfile() for _ in range(n)]


class TestFleet:
    def test_sample_fleet_size_and_scales(self, rng):
        fleet = sample_fleet(50, straggler_fraction=0.2,
                             straggler_slowdown=4.0, rng=rng)
        assert len(fleet) == 50
        assert all(p.compute_scale > 0 for p in fleet)
        slow = sum(1 for p in fleet if p.bandwidth_scale < 1)
        assert 2 <= slow <= 20  # ~20% of 50 with randomness

    def test_no_stragglers(self, rng):
        fleet = sample_fleet(20, straggler_fraction=0.0, rng=rng)
        assert all(p.bandwidth_scale == 1.0 for p in fleet)

    def test_validation(self, rng):
        with pytest.raises(SimulationError):
            sample_fleet(10, straggler_fraction=1.5, rng=rng)
        with pytest.raises(SimulationError):
            sample_fleet(10, straggler_slowdown=0.5, rng=rng)
        with pytest.raises(SimulationError):
            UserProfile(compute_scale=0)


class TestRoundSimulation:
    PARAMS = LSAParams.from_guarantees(20, privacy=6, dropout_tolerance=4)

    def test_uniform_fleet_no_order_statistic_gap(self):
        result = simulate_heterogeneous_round(
            self.PARAMS, 10_000, uniform_fleet(20)
        )
        # With (near-)identical users the U-th and last responses differ
        # by almost nothing.
        assert result.straggler_savings < 0.05 * result.recovery_wait_all

    def test_stragglers_saved_by_order_statistic(self, rng):
        """The LightSecAgg advantage: with slow devices present, waiting
        for U responses is much faster than waiting for all."""
        fleet = sample_fleet(20, straggler_fraction=0.2,
                             straggler_slowdown=10.0, rng=rng)
        result = simulate_heterogeneous_round(self.PARAMS, 200_000, fleet)
        assert result.straggler_savings > 0
        assert result.recovery_wait_u < 0.5 * result.recovery_wait_all

    def test_dropouts_excluded(self, rng):
        fleet = uniform_fleet(20)
        result = simulate_heterogeneous_round(
            self.PARAMS, 10_000, fleet, dropouts={0, 1, 2, 3}
        )
        assert isinstance(result, HeterogeneousRoundResult)
        assert result.total > 0

    def test_too_many_dropouts(self):
        with pytest.raises(SimulationError):
            simulate_heterogeneous_round(
                self.PARAMS, 10_000, uniform_fleet(20),
                dropouts=set(range(10)),
            )

    def test_fleet_size_checked(self):
        with pytest.raises(SimulationError):
            simulate_heterogeneous_round(self.PARAMS, 10_000, uniform_fleet(19))

    def test_training_time_scales_with_compute(self):
        slow = [UserProfile(compute_scale=0.5)] * 20
        fast = uniform_fleet(20)
        r_slow = simulate_heterogeneous_round(
            self.PARAMS, 10_000, slow, training_time=10.0
        )
        r_fast = simulate_heterogeneous_round(
            self.PARAMS, 10_000, fast, training_time=10.0
        )
        assert r_slow.upload_complete > r_fast.upload_complete
