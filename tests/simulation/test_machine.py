"""Tests for the machine profile."""

import pytest

from repro.exceptions import SimulationError
from repro.simulation.machine import PAPER_TESTBED, MachineProfile


class TestTimingHelpers:
    def test_prg_time_linear(self):
        m = MachineProfile(prg_elements_per_sec=1e6)
        assert m.prg_time(1_000_000) == pytest.approx(1.0)
        assert m.prg_time(2_000_000) == pytest.approx(2.0)

    def test_field_time(self):
        m = MachineProfile(field_ops_per_sec=1e7)
        assert m.field_time(5_000_000) == pytest.approx(0.5)

    def test_dh_and_shamir_time(self):
        m = MachineProfile(dh_agreements_per_sec=100.0,
                           shamir_shares_per_sec=1000.0)
        assert m.dh_time(50) == pytest.approx(0.5)
        assert m.shamir_time(500) == pytest.approx(0.5)

    def test_zero_work_free(self):
        assert PAPER_TESTBED.prg_time(0) == 0.0
        assert PAPER_TESTBED.field_time(0) == 0.0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"prg_elements_per_sec": 0},
            {"field_ops_per_sec": -1},
            {"dh_agreements_per_sec": 0},
            {"shamir_shares_per_sec": 0},
        ],
    )
    def test_nonpositive_rates_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            MachineProfile(**kwargs)


class TestCalibration:
    def test_calibrate_uses_library_kernels(self):
        prof = MachineProfile.calibrate(sample_size=1 << 14)
        # Calibration replaces the compute rates but keeps crypto defaults.
        assert prof.prg_elements_per_sec > 1e4
        assert prof.field_ops_per_sec > 1e4
        assert prof.dh_agreements_per_sec == PAPER_TESTBED.dh_agreements_per_sec

    def test_paper_testbed_ballpark(self):
        """The default profile must keep SecAgg's N=200 CNN recovery near
        the paper's ~911 s (the anchor used for calibration)."""
        m = PAPER_TESTBED
        d = 1_206_590
        recovery = m.prg_time(180 * d + 20 * 199 * d)
        assert 500 < recovery < 2000
