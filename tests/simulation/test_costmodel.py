"""Tests for the analytic complexity model (Tables 1 and 5)."""

import pytest

from repro.exceptions import SimulationError
from repro.simulation.costmodel import (
    PROTOCOLS,
    ROWS,
    SYMBOLIC_TABLE,
    CostParams,
    complexity_table,
    paper_operating_point,
)


def table_at(n, d=1_000_000, p=0.1):
    return complexity_table(paper_operating_point(n, d, p))


class TestTableStructure:
    def test_all_protocols_and_rows_present(self):
        table = table_at(100)
        assert set(table) == set(PROTOCOLS)
        for proto in PROTOCOLS:
            assert set(table[proto]) == set(ROWS)

    def test_symbolic_table_mirrors_numeric(self):
        assert set(SYMBOLIC_TABLE) == set(PROTOCOLS)
        for proto in PROTOCOLS:
            assert set(SYMBOLIC_TABLE[proto]) == set(ROWS)

    def test_params_validation(self):
        with pytest.raises(SimulationError):
            CostParams(num_users=1, model_dim=100)
        with pytest.raises(SimulationError):
            complexity_table(CostParams(10, 100, privacy=5, target_survivors=4))


class TestScalingClaims:
    """The paper's headline asymptotics, checked as growth ratios."""

    def test_secagg_reconstruction_quadratic_in_n(self):
        r100 = table_at(100)["secagg"]["reconstruction_server"]
        r200 = table_at(200)["secagg"]["reconstruction_server"]
        assert r200 / r100 == pytest.approx(4.0, rel=0.01)

    def test_secagg_plus_reconstruction_n_log_n(self):
        r100 = table_at(100)["secagg+"]["reconstruction_server"]
        r200 = table_at(200)["secagg+"]["reconstruction_server"]
        ratio = r200 / r100
        assert 2.0 < ratio < 2.5  # 2 * log(200)/log(100) ~ 2.3

    def test_lsa_reconstruction_nearly_constant_in_n(self):
        """With U = (1-p)N, LightSecAgg server decode is O(d log N)."""
        r100 = table_at(100)["lightsecagg"]["reconstruction_server"]
        r200 = table_at(200)["lightsecagg"]["reconstruction_server"]
        assert r200 / r100 < 1.3

    def test_server_reconstruction_ordering(self):
        """LSA << SecAgg+ << SecAgg at the paper's operating point."""
        t = table_at(200)
        lsa = t["lightsecagg"]["reconstruction_server"]
        plus = t["secagg+"]["reconstruction_server"]
        full = t["secagg"]["reconstruction_server"]
        assert lsa < plus < full
        assert full / lsa > 100  # orders of magnitude, as the paper claims

    def test_lsa_offline_comm_is_d_sized(self):
        """LightSecAgg trades d-sized offline traffic for cheap recovery."""
        t = table_at(200)
        assert (
            t["lightsecagg"]["offline_comm_user"]
            > t["secagg"]["offline_comm_user"]
        )

    def test_all_entries_scale_linearly_in_d(self):
        a = complexity_table(paper_operating_point(100, 1_000_000))
        b = complexity_table(paper_operating_point(100, 2_000_000))
        for proto in PROTOCOLS:
            for row in ROWS:
                ratio = b[proto][row] / a[proto][row]
                assert 1.0 <= ratio <= 2.01, (proto, row)


class TestExcludedProtocols:
    def test_exclusions_documented(self):
        from repro.simulation.costmodel import EXCLUDED_PROTOCOLS, PROTOCOLS

        assert set(EXCLUDED_PROTOCOLS) == {"turboagg", "fastsecagg", "zhao-sun"}
        # No overlap with implemented protocols, and every note is substantive.
        assert not set(EXCLUDED_PROTOCOLS) & set(PROTOCOLS)
        assert all(len(v) > 40 for v in EXCLUDED_PROTOCOLS.values())


class TestOperatingPoint:
    def test_paper_choice(self):
        p = paper_operating_point(200, 10_000, dropout_rate=0.1)
        assert p.privacy == 100
        assert p.target_survivors == 180  # U = (1 - p) N

    def test_u_feasible_at_half_dropout(self):
        p = paper_operating_point(200, 10_000, dropout_rate=0.5)
        assert p.target_survivors > p.privacy
