"""Tests for the Table-6 storage comparison vs Zhao & Sun (2021)."""

import math

import pytest

from repro.exceptions import SimulationError
from repro.simulation.storage import (
    compare_storage,
    lightsecagg_storage_per_user,
    lightsecagg_total_randomness,
    zhao_sun_storage_per_user,
    zhao_sun_total_randomness,
)


class TestFormulas:
    def test_lightsecagg_linear(self):
        assert lightsecagg_total_randomness(10, 7, 3) == 70
        assert lightsecagg_storage_per_user(10, 7, 3) == 4 + 10

    def test_zhao_sun_small_case(self):
        # N=3, U=2, T=1: subsets of size >= 2: C(3,2)+C(3,3) = 4.
        assert zhao_sun_total_randomness(3, 2, 1) == 3 * 1 + 1 * 4
        # per-user: (U-T) + (C(3,2)*2 + C(3,3)*3)/3 = 1 + 9/3 = 4.
        assert zhao_sun_storage_per_user(3, 2, 1) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            zhao_sun_total_randomness(5, 6, 1)
        with pytest.raises(SimulationError):
            lightsecagg_total_randomness(5, 3, 3)


class TestPaperClaims:
    def test_zhao_sun_grows_exponentially(self):
        """The paper: Zhao & Sun randomness increases exponentially with N."""
        values = [
            zhao_sun_total_randomness(n, int(0.7 * n), n // 2)
            for n in (10, 20, 30)
        ]
        # Successive ratios should themselves grow (super-polynomial).
        assert values[1] / values[0] > 50
        assert values[2] / values[1] > values[1] / values[0] / 10

    def test_lightsecagg_grows_linearly(self):
        v10 = lightsecagg_total_randomness(10, 7, 5)
        v20 = lightsecagg_total_randomness(20, 14, 10)
        assert v20 / v10 == pytest.approx(4.0)  # N * U with both doubling

    def test_lsa_always_cheaper(self):
        for n in (6, 10, 16, 24):
            u, t = int(0.7 * n), n // 2 - 1
            cmp = compare_storage(n, u, max(t, 0) if u > max(t, 0) else 0)
            assert cmp.randomness_ratio > 1
            assert cmp.storage_ratio > 1

    def test_ratio_explodes_with_n(self):
        small = compare_storage(10, 7, 4).randomness_ratio
        large = compare_storage(30, 21, 14).randomness_ratio
        assert large > 100 * small

    def test_comparison_dataclass(self):
        cmp = compare_storage(8, 6, 3)
        assert cmp.num_users == 8
        assert cmp.lightsecagg_randomness == 48
        assert cmp.zhao_sun_randomness > cmp.lightsecagg_randomness
