"""Tests for the time-to-accuracy projection."""

import pytest

from repro.exceptions import SimulationError
from repro.simulation.training_time import (
    TrainingTimeProjection,
    project_training_time,
    rounds_to_accuracy,
)

CURVE = [0.3, 0.55, 0.72, 0.81, 0.88, 0.91, 0.93]


class TestRoundsToAccuracy:
    def test_first_crossing(self):
        assert rounds_to_accuracy(CURVE, 0.8) == 4
        assert rounds_to_accuracy(CURVE, 0.3) == 1

    def test_exact_match(self):
        assert rounds_to_accuracy(CURVE, 0.91) == 6

    def test_unreachable_target(self):
        with pytest.raises(SimulationError, match="peaks"):
            rounds_to_accuracy(CURVE, 0.99)

    def test_validation(self):
        with pytest.raises(SimulationError):
            rounds_to_accuracy([], 0.5)
        with pytest.raises(SimulationError):
            rounds_to_accuracy(CURVE, 0.0)
        with pytest.raises(SimulationError):
            rounds_to_accuracy(CURVE, 1.5)


class TestProjection:
    def test_projection_structure(self):
        proj = project_training_time(
            CURVE, 0.85, num_users=200, model_dim=1_206_590,
            dropout_rate=0.1, training_time=22.8,
        )
        assert proj.rounds_needed == 5
        assert set(proj.seconds) == {"lightsecagg", "secagg", "secagg+"}
        assert all(v > 0 for v in proj.seconds.values())

    def test_lightsecagg_fastest_to_accuracy(self):
        """The abstract's claim: LightSecAgg reduces total training time."""
        proj = project_training_time(
            CURVE, 0.9, num_users=200, model_dim=1_206_590,
            dropout_rate=0.1, training_time=22.8,
        )
        assert proj.speedup_over("secagg") > 5
        assert proj.speedup_over("secagg+") > 1.5

    def test_time_scales_linearly_with_rounds(self):
        kwargs = dict(num_users=100, model_dim=100_000, dropout_rate=0.1,
                      training_time=5.0)
        p_low = project_training_time(CURVE, 0.3, **kwargs)
        p_high = project_training_time(CURVE, 0.88, **kwargs)
        ratio = p_high.seconds["secagg"] / p_low.seconds["secagg"]
        assert ratio == pytest.approx(5.0)

    def test_unknown_baseline(self):
        proj = TrainingTimeProjection(0.9, 3, {"lightsecagg": 1.0})
        with pytest.raises(SimulationError):
            proj.speedup_over("turboagg")

    def test_overlap_choice_respected(self):
        kwargs = dict(num_users=200, model_dim=1_206_590, dropout_rate=0.1,
                      training_time=22.8)
        ov = project_training_time(CURVE, 0.8, overlapped=True, **kwargs)
        no = project_training_time(CURVE, 0.8, overlapped=False, **kwargs)
        assert ov.seconds["lightsecagg"] <= no.seconds["lightsecagg"]
