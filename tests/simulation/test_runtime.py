"""Tests for the phase-timing simulator against the paper's observations."""

import pytest

from repro.exceptions import SimulationError
from repro.simulation.machine import MachineProfile
from repro.simulation.network import LTE_4G, NR_5G, TESTBED_320
from repro.simulation.runtime import (
    PhaseTimes,
    SimulationConfig,
    compute_gains,
    simulate,
    simulate_lightsecagg,
    simulate_secagg,
    simulate_secagg_plus,
)

CNN_D = 1_206_590
CFG = SimulationConfig()


class TestPhaseTimes:
    def test_total_modes(self):
        t = PhaseTimes(offline=10, training=20, upload=5, recovery=3)
        assert t.total(overlapped=False) == 38
        assert t.total(overlapped=True) == 28  # max(10,20)+5+3
        assert t.aggregation_only() == 18

    def test_overlap_never_slower(self):
        for proto in ("lightsecagg", "secagg", "secagg+"):
            t = simulate(proto, 100, CNN_D, 0.1, 22.8, CFG)
            assert t.total(True) <= t.total(False)

    def test_as_dict(self):
        t = PhaseTimes(1, 2, 3, 4)
        assert t.as_dict() == {
            "offline": 1, "training": 2, "upload": 3, "recovery": 4
        }


class TestPaperObservations:
    """Qualitative checks mirroring Sec. 7.2's findings."""

    def test_secagg_total_grows_with_dropout_rate(self):
        totals = [
            simulate_secagg(200, CNN_D, p, 22.8, CFG).total() for p in (0.1, 0.3, 0.5)
        ]
        assert totals[0] < totals[1] < totals[2]

    def test_secagg_plus_total_grows_with_dropout_rate(self):
        totals = [
            simulate_secagg_plus(200, CNN_D, p, 22.8, CFG).total()
            for p in (0.1, 0.3, 0.5)
        ]
        assert totals[0] < totals[1] < totals[2]

    def test_lsa_recovery_flat_for_low_dropouts(self):
        """p = 0.1 and p = 0.3 share U = 0.7N => near-identical runtimes."""
        r1 = simulate_lightsecagg(200, CNN_D, 0.1, 22.8, CFG)
        r3 = simulate_lightsecagg(200, CNN_D, 0.3, 22.8, CFG)
        assert r1.recovery == pytest.approx(r3.recovery, rel=0.05)
        assert r1.total() == pytest.approx(r3.total(), rel=0.05)

    def test_lsa_p_half_penalty(self):
        """At p = 0.5, U - T = 1 blows up the coded-symbol size; both
        offline and recovery must jump (Table 4's 191.2 s / 64.5 s rows)."""
        r1 = simulate_lightsecagg(200, CNN_D, 0.1, 22.8, CFG)
        r5 = simulate_lightsecagg(200, CNN_D, 0.5, 22.8, CFG)
        assert r5.offline > 2 * r1.offline
        assert r5.recovery > r1.recovery

    def test_ordering_lsa_fastest(self):
        for p in (0.1, 0.3, 0.5):
            lsa = simulate_lightsecagg(200, CNN_D, p, 22.8, CFG).total()
            plus = simulate_secagg_plus(200, CNN_D, p, 22.8, CFG).total()
            full = simulate_secagg(200, CNN_D, p, 22.8, CFG).total()
            assert lsa < plus < full, p

    def test_secagg_recovery_dominates_total(self):
        """Bonawitz et al.'s own observation: execution time is limited by
        mask reconstruction at the server."""
        t = simulate_secagg(200, CNN_D, 0.3, 22.8, CFG)
        assert t.recovery > 0.5 * t.total()

    def test_totals_grow_with_n(self):
        for proto in ("lightsecagg", "secagg", "secagg+"):
            t50 = simulate(proto, 50, CNN_D, 0.1, 22.8, CFG).total()
            t200 = simulate(proto, 200, CNN_D, 0.1, 22.8, CFG).total()
            assert t200 > t50, proto

    def test_secagg_grows_faster_than_lsa_in_n(self):
        ratio = lambda proto: (
            simulate(proto, 200, CNN_D, 0.1, 22.8, CFG).total()
            / simulate(proto, 50, CNN_D, 0.1, 22.8, CFG).total()
        )
        assert ratio("secagg") > 2 * ratio("lightsecagg")


class TestTable2Gains:
    def test_cnn_gains_in_paper_range(self):
        """Flagship numbers: CNN/FEMNIST gains should land near the paper's
        11.3x/3.7x (non-overlapped) and 12.7x/4.1x (overlapped)."""
        g = compute_gains("cnn", 200, CNN_D, 0.1, 22.8, CFG)
        assert 7 < g.non_overlapped["secagg"] < 16
        assert 2 < g.non_overlapped["secagg+"] < 6
        assert 8 < g.overlapped["secagg"] < 18
        assert 2.5 < g.overlapped["secagg+"] < 6

    def test_gains_exceed_one_everywhere(self):
        for d, tt in ((7_850, 2.0), (3_111_462, 60.0), (5_288_548, 650.0)):
            g = compute_gains("task", 200, d, 0.1, tt, CFG)
            assert g.non_overlapped["secagg"] > 1
            assert g.non_overlapped["secagg+"] > 1

    def test_training_dominant_task_shrinks_end_to_end_gain(self):
        """GLD/EfficientNet: training dominates, so the end-to-end gain is
        much smaller than the aggregation-only gain (Table 2 row 4)."""
        g = compute_gains("effb0", 200, 5_288_548, 0.1, 650.0, CFG)
        assert g.non_overlapped["secagg"] < 0.5 * g.aggregation_only["secagg"]


class TestBandwidthTable3:
    def test_gain_increases_with_bandwidth(self):
        """Table 3: the speedup over SecAgg grows from 4G to 5G (compute
        dominates SecAgg, communication washes out at higher rates)."""
        gains = []
        for bw in (LTE_4G, TESTBED_320, NR_5G):
            cfg = SimulationConfig(bandwidth=bw)
            g = compute_gains("cnn", 200, CNN_D, 0.1, 22.8, cfg)
            gains.append(g.overlapped["secagg"])
        assert gains[0] < gains[1] < gains[2]


class TestValidation:
    def test_unknown_protocol(self):
        with pytest.raises(SimulationError):
            simulate("turboagg", 100, 1000, 0.1, 1.0, CFG)

    def test_machine_profile_validation(self):
        with pytest.raises(SimulationError):
            MachineProfile(prg_elements_per_sec=0)

    def test_config_validation(self):
        with pytest.raises(SimulationError):
            SimulationConfig(server_bandwidth_factor=0)

    def test_calibration_returns_positive_rates(self):
        prof = MachineProfile.calibrate(sample_size=1 << 16)
        assert prof.prg_elements_per_sec > 0
        assert prof.field_ops_per_sec > 0
