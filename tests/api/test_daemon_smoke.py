"""Black-box daemon smoke: the real ``repro serve`` / ``repro
shard-worker`` processes, driven exactly the way CI and operators do.

* ``repro serve --json`` publishes its ephemeral address on stdout,
  serves cohorts over HTTP (inline and process transports), answers
  ``/metrics``, and exits 0 on ``POST /drain`` with a final JSON drain
  line;
* SIGTERM takes the same graceful path: drain, summary line, exit 0 —
  for both daemons (satellite: the shard worker used to die mid-frame);
* ``--max-seconds`` bounds the run for CI without any HTTP traffic.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

pytestmark = pytest.mark.timeout(180)

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src"
)
TRACE_SCHEMA = os.path.join(
    os.path.dirname(os.path.dirname(__file__)),
    "obs", "golden", "trace.schema.json",
)


def spawn(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    # a hung daemon dumps thread stacks on the SIGABRT wait_exit sends
    env["PYTHONFAULTHANDLER"] = "1"
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )


def wait_exit(proc, timeout=60):
    try:
        out, err = proc.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.send_signal(signal.SIGABRT)
        try:
            out, err = proc.communicate(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
            out, err = proc.communicate()
        pytest.fail(f"daemon did not exit; stdout={out!r} stderr={err!r}")
    assert proc.returncode == 0, (
        f"exit {proc.returncode}; stdout={out!r} stderr={err!r}"
    )
    return out, err


def serve_daemon():
    proc = spawn("serve", "--listen", "127.0.0.1:0", "--json")
    line = proc.stdout.readline()
    assert line, proc.stderr.read()
    startup = json.loads(line)
    assert startup["event"] == "listening"
    return proc, f"http://{startup['address']}"


def call(base, method, path, body=None, timeout=60):
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            raw = resp.read()
            if resp.headers.get("Content-Type", "").startswith(
                "application/json"
            ):
                return resp.status, json.loads(raw)
            return resp.status, raw.decode()
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.mark.parametrize("transport", ["inline", "process"])
def test_serve_end_to_end(transport, validate_json_schema):
    """Create a cohort, run rounds, scrape metrics + a round trace,
    drain — exit 0."""
    proc, base = serve_daemon()
    try:
        spec = {"num_users": 5, "model_dim": 64, "pool_size": 2,
                "low_water": 1, "transport": transport}
        if transport == "process":
            spec.update(num_shards=2, num_workers=2)
        status, created = call(base, "POST", "/cohorts", spec)
        assert status == 201, created
        cid = created["cohort_id"]
        for seed in range(2):
            status, body = call(
                base, "POST", f"/cohorts/{cid}/rounds",
                {"synthetic": {"seed": seed, "dropout_rate": 0.2}},
            )
            assert status == 200, body
            assert len(body["survivors"]) == 4
        status, text = call(base, "GET", "/metrics")
        assert status == 200
        assert f'repro_rounds_total{{cohort="{cid}"}} 2' in text
        if transport == "process":
            # sharded backends report scatter/gather rounds; unsharded
            # inline cohorts run the bare session (no transport wrapper)
            assert 'repro_transport_rounds_total{transport="process"} 2' \
                in text
        # observability: the rounds left traces, and the served span
        # tree honours the committed schema (the published contract)
        status, listing = call(base, "GET", f"/cohorts/{cid}/traces")
        assert status == 200 and listing["tracing"] is True
        assert len(listing["traces"]) == 2
        status, trace = call(
            base, "GET", f"/traces/{listing['traces'][0]['trace_id']}"
        )
        assert status == 200
        with open(TRACE_SCHEMA, encoding="utf-8") as fh:
            validate_json_schema(trace, json.load(fh))
        assert trace["root"]["name"] == "round"
        if transport == "process":
            # sharded lane: worker-reported compute spans were stitched in
            names = [s["name"] for s in trace["root"]["children"]]
            assert any(n.startswith("shard_compute[") for n in names)
        status, health = call(base, "GET", "/healthz")
        assert health["status"] == "ok" and health["cohorts"] == 1
        status, summary = call(base, "POST", "/drain")
        assert status == 200 and summary["drained"] is True
        assert summary["total_rounds"] == 2
    except BaseException:
        # don't let wait_exit's 60s hang-and-fail mask the real failure
        proc.kill()
        proc.communicate()
        raise
    out, err = wait_exit(proc)
    final = json.loads(out.strip().splitlines()[-1])
    assert final["event"] == "drained" and final["total_rounds"] == 2


def test_serve_trace_log_writes_span_events(tmp_path):
    """--trace-log appends one JSON line per span close, flushed by the
    time drain answers."""
    log = tmp_path / "events.jsonl"
    proc = spawn("serve", "--listen", "127.0.0.1:0", "--json",
                 "--trace-log", str(log))
    line = proc.stdout.readline()
    base = f"http://{json.loads(line)['address']}"
    try:
        call(base, "POST", "/cohorts",
             {"num_users": 4, "model_dim": 32, "pool_size": 2})
        call(base, "POST", "/cohorts/0/rounds", {"synthetic": {"seed": 0}})
        call(base, "POST", "/drain")
    except BaseException:
        proc.kill()
        proc.communicate()
        raise
    wait_exit(proc)
    events = [json.loads(l) for l in log.read_text().splitlines()]
    assert events, "no span events logged"
    assert all(e["event"] == "span" for e in events)
    roots = [e for e in events if e["span"] == "round"]
    assert len(roots) == 1
    assert roots[0]["cohort_id"] == 0 and roots[0]["round_index"] == 0
    assert "slow" in roots[0]


def test_serve_sigterm_drains_and_exits_zero():
    proc, base = serve_daemon()
    call(base, "POST", "/cohorts",
         {"num_users": 4, "model_dim": 32, "pool_size": 2})
    call(base, "POST", "/cohorts/0/rounds", {"synthetic": {"seed": 0}})
    proc.send_signal(signal.SIGTERM)
    out, _ = wait_exit(proc)
    final = json.loads(out.strip().splitlines()[-1])
    assert final["event"] == "drained"
    assert final["drained"] is True and final["total_rounds"] == 1


def test_serve_max_seconds_bounds_the_run():
    proc = spawn("serve", "--listen", "127.0.0.1:0", "--json",
                 "--max-seconds", "1")
    t0 = time.monotonic()
    out, _ = wait_exit(proc)
    assert time.monotonic() - t0 < 60
    events = [json.loads(line) for line in out.strip().splitlines()]
    assert [e["event"] for e in events] == ["listening", "drained"]


def test_shard_worker_sigterm_exits_zero():
    proc = spawn("shard-worker", "--listen", "127.0.0.1:0")
    line = proc.stdout.readline()
    assert "listening" in line
    proc.send_signal(signal.SIGTERM)
    wait_exit(proc)
