"""Typed validation for the control plane's request/response models.

Every rejection must be a :class:`SchemaError` naming the offending
field (the server's 400 lane) — never a bare TypeError/ValueError that
would surface as a 500.  Vector codecs roundtrip both encodings and
reject out-of-field elements before any protocol machinery runs.
"""

import base64

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.field import FiniteField
from repro.service import AggregationService, ServiceConfig, TransportKind
from repro.service.api import (
    CohortCreateRequest,
    DrainRequest,
    RoundRequest,
    SchemaError,
    decode_vector,
    encode_vector,
    field_bits,
)


@pytest.fixture(scope="module")
def gf():
    return FiniteField()


class TestVectorCodec:
    @pytest.mark.parametrize("encoding", ["u64", "packed"])
    def test_roundtrip(self, gf, encoding):
        rng = np.random.default_rng(3)
        vec = gf.random(257, rng)
        text = encode_vector(vec, encoding, gf.q)
        back = decode_vector(text, encoding, gf.q, 257, "updates[0]")
        assert back.dtype == np.uint64
        assert np.array_equal(back, vec)

    def test_packed_is_smaller_than_u64(self, gf):
        vec = gf.random(1024, np.random.default_rng(0))
        packed = encode_vector(vec, "packed", gf.q)
        u64 = encode_vector(vec, "u64", gf.q)
        assert len(packed) < len(u64)
        # the default field (q = 2^31 - 1) packs at 31 bits/element —
        # under half the u64 diet
        assert field_bits(gf.q) == 31

    def test_bad_base64_names_the_field(self, gf):
        with pytest.raises(SchemaError, match=r"updates\[3\].*base64"):
            decode_vector("!!!", "u64", gf.q, 4, "updates[3]")

    def test_wrong_length_rejected(self, gf):
        text = base64.b64encode(b"\x00" * 16).decode()
        with pytest.raises(SchemaError, match="dim=4 needs exactly 32"):
            decode_vector(text, "u64", gf.q, 4, "updates[0]")

    def test_out_of_field_element_rejected(self, gf):
        raw = np.array([0, gf.q], dtype="<u8").tobytes()
        text = base64.b64encode(raw).decode()
        with pytest.raises(SchemaError, match=r"outside GF\("):
            decode_vector(text, "u64", gf.q, 2, "updates[0]")

    def test_non_string_rejected(self, gf):
        with pytest.raises(SchemaError, match="expected a base64 string"):
            decode_vector(12345, "u64", gf.q, 2, "updates[0]")


class TestCohortCreateRequest:
    def test_defaults_match_service_config(self):
        spec = CohortCreateRequest.from_json({}).to_spec()
        assert spec == ServiceConfig(num_cohorts=1).cohort_spec()

    def test_unknown_field_rejected(self):
        with pytest.raises(SchemaError, match="unknown field.*'shard_count'"):
            CohortCreateRequest.from_json({"shard_count": 2})

    def test_bool_is_not_an_int(self):
        with pytest.raises(SchemaError, match="num_users.*boolean"):
            CohortCreateRequest.from_json({"num_users": True})

    def test_bad_transport_name(self):
        with pytest.raises(SchemaError, match="transport.*'carrier-pigeon'"):
            CohortCreateRequest.from_json(
                {"transport": "carrier-pigeon"}
            ).to_spec()

    def test_bad_geometry_uses_config_layer_message(self):
        # CohortSpec.__post_init__ runs the same validator as the static
        # ServiceConfig — identical message, schema-free.
        with pytest.raises(ReproError, match="need >= 2 users per cohort"):
            CohortCreateRequest.from_json({"num_users": 1}).to_spec()

    def test_connect_must_be_strings(self):
        with pytest.raises(SchemaError, match=r"connect\[1\]"):
            CohortCreateRequest.from_json(
                {"connect": ["host:1", 7000]}
            )

    def test_socket_spec_carries_connect(self):
        spec = CohortCreateRequest.from_json(
            {"transport": "socket", "connect": ["a:1", "b:2"]}
        ).to_spec()
        assert spec.transport is TransportKind.SOCKET
        assert spec.connect == ("a:1", "b:2")


class TestRoundRequest:
    def test_exactly_one_of_updates_and_synthetic(self):
        with pytest.raises(SchemaError, match="exactly one"):
            RoundRequest.from_json({})
        with pytest.raises(SchemaError, match="exactly one"):
            RoundRequest.from_json(
                {"updates": {"0": "AA=="}, "synthetic": {}}
            )

    def test_unknown_encoding(self):
        with pytest.raises(SchemaError, match="encoding.*'hex'"):
            RoundRequest.from_json(
                {"synthetic": {}, "encoding": "hex"}
            )

    def test_dropouts_must_be_integers(self):
        with pytest.raises(SchemaError, match=r"dropouts\[1\]"):
            RoundRequest.from_json(
                {"synthetic": {}, "dropouts": [0, "one"]}
            )

    def test_update_keys_coerce_from_json_strings(self):
        req = RoundRequest.from_json({"updates": {"3": "AA=="}})
        assert req.updates_b64 == {3: "AA=="}

    def test_non_integer_update_key(self):
        with pytest.raises(SchemaError, match="integer user ids"):
            RoundRequest.from_json({"updates": {"alice": "AA=="}})

    def test_synthetic_dropout_rate_range(self):
        with pytest.raises(SchemaError, match=r"\[0, 1\)"):
            RoundRequest.from_json(
                {"synthetic": {"dropout_rate": 1.0}}
            )

    def test_materialize_rejects_out_of_range_user(self, gf):
        spec = ServiceConfig(num_cohorts=1, num_users=4).cohort_spec()
        vec = encode_vector(gf.random(spec.model_dim,
                                      np.random.default_rng(0)), "u64", gf.q)
        req = RoundRequest.from_json({"updates": {"9": vec}})
        with pytest.raises(SchemaError, match=r"updates\[9\].*outside"):
            req.materialize(spec, gf)
        req = RoundRequest.from_json({"synthetic": {}, "dropouts": [4]})
        with pytest.raises(SchemaError, match=r"dropouts.*outside"):
            req.materialize(spec, gf)

    def test_synthetic_materialize_matches_run_synthetic(self, gf):
        """The HTTP synthetic path draws the exact same inputs as the
        in-process ``run_synthetic`` — same rng construction, same draw
        order — so equal seeds mean bit-equal aggregates."""
        config = ServiceConfig(num_cohorts=1, num_users=5, model_dim=64,
                               pool_size=2)
        spec = config.cohort_spec()
        req = RoundRequest.from_json({"synthetic": {"seed": 21}})
        updates, dropouts, rng = req.materialize(spec, gf)
        assert sorted(updates) == list(range(5))
        assert dropouts == set()

        svc = AggregationService(config, gf=gf).start()
        try:
            result = svc.run_round(0, updates, dropouts, rng)
            reference = svc.cohorts[0].session  # noqa: F841 — round ran
        finally:
            svc.stop()
        expected = gf.zeros(64)
        for uid in result.survivors:
            expected = gf.add(expected, updates[uid])
        assert np.array_equal(result.aggregate, expected)


class TestDrainRequest:
    def test_default_is_unbounded(self):
        assert DrainRequest.from_json({}).timeout_s is None

    def test_timeout_must_be_positive(self):
        with pytest.raises(SchemaError, match="timeout_s"):
            DrainRequest.from_json({"timeout_s": 0})

    def test_int_timeout_coerces_to_float(self):
        assert DrainRequest.from_json({"timeout_s": 5}).timeout_s == 5.0
