"""HTTP surface of the buffered-async workload + async round handles.

The acceptance criteria pinned here:

* a buffered cohort created over ``POST /cohorts`` fills via
  ``POST /cohorts/{id}/updates`` (f64 payloads), drains at K, and the
  returned aggregate is **byte-identical** to the single-process
  :class:`~repro.asyncfl.secure_aggregator.AsyncSecureAggregator`
  oracle — on inline AND socket transports, including after at least
  one join (``POST .../members``) and one leave
  (``DELETE .../members/{u}``);
* ``POST /cohorts/{id}/rounds`` with ``"mode": "async"`` answers 202
  with a poll handle usable by *sync* cohorts, and the polled result
  matches the same round driven synchronously;
* every new error lane answers its status with a JSON body.
"""

import base64
import json
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.asyncfl import AsyncDelivery, AsyncSecureAggregator
from repro.field import FiniteField
from repro.protocols.lightsecagg.params import LSAParams
from repro.quantization import ModelQuantizer, QuantizationConfig
from repro.service import (
    AggregationService,
    RefillMode,
    ServiceConfig,
    ShardWorkerServer,
    TransportKind,
)
from repro.service.api import (
    ControlPlane,
    ControlPlaneServer,
    SchemaError,
    SubmitUpdateRequest,
    decode_real_vector,
    encode_real_vector,
    encode_vector,
)
from repro.service.api.schemas import RoundRequest
from repro.service.engines import build_staleness, drain_stream

N, K, DIM = 6, 4, 48


@pytest.fixture(scope="module")
def gf():
    return FiniteField()


def make_daemon(gf, **config_kwargs):
    config = ServiceConfig(refill_mode=RefillMode.BACKGROUND,
                           **config_kwargs)
    service = AggregationService(config, gf=gf, build_cohorts=False).start()
    control = ControlPlane(service)
    server = ControlPlaneServer(control).start()
    return service, control, server


class Client:
    def __init__(self, address):
        self.base = f"http://{address}"

    def request(self, method, path, body=None, timeout=30):
        data = None if body is None else json.dumps(body).encode()
        req = urllib.request.Request(
            self.base + path, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def get(self, path):
        return self.request("GET", path)

    def post(self, path, body=None):
        return self.request("POST", path, body or {})

    def delete(self, path):
        return self.request("DELETE", path)


def buffered_spec(**overrides):
    body = {"num_users": N, "model_dim": DIM, "pool_size": 3,
            "low_water": 1, "kind": "buffered", "buffer_size": K,
            "seed": 13}
    body.update(overrides)
    return body


def oracle_aggregate(gf, num_users, cohort_id, drain_index, deliveries,
                     *, seed=13, recovery=()):
    agg = AsyncSecureAggregator(
        gf,
        LSAParams.from_guarantees(num_users, privacy=1,
                                  dropout_tolerance=1),
        DIM,
        ModelQuantizer(gf, QuantizationConfig(levels=1 << 16)),
        build_staleness("constant"),
    )
    return agg.aggregate(
        deliveries,
        rng=drain_stream(seed, cohort_id, drain_index),
        recovery_dropouts=set(recovery),
    )


def submit(client, cid, uid, vec, download_round=None, dropouts=None):
    body = {"user_id": uid, "update": encode_real_vector(vec)}
    if download_round is not None:
        body["download_round"] = download_round
    if dropouts is not None:
        body["dropouts"] = sorted(dropouts)
    return client.post(f"/cohorts/{cid}/updates", body)


def drive_buffered_acceptance(gf, client):
    """Two drains with one join and one leave in between, vs oracle."""
    status, created = client.post("/cohorts", buffered_spec())
    assert status == 201
    cid = created["cohort_id"]
    assert created["kind"] == "buffered"
    assert created["buffer_capacity"] == K

    rng = np.random.default_rng(3)

    # drain 0: fresh updates, member 5 flagged for recovery
    subs0 = [(i, rng.normal(size=DIM)) for i in range(K)]
    sealed = None
    for j, (uid, vec) in enumerate(subs0):
        status, out = submit(client, cid, uid, vec, download_round=0,
                             dropouts={5} if j == 0 else None)
        assert status == 200, out
        if out.get("drained"):
            sealed = out
    got = np.frombuffer(base64.b64decode(sealed["aggregate"]),
                        dtype="<f8")
    expected = oracle_aggregate(
        gf, N, cid, 0,
        [AsyncDelivery(user_id=u, staleness=0, update=v)
         for u, v in subs0],
        recovery={5},
    )
    np.testing.assert_array_equal(got, expected)

    # churn between drains: one join, one leave (the acceptance bar)
    status, joined = client.post(f"/cohorts/{cid}/members")
    assert status == 201 and joined["user_id"] == N
    status, left = client.delete(f"/cohorts/{cid}/members/1")
    assert status == 200 and left["num_users"] == N

    # drain 1 with mixed staleness against the re-keyed member set
    subs1 = [(0, 0, rng.normal(size=DIM)), (2, 1, rng.normal(size=DIM)),
             (3, 1, rng.normal(size=DIM)), (6, 0, rng.normal(size=DIM))]
    sealed = None
    for uid, dl, vec in subs1:
        status, out = submit(client, cid, uid, vec, download_round=dl)
        assert status == 200, out
        if out.get("drained"):
            sealed = out
    got = np.frombuffer(base64.b64decode(sealed["aggregate"]),
                        dtype="<f8")
    expected = oracle_aggregate(
        gf, N, cid, 1,
        [AsyncDelivery(user_id=u, staleness=1 - dl, update=v)
         for u, dl, v in subs1],
    )
    np.testing.assert_array_equal(got, expected)
    assert sealed["staleness"] == [1, 0, 0, 1]

    # the cohort status surfaces the buffered fields over HTTP
    status, body = client.get(f"/cohorts/{cid}")
    assert body["kind"] == "buffered"
    assert body["buffer_fill"] == 0
    assert body["drains"] == 2
    assert body["members"] == [0, 2, 3, 4, 5, 6]


class TestBufferedBitIdentity:
    def test_inline_transport(self, gf):
        service, control, server = make_daemon(gf)
        try:
            drive_buffered_acceptance(gf, Client(server.address))
        finally:
            server.stop()
            service.stop()

    def test_socket_transport(self, gf):
        worker = ShardWorkerServer().start()
        try:
            service, control, server = make_daemon(
                gf, transport=TransportKind.SOCKET,
                connect=(worker.address,),
            )
            try:
                client = Client(server.address)
                drive_buffered_acceptance(
                    gf,
                    _SpecClient(client, {"num_shards": 2}),
                )
            finally:
                server.stop()
                service.stop()
        finally:
            worker.stop()


class _SpecClient:
    """Client wrapper injecting extra spec fields into POST /cohorts."""

    def __init__(self, inner, extra_spec):
        self.inner = inner
        self.extra_spec = extra_spec

    def post(self, path, body=None):
        if path == "/cohorts":
            body = {**(body or {}), **self.extra_spec}
        return self.inner.post(path, body)

    def __getattr__(self, name):
        return getattr(self.inner, name)


class TestAsyncRoundHandles:
    def _sync_spec(self):
        return {"num_users": N, "model_dim": DIM, "pool_size": 3,
                "low_water": 1, "seed": 21}

    def test_async_round_matches_sync(self, gf):
        """Two identically-specced cohorts: one driven async, one sync —
        the polled handle result carries the same aggregate."""
        service, control, server = make_daemon(gf)
        try:
            client = Client(server.address)
            _, a = client.post("/cohorts", self._sync_spec())
            _, b = client.post("/cohorts", self._sync_spec())
            round_body = {"synthetic": {"seed": 4, "dropout_rate": 0.0}}

            status, handle = client.post(
                f"/cohorts/{a['cohort_id']}/rounds",
                {**round_body, "mode": "async"},
            )
            assert status == 202
            assert handle["state"] == "running" or handle["state"] == "done"
            poll_path = handle["poll"]

            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                status, polled = client.get(poll_path)
                assert status == 200
                if polled["state"] != "running":
                    break
                time.sleep(0.02)
            assert polled["state"] == "done", polled
            async_result = polled["result"]

            status, sync_result = client.post(
                f"/cohorts/{b['cohort_id']}/rounds", round_body
            )
            assert status == 200
            assert async_result["aggregate"] == sync_result["aggregate"]
            assert async_result["round"] == sync_result["round"] == 1
        finally:
            server.stop()
            service.stop()

    def test_unknown_handle_404(self, gf):
        service, control, server = make_daemon(gf)
        try:
            client = Client(server.address)
            _, a = client.post("/cohorts", self._sync_spec())
            status, body = client.get(
                f"/cohorts/{a['cohort_id']}/rounds/999"
            )
            assert status == 404
            assert body["error"]["type"] == "not-found"
        finally:
            server.stop()
            service.stop()

    def test_bad_mode_rejected(self, gf):
        with pytest.raises(SchemaError, match="mode"):
            RoundRequest.from_json(
                {"synthetic": {"seed": 1}, "mode": "deferred"}
            )


class TestErrorLanes:
    def test_submit_to_sync_cohort_409(self, gf):
        service, control, server = make_daemon(gf)
        try:
            client = Client(server.address)
            _, made = client.post("/cohorts", {
                "num_users": N, "model_dim": DIM, "pool_size": 2,
                "low_water": 1,
            })
            status, body = submit(
                client, made["cohort_id"], 0, np.zeros(DIM)
            )
            assert status == 409
            assert body["error"]["type"] == "conflict"
            status, body = client.post(
                f"/cohorts/{made['cohort_id']}/members"
            )
            assert status == 409
        finally:
            server.stop()
            service.stop()

    def test_departed_member_409_and_unknown_member_409(self, gf):
        service, control, server = make_daemon(gf)
        try:
            client = Client(server.address)
            _, made = client.post("/cohorts", buffered_spec())
            cid = made["cohort_id"]
            client.delete(f"/cohorts/{cid}/members/2")
            status, body = submit(client, cid, 2, np.zeros(DIM))
            assert status == 409 and "member 2" in body["error"]["message"]
            status, body = client.delete(f"/cohorts/{cid}/members/99")
            assert status == 409
        finally:
            server.stop()
            service.stop()

    def test_bad_spec_and_bad_payload_400(self, gf):
        service, control, server = make_daemon(gf)
        try:
            client = Client(server.address)
            # buffer_size out of range -> 400, not a cohort
            status, body = client.post(
                "/cohorts", buffered_spec(buffer_size=N + 1)
            )
            assert status == 400, body
            # short payload -> 400 validation
            _, made = client.post("/cohorts", buffered_spec())
            status, body = client.post(
                f"/cohorts/{made['cohort_id']}/updates",
                {"user_id": 0,
                 "update": encode_real_vector(np.zeros(DIM - 1))},
            )
            assert status == 400
            assert body["error"]["type"] == "validation"
            # integer-field payloads are not a buffered encoding
            status, body = client.post(
                f"/cohorts/{made['cohort_id']}/updates",
                {"user_id": 0,
                 "update": encode_vector(np.zeros(DIM, dtype=np.uint64),
                                         "u64", gf.q),
                 "encoding": "u64"},
            )
            assert status == 400
        finally:
            server.stop()
            service.stop()


class TestSchemas:
    def test_f64_round_trip(self):
        rng = np.random.default_rng(0)
        vec = rng.normal(size=DIM)
        out = decode_real_vector(encode_real_vector(vec), DIM, "update")
        np.testing.assert_array_equal(out, vec)

    def test_f64_rejects_wrong_length(self):
        with pytest.raises(SchemaError):
            decode_real_vector(
                encode_real_vector(np.zeros(DIM)), DIM + 1, "update"
            )

    def test_f64_rejects_non_finite(self):
        bad = np.zeros(DIM)
        bad[3] = np.inf
        with pytest.raises(SchemaError, match="finite"):
            decode_real_vector(encode_real_vector(bad), DIM, "update")

    def test_f64_rejects_garbage_base64(self):
        with pytest.raises(SchemaError):
            decode_real_vector("!!!not-base64!!!", DIM, "update")

    def test_submit_request_validation(self):
        ok = SubmitUpdateRequest.from_json(
            {"user_id": 3, "update": encode_real_vector(np.zeros(4)),
             "download_round": 2, "dropouts": [1, 5]}
        )
        assert ok.user_id == 3 and ok.download_round == 2
        assert ok.dropouts == (1, 5)
        np.testing.assert_array_equal(ok.decode(4), np.zeros(4))

        with pytest.raises(SchemaError, match="user_id"):
            SubmitUpdateRequest.from_json(
                {"update": encode_real_vector(np.zeros(4))}
            )
        with pytest.raises(SchemaError, match="encoding"):
            SubmitUpdateRequest.from_json(
                {"user_id": 0, "update": "AA==", "encoding": "u64"}
            )
        with pytest.raises(SchemaError, match="download_round"):
            SubmitUpdateRequest.from_json(
                {"user_id": 0, "update": "AA==", "download_round": -1}
            )
        with pytest.raises(SchemaError):
            SubmitUpdateRequest.from_json(
                {"user_id": 0, "update": "AA==", "unknown_field": 1}
            )
