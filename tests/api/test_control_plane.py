"""In-process HTTP tests for the control plane (the PR's acceptance bar).

* a cohort created via ``POST /cohorts`` completes a round
  **bit-identical** to the same config driven through the synchronous
  :class:`AggregationService` path — on inline AND socket transports;
* ``POST /drain`` with a round in flight returns that round's result to
  its caller, then the drain summary, and the server stops with zero
  leaked threads;
* every error lane answers with its status and a JSON body, never a
  traceback.
"""

import base64
import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.field import FiniteField
from repro.service import (
    AggregationService,
    RefillMode,
    ServiceConfig,
    ShardWorkerServer,
    TransportKind,
)
from repro.service.api import ControlPlane, ControlPlaneServer, encode_vector

N, DIM = 6, 96


@pytest.fixture(scope="module")
def gf():
    return FiniteField()


def make_daemon(gf, **config_kwargs):
    """An empty started daemon: service + control + HTTP listener."""
    config = ServiceConfig(
        refill_mode=RefillMode.BACKGROUND, **config_kwargs
    )
    service = AggregationService(config, gf=gf, build_cohorts=False).start()
    control = ControlPlane(service)
    server = ControlPlaneServer(control).start()
    return service, control, server


class Client:
    """Tiny urllib JSON client pinned to one daemon."""

    def __init__(self, address):
        self.base = f"http://{address}"

    def request(self, method, path, body=None, timeout=30):
        data = None if body is None else json.dumps(body).encode()
        req = urllib.request.Request(
            self.base + path, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                ctype = resp.headers.get("Content-Type", "")
                raw = resp.read()
                if ctype.startswith("application/json"):
                    return resp.status, json.loads(raw)
                return resp.status, raw.decode()
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def get(self, path):
        return self.request("GET", path)

    def post(self, path, body=None):
        return self.request("POST", path, body or {})

    def delete(self, path):
        return self.request("DELETE", path)


def spec_body(**overrides):
    body = {"num_users": N, "model_dim": DIM, "pool_size": 3,
            "low_water": 1}
    body.update(overrides)
    return body


def reference_round(gf, updates, dropouts, *, seed=0, **spec_overrides):
    """The same cohort driven through the synchronous library path."""
    body = spec_body(**spec_overrides)
    config = ServiceConfig(
        num_cohorts=1,
        num_users=body["num_users"],
        model_dim=body["model_dim"],
        pool_size=body["pool_size"],
        low_water=body["low_water"],
        num_shards=body.get("num_shards", 1),
        transport=TransportKind(body.get("transport", "inline")),
        connect=tuple(body["connect"]) if "connect" in body else None,
        seed=seed,
    )
    svc = AggregationService(config, gf=gf).start()
    try:
        return svc.run_round(0, dict(updates), set(dropouts))
    finally:
        svc.stop()


def drive_round_over_http(gf, client, updates, dropouts, encoding="packed"):
    payload = {
        "updates": {
            str(uid): encode_vector(vec, encoding, gf.q)
            for uid, vec in updates.items()
        },
        "dropouts": sorted(dropouts),
        "encoding": encoding,
    }
    return client.post("/cohorts/0/rounds", payload)


class TestBitIdentity:
    """POST /cohorts + POST rounds == the synchronous library path."""

    @pytest.mark.parametrize("encoding", ["u64", "packed"])
    def test_inline_transport(self, gf, encoding):
        rng = np.random.default_rng(5)
        updates = {i: gf.random(DIM, rng) for i in range(N)}
        dropouts = {1, 4}
        expected = reference_round(gf, updates, dropouts)

        service, control, server = make_daemon(gf)
        try:
            client = Client(server.address)
            status, created = client.post("/cohorts", spec_body())
            assert status == 201 and created["cohort_id"] == 0
            status, round_body = drive_round_over_http(
                gf, client, updates, dropouts, encoding
            )
            assert status == 200
            assert round_body["encoding"] == encoding
            assert round_body["survivors"] == sorted(expected.survivors)
            from repro.service.api import decode_vector
            aggregate = decode_vector(
                round_body["aggregate"], encoding, gf.q, DIM, "aggregate"
            )
            assert np.array_equal(aggregate, expected.aggregate)
        finally:
            control.drain()
            server.stop()

    def test_socket_transport(self, gf):
        rng = np.random.default_rng(6)
        updates = {i: gf.random(DIM, rng) for i in range(N)}
        dropouts = {0}
        with ShardWorkerServer() as worker:
            overrides = dict(
                transport="socket", num_shards=2,
                connect=[worker.address],
            )
            expected = reference_round(gf, updates, dropouts, **overrides)
            service, control, server = make_daemon(gf)
            try:
                client = Client(server.address)
                status, created = client.post(
                    "/cohorts", spec_body(**overrides)
                )
                assert status == 201
                assert created["spec"]["transport"] == "socket"
                status, round_body = drive_round_over_http(
                    gf, client, updates, dropouts
                )
                assert status == 200
                from repro.service.api import decode_vector
                aggregate = decode_vector(
                    round_body["aggregate"], "packed", gf.q, DIM,
                    "aggregate",
                )
                assert round_body["survivors"] == sorted(expected.survivors)
                assert np.array_equal(aggregate, expected.aggregate)
            finally:
                control.drain()
                server.stop()

    def test_synthetic_round_matches_library_synthetic(self, gf):
        """A synthetic HTTP round equals run_synthetic at equal seeds."""
        config = ServiceConfig(
            num_cohorts=1, num_users=N, model_dim=DIM, pool_size=3
        )
        svc = AggregationService(config, gf=gf).start()
        try:
            reference = svc.run_synthetic(
                rounds=1, dropout_rate=0.3,
                rng=np.random.default_rng(17),
            )
        finally:
            svc.stop()

        service, control, server = make_daemon(gf)
        try:
            client = Client(server.address)
            client.post("/cohorts", spec_body())
            status, body = client.post(
                "/cohorts/0/rounds",
                {"synthetic": {"seed": 17, "dropout_rate": 0.3},
                 "encoding": "u64"},
            )
            assert status == 200
            from repro.service.api import decode_vector
            aggregate = decode_vector(
                body["aggregate"], "u64", gf.q, DIM, "aggregate"
            )
            ref = reference[0][0]  # first sweep, cohort 0
            assert body["survivors"] == sorted(ref.survivors)
            assert np.array_equal(aggregate, ref.aggregate)
        finally:
            control.drain()
            server.stop()


class TestLifecycleAndErrors:
    def test_error_lanes(self, gf):
        service, control, server = make_daemon(gf)
        try:
            client = Client(server.address)
            # 404: unknown route and unknown cohort
            assert client.get("/nope")[0] == 404
            status, body = client.get("/cohorts/7")
            assert status == 404 and body["error"]["type"] == "not-found"
            # 405: wrong method on a real route
            status, body = client.delete("/cohorts")
            assert status == 405
            assert "GET" in body["error"]["message"]
            # 400 validation with field attribution
            status, body = client.post("/cohorts", {"num_users": "six"})
            assert status == 400
            assert body["error"]["type"] == "validation"
            assert body["error"]["field"] == "num_users"
            # 400 invalid-spec from the config layer
            status, body = client.post("/cohorts", spec_body(num_users=1))
            assert status == 400
            assert body["error"]["type"] == "invalid-spec"
            # 400 invalid JSON body
            req = urllib.request.Request(
                client.base + "/cohorts", data=b"not json", method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(req, timeout=30)
            assert excinfo.value.code == 400
            # 409: round against a cohort that does not admit it
            client.post("/cohorts", spec_body())
            status, _ = client.post(
                "/cohorts/0/rounds",
                {"synthetic": {"seed": 0, "dropout_rate": 0.9}},
            )
            assert status == 409  # too many dropouts -> ProtocolError
        finally:
            control.drain()
            server.stop()

    def test_delete_cohort_leaves_neighbours_serving(self, gf):
        service, control, server = make_daemon(gf)
        try:
            client = Client(server.address)
            client.post("/cohorts", spec_body())
            client.post("/cohorts", spec_body())
            status, body = client.delete("/cohorts/0")
            assert status == 200 and body == {"cohort_id": 0, "closed": True}
            # deleted cohort is gone; neighbour still serves rounds
            assert client.get("/cohorts/0")[0] == 404
            status, _ = client.post(
                "/cohorts/1/rounds", {"synthetic": {"seed": 1}}
            )
            assert status == 200
            status, listing = client.get("/cohorts")
            assert [c["cohort_id"] for c in listing["cohorts"]] == [1]
            # a later create never recycles the retired id
            status, created = client.post("/cohorts", spec_body())
            assert created["cohort_id"] == 2
        finally:
            control.drain()
            server.stop()

    def test_healthz_and_metrics_content_type(self, gf):
        service, control, server = make_daemon(gf)
        try:
            client = Client(server.address)
            status, body = client.get("/healthz")
            assert status == 200 and body["status"] == "ok"
            req = urllib.request.Request(client.base + "/metrics")
            with urllib.request.urlopen(req, timeout=30) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"].startswith(
                    "text/plain; version=0.0.4"
                )
                text = resp.read().decode()
            assert "# TYPE repro_uptime_seconds gauge" in text
        finally:
            control.drain()
            server.stop()


class TestDrain:
    def test_drain_with_round_in_flight(self, gf, monkeypatch):
        """The acceptance scenario: a round is mid-flight when /drain
        lands.  The round's caller still gets its 200 + aggregate, the
        drain summary counts it, the process is left thread-clean."""
        before = set(threading.enumerate())
        service, control, server = make_daemon(gf)
        client = Client(server.address)
        client.post("/cohorts", spec_body())

        release = threading.Event()
        entered = threading.Event()
        cohort = service.cohorts[0]
        original = cohort.run_round

        def slow_round(*args, **kwargs):
            entered.set()
            assert release.wait(timeout=30)
            return original(*args, **kwargs)

        monkeypatch.setattr(cohort, "run_round", slow_round)

        round_result = {}

        def submit():
            round_result["response"] = client.post(
                "/cohorts/0/rounds", {"synthetic": {"seed": 2}}
            )

        t = threading.Thread(target=submit)
        t.start()
        assert entered.wait(timeout=30)

        drain_result = {}

        def drain():
            drain_result["response"] = client.post("/drain")

        td = threading.Thread(target=drain)
        td.start()
        # drain must wait for the in-flight round, not race past it
        time.sleep(0.2)
        assert not control._drained.is_set()
        # ...and must already refuse new work
        status, body = client.post(
            "/cohorts/0/rounds", {"synthetic": {"seed": 3}}
        )
        assert status == 409 and "draining" in body["error"]["message"]
        assert client.post("/cohorts", spec_body())[0] == 409

        release.set()
        t.join(timeout=30)
        td.join(timeout=30)
        status, body = round_result["response"]
        assert status == 200 and body["round"] == 1
        status, summary = drain_result["response"]
        assert status == 200
        assert summary["drained"] is True
        assert summary["total_rounds"] == 1

        # the drain stopped the listener; serve_until returns immediately
        server.serve_until(max_seconds=5)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            leaked = [
                th for th in set(threading.enumerate()) - before
                if th.is_alive()
            ]
            if not leaked:
                break
            time.sleep(0.05)
        assert not leaked, f"leaked threads: {leaked}"

    def test_drain_is_idempotent(self, gf):
        service, control, server = make_daemon(gf)
        try:
            client = Client(server.address)
            first = control.drain()
            second = control.drain()
            assert first == second
            assert control.draining
        finally:
            server.stop()

    def test_max_seconds_self_drains(self, gf):
        service, control, server = make_daemon(gf)
        t0 = time.monotonic()
        server.serve_until(max_seconds=0.3)
        assert time.monotonic() - t0 < 10
        assert control.draining
