"""Tests for the CLI."""

import pytest

from repro.cli import main


class TestRound:
    def test_lightsecagg_round(self, capsys):
        assert main(["round", "-n", "8", "-d", "64", "--drop", "2"]) == 0
        out = capsys.readouterr().out
        assert "aggregate correct: True" in out
        assert "recovery" in out

    def test_secagg_round(self, capsys):
        assert main(["round", "--protocol", "secagg", "-n", "5",
                     "-d", "32", "--drop", "1"]) == 0
        out = capsys.readouterr().out
        assert "aggregate correct: True" in out
        assert "server PRG elements" in out

    def test_secagg_plus_round(self, capsys):
        assert main(["round", "--protocol", "secagg+", "-n", "10",
                     "-d", "32"]) == 0
        assert "aggregate correct: True" in capsys.readouterr().out


class TestSimulate:
    def test_simulate(self, capsys):
        assert main(["simulate", "--protocol", "secagg", "-n", "100",
                     "-d", "100000", "-p", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "recovery" in out and "total" in out


class TestReports:
    def test_gains(self, capsys):
        assert main(["gains", "-n", "100"]) == 0
        out = capsys.readouterr().out
        assert "cnn_femnist" in out and "x" in out

    def test_breakdown(self, capsys):
        assert main(["breakdown", "-n", "50"]) == 0
        out = capsys.readouterr().out
        assert "lightsecagg" in out and "p=0.5" in out

    def test_complexity(self, capsys):
        assert main(["complexity", "-n", "100", "-d", "10000"]) == 0
        out = capsys.readouterr().out
        assert "reconstruction_server" in out

    def test_storage(self, capsys):
        assert main(["storage", "-n", "15"]) == 0
        out = capsys.readouterr().out
        assert "randomness ratio" in out


class TestService:
    def test_service_background_sharded(self, capsys):
        assert main(["service", "-n", "8", "-d", "128", "-c", "2",
                     "-s", "2", "-r", "4", "--pool", "3", "--low-water", "1",
                     "--refill", "background", "--settle"]) == 0
        out = capsys.readouterr().out
        assert "rounds completed : 8" in out
        assert "online stalls    : 0" in out
        assert "background refills" in out

    def test_service_sync_stalls_and_json(self, capsys):
        import json

        assert main(["service", "-n", "8", "-d", "64", "-c", "1",
                     "-r", "7", "--pool", "3", "--refill", "sync",
                     "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["metrics"]["total_rounds"] == 7
        # Warm pool of 3 drains after round 3; round 4 and 7 stall.
        assert snap["metrics"]["total_stalls"] >= 1
        assert snap["refiller"] is None

    def test_service_rejects_bad_geometry(self):
        with pytest.raises(SystemExit):
            main(["service", "--refill", "eager"])

    def test_service_over_socket_worker(self, capsys):
        """End-to-end over TCP: an in-process worker host serves a
        --transport socket service run."""
        from repro.service import ShardWorkerServer

        with ShardWorkerServer() as server:
            assert main(["service", "-n", "8", "-d", "64", "-c", "2",
                         "-s", "2", "-r", "3", "--pool", "3",
                         "--low-water", "1", "--refill", "background",
                         "--transport", "socket",
                         "--connect", server.address]) == 0
        out = capsys.readouterr().out
        assert "rounds completed : 6" in out
        assert "transport socket" in out

    def test_service_socket_requires_connect(self):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError, match="connect"):
            main(["service", "--transport", "socket"])


class TestShardWorker:
    def test_shard_worker_serves_until_max_seconds(self, capsys):
        assert main(["shard-worker", "--listen", "127.0.0.1:0",
                     "--max-seconds", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "listening on 127.0.0.1:" in out

    def test_shard_worker_rejects_bad_listen_address(self):
        with pytest.raises(SystemExit):
            main(["shard-worker", "--listen", "nowhere"])


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            main(["round", "--protocol", "turboagg"])
