"""Wire-level contracts for trace propagation.

The tracing fields are trailing-optional on both shard-round messages:
``ShardRoundRequest.trace_id`` is omitted when zero and
``ShardRoundResult.worker_span`` is omitted when absent, so every frame
produced with tracing disabled is **byte-identical** to the pre-tracing
wire format (pinned here against a golden hex dump).  The request's
frame end is shared by two optional tails — a shm result ref and the
trace id — disambiguated by size: an encoded shm ref is never exactly
8 bytes, so 8 remaining bytes can only be a bare trace id.
"""

import numpy as np
import pytest

from repro.wire.format import ShmArrayRef
from repro.wire.messages import (
    CAP_PACKED_ARRAYS,
    CAP_ROUND_TRACING,
    SUPPORTED_CAPABILITIES,
    SessionStats,
    ShardRoundRequest,
    ShardRoundResult,
    WorkerSpan,
    decode_message,
    encode_message,
)

TRACE_ID = 0xDEADBEEF

#: ``encode_message(make_request(), request_id=42)`` before tracing
#: existed.  An untraced (trace_id == 0) encoder must still produce
#: exactly these bytes — old workers parse them, and rolling upgrades
#: depend on the formats being indistinguishable.
GOLDEN_UNTRACED_FRAME_HEX = (
    "4c5701012a000000000000007800000001000000070000000000000001010200"
    "0000000000000000000002000000020202000000000000000300000000000000"
    "0000000000000000010000000000000002000000000000000300000000000000"
    "0400000000000000050000000000000001010100000000000000010000000101"
    "0000000000000000"
)


def make_request(**overrides) -> ShardRoundRequest:
    request = ShardRoundRequest.from_updates(
        shard_id=1,
        round_id=7,
        updates={
            0: np.arange(3, dtype=np.uint64),
            2: np.arange(3, 6, dtype=np.uint64),
        },
        dropouts={1},
        offline_dropouts=set(),
    )
    for name, value in overrides.items():
        setattr(request, name, value)
    return request


def make_worker_span(trace_id=TRACE_ID) -> WorkerSpan:
    return WorkerSpan(
        trace_id=trace_id,
        pid=4321,
        host="shard-host-07",
        queue_wait_seconds=0.0125,
        compute_start_unix=1754650000.25,
        compute_seconds=0.75,
    )


def make_result(worker_span=None) -> ShardRoundResult:
    return ShardRoundResult(
        shard_id=1,
        round_id=7,
        aggregate=np.arange(4, dtype=np.uint64),
        survivors=[0, 2],
        transcript_table=np.arange(10, dtype=np.int64).reshape(2, 5),
        metrics_counts=(3, 17, 5),
        metrics_extra={"alpha": 0.5},
        stalled=False,
        pool_level=2,
        stats=SessionStats(),
        worker_span=worker_span,
    )


class TestCapabilities:
    def test_tracing_capability_is_its_own_bit(self):
        assert CAP_ROUND_TRACING == 0x2
        assert CAP_ROUND_TRACING & CAP_PACKED_ARRAYS == 0
        assert SUPPORTED_CAPABILITIES & CAP_ROUND_TRACING
        assert SUPPORTED_CAPABILITIES & CAP_PACKED_ARRAYS


class TestRequestTraceId:
    def test_untraced_frame_matches_pre_tracing_golden(self):
        frame = encode_message(make_request(), request_id=42)
        assert frame.hex() == GOLDEN_UNTRACED_FRAME_HEX

    def test_traced_frame_is_golden_plus_exactly_eight_bytes(self):
        untraced = encode_message(make_request(), request_id=42)
        traced = encode_message(
            make_request(trace_id=TRACE_ID), request_id=42
        )
        assert len(traced) == len(untraced) + 8
        assert traced.endswith((TRACE_ID).to_bytes(8, "little"))

    def test_trace_id_round_trips(self):
        frame = encode_message(make_request(trace_id=TRACE_ID))
        _, back = decode_message(frame)
        assert back.trace_id == TRACE_ID
        assert back.shard_id == 1 and back.round_id == 7
        assert back.user_ids == [0, 2]
        np.testing.assert_array_equal(
            back.updates,
            np.array([[0, 1, 2], [3, 4, 5]], dtype=np.uint64),
        )
        assert back.dropouts == {1}

    def test_zero_trace_id_decodes_as_untraced(self):
        _, back = decode_message(encode_message(make_request()))
        assert back.trace_id == 0
        assert back.result_ref is None

    def test_result_ref_and_trace_id_share_the_tail(self):
        ref = ShmArrayRef(name="seg-a", offset=128, shape=(3,))
        for trace_id in (0, TRACE_ID):
            request = make_request(result_ref=ref, trace_id=trace_id)
            _, back = decode_message(encode_message(request))
            assert back.result_ref == ref
            assert back.trace_id == trace_id

    def test_packed_request_keeps_the_trace_id(self):
        request = make_request(packed=True, trace_id=TRACE_ID)
        _, back = decode_message(encode_message(request))
        assert back.packed and back.trace_id == TRACE_ID
        np.testing.assert_array_equal(
            back.updates,
            np.array([[0, 1, 2], [3, 4, 5]], dtype=np.uint64),
        )


class TestResultWorkerSpan:
    def test_worker_span_round_trips_exactly(self):
        span = make_worker_span()
        frame = encode_message(make_result(worker_span=span))
        _, back = decode_message(frame)
        assert back.worker_span == span  # dataclass equality, all fields
        # floats must survive bit-exactly (f64 on the wire, no text)
        assert back.worker_span.compute_start_unix == 1754650000.25
        assert back.worker_span.queue_wait_seconds == 0.0125

    def test_absent_span_is_absent_and_adds_no_bytes(self):
        bare = encode_message(make_result())
        spanned = encode_message(make_result(worker_span=make_worker_span()))
        _, back = decode_message(bare)
        assert back.worker_span is None
        assert len(spanned) > len(bare)

    def test_result_payload_identical_without_span(self):
        # The untraced result frame must not change shape because the
        # WorkerSpan field exists: two results differing only in
        # worker_span=None encode to the same bytes.
        a = encode_message(make_result(), request_id=9)
        b = encode_message(make_result(worker_span=None), request_id=9)
        assert a == b

    def test_rest_of_result_unharmed_by_span_tail(self):
        _, back = decode_message(
            encode_message(make_result(worker_span=make_worker_span()))
        )
        np.testing.assert_array_equal(
            back.aggregate, np.arange(4, dtype=np.uint64)
        )
        assert back.survivors == [0, 2]
        assert back.metrics_counts == (3, 17, 5)
        assert back.metrics_extra == {"alpha": 0.5}
        assert back.pool_level == 2


def test_empty_host_worker_span_round_trips():
    span = make_worker_span()
    span.host = ""
    _, back = decode_message(encode_message(make_result(worker_span=span)))
    assert back.worker_span.host == ""


def test_trace_id_full_u64_range():
    top_bit = 1 << 63
    _, back = decode_message(
        encode_message(make_request(trace_id=top_bit | 5))
    )
    assert back.trace_id == top_bit | 5
