"""Unit tests for the tracing core: spans, traces, the Tracer, rendering.

Pins the observability layer's contracts:

* nesting — :func:`repro.obs.span` parents under the innermost open
  span of the thread's active trace, and closes/pops on exit even when
  the body raises (tagging the error);
* zero cost when disabled — with no active trace, :func:`span` returns
  one shared no-op context (no allocation per instrumented phase);
* the Tracer's bounded ring (eviction drops both the ring entry and the
  by-id index), slow-round detection against the trailing per-phase
  median, per-phase histogram export into :class:`ServiceMetrics`, and
  the structured JSON event log;
* JSON round-trips (``to_json``/``from_json``) and the ASCII renderer.
"""

import json
import threading
import time

import pytest

from repro.obs import (
    PHASES,
    RoundTrace,
    Span,
    Tracer,
    current_trace,
    phase_name,
    render_trace,
    span,
)
from repro.obs.trace import _NULL_SPAN
from repro.service.metrics import ServiceMetrics


def make_trace(tracer, cohort_id=0, round_index=0, phases=()):
    """Finish one trace whose top-level spans have the given durations.

    ``phases`` is a sequence of ``(name, duration_seconds)``; spans get
    synthetic timestamps so tests control the slow detector's inputs.
    """
    trace = tracer.start_round(cohort_id, round_index)
    t0 = trace.root.start
    for name, duration in phases:
        trace.add_span(Span(name, start=t0, end=t0 + duration))
    tracer.finish(trace)
    return trace


class TestSpanContext:
    def test_spans_nest_under_the_innermost_open_span(self):
        tracer = Tracer()
        trace = tracer.start_round(3, 7)
        with span("offline_refill") as outer:
            with span("mask_encode", rounds="4") as inner:
                pass
        tracer.finish(trace)
        assert [s.name for s in trace.root.children] == ["offline_refill"]
        assert outer.children == [inner]
        assert inner.tags == {"rounds": "4"}
        assert inner.end is not None and outer.end >= inner.end

    def test_span_tags_error_class_and_still_pops(self):
        tracer = Tracer()
        trace = tracer.start_round(0, 0)
        with pytest.raises(ValueError):
            with span("collect"):
                raise ValueError("boom")
        # the stack unwound: a new span parents at the root again
        with span("reconstruct"):
            pass
        tracer.finish(trace)
        names = [s.name for s in trace.root.children]
        assert names == ["collect", "reconstruct"]
        assert trace.root.children[0].tags["error"] == "ValueError"

    def test_no_active_trace_returns_the_shared_null_context(self):
        assert current_trace() is None
        assert span("collect") is _NULL_SPAN
        assert span("reconstruct", tag="x") is _NULL_SPAN
        with span("collect") as s:
            assert s is None

    def test_disabled_tracer_opens_no_trace(self):
        tracer = Tracer(enabled=False)
        assert tracer.start_round(0, 0) is None
        assert current_trace() is None
        tracer.finish(None)  # no-op, no error
        assert tracer.recent() == []

    def test_trace_is_thread_local(self):
        tracer = Tracer()
        trace = tracer.start_round(0, 0)
        seen = []
        t = threading.Thread(target=lambda: seen.append(current_trace()))
        t.start()
        t.join()
        assert seen == [None]
        assert current_trace() is trace
        tracer.finish(trace)
        assert current_trace() is None

    def test_finish_closes_spans_left_open(self):
        tracer = Tracer()
        trace = tracer.start_round(0, 0)
        ctx = span("collect")
        ctx.__enter__()  # never exited — e.g. an exception path
        tracer.finish(trace, error=RuntimeError("round failed"))
        assert trace.root.children[0].end is not None
        assert trace.root.end is not None
        assert trace.root.tags["error"] == "RuntimeError"
        assert trace._stack == []


class TestRoundTrace:
    def test_phase_durations_group_indexed_spans(self):
        tracer = Tracer()
        trace = make_trace(
            tracer,
            phases=[
                ("shard_compute[0]", 0.25),
                ("shard_compute[1]", 0.5),
                ("reconstruct", 0.125),
            ],
        )
        durations = trace.phase_durations()
        assert durations["shard_compute"] == pytest.approx(0.75)
        assert durations["reconstruct"] == pytest.approx(0.125)

    def test_phase_name_strips_the_index(self):
        assert phase_name("shard_compute[3]") == "shard_compute"
        assert phase_name("collect") == "collect"
        assert all(phase_name(p) == p for p in PHASES)

    def test_json_round_trip(self):
        tracer = Tracer()
        trace = tracer.start_round(5, 9)
        with span("collect", users="8"):
            with span("mask_encode"):
                pass
        tracer.finish(trace)
        data = json.loads(json.dumps(trace.to_json()))
        back = RoundTrace.from_json(data)
        assert back.trace_id == trace.trace_id
        assert back.cohort_id == 5 and back.round_index == 9
        assert [s.name for s in back.root.walk()] == [
            s.name for s in trace.root.walk()
        ]
        for a, b in zip(back.root.walk(), trace.root.walk()):
            assert a.tags == b.tags
            assert a.duration == pytest.approx(b.duration, abs=1e-9)

    def test_summary_counts_spans_below_the_root(self):
        tracer = Tracer()
        trace = make_trace(
            tracer, cohort_id=2, round_index=4,
            phases=[("collect", 0.001), ("reconstruct", 0.002)],
        )
        summary = trace.summary()
        assert summary["trace_id"] == trace.trace_id
        assert summary["cohort_id"] == 2 and summary["round_index"] == 4
        assert summary["spans"] == 2
        assert summary["slow"] is False and summary["slow_phase"] is None


class TestTracerRing:
    def test_ring_evicts_oldest_and_its_id(self):
        tracer = Tracer(capacity=2)
        first = make_trace(tracer, round_index=0)
        second = make_trace(tracer, round_index=1)
        third = make_trace(tracer, round_index=2)
        assert tracer.retained == 2
        assert tracer.get(first.trace_id) is None
        assert tracer.get(second.trace_id) is second
        assert tracer.get(third.trace_id) is third

    def test_recent_is_newest_first_and_filters_by_cohort(self):
        tracer = Tracer()
        a = make_trace(tracer, cohort_id=0, round_index=0)
        b = make_trace(tracer, cohort_id=1, round_index=0)
        c = make_trace(tracer, cohort_id=0, round_index=1)
        assert tracer.recent() == [c, b, a]
        assert tracer.recent(cohort_id=0) == [c, a]
        assert tracer.recent(cohort_id=0, limit=1) == [c]
        assert tracer.recent(cohort_id=9) == []

    def test_trace_ids_are_unique_and_nonzero(self):
        # zero is the wire's "no trace" sentinel; an id of 0 would make a
        # traced request look untraced.
        tracer = Tracer()
        ids = {make_trace(tracer).trace_id for _ in range(16)}
        assert len(ids) == 16
        assert 0 not in ids

    def test_capacity_and_slow_factor_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)
        with pytest.raises(ValueError):
            Tracer(slow_factor=0.0)


class TestSlowDetection:
    def test_outlier_round_is_flagged_against_trailing_median(self):
        tracer = Tracer(slow_factor=5.0, slow_min_samples=3)
        for r in range(4):
            trace = make_trace(
                tracer, round_index=r, phases=[("shard_compute[0]", 0.01)]
            )
            assert not trace.slow
        slow = make_trace(
            tracer, round_index=4, phases=[("shard_compute[0]", 0.2)]
        )
        assert slow.slow and slow.slow_phase == "shard_compute"
        assert tracer.slow_rounds == 1

    def test_no_flag_before_min_samples(self):
        tracer = Tracer(slow_factor=5.0, slow_min_samples=5)
        for r in range(4):
            duration = 0.01 if r < 3 else 10.0  # huge, but too few samples
            trace = make_trace(
                tracer, round_index=r, phases=[("collect", duration)]
            )
            assert not trace.slow

    def test_windows_are_per_cohort(self):
        tracer = Tracer(slow_factor=5.0, slow_min_samples=3)
        for r in range(4):
            make_trace(tracer, cohort_id=0, round_index=r,
                       phases=[("collect", 0.01)])
        # cohort 1 has no history: its first big round is not slow
        other = make_trace(tracer, cohort_id=1, round_index=0,
                           phases=[("collect", 0.2)])
        assert not other.slow

    def test_slow_round_still_feeds_the_window(self):
        tracer = Tracer(slow_factor=5.0, slow_min_samples=3, slow_window=4)
        for r in range(4):
            make_trace(tracer, round_index=r, phases=[("collect", 0.01)])
        make_trace(tracer, round_index=4, phases=[("collect", 1.0)])
        # after the window fills with 1.0s samples the level shift is the
        # new normal and stops being flagged
        for r in range(5, 9):
            make_trace(tracer, round_index=r, phases=[("collect", 1.0)])
        final = make_trace(tracer, round_index=9, phases=[("collect", 1.0)])
        assert not final.slow


class TestMetricsExport:
    def test_top_level_spans_feed_phase_histograms(self):
        metrics = ServiceMetrics()
        tracer = Tracer(metrics=metrics)
        make_trace(
            tracer,
            phases=[
                ("shard_compute[0]", 0.02),
                ("shard_compute[1]", 0.03),
                ("reconstruct", 0.004),
            ],
        )
        phases = metrics.snapshot()["phases"]
        assert phases["shard_compute"]["count"] == 2
        assert phases["shard_compute"]["seconds"] == pytest.approx(0.05)
        assert phases["reconstruct"]["count"] == 1
        text = metrics.render_prometheus()
        assert 'repro_phase_latency_seconds_count{phase="shard_compute"} 2' \
            in text


class TestEventLog:
    def test_one_json_line_per_span_root_carries_slow_flag(self, tmp_path):
        path = tmp_path / "events.jsonl"
        tracer = Tracer()
        tracer.set_event_log(str(path))
        trace = tracer.start_round(1, 2)
        with span("collect"):
            with span("mask_encode"):
                pass
        tracer.finish(trace)
        tracer.close()
        events = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert len(events) == 3  # root + 2 spans
        assert {e["span"] for e in events} == {
            "round", "collect", "mask_encode"
        }
        for e in events:
            assert e["event"] == "span"
            assert e["trace_id"] == trace.trace_id
            assert e["cohort_id"] == 1 and e["round_index"] == 2
            assert e["duration_seconds"] >= 0
        root_events = [e for e in events if e["span"] == "round"]
        assert root_events[0]["slow"] is False
        assert root_events[0]["slow_phase"] is None

    def test_log_appends_across_traces_and_closes_idempotently(
        self, tmp_path
    ):
        path = tmp_path / "events.jsonl"
        tracer = Tracer()
        tracer.set_event_log(str(path))
        make_trace(tracer, phases=[("collect", 0.001)])
        make_trace(tracer, phases=[("collect", 0.001)])
        tracer.close()
        tracer.close()  # idempotent
        assert len(path.read_text().splitlines()) == 4
        # with the log closed, finishing more traces is fine and silent
        make_trace(tracer, phases=[("collect", 0.001)])
        assert len(path.read_text().splitlines()) == 4


class TestRender:
    def make_fixed_trace(self):
        trace = RoundTrace(42, 1, 3)
        t0 = trace.root.start
        compute = Span(
            "shard_compute[0]", start=t0 + 0.01, end=t0 + 0.05,
            tags={"pid": "999", "host": "worker-a", "transport": "socket"},
        )
        compute.children.append(
            Span("queue_wait", start=t0 + 0.01, end=t0 + 0.02)
        )
        trace.add_span(Span("collect", start=t0, end=t0 + 0.01))
        trace.add_span(compute)
        trace.root.close(t0 + 0.1)
        return trace

    def test_render_shows_every_span_with_bars_and_tags(self):
        text = render_trace(self.make_fixed_trace(), width=40)
        lines = text.splitlines()
        assert lines[0].startswith("trace 42  cohort 1  round 3")
        assert "total 100.00 ms" in lines[0]
        for name in ("round", "collect", "shard_compute[0]", "queue_wait"):
            assert any(name in line for line in lines[1:]), name
        compute_line = next(l for l in lines if "shard_compute[0]" in l)
        assert "pid=999" in compute_line
        assert "host=worker-a" in compute_line
        assert "#" in compute_line

    def test_render_accepts_the_json_form_identically(self):
        trace = self.make_fixed_trace()
        assert render_trace(trace.to_json()) == render_trace(trace)

    def test_slow_marker_in_header(self):
        trace = self.make_fixed_trace()
        trace.slow = True
        trace.slow_phase = "shard_compute"
        assert "[SLOW: shard_compute]" in render_trace(trace).splitlines()[0]

    def test_zero_duration_trace_renders(self):
        trace = RoundTrace(7, 0, 0)
        trace.root.close(trace.root.start)  # total == 0
        text = render_trace(trace)
        assert "trace 7" in text


class TestTraceRoundContext:
    def test_context_manager_form(self):
        tracer = Tracer()
        with tracer.trace_round(0, 0) as trace:
            with span("collect"):
                pass
        assert current_trace() is None
        assert tracer.get(trace.trace_id) is trace
        assert [s.name for s in trace.root.children] == ["collect"]

    def test_context_manager_records_errors(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.trace_round(0, 0) as trace:
                raise RuntimeError("round failed")
        assert trace.root.tags["error"] == "RuntimeError"
        assert tracer.retained == 1


def test_span_timestamps_are_wall_clock():
    # Renderers and cross-process stitching align spans on unix time.
    tracer = Tracer()
    before = time.time()
    trace = tracer.start_round(0, 0)
    tracer.finish(trace)
    assert before - 1 <= trace.root.start <= time.time() + 1
