"""``repro trace``: the Fig-5-style ASCII diagram CLI, file and HTTP.

The command renders a captured trace from a JSON file, a direct
``GET /traces/{id}`` URL, or a ``GET /cohorts/{id}/traces`` listing URL
(following the newest summary) — plus its error lanes, which must exit
with a message, never a traceback.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.field import FiniteField
from repro.obs import RoundTrace, Span, Tracer
from repro.service import AggregationService, RefillMode, ServiceConfig
from repro.service.api import ControlPlane, ControlPlaneServer, encode_vector

N, DIM = 6, 32


def fixed_trace_json():
    tracer = Tracer()
    trace = tracer.start_round(2, 5)
    t0 = trace.root.start
    trace.add_span(Span("collect", start=t0, end=t0 + 0.002,
                        tags={"users": "6"}))
    trace.add_span(Span(
        "shard_compute[0]", start=t0 + 0.002, end=t0 + 0.03,
        tags={"pid": "777", "host": "wk-1", "transport": "socket"},
    ))
    tracer.finish(trace)
    return trace.to_json()


class TestTraceFromFile:
    def test_renders_diagram(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(fixed_trace_json()))
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "cohort 2  round 5" in out
        assert "shard_compute[0]" in out
        assert "pid=777" in out and "host=wk-1" in out
        assert "#" in out

    def test_width_flag(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(fixed_trace_json()))
        assert main(["trace", str(path), "--width", "24"]) == 0
        bars = [
            line for line in capsys.readouterr().out.splitlines()
            if "|" in line
        ]
        assert bars and all(
            len(line.split("|")[1]) == 24 for line in bars
        )

    def test_missing_file_exits_with_message(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["trace", str(tmp_path / "nope.json")])

    def test_invalid_json_exits_with_message(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["trace", str(path)])

    def test_non_trace_json_exits_with_message(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"traces": []}))
        with pytest.raises(SystemExit, match="does not look like"):
            main(["trace", str(path)])


class TestTraceOverHttp:
    @pytest.fixture
    def daemon(self):
        gf = FiniteField()
        config = ServiceConfig(refill_mode=RefillMode.BACKGROUND)
        service = AggregationService(
            config, gf=gf, build_cohorts=False
        ).start()
        control = ControlPlane(service)
        server = ControlPlaneServer(control).start()
        yield gf, control, server
        control.drain()
        server.stop()

    def test_listing_url_follows_newest_trace(self, daemon, capsys):
        gf, control, server = daemon
        import urllib.request

        def post(path, body):
            req = urllib.request.Request(
                f"http://{server.address}{path}",
                data=json.dumps(body).encode(), method="POST",
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(req, timeout=30) as resp:
                return json.loads(resp.read())

        created = post("/cohorts", {
            "num_users": N, "model_dim": DIM, "pool_size": 3,
            "low_water": 1, "num_shards": 2,
        })
        rng = np.random.default_rng(4)
        post(f"/cohorts/{created['cohort_id']}/rounds", {
            "updates": {
                str(i): encode_vector(gf.random(DIM, rng), "u64", gf.q)
                for i in range(N)
            },
            "dropouts": [], "encoding": "u64",
        })
        url = f"http://{server.address}/cohorts/{created['cohort_id']}/traces"
        assert main(["trace", url]) == 0
        out = capsys.readouterr().out
        assert "round 0" in out
        assert "reconstruct" in out

    def test_empty_listing_reports_and_exits_nonzero(self, daemon, capsys):
        _, _, server = daemon
        import urllib.request

        req = urllib.request.Request(
            f"http://{server.address}/cohorts",
            data=json.dumps({
                "num_users": N, "model_dim": DIM, "pool_size": 3,
                "low_water": 1,
            }).encode(),
            method="POST", headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=30):
            pass
        url = f"http://{server.address}/cohorts/0/traces"
        assert main(["trace", url]) == 1
        assert "no traces retained" in capsys.readouterr().out

    def test_unreachable_url_exits_with_message(self):
        with pytest.raises(SystemExit, match="cannot fetch"):
            main(["trace", "http://127.0.0.1:1/traces/1"])
