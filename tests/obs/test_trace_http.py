"""HTTP surface of round tracing: the two trace endpoints + schema.

``GET /cohorts/{id}/traces`` lists recent round summaries (newest
first) and ``GET /traces/{trace_id}`` serves one full stitched span
tree.  The tree's JSON shape is a published contract, pinned by
``tests/obs/golden/trace.schema.json`` — the same schema the CI
daemon-smoke job validates against a live daemon — so external
consumers (dashboards, the ``repro trace`` CLI) can rely on it.
"""

import json
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.field import FiniteField
from repro.service import AggregationService, RefillMode, ServiceConfig
from repro.service.api import ControlPlane, ControlPlaneServer, encode_vector

N, DIM = 6, 32

SCHEMA_PATH = Path(__file__).parent / "golden" / "trace.schema.json"


@pytest.fixture(scope="module")
def gf():
    return FiniteField()


@pytest.fixture
def daemon(gf):
    config = ServiceConfig(refill_mode=RefillMode.BACKGROUND)
    service = AggregationService(config, gf=gf, build_cohorts=False).start()
    control = ControlPlane(service)
    server = ControlPlaneServer(control).start()
    yield service, control, server
    control.drain()
    server.stop()


def http(address, method, path, body=None):
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        f"http://{address}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def run_rounds(gf, address, rounds=1):
    status, created = http(address, "POST", "/cohorts", {
        "num_users": N, "model_dim": DIM, "pool_size": 3, "low_water": 1,
        "num_shards": 2,
    })
    assert status == 201
    cohort_id = created["cohort_id"]
    rng = np.random.default_rng(3)
    for _ in range(rounds):
        updates = {
            str(i): encode_vector(gf.random(DIM, rng), "u64", gf.q)
            for i in range(N)
        }
        status, _ = http(address, "POST", f"/cohorts/{cohort_id}/rounds", {
            "updates": updates, "dropouts": [1], "encoding": "u64",
        })
        assert status == 200
    return cohort_id


class TestTraceEndpoints:
    def test_listing_then_full_tree_matches_schema(self, gf, daemon,
                                                   validate_json_schema):
        _, _, server = daemon
        cohort_id = run_rounds(gf, server.address, rounds=2)

        status, listing = http(
            server.address, "GET", f"/cohorts/{cohort_id}/traces"
        )
        assert status == 200
        assert listing["cohort_id"] == cohort_id
        assert listing["tracing"] is True
        summaries = listing["traces"]
        assert len(summaries) == 2
        # newest first
        assert [s["round_index"] for s in summaries] == [1, 0]
        for summary in summaries:
            assert summary["spans"] > 0
            assert summary["duration_seconds"] > 0
            assert summary["slow"] is False

        status, trace = http(
            server.address, "GET", f"/traces/{summaries[0]['trace_id']}"
        )
        assert status == 200
        schema = json.loads(SCHEMA_PATH.read_text())
        validate_json_schema(trace, schema)
        assert trace["trace_id"] == summaries[0]["trace_id"]
        assert trace["cohort_id"] == cohort_id
        assert trace["root"]["name"] == "round"
        names = [s["name"] for s in trace["root"]["children"]]
        assert "collect" in names
        assert "reconstruct" in names
        assert any(n.startswith("shard_compute[") for n in names)

    def test_unknown_trace_is_404(self, daemon):
        _, _, server = daemon
        status, body = http(server.address, "GET", "/traces/999999999")
        assert status == 404
        assert body["error"]["type"] == "not-found"
        assert "evicted" in body["error"]["message"]

    def test_unknown_cohort_traces_is_404(self, daemon):
        _, _, server = daemon
        status, body = http(server.address, "GET", "/cohorts/42/traces")
        assert status == 404
        assert body["error"]["type"] == "not-found"

    def test_status_reports_tracer_state(self, gf, daemon):
        service, _, server = daemon
        run_rounds(gf, server.address, rounds=1)
        tracing = service.status()["tracing"]
        assert tracing == {"enabled": True, "retained": 1, "slow_rounds": 0}


class TestTracingDisabledDaemon:
    def test_endpoints_answer_but_retain_nothing(self, gf):
        config = ServiceConfig(
            refill_mode=RefillMode.BACKGROUND, tracing=False
        )
        service = AggregationService(
            config, gf=gf, build_cohorts=False
        ).start()
        control = ControlPlane(service)
        server = ControlPlaneServer(control).start()
        try:
            cohort_id = run_rounds(gf, server.address, rounds=1)
            status, listing = http(
                server.address, "GET", f"/cohorts/{cohort_id}/traces"
            )
            assert status == 200
            assert listing["tracing"] is False
            assert listing["traces"] == []
        finally:
            control.drain()
            server.stop()
