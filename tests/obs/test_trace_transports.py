"""Cross-process trace stitching and tracing's zero-interference claims.

The acceptance criteria pinned here:

* every transport lane (inline / process / shm / socket) produces
  aggregates **bit-identical** to an untraced inline baseline with
  tracing on — tracing observes rounds, it never perturbs them;
* a socket round against a shard worker running in a *separate OS
  process* (spawned via ``python -m repro shard-worker``) yields one
  stitched :class:`RoundTrace` whose ``shard_compute[i]`` spans carry
  the remote worker's pid/host tags — the spans crossed the wire;
* a worker that never acknowledged ``CAP_ROUND_TRACING`` still
  completes bit-identical rounds (no hang, no error); the trace simply
  lacks worker-reported compute spans;
* with tracing disabled nothing is retained and results are identical.
"""

import os
import re
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.service import (
    AggregationService,
    RefillMode,
    ServiceConfig,
    ShardWorkerServer,
    TransportKind,
)
from repro.wire import CAP_PACKED_ARRAYS

N, DIM = 8, 37
ROUNDS = 3

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")


def run_lane(gf, kind, tracing=True, connect=None, rounds=ROUNDS):
    """Run one service lane; return (per-round outputs, its traces)."""
    cfg = ServiceConfig(
        num_cohorts=1,
        num_users=N,
        model_dim=DIM,
        num_shards=2,
        pool_size=3,
        low_water=0,
        refill_mode=RefillMode.SYNC,
        dropout_tolerance=2,
        privacy=2,
        transport=kind,
        connect=connect,
        seed=7,
        tracing=tracing,
    )
    with AggregationService(cfg, gf=gf) as svc:
        sweeps = svc.run_synthetic(
            rounds=rounds, dropout_rate=0.2, rng=np.random.default_rng(9)
        )
        traces = svc.traces(cohort_id=0, limit=rounds + 1)
    outputs = [
        (sweep[0].aggregate.tobytes(), tuple(sweep[0].survivors))
        for sweep in sweeps
    ]
    return outputs, list(reversed(traces))  # oldest first


def top_names(trace):
    return [s.name for s in trace.root.children]


def compute_spans(trace):
    return [
        s for s in trace.root.children if s.name.startswith("shard_compute[")
    ]


@pytest.fixture(scope="module")
def baseline(gf_module):
    """Untraced inline outputs: the bit-identity reference for all lanes."""
    outputs, traces = run_lane(gf_module, TransportKind.INLINE, tracing=False)
    assert traces == []
    return outputs


@pytest.fixture(scope="module")
def gf_module():
    from repro.field import DEFAULT_PRIME, FiniteField

    return FiniteField(DEFAULT_PRIME)


@pytest.fixture
def server():
    server = ShardWorkerServer().start()
    yield server
    server.stop()


LANES = [
    pytest.param(TransportKind.INLINE, id="inline"),
    pytest.param(TransportKind.PROCESS, id="process"),
    pytest.param(TransportKind.SHM, id="shm"),
    pytest.param(TransportKind.SOCKET, id="socket"),
]


class TestTracedLanes:
    @pytest.mark.parametrize("kind", LANES)
    def test_lane_bit_identical_and_fully_traced(self, gf_module, baseline,
                                                 server, kind):
        connect = (server.address,) if kind is TransportKind.SOCKET else None
        outputs, traces = run_lane(gf_module, kind, connect=connect)
        assert outputs == baseline  # tracing never perturbs aggregates

        assert len(traces) == ROUNDS  # one stitched trace per round
        for round_index, trace in enumerate(traces):
            assert trace.cohort_id == 0
            assert trace.round_index == round_index
            assert trace.root.end is not None
            assert trace.root.tags["transport"] == kind.value
            names = top_names(trace)
            assert "collect" in names
            assert "reconstruct" in names
            computes = compute_spans(trace)
            assert len(computes) == 2  # one per shard
            for s in computes:
                assert s.tags["transport"] == kind.value
                assert s.tags["pid"].isdigit()
                assert s.tags["host"]
                assert s.duration > 0
        if kind is not TransportKind.INLINE:
            # remote lanes bracket compute with scatter/gather spans
            assert "shard_scatter" in top_names(traces[0])
            assert "shard_gather" in top_names(traces[0])

    def test_process_lane_reports_remote_pids(self, gf_module):
        """Process workers live in child processes: the compute spans'
        pid tags must name them, not the coordinator."""
        _, traces = run_lane(gf_module, TransportKind.PROCESS)
        for s in compute_spans(traces[-1]):
            assert s.tags["pid"] != str(os.getpid())

    def test_inline_lane_nests_protocol_spans(self, gf_module):
        """Inline shards run on the coordinator thread, so once the
        offline pool drains, the session's refill-on-miss spans
        (offline_refill -> mask_encode) nest under shard_compute."""
        _, traces = run_lane(gf_module, TransportKind.INLINE, rounds=6)
        nested = {
            child.name
            for trace in traces
            for top in compute_spans(trace)
            for child in top.walk()
        }
        assert "mask_encode" in nested
        assert "offline_refill" in nested

    def test_tracing_disabled_retains_nothing(self, gf_module, baseline):
        outputs, traces = run_lane(
            gf_module, TransportKind.INLINE, tracing=False
        )
        assert outputs == baseline
        assert traces == []


class TestSocketStitching:
    """The tentpole acceptance: worker spans from a genuinely separate
    OS process appear inside the coordinator's round trace."""

    @pytest.fixture
    def worker_proc(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "shard-worker",
             "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline()
            match = re.search(r"listening on (\S+)", line)
            assert match, f"no listening line from worker: {line!r}"
            yield proc, match.group(1)
        finally:
            proc.terminate()
            proc.wait(timeout=10)

    def test_round_trace_carries_remote_worker_spans(self, gf_module,
                                                     worker_proc):
        proc, address = worker_proc
        _, traces = run_lane(
            gf_module, TransportKind.SOCKET, connect=(address,), rounds=2
        )
        assert len(traces) == 2
        for trace in traces:
            computes = compute_spans(trace)
            assert len(computes) == 2
            for s in computes:
                # the span's identity tags name the worker subprocess
                assert s.tags["pid"] == str(proc.pid)
                assert s.tags["pid"] != str(os.getpid())
                assert s.tags["host"]
                assert s.tags["transport"] == "socket"
            # worker compute sits inside the coordinator's round window
            lo, hi = trace.root.start, trace.root.end
            for s in computes:
                assert lo <= s.start and s.end <= hi + 1.0  # clock slack

    def test_queue_wait_child_when_reported(self, gf_module, worker_proc):
        proc, address = worker_proc
        _, traces = run_lane(
            gf_module, TransportKind.SOCKET, connect=(address,), rounds=1
        )
        waits = [
            child
            for s in compute_spans(traces[0])
            for child in s.children
            if child.name == "queue_wait"
        ]
        # queue_wait is emitted only for a positive dwell; when present
        # it must lead directly into compute on the worker's clock
        for w in waits:
            assert w.duration >= 0
            assert w.tags["pid"] == str(proc.pid)


class TestMixedVersionInterop:
    def test_old_worker_completes_untraced_but_bit_identical(self, gf_module,
                                                             baseline):
        """A worker that never acked CAP_ROUND_TRACING gets trace-free
        frames (it would reject unknown tails), completes every round
        bit-identically, and the trace simply lacks worker spans."""
        with ShardWorkerServer(capabilities=CAP_PACKED_ARRAYS) as old:
            outputs, traces = run_lane(
                gf_module, TransportKind.SOCKET, connect=(old.address,)
            )
        assert outputs == baseline
        assert len(traces) == ROUNDS
        for trace in traces:
            assert compute_spans(trace) == []  # nothing reported back
            names = top_names(trace)
            # coordinator-side phases still traced
            for name in ("collect", "shard_scatter", "shard_gather",
                         "reconstruct"):
                assert name in names
