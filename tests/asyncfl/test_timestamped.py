"""Tests for timestamped mask bookkeeping (faithful async schedule)."""

import numpy as np
import pytest

from repro.asyncfl.timestamped import (
    MaskAnnouncement,
    TimestampedAsyncNetwork,
    TimestampedMaskStore,
)
from repro.exceptions import DropoutError, ProtocolError
from repro.protocols.lightsecagg.params import LSAParams


@pytest.fixture
def network(gf):
    params = LSAParams.from_guarantees(6, privacy=2, dropout_tolerance=2)
    return TimestampedAsyncNetwork(gf, params, model_dim=20)


class TestStore:
    def test_put_and_combine(self, gf, rng):
        store = TimestampedMaskStore(gf, share_dim=4)
        s1, s2 = gf.random(4, rng), gf.random(4, rng)
        store.put(0, 5, s1)
        store.put(1, 7, s2)
        out = store.combine(
            MaskAnnouncement(entries=((0, 5, 2), (1, 7, 3)))
        )
        expected = gf.add(gf.mul(s1, 2), gf.mul(s2, 3))
        assert np.array_equal(out, expected)

    def test_duplicate_rejected(self, gf, rng):
        store = TimestampedMaskStore(gf, 4)
        store.put(0, 5, gf.zeros(4))
        with pytest.raises(ProtocolError, match="duplicate"):
            store.put(0, 5, gf.zeros(4))

    def test_same_user_different_rounds_coexist(self, gf, rng):
        store = TimestampedMaskStore(gf, 4)
        store.put(0, 5, gf.zeros(4))
        store.put(0, 6, gf.zeros(4))
        assert len(store) == 2

    def test_missing_share_detected(self, gf):
        store = TimestampedMaskStore(gf, 4)
        with pytest.raises(ProtocolError, match="missing"):
            store.combine(MaskAnnouncement(entries=((0, 1, 1),)))

    def test_shape_checked(self, gf):
        store = TimestampedMaskStore(gf, 4)
        with pytest.raises(ProtocolError):
            store.put(0, 1, gf.zeros(5))

    def test_negative_weight_rejected(self, gf):
        store = TimestampedMaskStore(gf, 4)
        store.put(0, 1, gf.zeros(4))
        with pytest.raises(ProtocolError):
            store.combine(MaskAnnouncement(entries=((0, 1, -1),)))

    def test_empty_announcement(self, gf):
        store = TimestampedMaskStore(gf, 4)
        with pytest.raises(ProtocolError):
            store.combine(MaskAnnouncement(entries=()))

    def test_evict_before(self, gf):
        store = TimestampedMaskStore(gf, 4)
        for r in range(5):
            store.put(0, r, gf.zeros(4))
        assert store.evict_before(3) == 3
        assert not store.has(0, 2)
        assert store.has(0, 3)


class TestCrossRoundRecovery:
    def test_commutativity_of_coding_and_addition(self, network, gf, rng):
        """The core Appendix-F claim: shares encoded at different rounds
        combine into a decodable encoding of the weighted mask sum."""
        masks = {
            (0, 3): network.begin_round(0, 3, rng),
            (1, 5): network.begin_round(1, 5, rng),
            (2, 4): network.begin_round(2, 4, rng),
        }
        weights = {(0, 3): 4, (1, 5): 2, (2, 4): 1}
        ann = MaskAnnouncement(
            entries=tuple((u, r, weights[(u, r)]) for (u, r) in masks)
        )
        recovered = network.recover(ann, responders=range(6))
        expected = gf.zeros(20)
        for key, z in masks.items():
            expected = gf.add(expected, gf.mul(z, weights[key]))
        assert np.array_equal(recovered, expected)

    def test_end_to_end_masked_updates(self, network, gf, rng):
        """Full buffered flow: masked uploads + cross-round mask recovery
        yields the exact weighted update sum."""
        entries = []
        masked_sum = gf.zeros(20)
        expected = gf.zeros(20)
        for user, round_index, weight in ((0, 1, 2), (3, 2, 1), (5, 1, 3)):
            network.begin_round(user, round_index, rng)
            update = gf.random(20, rng)
            masked = network.mask_update(user, round_index, update)
            masked_sum = gf.add(masked_sum, gf.mul(masked, weight))
            expected = gf.add(expected, gf.mul(update, weight))
            entries.append((user, round_index, weight))
        agg_mask = network.recover(
            MaskAnnouncement(entries=tuple(entries)), responders=range(6)
        )
        assert np.array_equal(gf.sub(masked_sum, agg_mask), expected)

    def test_same_user_two_rounds_in_one_buffer(self, network, gf, rng):
        """A fast user can appear twice with different timestamps."""
        z1 = network.begin_round(2, 10, rng)
        z2 = network.begin_round(2, 11, rng)
        ann = MaskAnnouncement(entries=((2, 10, 1), (2, 11, 1)))
        recovered = network.recover(ann, responders=range(6))
        assert np.array_equal(recovered, gf.add(z1, z2))

    def test_recovery_dropout_tolerance(self, network, gf, rng):
        network.begin_round(0, 1, rng)
        ann = MaskAnnouncement(entries=((0, 1, 1),))
        # Fewer responders than U=4 -> failure.
        assert network.params.target_survivors == 4
        with pytest.raises(DropoutError):
            network.recover(ann, responders=[0, 1, 2])

    def test_double_begin_rejected(self, network, rng):
        network.begin_round(0, 1, rng)
        with pytest.raises(ProtocolError):
            network.begin_round(0, 1, rng)

    def test_mask_update_requires_begin(self, network, gf):
        with pytest.raises(ProtocolError):
            network.mask_update(0, 99, gf.zeros(20))
