"""Tests for asynchronous LightSecAgg aggregation (Appendix F.3)."""

import numpy as np
import pytest

from repro.asyncfl.secure_aggregator import AsyncDelivery, AsyncSecureAggregator
from repro.asyncfl.staleness import QuantizedStaleness, polynomial_staleness
from repro.exceptions import DropoutError, ProtocolError
from repro.field import FiniteField
from repro.protocols.lightsecagg.params import LSAParams
from repro.quantization import ModelQuantizer, QuantizationConfig


@pytest.fixture
def aggregator(gf):
    params = LSAParams.from_guarantees(8, privacy=2, dropout_tolerance=2)
    quant = ModelQuantizer(gf, QuantizationConfig(levels=1 << 16, clip=4.0))
    return AsyncSecureAggregator(
        gf, params, model_dim=12, quantizer=quant,
        staleness=QuantizedStaleness(levels=64),
    )


def deliveries_from(updates, staleness):
    return [
        AsyncDelivery(user_id=i, staleness=s, update=u)
        for i, (u, s) in enumerate(zip(updates, staleness))
    ]


class TestCorrectness:
    def test_uniform_weights_average(self, aggregator, rng):
        updates = [rng.normal(0, 1, 12) for _ in range(4)]
        out = aggregator.aggregate(deliveries_from(updates, [0, 0, 0, 0]), rng)
        expected = np.mean(updates, axis=0)
        assert np.allclose(out, expected, atol=1e-3)

    def test_mixed_staleness_weighted_average(self, gf, rng):
        params = LSAParams.from_guarantees(8, 2, 2)
        quant = ModelQuantizer(gf, QuantizationConfig(levels=1 << 16, clip=4.0))
        agg = AsyncSecureAggregator(
            gf, params, 12, quant,
            QuantizedStaleness(levels=64, fn=polynomial_staleness(1.0)),
        )
        updates = [rng.normal(0, 1, 12) for _ in range(3)]
        taus = [0, 1, 3]
        out = agg.aggregate(deliveries_from(updates, taus), rng)
        weights = np.asarray([1.0, 0.5, 0.25])
        expected = (weights[:, None] * np.stack(updates)).sum(0) / weights.sum()
        assert np.allclose(out, expected, atol=2e-2)

    def test_masks_from_different_rounds_cancel(self, aggregator, rng):
        """The async selling point: masks generated at different timestamps
        still cancel exactly because encoding is linear."""
        updates = [rng.normal(0, 1, 12) for _ in range(5)]
        taus = [0, 2, 5, 7, 9]
        out = aggregator.aggregate(deliveries_from(updates, taus), rng)
        # All constant staleness => plain average.
        assert np.allclose(out, np.mean(updates, axis=0), atol=1e-3)

    def test_recovery_dropouts_tolerated(self, aggregator, rng):
        updates = [rng.normal(0, 1, 12) for _ in range(4)]
        out = aggregator.aggregate(
            deliveries_from(updates, [0] * 4), rng, recovery_dropouts={0, 5},
        )
        assert np.allclose(out, np.mean(updates, axis=0), atol=1e-3)

    def test_too_many_recovery_dropouts(self, aggregator, rng):
        updates = [rng.normal(0, 1, 12) for _ in range(4)]
        with pytest.raises(DropoutError):
            aggregator.aggregate(
                deliveries_from(updates, [0] * 4), rng,
                recovery_dropouts={0, 1, 2, 3},
            )

    def test_empty_buffer_rejected(self, aggregator, rng):
        with pytest.raises(ProtocolError):
            aggregator.aggregate([], rng)

    def test_update_shape_validated(self, aggregator, rng):
        bad = [AsyncDelivery(0, 0, np.zeros(5))]
        with pytest.raises(ProtocolError):
            aggregator.aggregate(bad, rng)

    def test_single_delivery(self, aggregator, rng):
        updates = [rng.normal(0, 1, 12)]
        out = aggregator.aggregate(deliveries_from(updates, [0]), rng)
        assert np.allclose(out, updates[0], atol=1e-3)

    def test_deterministic_given_rng(self, aggregator):
        updates = [np.linspace(-1, 1, 12) for _ in range(3)]
        a = aggregator.aggregate(
            deliveries_from(updates, [0, 1, 2]), np.random.default_rng(3)
        )
        b = aggregator.aggregate(
            deliveries_from(updates, [0, 1, 2]), np.random.default_rng(3)
        )
        assert np.array_equal(a, b)
