"""Tests for the Theorem 2 convergence-bound evaluator."""

import pytest

from repro.asyncfl.convergence import (
    ConvergenceConstants,
    convergence_bound,
    quantization_excess,
)
from repro.exceptions import ReproError


def constants(**overrides):
    base = dict(
        smoothness=1.0,
        initial_gap=10.0,
        grad_bound=1.0,
        local_variance=0.01,
        global_variance=0.05,
        model_dim=7850,
        quant_levels=1 << 16,
        buffer_size=10,
        local_steps=1,
        tau_max=10,
        eta_local=0.01,
        eta_global=1.0,
    )
    base.update(overrides)
    return ConvergenceConstants(**base)


class TestBoundStructure:
    def test_bound_positive_and_finite(self):
        b = convergence_bound(constants(), rounds=100)
        assert 0 < b < float("inf")

    def test_decreases_with_rounds(self):
        c = constants()
        assert convergence_bound(c, 1000) < convergence_bound(c, 10)

    def test_optimization_term_vanishes(self):
        """As J -> inf the bound approaches the variance floor."""
        c = constants()
        b1 = convergence_bound(c, 10**6)
        b2 = convergence_bound(c, 10**9)
        assert abs(b1 - b2) / b1 < 0.01

    def test_step_size_condition_enforced(self):
        c = constants(eta_local=1.0, eta_global=1.0, buffer_size=10)
        assert not c.learning_rates_feasible()
        with pytest.raises(ReproError, match="1/L"):
            convergence_bound(c, 10)

    def test_rounds_validated(self):
        with pytest.raises(ReproError):
            convergence_bound(constants(), 0)

    def test_constant_validation(self):
        with pytest.raises(ReproError):
            constants(smoothness=0.0)
        with pytest.raises(ReproError):
            constants(grad_bound=-1.0)
        with pytest.raises(ReproError):
            constants(tau_max=-1)


class TestPaperClaims:
    def test_sigma_cl_formula(self):
        c = constants(model_dim=400, quant_levels=10, local_variance=0.5)
        assert c.sigma_cl_sq == pytest.approx(400 / 400 + 0.5)

    def test_finer_quantization_tightens_bound(self):
        coarse = constants(quant_levels=4)
        fine = constants(quant_levels=1 << 16)
        assert convergence_bound(fine, 100) < convergence_bound(coarse, 100)

    def test_quantization_excess_negligible_at_paper_cl(self):
        """Remark 6: at c_l = 2^16 the extra d/(4 c_l^2) variance is tiny
        relative to the bound itself."""
        c = constants(quant_levels=1 << 16)
        excess = quantization_excess(c, 100)
        total = convergence_bound(c, 100)
        assert excess / total < 1e-3

    def test_quantization_excess_material_at_small_cl(self):
        c = constants(quant_levels=2)
        excess = quantization_excess(c, 10**7)
        total = convergence_bound(c, 10**7)
        assert excess / total > 0.5

    def test_staleness_hurts(self):
        fresh = constants(tau_max=0)
        stale = constants(tau_max=20)
        assert convergence_bound(stale, 100) > convergence_bound(fresh, 100)

    def test_matches_fedbuff_when_unquantized(self):
        """With c_l -> inf the bound reduces to FedBuff's (sigma_l only)."""
        c = constants()
        assert quantization_excess(c, 100) >= 0
