"""Tests for the async update buffer."""

import numpy as np
import pytest

from repro.asyncfl.buffer import BufferedUpdate, UpdateBuffer
from repro.exceptions import ProtocolError


class TestBuffer:
    def test_fill_and_drain(self):
        buf = UpdateBuffer(capacity=3)
        for k in range(3):
            buf.push(BufferedUpdate(user_id=k, download_round=0,
                                    payload=np.zeros(2)))
        assert buf.is_full
        items = buf.drain()
        assert [i.user_id for i in items] == [0, 1, 2]
        assert len(buf) == 0

    def test_drain_requires_full(self):
        buf = UpdateBuffer(capacity=2)
        buf.push(BufferedUpdate(0, 0, np.zeros(1)))
        with pytest.raises(ProtocolError, match="not ready"):
            buf.drain()

    def test_push_beyond_capacity(self):
        buf = UpdateBuffer(capacity=1)
        buf.push(BufferedUpdate(0, 0, None))
        with pytest.raises(ProtocolError, match="full"):
            buf.push(BufferedUpdate(1, 0, None))

    def test_capacity_validation(self):
        with pytest.raises(ProtocolError):
            UpdateBuffer(capacity=0)

    def test_fifo_order_preserved(self):
        buf = UpdateBuffer(capacity=3)
        for uid in (5, 1, 9):
            buf.push(BufferedUpdate(uid, uid * 10, None))
        drained = buf.drain()
        assert [d.user_id for d in drained] == [5, 1, 9]
        assert [d.download_round for d in drained] == [50, 10, 90]

    def test_reusable_after_drain(self):
        buf = UpdateBuffer(capacity=1)
        buf.push(BufferedUpdate(0, 0, None))
        buf.drain()
        buf.push(BufferedUpdate(1, 1, None))
        assert buf.is_full
