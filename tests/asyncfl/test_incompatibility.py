"""Tests making Remark 1 executable: pairwise masking fails under
asynchrony exactly when timestamps differ, while async LightSecAgg
succeeds in the same configuration."""

import numpy as np
import pytest

from repro.asyncfl.incompatibility import (
    attempt_async_pairwise_aggregation,
    pairwise_masked_upload,
    residue_matrix,
    round_seed,
)
from repro.asyncfl.secure_aggregator import AsyncDelivery, AsyncSecureAggregator
from repro.asyncfl.staleness import QuantizedStaleness
from repro.crypto.prg import PRG
from repro.exceptions import ProtocolError
from repro.protocols.lightsecagg.params import LSAParams
from repro.quantization import ModelQuantizer, QuantizationConfig


class TestRoundSeed:
    def test_symmetric_in_pair(self):
        assert round_seed(7, 2, 5, 3) == round_seed(7, 5, 2, 3)

    def test_differs_across_rounds(self):
        assert round_seed(7, 2, 5, 3) != round_seed(7, 2, 5, 4)

    def test_differs_across_pairs(self):
        assert round_seed(7, 2, 5, 3) != round_seed(7, 2, 6, 3)


class TestSynchronousCancellation:
    def test_same_round_cancels_exactly(self, gf, rng):
        """Sanity: with equal timestamps this *is* SecAgg and must work."""
        updates = [gf.random(32, rng) for _ in range(5)]
        outcome = attempt_async_pairwise_aggregation(
            gf, updates, download_rounds=[4] * 5
        )
        assert not outcome.is_corrupted
        assert np.array_equal(
            outcome.aggregate_with_masks, outcome.true_aggregate
        )

    def test_all_pairs_cancel_when_synchronous(self, gf):
        report = residue_matrix(gf, 4, [2, 2, 2, 2], dim=8)
        assert all(cancelled for _, _, cancelled in report)


class TestAsynchronousCorruption:
    def test_mixed_rounds_corrupt_the_sum(self, gf, rng):
        updates = [gf.random(32, rng) for _ in range(5)]
        outcome = attempt_async_pairwise_aggregation(
            gf, updates, download_rounds=[0, 1, 2, 3, 4]
        )
        assert outcome.is_corrupted

    def test_single_stale_user_suffices(self, gf, rng):
        updates = [gf.random(16, rng) for _ in range(4)]
        outcome = attempt_async_pairwise_aggregation(
            gf, updates, download_rounds=[5, 5, 5, 6]
        )
        assert outcome.is_corrupted

    def test_residue_is_full_magnitude(self, gf, rng):
        """The residue is PRG noise — uniform over the field, not a small
        perturbation; the aggregate is useless, not merely inexact."""
        updates = [gf.zeros(2000) for _ in range(3)]
        outcome = attempt_async_pairwise_aggregation(
            gf, updates, download_rounds=[0, 1, 2]
        )
        residue = outcome.residue.astype(np.float64)
        assert abs(residue.mean() / gf.q - 0.5) < 0.05  # uniform-ish

    def test_residue_matrix_localizes_failures(self, gf):
        report = residue_matrix(gf, 3, [0, 0, 9], dim=8)
        by_pair = {(i, j): c for i, j, c in report}
        assert by_pair[(0, 1)] is True  # same round -> cancels
        assert by_pair[(0, 2)] is False
        assert by_pair[(1, 2)] is False

    def test_validation(self, gf):
        with pytest.raises(ProtocolError):
            attempt_async_pairwise_aggregation(gf, [gf.zeros(4)], [0])
        with pytest.raises(ProtocolError):
            attempt_async_pairwise_aggregation(
                gf, [gf.zeros(4), gf.zeros(5)], [0, 1]
            )


class TestLightSecAggSucceedsWhereSecAggFails:
    def test_same_staleness_pattern_exact_recovery(self, gf, rng):
        """The paper's punchline: identical buffered setting (mixed
        timestamps, no dropouts) — pairwise masking corrupts, LightSecAgg
        recovers exactly up to quantization."""
        taus = [0, 1, 2, 3, 4]
        # Pairwise masking: corrupted.
        field_updates = [gf.random(24, rng) for _ in range(5)]
        assert attempt_async_pairwise_aggregation(
            gf, field_updates, taus
        ).is_corrupted

        # Async LightSecAgg: exact weighted recovery.
        params = LSAParams.from_guarantees(5, privacy=1, dropout_tolerance=1)
        quant = ModelQuantizer(gf, QuantizationConfig(levels=1 << 16, clip=4.0))
        agg = AsyncSecureAggregator(
            gf, params, 24, quant, QuantizedStaleness(levels=64)
        )
        reals = [rng.normal(0, 0.5, 24) for _ in range(5)]
        deliveries = [
            AsyncDelivery(user_id=i, staleness=taus[i], update=reals[i])
            for i in range(5)
        ]
        out = agg.aggregate(deliveries, rng)
        assert np.allclose(out, np.mean(reals, axis=0), atol=1e-3)


class TestUploadHelper:
    def test_upload_masks_the_update(self, gf, rng):
        prg = PRG(gf)
        update = gf.random(16, rng)
        masked = pairwise_masked_upload(gf, prg, 0, 3, update, 0, base_seed=1)
        assert not np.array_equal(masked, update)

    def test_opposite_signs_cancel_pairwise(self, gf, rng):
        prg = PRG(gf)
        d = 16
        zero = gf.zeros(d)
        m0 = pairwise_masked_upload(gf, prg, 0, 2, zero, 3, base_seed=1)
        m1 = pairwise_masked_upload(gf, prg, 1, 2, zero, 3, base_seed=1)
        assert np.all(gf.add(m0, m1) == 0)
