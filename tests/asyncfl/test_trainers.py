"""Tests for FedBuff and async-LightSecAgg trainers (paper Fig. 7/11)."""

import numpy as np
import pytest

from repro.asyncfl import AsyncLightSecAggTrainer, FedBuffTrainer
from repro.asyncfl.staleness import polynomial_staleness
from repro.exceptions import ReproError
from repro.fl import (
    LocalTrainingConfig,
    iid_partition,
    logistic_regression,
    make_mnist_like,
)
from repro.fl.datasets.synthetic import train_test_split


@pytest.fixture(scope="module")
def async_setup():
    full = make_mnist_like(900, seed=5, noise=1.0)
    train, test = train_test_split(full, 0.25, seed=1)
    clients = iid_partition(train, 15, seed=1)
    return clients, test


CFG = LocalTrainingConfig(epochs=1, batch_size=32, lr=0.05)


class TestFedBuff:
    def test_learns(self, async_setup):
        clients, test = async_setup
        trainer = FedBuffTrainer(
            logistic_regression(seed=0), clients,
            buffer_size=5, tau_max=4, local_config=CFG, seed=0,
        )
        hist = trainer.fit(5, test_set=test)
        assert hist.accuracies[-1] > 0.8

    def test_staleness_recorded_and_bounded(self, async_setup):
        clients, test = async_setup
        trainer = FedBuffTrainer(
            logistic_regression(seed=0), clients,
            buffer_size=4, tau_max=3, local_config=CFG, seed=0,
        )
        trainer.fit(6)
        for rec in trainer.history.records:
            assert len(rec.participants) == 4
            assert all(0 <= t <= 3 for t in rec.staleness)
            # Staleness cannot exceed the round index.
            assert all(t <= rec.round_index for t in rec.staleness)

    def test_validation(self, async_setup):
        clients, _ = async_setup
        with pytest.raises(ReproError):
            FedBuffTrainer(logistic_regression(), clients, buffer_size=0)
        with pytest.raises(ReproError):
            FedBuffTrainer(logistic_regression(), clients, buffer_size=99)
        with pytest.raises(ReproError):
            FedBuffTrainer(logistic_regression(), clients, tau_max=-1)


class TestAsyncLightSecAgg:
    def test_learns(self, async_setup):
        clients, test = async_setup
        trainer = AsyncLightSecAggTrainer(
            logistic_regression(seed=0), clients,
            buffer_size=5, tau_max=4, local_config=CFG, seed=0,
        )
        hist = trainer.fit(5, test_set=test)
        assert hist.accuracies[-1] > 0.8

    def test_matches_fedbuff_closely(self, async_setup):
        """Fig. 7/11: async-LSA ~ FedBuff up to quantization noise, under
        the identical delivery schedule (same seed)."""
        clients, test = async_setup
        fb = FedBuffTrainer(
            logistic_regression(seed=0), clients,
            buffer_size=5, tau_max=4, local_config=CFG, seed=7,
            staleness_fn=polynomial_staleness(1.0),
        )
        ls = AsyncLightSecAggTrainer(
            logistic_regression(seed=0), clients,
            buffer_size=5, tau_max=4, local_config=CFG, seed=7,
            staleness_fn=polynomial_staleness(1.0),
        )
        h1 = fb.fit(4, test_set=test)
        h2 = ls.fit(4, test_set=test)
        assert abs(h1.accuracies[-1] - h2.accuracies[-1]) < 0.1

    def test_poly_staleness_compensation(self, async_setup):
        clients, test = async_setup
        trainer = AsyncLightSecAggTrainer(
            logistic_regression(seed=0), clients,
            buffer_size=5, tau_max=6, local_config=CFG, seed=0,
            staleness_fn=polynomial_staleness(1.0),
        )
        hist = trainer.fit(4, test_set=test)
        assert hist.accuracies[-1] > 0.75

    def test_wraparound_budget_guard(self, async_setup):
        """A quantization config that risks field wrap-around must be
        rejected at construction, not corrupt training silently."""
        from repro.quantization import QuantizationConfig
        from repro.exceptions import QuantizationError

        clients, _ = async_setup
        with pytest.raises(QuantizationError):
            AsyncLightSecAggTrainer(
                logistic_regression(seed=0), clients,
                buffer_size=10, tau_max=2, local_config=CFG, seed=0,
                quantization=QuantizationConfig(levels=1 << 26, clip=100.0),
            )
