"""Tests for staleness functions and their field quantization (eq. 34)."""

import numpy as np
import pytest

from repro.asyncfl.staleness import (
    QuantizedStaleness,
    constant_staleness,
    hinge_staleness,
    polynomial_staleness,
)
from repro.exceptions import ReproError


class TestFunctions:
    def test_constant(self):
        assert constant_staleness(0) == 1.0
        assert constant_staleness(100) == 1.0
        with pytest.raises(ReproError):
            constant_staleness(-1)

    def test_polynomial(self):
        fn = polynomial_staleness(1.0)
        assert fn(0) == 1.0
        assert fn(1) == pytest.approx(0.5)
        assert fn(9) == pytest.approx(0.1)

    def test_polynomial_alpha_zero_is_constant(self):
        fn = polynomial_staleness(0.0)
        assert fn(7) == 1.0

    def test_polynomial_monotone_decreasing(self):
        fn = polynomial_staleness(0.5)
        values = [fn(t) for t in range(10)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_polynomial_validation(self):
        with pytest.raises(ReproError):
            polynomial_staleness(-1.0)
        fn = polynomial_staleness(1.0)
        with pytest.raises(ReproError):
            fn(-1)

    def test_hinge(self):
        fn = hinge_staleness(a=10.0, b=4.0)
        assert fn(0) == 1.0
        assert fn(4) == 1.0
        assert fn(5) == pytest.approx(1.0 / 11.0)
        with pytest.raises(ReproError):
            hinge_staleness(a=0)

    def test_s_zero_is_one(self):
        """The paper requires s(0) = 1 for every staleness function."""
        for fn in (
            constant_staleness,
            polynomial_staleness(1.0),
            polynomial_staleness(2.0),
            hinge_staleness(),
        ):
            assert fn(0) == 1.0


class TestQuantizedStaleness:
    def test_constant_weight_is_levels(self, rng):
        qs = QuantizedStaleness(levels=64)
        assert qs.weight(5, rng) == 64  # s == 1 -> c_g * 1

    def test_weight_unbiased(self):
        qs = QuantizedStaleness(levels=4, fn=polynomial_staleness(1.0))
        rng = np.random.default_rng(0)
        # s(1) = 0.5 -> c_g * 0.5 = 2 exactly on the grid.
        assert qs.weight(1, rng) == 2
        # s(2) = 1/3 -> weight in {1, 2} with mean 4/3.
        samples = [qs.weight(2, rng) for _ in range(4000)]
        assert set(samples) <= {1, 2}
        assert np.mean(samples) == pytest.approx(4 / 3, abs=0.05)

    def test_real_weight_round_trip(self, rng):
        qs = QuantizedStaleness(levels=64, fn=polynomial_staleness(1.0))
        w = qs.weight(3, rng)
        assert abs(qs.real_weight(w) - 0.25) <= 1 / 64

    def test_paper_cg(self):
        """The paper uses c_g = 2^6 (Sec. F.5)."""
        assert QuantizedStaleness().levels == 64

    def test_validation(self):
        with pytest.raises(ReproError):
            QuantizedStaleness(levels=0)
