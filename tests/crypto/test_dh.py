"""Tests for Diffie-Hellman key agreement."""

import numpy as np
import pytest

from repro.crypto.dh import (
    RFC3526_GENERATOR,
    RFC3526_PRIME_2048,
    SIMULATION_PRIME,
    DiffieHellman,
    KeyPair,
)
from repro.exceptions import ProtocolError
from repro.field.prime import is_prime


class TestGroup:
    def test_simulation_prime_is_prime(self):
        assert is_prime(SIMULATION_PRIME)

    def test_invalid_modulus(self):
        with pytest.raises(ProtocolError):
            DiffieHellman(prime=1)


class TestKeyAgreement:
    def test_symmetry(self, rng):
        dh = DiffieHellman()
        k1 = dh.generate_keypair(rng)
        k2 = dh.generate_keypair(rng)
        assert dh.agree(k1.secret, k2.public) == dh.agree(k2.secret, k1.public)

    def test_distinct_pairs_distinct_seeds(self, rng):
        dh = DiffieHellman()
        keys = [dh.generate_keypair(rng) for _ in range(4)]
        seeds = {
            dh.agree(keys[i].secret, keys[j].public)
            for i in range(4)
            for j in range(4)
            if i < j
        }
        assert len(seeds) == 6

    def test_seed_is_256_bit_int(self, rng):
        dh = DiffieHellman()
        k1 = dh.generate_keypair(rng)
        k2 = dh.generate_keypair(rng)
        seed = dh.agree(k1.secret, k2.public)
        assert 0 <= seed < 2**256

    def test_public_key_validation(self, rng):
        dh = DiffieHellman()
        k = dh.generate_keypair(rng)
        with pytest.raises(ProtocolError):
            dh.agree(k.secret, 0)
        with pytest.raises(ProtocolError):
            dh.agree(k.secret, dh.prime - 1)

    def test_keypair_from_secret_matches(self, rng):
        """Reconstructing a dropped user's sk must re-derive its public key."""
        dh = DiffieHellman()
        k = dh.generate_keypair(rng)
        rebuilt = dh.keypair_from_secret(k.secret)
        assert rebuilt.public == k.public

    def test_keypair_from_secret_validates(self):
        dh = DiffieHellman()
        with pytest.raises(ProtocolError):
            dh.keypair_from_secret(0)

    def test_rfc3526_group_agrees(self, rng):
        """The full-size production group also works (slower)."""
        dh = DiffieHellman(prime=RFC3526_PRIME_2048, generator=RFC3526_GENERATOR)
        k1 = dh.generate_keypair(rng)
        k2 = dh.generate_keypair(rng)
        assert dh.agree(k1.secret, k2.public) == dh.agree(k2.secret, k1.public)

    def test_deterministic_with_seeded_rng(self):
        dh = DiffieHellman()
        k1 = dh.generate_keypair(np.random.default_rng(0))
        k2 = dh.generate_keypair(np.random.default_rng(0))
        assert k1 == KeyPair(k2.secret, k2.public)
