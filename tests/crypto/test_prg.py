"""Tests for the seeded PRG backends."""

import numpy as np
import pytest

from repro.crypto.prg import BACKENDS, PRG, seed_from_bytes
from repro.exceptions import FieldError
from repro.field import FiniteField


@pytest.fixture(params=list(BACKENDS))
def prg(request, gf):
    return PRG(gf, backend=request.param)


class TestDeterminism:
    def test_same_seed_same_output(self, prg):
        assert np.array_equal(prg.expand(7, 256), prg.expand(7, 256))

    def test_different_seeds_differ(self, prg):
        assert not np.array_equal(prg.expand(7, 256), prg.expand(8, 256))

    def test_cross_instance_determinism(self, gf):
        for backend in BACKENDS:
            a = PRG(gf, backend=backend).expand(99, 64)
            b = PRG(gf, backend=backend).expand(99, 64)
            assert np.array_equal(a, b)

    def test_sha256_prefix_property(self, gf):
        prg = PRG(gf, backend="sha256")
        long = prg.expand(5, 200)
        short = prg.expand(5, 50)
        assert np.array_equal(long[:50], short)


class TestOutputRange:
    def test_values_in_field(self, prg):
        out = prg.expand(3, 10_000)
        assert out.dtype == np.uint64
        assert out.max() < prg.gf.q

    def test_zero_length(self, prg):
        assert prg.expand(3, 0).shape == (0,)

    def test_negative_length_rejected(self, prg):
        with pytest.raises(FieldError):
            prg.expand(3, -1)

    def test_large_seed_accepted(self, prg):
        huge = 2**255 + 12345
        assert np.array_equal(prg.expand(huge, 16), prg.expand(huge, 16))

    def test_negative_seed_normalized(self, prg):
        assert prg.expand(-5, 16).shape == (16,)


class TestUniformity:
    def test_mean_near_half(self, prg):
        out = prg.expand(11, 50_000).astype(np.float64)
        assert abs(out.mean() / prg.gf.q - 0.5) < 0.01

    def test_small_field_chi_square(self, gf_small):
        for backend in BACKENDS:
            prg = PRG(gf_small, backend=backend)
            out = prg.expand(13, 20_000)
            counts = np.bincount(out.astype(np.int64), minlength=97)
            expected = out.size / 97
            chi2 = float(((counts - expected) ** 2 / expected).sum())
            assert chi2 < 160, (backend, chi2)


class TestMisc:
    def test_unknown_backend(self, gf):
        with pytest.raises(FieldError):
            PRG(gf, backend="chacha")

    def test_seed_from_bytes_stable(self):
        assert seed_from_bytes(b"abc") == seed_from_bytes(b"abc")
        assert seed_from_bytes(b"abc") != seed_from_bytes(b"abd")

    def test_repr(self, gf):
        assert "pcg64" in repr(PRG(gf))

    def test_backends_differ(self, gf):
        """Backends are distinct streams; protocols must fix one."""
        a = PRG(gf, backend="pcg64").expand(1, 32)
        b = PRG(gf, backend="sha256").expand(1, 32)
        assert not np.array_equal(a, b)
