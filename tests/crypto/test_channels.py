"""Tests for the secure pairwise channels (paper footnote 3)."""

import numpy as np
import pytest

from repro.crypto.channels import SealedMessage, SecureChannel, channel_pair
from repro.crypto.dh import DiffieHellman
from repro.exceptions import ProtocolError


@pytest.fixture
def pair(gf):
    return channel_pair(gf, shared_key=123456789, user_a=0, user_b=1)


class TestRoundTrip:
    def test_seal_open(self, gf, rng, pair):
        tx, _ = pair
        rx = SecureChannel(gf, 123456789, sender=0, receiver=1)
        payload = gf.random(64, rng)
        msg = tx.seal(payload)
        assert np.array_equal(rx.open(msg), payload)

    def test_both_directions_independent(self, gf, rng, pair):
        a_to_b, b_to_a = pair
        p1, p2 = gf.random(16, rng), gf.random(16, rng)
        m1, m2 = a_to_b.seal(p1), b_to_a.seal(p2)
        # Same key, opposite directions: ciphertexts use distinct streams.
        assert not np.array_equal(m1.ciphertext, m2.ciphertext)

    def test_empty_payload(self, gf, pair):
        tx, _ = pair
        rx = SecureChannel(gf, 123456789, 0, 1)
        msg = tx.seal(gf.zeros(0))
        assert rx.open(msg).shape == (0,)

    def test_dh_bootstrapped_key(self, gf, rng):
        """End-to-end: agree a key via DH, then run the channel."""
        dh = DiffieHellman()
        k1, k2 = dh.generate_keypair(rng), dh.generate_keypair(rng)
        key_a = dh.agree(k1.secret, k2.public)
        key_b = dh.agree(k2.secret, k1.public)
        tx = SecureChannel(gf, key_a, sender=0, receiver=1)
        rx = SecureChannel(gf, key_b, sender=0, receiver=1)
        payload = gf.random(32, rng)
        assert np.array_equal(rx.open(tx.seal(payload)), payload)


class TestAuthentication:
    def test_tampered_ciphertext_rejected(self, gf, rng, pair):
        tx, _ = pair
        rx = SecureChannel(gf, 123456789, 0, 1)
        msg = tx.seal(gf.random(8, rng))
        bad_ct = msg.ciphertext.copy()
        bad_ct[0] = (bad_ct[0] + np.uint64(1)) % np.uint64(gf.q)
        forged = SealedMessage(msg.sender, msg.receiver, msg.nonce, bad_ct,
                               msg.tag)
        with pytest.raises(ProtocolError, match="tag"):
            rx.open(forged)

    def test_tampered_tag_rejected(self, gf, rng, pair):
        tx, _ = pair
        rx = SecureChannel(gf, 123456789, 0, 1)
        msg = tx.seal(gf.random(8, rng))
        forged = SealedMessage(msg.sender, msg.receiver, msg.nonce,
                               msg.ciphertext, b"\x00" * 32)
        with pytest.raises(ProtocolError):
            rx.open(forged)

    def test_replayed_nonce_metadata_rejected(self, gf, rng, pair):
        tx, _ = pair
        rx = SecureChannel(gf, 123456789, 0, 1)
        msg = tx.seal(gf.random(8, rng))
        wrong_nonce = SealedMessage(msg.sender, msg.receiver, msg.nonce + 1,
                                    msg.ciphertext, msg.tag)
        with pytest.raises(ProtocolError):
            rx.open(wrong_nonce)

    def test_wrong_channel_rejected(self, gf, rng, pair):
        tx, _ = pair
        other = SecureChannel(gf, 123456789, sender=0, receiver=2)
        msg = tx.seal(gf.random(8, rng))
        with pytest.raises(ProtocolError, match="different channel"):
            other.open(msg)

    def test_wrong_key_rejected(self, gf, rng, pair):
        tx, _ = pair
        eavesdropper = SecureChannel(gf, 987654321, sender=0, receiver=1)
        msg = tx.seal(gf.random(8, rng))
        with pytest.raises(ProtocolError):
            eavesdropper.open(msg)


class TestConfidentiality:
    def test_nonce_reuse_prevented(self, gf, rng, pair):
        tx, _ = pair
        tx.seal(gf.random(4, rng), nonce=5)
        with pytest.raises(ProtocolError, match="nonce"):
            tx.seal(gf.random(4, rng), nonce=5)

    def test_ciphertext_looks_uniform(self, gf):
        """The relay (server) sees uniform field elements regardless of the
        plaintext — the property footnote 3 relies on."""
        from repro.field import FiniteField

        gf97 = FiniteField(97)
        tx = SecureChannel(gf97, shared_key=42, sender=0, receiver=1)
        fixed = gf97.zeros(20_000)  # worst case: all-zero plaintext
        ct = tx.seal(fixed).ciphertext
        counts = np.bincount(ct.astype(np.int64), minlength=97)
        expected = ct.size / 97
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 < 160, chi2

    def test_same_plaintext_fresh_ciphertexts(self, gf, rng, pair):
        tx, _ = pair
        payload = gf.random(16, rng)
        m1, m2 = tx.seal(payload), tx.seal(payload)
        assert not np.array_equal(m1.ciphertext, m2.ciphertext)
