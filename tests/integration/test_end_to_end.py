"""Cross-module integration tests: full training pipelines, multi-round
protocol reuse, and quantization/protocol interaction."""

import numpy as np
import pytest

from repro.field import FiniteField, PAPER_PRIME
from repro.fl import (
    LocalTrainingConfig,
    SecureFederatedAveraging,
    dirichlet_partition,
    iid_partition,
    logistic_regression,
    make_mnist_like,
    mlp,
)
from repro.fl.datasets.synthetic import train_test_split
from repro.protocols import (
    LightSecAgg,
    LSAParams,
    NaiveAggregation,
    SecAgg,
    SecAggPlus,
)
from repro.quantization import ModelQuantizer, QuantizationConfig


@pytest.fixture(scope="module")
def task():
    full = make_mnist_like(700, seed=11, noise=0.9)
    train, test = train_test_split(full, 0.25, seed=2)
    return train, test


class TestFullTrainingPipelines:
    @pytest.mark.parametrize("protocol_name", ["lightsecagg", "secagg", "secagg+"])
    def test_protocol_in_training_loop(self, task, protocol_name):
        train, test = task
        n = 6
        clients = iid_partition(train, n, seed=3)
        model = logistic_regression(seed=1)
        gf = FiniteField()
        if protocol_name == "lightsecagg":
            proto = LightSecAgg(gf, LSAParams.from_guarantees(n, 2, 2), model.dim)
        elif protocol_name == "secagg":
            proto = SecAgg(gf, n, model.dim)
        else:
            proto = SecAggPlus(gf, n, model.dim, graph_seed=1)
        trainer = SecureFederatedAveraging(
            model, clients, proto,
            local_config=LocalTrainingConfig(epochs=2, batch_size=32, lr=0.1),
        )
        hist = trainer.fit(2, dropout_rate=0.15,
                           rng=np.random.default_rng(5), test_set=test)
        assert hist.accuracies[-1] > 0.8, protocol_name

    def test_non_iid_training(self, task):
        train, test = task
        n = 8
        clients = dirichlet_partition(train, n, alpha=0.5, seed=3)
        model = logistic_regression(seed=1)
        gf = FiniteField()
        proto = LightSecAgg(gf, LSAParams.from_guarantees(n, 2, 2), model.dim)
        trainer = SecureFederatedAveraging(
            model, clients, proto,
            local_config=LocalTrainingConfig(epochs=2, batch_size=16, lr=0.1),
        )
        hist = trainer.fit(3, dropout_rate=0.2,
                           rng=np.random.default_rng(0), test_set=test)
        assert hist.accuracies[-1] > 0.7

    def test_mlp_with_paper_field(self, task):
        train, test = task
        n = 5
        clients = iid_partition(train, n, seed=0)
        model = mlp(hidden=32, seed=2)
        gf = FiniteField(PAPER_PRIME)
        proto = LightSecAgg(gf, LSAParams.from_guarantees(n, 1, 1), model.dim)
        quant = ModelQuantizer(gf, QuantizationConfig(levels=1 << 16, clip=8.0))
        trainer = SecureFederatedAveraging(
            model, clients, proto, quantizer=quant,
            local_config=LocalTrainingConfig(epochs=1, batch_size=32, lr=0.1),
        )
        hist = trainer.fit(2, rng=np.random.default_rng(1), test_set=test)
        assert hist.accuracies[-1] > 0.6


class TestProtocolReuse:
    def test_protocol_object_reusable_across_rounds(self, gf, rng):
        """A protocol instance must be stateless across run_round calls."""
        params = LSAParams.from_guarantees(6, 2, 2)
        proto = LightSecAgg(gf, params, 10)
        for k in range(5):
            updates = {i: gf.random(10, rng) for i in range(6)}
            drop = {k % 6} if k % 2 else set()
            result = proto.run_round(updates, drop, rng)
            survivors = [i for i in range(6) if i not in drop]
            assert np.array_equal(
                result.aggregate, proto.expected_aggregate(updates, survivors)
            )

    def test_fresh_masks_every_round(self, gf, rng):
        """Masked uploads for identical updates must differ across rounds
        (fresh per-round randomness — multi-round privacy hygiene)."""
        params = LSAParams.from_guarantees(4, 1, 1)
        proto = LightSecAgg(gf, params, 16)
        updates = {i: gf.zeros(16) for i in range(4)}
        # Run the offline+mask phases twice via the user object directly.
        from repro.protocols.lightsecagg.user import LSAUser

        masked = []
        for _ in range(2):
            user = LSAUser(0, gf, params, 16)
            user.offline_encode(rng)
            masked.append(user.mask_update(updates[0]))
        assert not np.array_equal(masked[0], masked[1])


class TestQuantizationProtocolInteraction:
    def test_round_trip_error_bounded_by_theory(self, gf, rng):
        """End-to-end error of quantize -> secure-aggregate -> dequantize
        stays within the deterministic rounding bound n/levels."""
        n, dim, levels = 8, 200, 1 << 12
        quant = ModelQuantizer(gf, QuantizationConfig(levels=levels, clip=4.0))
        params = LSAParams.from_guarantees(n, 2, 2)
        proto = LightSecAgg(gf, params, dim)
        reals = {i: rng.normal(0, 0.5, dim) for i in range(n)}
        updates = {i: quant.quantize(reals[i], rng) for i in range(n)}
        result = proto.run_round(updates, {3}, rng)
        out = quant.dequantize(result.aggregate)
        expected = sum(reals[i] for i in result.survivors)
        assert np.max(np.abs(out - expected)) < len(result.survivors) / levels

    def test_weighted_secure_aggregation_matches_real(self, gf, rng):
        """Remark 3's in-field weighting, checked against real arithmetic."""
        n, dim = 5, 64
        weights = [3, 1, 4, 1, 5]
        # Clip must exceed max |w_i * real| (~5 * 4 sigma) or the weighted
        # values saturate and the comparison against exact reals breaks.
        quant = ModelQuantizer(gf, QuantizationConfig(levels=1 << 14, clip=10.0))
        params = LSAParams.from_guarantees(n, 1, 1)
        proto = LightSecAgg(gf, params, dim)
        reals = {i: rng.normal(0, 0.3, dim) for i in range(n)}
        updates = {
            i: quant.quantize(weights[i] * reals[i], rng) for i in range(n)
        }
        result = proto.run_round(updates, {2}, rng)
        out = quant.dequantize(result.aggregate)
        expected = sum(weights[i] * reals[i] for i in result.survivors)
        assert np.allclose(out, expected, atol=2e-3)
