"""Every example script must run to completion as a subprocess."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")
SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src")
)


def run_example(name, *args):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, path, *args],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "aggregate verified" in out


def test_sync_femnist_cnn():
    out = run_example("sync_femnist_cnn.py", "--rounds", "1")
    assert "lightsecagg" in out
    assert "accuracy gap" in out


def test_async_buffered_fl():
    out = run_example("async_buffered_fl.py", "--rounds", "2")
    assert "async-lightsecagg" in out


def test_privacy_attack_demo():
    out = run_example("privacy_attack_demo.py")
    assert "success=True" in out
    assert "success=False" in out


def test_systems_projection():
    out = run_example("systems_projection.py")
    assert "Table 4" in out and "Table 2" in out and "Table 3" in out
    assert "lightsecagg" in out


def test_straggler_resilience():
    out = run_example("straggler_resilience.py")
    assert "on critical path: False" in out


def test_paper_example_3users():
    out = run_example("paper_example_3users.py")
    assert "eq. 4" in out or "ONE subtraction" in out
    assert "verified exactly" in out
