"""Big-integer <-> GF(q) limb conversion.

SecAgg Shamir-shares 256-bit PRG seeds and DH secret keys, but our Shamir
scheme operates over GF(q) with q < 2**32.  Large integers are therefore
split into base-q limbs (little-endian), shared limb-wise, and reassembled
after reconstruction.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CodingError


def limbs_needed(bits: int, q: int) -> int:
    """Number of base-q limbs required to hold a ``bits``-bit integer."""
    if bits <= 0:
        raise CodingError("bits must be positive")
    per_limb = (q - 1).bit_length() - 1  # bits we can safely store per limb
    return -(-bits // per_limb)


def int_to_limbs(value: int, q: int, count: int) -> np.ndarray:
    """Split a non-negative int into ``count`` base-q limbs (little-endian)."""
    if value < 0:
        raise CodingError("value must be non-negative")
    limbs = np.zeros(count, dtype=np.uint64)
    for k in range(count):
        limbs[k] = value % q
        value //= q
    if value:
        raise CodingError(f"value does not fit in {count} base-{q} limbs")
    return limbs


def limbs_to_int(limbs: np.ndarray, q: int) -> int:
    """Inverse of :func:`int_to_limbs`."""
    value = 0
    for limb in reversed(np.asarray(limbs).tolist()):
        value = value * q + int(limb)
    return value
