"""Shared small utilities."""

from repro.utils.ints import int_to_limbs, limbs_needed, limbs_to_int

__all__ = ["int_to_limbs", "limbs_to_int", "limbs_needed"]
