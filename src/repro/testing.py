"""Reusable verification helpers for downstream users and the test suite.

Secure-aggregation code fails in ways that are easy to miss (a wrong mask
still produces *a* vector), so the library ships the assertions we use
internally: exact-aggregate verification against the naive oracle, field-
array validity checks, and quick statistical uniformity tests.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set

import numpy as np

from repro.exceptions import ReproError
from repro.field.arithmetic import FiniteField
from repro.protocols.base import AggregationResult, SecureAggregationProtocol


def make_random_updates(
    gf: FiniteField,
    num_users: int,
    model_dim: int,
    rng: Optional[np.random.Generator] = None,
) -> Dict[int, np.ndarray]:
    """One uniform field vector per user — standard protocol-test input."""
    rng = rng if rng is not None else np.random.default_rng()
    return {i: gf.random(model_dim, rng) for i in range(num_users)}


def assert_field_vector(gf: FiniteField, arr: np.ndarray, dim: int) -> None:
    """Raise unless ``arr`` is a valid reduced GF(q) vector of length dim."""
    if not isinstance(arr, np.ndarray) or arr.shape != (dim,):
        raise ReproError(f"expected shape ({dim},), got {getattr(arr, 'shape', None)}")
    if arr.dtype != np.uint64:
        raise ReproError(f"expected uint64 residues, got dtype {arr.dtype}")
    if arr.size and int(arr.max()) >= gf.q:
        raise ReproError("entries exceed the field modulus")


def assert_exact_aggregate(
    protocol: SecureAggregationProtocol,
    result: AggregationResult,
    updates: Dict[int, np.ndarray],
) -> None:
    """Raise unless the round output equals the plain sum of survivors."""
    expected = protocol.expected_aggregate(updates, result.survivors)
    if not np.array_equal(result.aggregate, expected):
        diff = int(np.count_nonzero(result.aggregate != expected))
        raise ReproError(
            f"aggregate mismatch on {diff}/{expected.size} coordinates for "
            f"survivors {result.survivors}"
        )


def run_and_verify(
    protocol: SecureAggregationProtocol,
    model_dim: int,
    dropouts: Optional[Set[int]] = None,
    rng: Optional[np.random.Generator] = None,
) -> AggregationResult:
    """Run one round on random inputs and verify it end to end."""
    rng = rng if rng is not None else np.random.default_rng()
    updates = make_random_updates(protocol.gf, protocol.num_users, model_dim, rng)
    result = protocol.run_round(updates, dropouts or set(), rng)
    assert_exact_aggregate(protocol, result, updates)
    assert_field_vector(protocol.gf, result.aggregate, model_dim)
    return result


def conformance_suite(
    protocol_factory,
    model_dim: int = 24,
    seed: int = 0,
    max_dropouts: int = 2,
) -> int:
    """Battery of behaviours every SecureAggregationProtocol must satisfy.

    ``protocol_factory()`` returns a fresh protocol instance.  Checks:
    exact aggregation for every dropout count up to ``max_dropouts``,
    determinism under a fixed rng, statelessness across rounds, and
    transcript sanity.  Returns the number of rounds exercised; raises
    :class:`ReproError` (or the protocol's own error) on any violation.
    """
    proto = protocol_factory()
    rounds = 0
    for num_drops in range(max_dropouts + 1):
        rng = np.random.default_rng(seed + num_drops)
        updates = make_random_updates(proto.gf, proto.num_users, model_dim, rng)
        dropouts = set(range(num_drops))
        result = proto.run_round(updates, dropouts, rng)
        assert_exact_aggregate(proto, result, updates)
        assert_field_vector(proto.gf, result.aggregate, model_dim)
        if len(result.transcript) == 0 and proto.num_users > 1:
            raise ReproError("protocol recorded no messages")
        if result.transcript.elements() < 0:
            raise ReproError("negative transcript accounting")
        # Determinism: same inputs and rng seed reproduce the aggregate.
        again = proto.run_round(
            updates, dropouts, np.random.default_rng(seed + num_drops)
        )
        repeat = proto.run_round(
            updates, dropouts, np.random.default_rng(seed + num_drops)
        )
        if not np.array_equal(again.aggregate, repeat.aggregate):
            raise ReproError("protocol is nondeterministic under a fixed rng")
        rounds += 3
    return rounds


def chi_square_uniformity(
    samples: Sequence[int], modulus: int, significance_chi2: float
) -> float:
    """Chi-square statistic of ``samples`` against uniform over [0, q).

    Returns the statistic; raises when it exceeds the caller-provided
    critical value (callers pick it for their degrees of freedom).
    """
    counts = np.bincount(np.asarray(samples, dtype=np.int64), minlength=modulus)
    expected = len(samples) / modulus
    if expected <= 0:
        raise ReproError("no samples supplied")
    chi2 = float(((counts - expected) ** 2 / expected).sum())
    if chi2 > significance_chi2:
        raise ReproError(
            f"uniformity rejected: chi2={chi2:.1f} > {significance_chi2}"
        )
    return chi2
