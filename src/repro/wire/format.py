"""Low-level framing and payload primitives for the shard wire protocol.

Every message that crosses a shard-transport boundary travels as one
*frame*::

    | magic "LW" | version u8 | msg_type u8 | request_id u64 | len u32 | payload |

All integers are little-endian.  ``request_id`` is a caller-chosen
correlation id: a transport multiplexing several outstanding requests
over one connection (e.g. an online round racing a background refill)
matches each response frame to its request by this id, so frames may
arrive out of order.  ``len`` is the payload length in bytes, which lets
a stream reader recover frame boundaries without parsing the payload.

Payloads are built from a small set of typed primitives
(:class:`PayloadWriter` / :class:`PayloadReader`).  Numpy arrays are the
hot path: the writer appends the array's buffer as a memoryview (no
serialization pass, one copy total at the final join) and the reader
returns ``np.frombuffer`` views straight into the received frame — a
decoded ``ShardRoundRequest`` aliases the frame's bytes rather than
copying them.  Decoded arrays are therefore read-only; callers that
mutate must copy.
"""

from __future__ import annotations

import struct
from typing import List, Tuple, Union

import numpy as np

from repro.exceptions import WireError

MAGIC = b"LW"
WIRE_VERSION = 1

# The frame header's ``len`` field is a u32, so no payload (and no
# length-prefixed bytes/str primitive) may exceed this many bytes.
MAX_PAYLOAD_BYTES = 0xFFFFFFFF

# magic(2) version(1) msg_type(1) request_id(8) payload_len(4)
_HEADER = struct.Struct("<2sBBQI")
HEADER_SIZE = _HEADER.size

_U8 = struct.Struct("<B")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

# Wire dtype codes.  A closed set keeps decode safe: no pickling, no
# arbitrary dtype strings from the peer.
_DTYPE_CODES = {
    np.dtype(np.uint8): 0,
    np.dtype(np.uint32): 1,
    np.dtype(np.uint64): 2,
    np.dtype(np.int64): 3,
    np.dtype(np.float64): 4,
}
_CODE_DTYPES = {code: dt for dt, code in _DTYPE_CODES.items()}


class PayloadWriter:
    """Accumulates payload primitives as a list of buffer segments.

    Array data is appended as a memoryview over the array's own buffer,
    so building a payload never serializes or copies element data; the
    single copy happens in :meth:`getvalue`'s join (or in the socket
    layer, for transports that support vectored writes of
    :attr:`segments`).
    """

    def __init__(self) -> None:
        self.segments: List[Union[bytes, memoryview]] = []

    # -- scalar primitives ---------------------------------------------
    def put_u8(self, value: int) -> None:
        self.segments.append(_U8.pack(value))

    def put_u32(self, value: int) -> None:
        self.segments.append(_U32.pack(value))

    def put_u64(self, value: int) -> None:
        self.segments.append(_U64.pack(value))

    def put_i64(self, value: int) -> None:
        self.segments.append(_I64.pack(value))

    def put_f64(self, value: float) -> None:
        self.segments.append(_F64.pack(value))

    def put_bytes(self, data: bytes) -> None:
        if len(data) > MAX_PAYLOAD_BYTES:
            raise WireError(
                f"bytes value of {len(data)} bytes exceeds the u32 length "
                f"prefix (max {MAX_PAYLOAD_BYTES})"
            )
        self.put_u32(len(data))
        self.segments.append(data)

    def put_str(self, text: str) -> None:
        self.put_bytes(text.encode("utf-8"))

    # -- arrays ---------------------------------------------------------
    def put_array(self, array: np.ndarray) -> None:
        """Append one numpy array: dtype code, shape, raw C-order bytes."""
        array = np.asarray(array)
        code = _DTYPE_CODES.get(array.dtype)
        if code is None:
            raise WireError(
                f"dtype {array.dtype} is not wire-encodable; supported: "
                f"{sorted(str(d) for d in _DTYPE_CODES)}"
            )
        if array.ndim > 255:
            raise WireError(f"array rank {array.ndim} exceeds wire limit")
        contiguous = np.ascontiguousarray(array)
        self.put_u8(code)
        self.put_u8(contiguous.ndim)
        for dim in contiguous.shape:
            self.put_u64(dim)
        if contiguous.size:
            self.segments.append(memoryview(contiguous).cast("B"))

    @property
    def nbytes(self) -> int:
        """Total payload size, computed without joining the segments."""
        return sum(len(segment) for segment in self.segments)

    def getvalue(self) -> bytes:
        return b"".join(self.segments)


class PayloadReader:
    """Sequential reader over one frame's payload memoryview."""

    def __init__(self, view: memoryview) -> None:
        self._view = view
        self._offset = 0

    def _take(self, nbytes: int) -> memoryview:
        end = self._offset + nbytes
        if end > len(self._view):
            raise WireError(
                f"truncated payload: wanted {nbytes} bytes at offset "
                f"{self._offset}, have {len(self._view) - self._offset}"
            )
        chunk = self._view[self._offset : end]
        self._offset = end
        return chunk

    # -- scalar primitives ---------------------------------------------
    def get_u8(self) -> int:
        return _U8.unpack(self._take(1))[0]

    def get_u32(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def get_u64(self) -> int:
        return _U64.unpack(self._take(8))[0]

    def get_i64(self) -> int:
        return _I64.unpack(self._take(8))[0]

    def get_f64(self) -> float:
        return _F64.unpack(self._take(8))[0]

    def get_bytes(self) -> bytes:
        return bytes(self._take(self.get_u32()))

    def get_str(self) -> str:
        return self.get_bytes().decode("utf-8")

    # -- arrays ---------------------------------------------------------
    def get_array(self) -> np.ndarray:
        """Read one array as a zero-copy (read-only) view into the frame."""
        code = self.get_u8()
        dtype = _CODE_DTYPES.get(code)
        if dtype is None:
            raise WireError(f"unknown wire dtype code {code}")
        ndim = self.get_u8()
        shape = tuple(self.get_u64() for _ in range(ndim))
        count = 1
        for dim in shape:
            count *= dim
        raw = self._take(count * dtype.itemsize)
        return np.frombuffer(raw, dtype=dtype).reshape(shape)

    @property
    def remaining(self) -> int:
        return len(self._view) - self._offset


def frame_segments(
    msg_type: int, request_id: int, payload: PayloadWriter
) -> List[Union[bytes, memoryview]]:
    """One frame as ``[header, *payload segments]``, ready for a vectored
    write (``socket.sendmsg``) with no join of the payload buffers.

    The u32 ``len`` header field is validated here — the one choke point
    both the joining and the vectored encode paths go through — so an
    oversized payload surfaces as a typed :class:`WireError` instead of a
    raw ``struct.error`` (or, worse, a silently mis-framed stream).
    """
    nbytes = payload.nbytes
    if nbytes > MAX_PAYLOAD_BYTES:
        raise WireError(
            f"payload of {nbytes} bytes exceeds the u32 frame length "
            f"field (max {MAX_PAYLOAD_BYTES})"
        )
    header = _HEADER.pack(MAGIC, WIRE_VERSION, msg_type, request_id, nbytes)
    return [header, *payload.segments]


def encode_frame(msg_type: int, request_id: int, payload: PayloadWriter) -> bytes:
    """Assemble one wire frame from a message type and its payload."""
    return b"".join(frame_segments(msg_type, request_id, payload))


def decode_frame(data: bytes) -> Tuple[int, int, PayloadReader]:
    """Split one frame into ``(msg_type, request_id, payload reader)``.

    Validates magic, version, and the length prefix; a frame whose
    declared payload length disagrees with the buffer is rejected rather
    than silently mis-parsed.
    """
    if len(data) < HEADER_SIZE:
        raise WireError(
            f"frame too short for header: {len(data)} < {HEADER_SIZE} bytes"
        )
    view = memoryview(data)
    magic, version, msg_type, request_id, length = _HEADER.unpack(
        view[:HEADER_SIZE]
    )
    if magic != MAGIC:
        raise WireError(f"bad frame magic {magic!r}, expected {MAGIC!r}")
    if version != WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {version}, this build speaks "
            f"{WIRE_VERSION}"
        )
    payload = view[HEADER_SIZE:]
    if len(payload) != length:
        raise WireError(
            f"frame length mismatch: header declares {length} payload "
            f"bytes, buffer carries {len(payload)}"
        )
    return msg_type, request_id, PayloadReader(payload)
