"""Low-level framing and payload primitives for the shard wire protocol.

Every message that crosses a shard-transport boundary travels as one
*frame*::

    | magic "LW" | version u8 | msg_type u8 | request_id u64 | len u32 | payload |

All integers are little-endian.  ``request_id`` is a caller-chosen
correlation id: a transport multiplexing several outstanding requests
over one connection (e.g. an online round racing a background refill)
matches each response frame to its request by this id, so frames may
arrive out of order.  ``len`` is the payload length in bytes, which lets
a stream reader recover frame boundaries without parsing the payload.

Payloads are built from a small set of typed primitives
(:class:`PayloadWriter` / :class:`PayloadReader`).  Numpy arrays are the
hot path: the writer appends the array's buffer as a memoryview (no
serialization pass, one copy total at the final join) and the reader
returns ``np.frombuffer`` views straight into the received frame — a
decoded ``ShardRoundRequest`` aliases the frame's bytes rather than
copying them.  Decoded arrays are therefore read-only; callers that
mutate must copy.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from repro.exceptions import WireError

MAGIC = b"LW"
WIRE_VERSION = 1

# The frame header's ``len`` field is a u32, so no payload (and no
# length-prefixed bytes/str primitive) may exceed this many bytes.
MAX_PAYLOAD_BYTES = 0xFFFFFFFF

# magic(2) version(1) msg_type(1) request_id(8) payload_len(4)
_HEADER = struct.Struct("<2sBBQI")
HEADER_SIZE = _HEADER.size

_U8 = struct.Struct("<B")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

# Wire dtype codes.  A closed set keeps decode safe: no pickling, no
# arbitrary dtype strings from the peer.  The keys are spelled as
# explicit little-endian layouts, not native dtypes: wire arrays are
# little-endian by definition, and building the whitelist from native
# dtypes would make a big-endian host silently emit byte-swapped
# payloads that every little-endian peer mis-reads.
_DTYPE_CODES = {
    np.dtype("|u1"): 0,
    np.dtype("<u4"): 1,
    np.dtype("<u8"): 2,
    np.dtype("<i8"): 3,
    np.dtype("<f8"): 4,
}
_CODE_DTYPES = {code: dt for dt, code in _DTYPE_CODES.items()}

# Array tag layout: the low 6 bits carry the dtype code, the top two
# flag alternate element encodings.  A raw array's tag is therefore
# byte-identical to the pre-flag format, so old frames decode unchanged.
_PACKED_FLAG = 0x80  # elements bit-packed at a declared sub-word width
_SHM_FLAG = 0x40  # elements live in a named shared-memory segment
_CODE_MASK = 0x3F

# Dtypes eligible for bit-packing: unsigned, so a declared width ``b``
# means exactly "every element < 2**b".
_PACKABLE = frozenset(
    (np.dtype("|u1"), np.dtype("<u4"), np.dtype("<u8"))
)


def _dtype_code(dtype: np.dtype) -> int:
    """Map a dtype onto its wire code, with a typed rejection.

    Big-endian layouts of otherwise supported types get a pointed error:
    they would round-trip with silently swapped bytes if waved through.
    """
    code = _DTYPE_CODES.get(dtype)
    if code is not None:
        return code
    if dtype.byteorder == ">" and dtype.newbyteorder("<") in _DTYPE_CODES:
        raise WireError(
            f"big-endian dtype {dtype.str} is not wire-encodable: wire "
            f"arrays are little-endian; convert with "
            f".astype('{dtype.newbyteorder('<').str}') first"
        )
    raise WireError(
        f"dtype {dtype} is not wire-encodable; supported: "
        f"{sorted(str(d) for d in _DTYPE_CODES)}"
    )


@dataclass(frozen=True)
class ShmArrayRef:
    """Where an array's elements live inside a shared-memory segment.

    A frame carrying a ref instead of element bytes stays a few dozen
    bytes no matter how large the array: the peer resolves ``name`` to
    an attached segment and maps ``shape`` elements of ``dtype`` at
    ``offset`` — the same-host zero-copy lane.
    """

    name: str
    offset: int
    shape: Tuple[int, ...]
    dtype: str = "<u8"  # numpy dtype string; must be wire-encodable

    @property
    def count(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count

    @property
    def nbytes(self) -> int:
        return self.count * np.dtype(self.dtype).itemsize


def _pack_bits(values: np.ndarray, bits: int) -> np.ndarray:
    """Bit-pack 1-D unsigned values (< ``2**bits``) LSB-first.

    Element ``i`` occupies bit positions ``[i*bits, (i+1)*bits)`` of a
    little-endian bit stream, so the packed size is exactly
    ``ceil(n*bits/8)`` bytes regardless of the source dtype width.
    """
    le = np.ascontiguousarray(values, dtype="<u8")
    octets = le.view(np.uint8).reshape(le.size, 8)
    lanes = np.unpackbits(octets, axis=1, bitorder="little")[:, :bits]
    return np.packbits(lanes.ravel(), bitorder="little")


def _unpack_bits(raw: memoryview, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`_pack_bits`: ``count`` values as uint64."""
    lanes = np.unpackbits(
        np.frombuffer(raw, dtype=np.uint8),
        count=count * bits,
        bitorder="little",
    ).reshape(count, bits)
    octets = np.zeros((count, 64), dtype=np.uint8)
    octets[:, :bits] = lanes
    packed = np.packbits(octets, axis=1, bitorder="little")
    return packed.reshape(count, 8).view("<u8").reshape(count).astype(
        np.uint64, copy=False
    )


def packed_nbytes(count: int, bits: int) -> int:
    """Element bytes a packed array of ``count`` ``bits``-wide values needs."""
    return (count * bits + 7) // 8


def pack_bits(values: np.ndarray, bits: int) -> bytes:
    """Public bit-packing: 1-D unsigned values at ``bits`` per element.

    The standalone form of the wire's packed-array payload lane, for
    callers that carry the ``(bits, count)`` framing themselves — e.g.
    the HTTP control plane's base64 vector encoding, where both sides
    already know the field width and the model dimension.  Raises
    :class:`WireError` when a value does not fit the declared width.
    """
    flat = np.ascontiguousarray(np.asarray(values), dtype="<u8").reshape(-1)
    bits = int(bits)
    if not 1 <= bits <= 64:
        raise WireError(f"bit width must be in [1, 64], got {bits}")
    if flat.size:
        needed = max(1, int(flat.max()).bit_length())
        if needed > bits:
            raise WireError(
                f"values need {needed} bits but the declared width is "
                f"{bits}"
            )
    return _pack_bits(flat, bits).tobytes()


def unpack_bits(data: bytes, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: ``count`` uint64 values from bytes."""
    bits, count = int(bits), int(count)
    if not 1 <= bits <= 64:
        raise WireError(f"bit width must be in [1, 64], got {bits}")
    expected = packed_nbytes(count, bits)
    if len(data) != expected:
        raise WireError(
            f"packed payload is {len(data)} bytes; {count} values at "
            f"{bits} bits need exactly {expected}"
        )
    if count == 0:
        return np.zeros(0, dtype=np.uint64)
    return _unpack_bits(memoryview(data), bits, count)


class PayloadWriter:
    """Accumulates payload primitives as a list of buffer segments.

    Array data is appended as a memoryview over the array's own buffer,
    so building a payload never serializes or copies element data; the
    single copy happens in :meth:`getvalue`'s join (or in the socket
    layer, for transports that support vectored writes of
    :attr:`segments`).
    """

    def __init__(self) -> None:
        self.segments: List[Union[bytes, memoryview]] = []

    # -- scalar primitives ---------------------------------------------
    def put_u8(self, value: int) -> None:
        self.segments.append(_U8.pack(value))

    def put_u32(self, value: int) -> None:
        self.segments.append(_U32.pack(value))

    def put_u64(self, value: int) -> None:
        self.segments.append(_U64.pack(value))

    def put_i64(self, value: int) -> None:
        self.segments.append(_I64.pack(value))

    def put_f64(self, value: float) -> None:
        self.segments.append(_F64.pack(value))

    def put_bytes(self, data: bytes) -> None:
        if len(data) > MAX_PAYLOAD_BYTES:
            raise WireError(
                f"bytes value of {len(data)} bytes exceeds the u32 length "
                f"prefix (max {MAX_PAYLOAD_BYTES})"
            )
        self.put_u32(len(data))
        self.segments.append(data)

    def put_str(self, text: str) -> None:
        self.put_bytes(text.encode("utf-8"))

    # -- arrays ---------------------------------------------------------
    def put_array(self, array: np.ndarray) -> None:
        """Append one numpy array: dtype code, shape, raw C-order bytes."""
        array = np.asarray(array)
        code = _dtype_code(array.dtype)
        if array.ndim > 255:
            raise WireError(f"array rank {array.ndim} exceeds wire limit")
        contiguous = np.ascontiguousarray(array)
        self.put_u8(code)
        self.put_u8(contiguous.ndim)
        for dim in contiguous.shape:
            self.put_u64(dim)
        if contiguous.size:
            self.segments.append(memoryview(contiguous).cast("B"))

    def put_packed_array(
        self, array: np.ndarray, bits: Optional[int] = None
    ) -> None:
        """Append one unsigned array with elements bit-packed at width
        ``bits``.

        ``bits`` defaults to the smallest width that holds the array's
        max; a declared width (e.g. ``ceil(log2 q)`` for field elements)
        pins the layout independent of the data and is validated against
        the actual max.  The width rides in the header, so decode is
        self-describing and :meth:`PayloadReader.get_array` reconstructs
        the exact original values and dtype.
        """
        array = np.asarray(array)
        code = _dtype_code(array.dtype)
        if array.dtype not in _PACKABLE:
            raise WireError(
                f"dtype {array.dtype} cannot be bit-packed; packable "
                f"dtypes: {sorted(str(d) for d in _PACKABLE)}"
            )
        if array.ndim > 255:
            raise WireError(f"array rank {array.ndim} exceeds wire limit")
        dtype_bits = array.dtype.itemsize * 8
        flat = np.ascontiguousarray(array).reshape(-1)
        needed = (
            max(1, int(flat.max()).bit_length()) if flat.size else 1
        )
        if bits is None:
            bits = needed
        else:
            bits = int(bits)
            if not 1 <= bits <= dtype_bits:
                raise WireError(
                    f"packed bit width {bits} outside 1..{dtype_bits} "
                    f"for dtype {array.dtype}"
                )
            if flat.size and needed > bits:
                raise WireError(
                    f"array max {int(flat.max())} needs {needed} bits, "
                    f"over the declared {bits}-bit bound"
                )
        self.put_u8(_PACKED_FLAG | code)
        self.put_u8(array.ndim)
        for dim in array.shape:
            self.put_u64(dim)
        self.put_u8(bits)
        if flat.size:
            self.segments.append(memoryview(_pack_bits(flat, bits)))

    def put_shm_array(self, ref: ShmArrayRef) -> None:
        """Append an array *by reference* into a shared-memory segment.

        The element bytes must already sit in the named segment; only
        the (dtype, shape, name, offset) record crosses the wire.  A
        reader without an shm resolver rejects the frame, so refs never
        leak onto a transport that cannot honor them.
        """
        code = _dtype_code(np.dtype(ref.dtype))
        if len(ref.shape) > 255:
            raise WireError(f"array rank {len(ref.shape)} exceeds wire limit")
        self.put_u8(_SHM_FLAG | code)
        self.put_u8(len(ref.shape))
        for dim in ref.shape:
            self.put_u64(dim)
        self.put_str(ref.name)
        self.put_u64(ref.offset)

    @property
    def nbytes(self) -> int:
        """Total payload size, computed without joining the segments."""
        return sum(len(segment) for segment in self.segments)

    def getvalue(self) -> bytes:
        return b"".join(self.segments)


class PayloadReader:
    """Sequential reader over one frame's payload memoryview.

    ``shm`` is an optional resolver mapping a shared-memory segment name
    to its buffer (``Callable[[str], memoryview]``); only readers on a
    same-host transport provide one, so frames carrying shm array refs
    fail loudly anywhere else.
    """

    def __init__(
        self,
        view: memoryview,
        shm: Optional[Callable[[str], memoryview]] = None,
    ) -> None:
        self._view = view
        self._offset = 0
        self._shm = shm
        #: The ref behind the most recent :meth:`get_array` when that
        #: array came from a shared-memory segment, else ``None``.
        #: Decoders that must know an array aliases segment memory (and
        #: so will be overwritten on region reuse) read this instead of
        #: re-parsing the tag.
        self.last_shm_ref: Optional[ShmArrayRef] = None

    def _take(self, nbytes: int) -> memoryview:
        end = self._offset + nbytes
        if end > len(self._view):
            raise WireError(
                f"truncated payload: wanted {nbytes} bytes at offset "
                f"{self._offset}, have {len(self._view) - self._offset}"
            )
        chunk = self._view[self._offset : end]
        self._offset = end
        return chunk

    # -- scalar primitives ---------------------------------------------
    def peek_u8(self) -> int:
        """The next byte without consuming it (e.g. an array's tag)."""
        if self._offset >= len(self._view):
            raise WireError(
                f"truncated payload: wanted 1 byte at offset "
                f"{self._offset}, have 0"
            )
        return self._view[self._offset]

    def get_u8(self) -> int:
        return _U8.unpack(self._take(1))[0]

    def get_u32(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def get_u64(self) -> int:
        return _U64.unpack(self._take(8))[0]

    def get_i64(self) -> int:
        return _I64.unpack(self._take(8))[0]

    def get_f64(self) -> float:
        return _F64.unpack(self._take(8))[0]

    def get_bytes(self) -> bytes:
        return bytes(self._take(self.get_u32()))

    def get_str(self) -> str:
        return self.get_bytes().decode("utf-8")

    # -- arrays ---------------------------------------------------------
    def get_array(self) -> np.ndarray:
        """Read one array, whatever its element encoding.

        Raw arrays come back as zero-copy read-only views into the
        frame; bit-packed arrays are reconstructed exactly (values,
        dtype, and shape identical to what was packed); shm refs resolve
        to read-only views into the named segment.
        """
        self.last_shm_ref = None
        tag = self.get_u8()
        code = tag & _CODE_MASK
        flags = tag & ~_CODE_MASK
        dtype = _CODE_DTYPES.get(code)
        if dtype is None:
            raise WireError(f"unknown wire dtype code {code}")
        ndim = self.get_u8()
        shape = tuple(self.get_u64() for _ in range(ndim))
        count = 1
        for dim in shape:
            count *= dim
        if flags == 0:
            raw = self._take(count * dtype.itemsize)
            return np.frombuffer(raw, dtype=dtype).reshape(shape)
        if flags == _PACKED_FLAG:
            return self._take_packed(dtype, shape, count)
        if flags == _SHM_FLAG:
            return self._take_shm(dtype, shape, count)
        raise WireError(f"unknown array tag flags 0x{flags:02x}")

    def get_packed_array(self) -> np.ndarray:
        """Read one array, insisting it was bit-packed on the wire."""
        if not self.peek_u8() & _PACKED_FLAG:
            raise WireError(
                f"array at offset {self._offset} is not bit-packed"
            )
        return self.get_array()

    def _take_packed(
        self, dtype: np.dtype, shape: Tuple[int, ...], count: int
    ) -> np.ndarray:
        if dtype not in _PACKABLE:
            raise WireError(f"dtype {dtype} cannot be bit-packed")
        bits = self.get_u8()
        if not 1 <= bits <= dtype.itemsize * 8:
            raise WireError(
                f"packed bit width {bits} invalid for dtype {dtype}"
            )
        raw = self._take(packed_nbytes(count, bits))
        if count == 0:
            values = np.zeros(0, dtype=np.uint64)
        else:
            values = _unpack_bits(raw, bits, count)
        array = np.ascontiguousarray(
            values.astype(dtype, casting="unsafe", copy=False)
        ).reshape(shape)
        array.setflags(write=False)
        return array

    def _take_shm(
        self, dtype: np.dtype, shape: Tuple[int, ...], count: int
    ) -> np.ndarray:
        name = self.get_str()
        offset = self.get_u64()
        if self._shm is None:
            raise WireError(
                f"frame references shared-memory segment {name!r} but "
                f"this reader has no shm resolver"
            )
        buf = self._shm(name)
        nbytes = count * dtype.itemsize
        if offset + nbytes > len(buf):
            raise WireError(
                f"shm array [{offset}, {offset + nbytes}) overruns "
                f"segment {name!r} of {len(buf)} bytes"
            )
        array = np.frombuffer(
            buf, dtype=dtype, count=count, offset=offset
        ).reshape(shape)
        array.setflags(write=False)
        self.last_shm_ref = ShmArrayRef(
            name=name, offset=offset, shape=shape, dtype=dtype.str
        )
        return array

    @property
    def remaining(self) -> int:
        return len(self._view) - self._offset


def put_shm_ref(w: "PayloadWriter", ref: ShmArrayRef) -> None:
    """Encode an :class:`ShmArrayRef` as a plain record (not an array).

    Used for fields that must stay references on decode — e.g. a round
    request telling the worker *where to write* its aggregate.
    """
    w.put_u8(_dtype_code(np.dtype(ref.dtype)))
    w.put_u8(len(ref.shape))
    for dim in ref.shape:
        w.put_u64(dim)
    w.put_str(ref.name)
    w.put_u64(ref.offset)


def get_shm_ref(r: "PayloadReader") -> ShmArrayRef:
    """Decode the record written by :func:`put_shm_ref`."""
    code = r.get_u8()
    dtype = _CODE_DTYPES.get(code)
    if dtype is None:
        raise WireError(f"unknown wire dtype code {code}")
    ndim = r.get_u8()
    shape = tuple(r.get_u64() for _ in range(ndim))
    return ShmArrayRef(
        name=r.get_str(), offset=r.get_u64(), shape=shape, dtype=dtype.str
    )


def frame_segments(
    msg_type: int, request_id: int, payload: PayloadWriter
) -> List[Union[bytes, memoryview]]:
    """One frame as ``[header, *payload segments]``, ready for a vectored
    write (``socket.sendmsg``) with no join of the payload buffers.

    The u32 ``len`` header field is validated here — the one choke point
    both the joining and the vectored encode paths go through — so an
    oversized payload surfaces as a typed :class:`WireError` instead of a
    raw ``struct.error`` (or, worse, a silently mis-framed stream).
    """
    nbytes = payload.nbytes
    if nbytes > MAX_PAYLOAD_BYTES:
        raise WireError(
            f"payload of {nbytes} bytes exceeds the u32 frame length "
            f"field (max {MAX_PAYLOAD_BYTES})"
        )
    header = _HEADER.pack(MAGIC, WIRE_VERSION, msg_type, request_id, nbytes)
    return [header, *payload.segments]


def encode_frame(msg_type: int, request_id: int, payload: PayloadWriter) -> bytes:
    """Assemble one wire frame from a message type and its payload."""
    return b"".join(frame_segments(msg_type, request_id, payload))


def decode_frame(
    data: bytes,
    shm: Optional[Callable[[str], memoryview]] = None,
) -> Tuple[int, int, PayloadReader]:
    """Split one frame into ``(msg_type, request_id, payload reader)``.

    Validates magic, version, and the length prefix; a frame whose
    declared payload length disagrees with the buffer is rejected rather
    than silently mis-parsed.  ``shm`` is forwarded to the reader so
    same-host transports can resolve shared-memory array refs.
    """
    if len(data) < HEADER_SIZE:
        raise WireError(
            f"frame too short for header: {len(data)} < {HEADER_SIZE} bytes"
        )
    view = memoryview(data)
    magic, version, msg_type, request_id, length = _HEADER.unpack(
        view[:HEADER_SIZE]
    )
    if magic != MAGIC:
        raise WireError(f"bad frame magic {magic!r}, expected {MAGIC!r}")
    if version != WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {version}, this build speaks "
            f"{WIRE_VERSION}"
        )
    payload = view[HEADER_SIZE:]
    if len(payload) != length:
        raise WireError(
            f"frame length mismatch: header declares {length} payload "
            f"bytes, buffer carries {len(payload)}"
        )
    return msg_type, request_id, PayloadReader(payload, shm=shm)
