"""Named shared-memory segments for same-host vector payload handoff.

The shm lane of the shard wire: instead of pushing an 8 MB update
matrix through a pipe byte-by-byte, the coordinator stages it in a
:class:`SegmentArena` region and sends a frame carrying only a
``(name, offset, dtype, shape)`` reference
(:class:`~repro.wire.format.ShmArrayRef`).  The worker resolves the
name through its :class:`ShmRegistry` and maps the elements in place —
the vector bytes never transit the pipe at all.

Lifecycle is deliberately asymmetric:

* the **coordinator** creates segments and is the only party that ever
  ``unlink``\\ s them (on transport close, with a ``__del__`` backstop);
* **workers** only attach, and only to names under :data:`SEGMENT_PREFIX`
  — a closed namespace, so a malicious frame cannot make a worker map
  arbitrary system segments — and detach on shutdown.

A worker that dies mid-round therefore cannot leak ``/dev/shm`` entries:
the file belongs to the coordinator, which unlinks it regardless.
:func:`created_segments` exposes this process's not-yet-unlinked
segments so shutdown paths (and the leak tests) can assert emptiness.
"""

from __future__ import annotations

import os
import secrets
import threading
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import TransportError, WireError
from repro.wire.format import ShmArrayRef

#: Every segment this module creates (and every name a registry will
#: agree to attach) starts with this prefix.
SEGMENT_PREFIX = "repro-shm-"

_created_lock = threading.Lock()
_created: set = set()


def created_segments() -> List[str]:
    """Names this process created and has not yet unlinked."""
    with _created_lock:
        return sorted(_created)


def _untrack(name: str) -> None:
    """Drop a segment from this process's resource tracker.

    Attaching registers the segment with the tracker as if we owned it
    (bpo-38119), so a worker exiting would unlink a segment it merely
    mapped — yanking it out from under the coordinator and every
    sibling.  Ownership stays with the creator; attachers untrack.
    """
    try:
        resource_tracker.unregister("/" + name, "shared_memory")
    except Exception:
        pass


def _detach_quietly(shm: shared_memory.SharedMemory) -> None:
    """Best-effort detach that tolerates still-alive buffer exports.

    Numpy arrays handed out over ``shm.buf`` may outlive the teardown
    call (decoded messages, staged request views), in which case the
    mmap cannot be closed yet.  Neuter the object so ``__del__`` does
    not retry and let the mapping die with the process — unlinking,
    the part that actually prevents a ``/dev/shm`` leak, never needs
    the mapping closed.
    """
    try:
        shm.close()
    except BufferError:
        shm._buf = None  # the stdlib offers no safe detach; reclaim
        shm._mmap = None  # the mapping at process exit instead


class SegmentArena:
    """One coordinator-owned shared-memory segment.

    The arena is a flat byte range; callers carve it into fixed regions
    (one request + one response region per shard, in the transport's
    case) and :meth:`place` arrays at chosen offsets, getting back the
    :class:`ShmArrayRef` to send instead of the bytes.
    """

    def __init__(self, size: int, name: Optional[str] = None) -> None:
        self.name = name or (
            f"{SEGMENT_PREFIX}{os.getpid():x}-{secrets.token_hex(4)}"
        )
        if not self.name.startswith(SEGMENT_PREFIX):
            raise TransportError(
                f"shm segment name {self.name!r} outside the "
                f"{SEGMENT_PREFIX!r} namespace"
            )
        self._shm = shared_memory.SharedMemory(
            name=self.name, create=True, size=max(1, int(size))
        )
        with _created_lock:
            _created.add(self.name)
        self._closed = False

    @property
    def size(self) -> int:
        return self._shm.size

    @property
    def buf(self) -> memoryview:
        if self._closed:
            raise TransportError(f"shm segment {self.name!r} already closed")
        return self._shm.buf

    def ndarray(
        self, offset: int, shape, dtype=np.uint64
    ) -> np.ndarray:
        """A writable array view over ``shape`` elements at ``offset``."""
        dtype = np.dtype(dtype)
        count = int(np.prod(shape, dtype=np.int64)) if len(shape) else 1
        end = offset + count * dtype.itemsize
        if end > self.size:
            raise TransportError(
                f"shm region [{offset}, {end}) overruns segment "
                f"{self.name!r} of {self.size} bytes"
            )
        return np.frombuffer(
            self.buf, dtype=dtype, count=count, offset=offset
        ).reshape(shape)

    def place(self, offset: int, array: np.ndarray) -> ShmArrayRef:
        """Copy ``array`` into the arena; return the wire reference."""
        array = np.ascontiguousarray(array)
        view = self.ndarray(offset, array.shape, array.dtype)
        np.copyto(view, array)
        return ShmArrayRef(
            name=self.name,
            offset=offset,
            shape=tuple(array.shape),
            dtype=array.dtype.str,
        )

    def close(self) -> None:
        """Detach *and unlink* — the creator's teardown. Idempotent."""
        if self._closed:
            return
        self._closed = True
        _detach_quietly(self._shm)
        # A forked worker's attach untracked the name from the *shared*
        # resource tracker; re-register so unlink's unregister matches
        # an entry (idempotent when nobody untracked).
        try:
            resource_tracker.register("/" + self.name, "shared_memory")
        except Exception:
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        with _created_lock:
            _created.discard(self.name)

    def __del__(self) -> None:  # backstop; explicit close() is the API
        try:
            self.close()
        except Exception:
            pass


class ShmRegistry:
    """Attach-side cache of named segments, for frame decode.

    Bound methods double as the ``shm`` resolver for
    :func:`repro.wire.decode_message`: ``registry.resolve`` maps a
    segment name to its buffer, attaching (and caching) on first use.
    ``close()`` detaches everything — it never unlinks, because the
    registry never owns.
    """

    def __init__(self) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._local: Dict[str, "SegmentArena"] = {}
        self._lock = threading.Lock()

    def add_local(self, arena: SegmentArena) -> None:
        """Short-circuit resolution for a segment this process created
        (no second attachment, no double resource-tracker entry)."""
        with self._lock:
            self._local[arena.name] = arena

    def resolve(self, name: str) -> memoryview:
        if not name.startswith(SEGMENT_PREFIX):
            raise WireError(
                f"refusing to attach shm segment {name!r}: outside the "
                f"{SEGMENT_PREFIX!r} namespace"
            )
        with self._lock:
            arena = self._local.get(name)
            if arena is not None:
                return arena.buf
            segment = self._segments.get(name)
            if segment is None:
                try:
                    segment = shared_memory.SharedMemory(name=name)
                except FileNotFoundError:
                    raise WireError(
                        f"shm segment {name!r} does not exist (torn down "
                        f"or never created)"
                    ) from None
                _untrack(name)
                self._segments[name] = segment
            return segment.buf

    def ndarray(self, ref: ShmArrayRef) -> np.ndarray:
        """A writable view over ``ref``'s region (for placing results)."""
        buf = self.resolve(ref.name)
        end = ref.offset + ref.nbytes
        if end > len(buf):
            raise WireError(
                f"shm region [{ref.offset}, {end}) overruns segment "
                f"{ref.name!r} of {len(buf)} bytes"
            )
        return np.frombuffer(
            buf, dtype=np.dtype(ref.dtype), count=ref.count,
            offset=ref.offset,
        ).reshape(ref.shape)

    def close(self) -> None:
        """Detach every cached segment (attachments only; no unlinks)."""
        with self._lock:
            segments = list(self._segments.values())
            self._segments.clear()
            self._local.clear()
        for segment in segments:
            try:
                _detach_quietly(segment)
            except Exception:
                pass
