"""Stream-side framing: reassembly from partial reads, vectored writes.

A byte stream (TCP socket, TLS channel, serial pipe) delivers frames in
arbitrary chunks: a ``recv`` may return half a header, three frames and
a torn fourth, or one byte.  :class:`FrameAssembler` turns that chunk
stream back into whole frames using the header's ``len`` field — the
reason the field exists — validating magic and version *eagerly*, as
soon as their bytes arrive, so a corrupt or incompatible peer is
rejected before it can desynchronize the stream.

The write side is the mirror image: :func:`send_segments` pushes a
frame's ``[header, *payload segments]`` list (see
:func:`repro.wire.format.frame_segments`) through ``socket.sendmsg`` —
a vectored write, so a multi-megabyte numpy payload is never joined
into one intermediate bytes object on its way out.
"""

from __future__ import annotations

import socket
import struct
from typing import List, Optional, Sequence, Union

from repro.exceptions import WireError
from repro.wire.format import (
    HEADER_SIZE,
    MAGIC,
    MAX_PAYLOAD_BYTES,
    WIRE_VERSION,
)

_LEN_AT = HEADER_SIZE - 4  # offset of the u32 payload length in the header
_U32 = struct.Struct("<I")

# recv chunk size for the socket helpers; large enough that multi-MB
# round frames take few syscalls, small enough to stay cache-friendly.
RECV_CHUNK = 1 << 20


class FrameAssembler:
    """Reassembles complete wire frames from arbitrary byte chunks.

    Feed it whatever the stream hands you; it returns every frame
    completed by that chunk, each as one contiguous ``bytes`` ready for
    :func:`repro.wire.decode_message`.  State between calls is just the
    trailing partial frame, so torn headers and payloads split at any
    byte boundary reassemble exactly (property-tested).

    Validation is eager and fatal: bad magic or an unsupported version
    raises :class:`WireError` as soon as those bytes are visible, and
    the assembler refuses further input — after a framing error the
    stream position is unknowable, so resynchronization would be a lie.
    """

    def __init__(self, max_payload: int = MAX_PAYLOAD_BYTES):
        self._buffer = bytearray()
        self._max_payload = int(max_payload)
        self._corrupt = False

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward a not-yet-complete frame."""
        return len(self._buffer)

    def feed(self, data: Union[bytes, memoryview]) -> List[bytes]:
        """Absorb one chunk; return every frame it completed, in order."""
        if self._corrupt:
            raise WireError("frame stream already failed; reconnect")
        frames: List[bytes] = []
        if not self._buffer:
            data = self._take_direct(data, frames)
        self._buffer.extend(data)
        while True:
            frame = self._try_take_frame()
            if frame is None:
                return frames
            frames.append(frame)

    def _take_direct(
        self, data: Union[bytes, memoryview], frames: List[bytes]
    ) -> Union[bytes, memoryview]:
        """Slice complete, well-formed frames straight off ``data``.

        Only runs while the buffer is empty, so a multi-megabyte round
        frame arriving whole skips the bytearray staging copy.  Returns
        the unconsumed tail; anything suspicious (torn frame, bad
        prefix, oversized length) is left for the buffered path, which
        raises the same eager errors it always has.
        """
        view = memoryview(data).cast("B")
        offset = 0
        while len(view) - offset >= HEADER_SIZE:
            if (
                bytes(view[offset : offset + 2]) != MAGIC
                or view[offset + 2] != WIRE_VERSION
            ):
                break
            (length,) = _U32.unpack_from(view, offset + _LEN_AT)
            if length > self._max_payload:
                break
            end = offset + HEADER_SIZE + length
            if end > len(view):
                break
            frames.append(bytes(view[offset:end]))
            offset = end
        return view[offset:]

    def _try_take_frame(self) -> Optional[bytes]:
        buf = self._buffer
        # Eager prefix checks: magic at 2 bytes, version at 3 — a bad
        # peer fails here even if it never sends a whole header.
        if len(buf) >= 1 and not MAGIC.startswith(bytes(buf[:2])):
            self._fail(f"bad frame magic {bytes(buf[:2])!r}, expected {MAGIC!r}")
        if len(buf) >= 3 and buf[2] != WIRE_VERSION:
            self._fail(
                f"unsupported wire version {buf[2]}, this build speaks "
                f"{WIRE_VERSION}"
            )
        if len(buf) < HEADER_SIZE:
            return None
        (length,) = _U32.unpack_from(buf, _LEN_AT)
        if length > self._max_payload:
            self._fail(
                f"frame declares {length} payload bytes, over the "
                f"{self._max_payload}-byte limit"
            )
        total = HEADER_SIZE + length
        if len(buf) < total:
            return None
        frame = bytes(buf[:total])
        del buf[:total]
        return frame

    def _fail(self, message: str) -> None:
        self._corrupt = True
        raise WireError(message)


# ----------------------------------------------------------------------
# blocking-socket helpers
# ----------------------------------------------------------------------
def send_segments(
    sock: socket.socket, segments: Sequence[Union[bytes, memoryview]]
) -> int:
    """Vectored write of one frame's segments; returns bytes written.

    Loops over partial ``sendmsg`` completions by advancing the segment
    list in place (no join, no copy of unsent payload), chunking to at
    most 1024 iovecs per call to stay under any platform ``IOV_MAX``.
    """
    views = [memoryview(s).cast("B") for s in segments if len(s)]
    total = 0
    while views:
        sent = sock.sendmsg(views[:1024])
        total += sent
        while sent:
            if sent >= len(views[0]):
                sent -= len(views[0])
                views.pop(0)
            else:
                views[0] = views[0][sent:]
                sent = 0
    return total


def recv_frames(
    sock: socket.socket, assembler: FrameAssembler
) -> List[bytes]:
    """One blocking read; returns the frames it completed.

    An empty list means "keep calling"; EOF raises ``EOFError`` so
    callers distinguish a closed peer from a quiet one.
    """
    chunk = sock.recv(RECV_CHUNK)
    if not chunk:
        raise EOFError("peer closed the frame stream")
    return assembler.feed(chunk)
