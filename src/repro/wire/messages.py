"""Typed messages of the shard wire protocol, version 1.

The message set covers everything the service layer sends between a
shard coordinator and the process hosting that shard's protocol session:

* :class:`ShardRoundRequest` / :class:`ShardRoundResult` — one online
  round for one shard: the scattered update slices and dropout sets out,
  the shard aggregate, survivors, transcript, and pool state back.
* :class:`RefillRequest` / :class:`PoolSnapshot` — top up a shard's
  offline pool; the snapshot doubles as the generic "current pool +
  session stats" report (it also answers :class:`SnapshotRequest` and
  acknowledges :class:`Shutdown`).
* :class:`ErrorFrame` — a remote exception, carried by name + message so
  the coordinator can re-raise the library's own exception types.
* :class:`Shutdown` — drain and close the shard session; the worker
  finishes a refill already in flight before acknowledging.
* :class:`SessionSetup` / :class:`SetupAck` / :class:`SessionTeardown` —
  networked-worker lifecycle: a coordinator ships declarative
  :class:`~repro.service.transport.ShardSessionSpec` entries, each bound
  to a connection-unique *slot* id, and the worker host builds the
  sessions locally (never unpickling live objects).  Slots are what let
  one connection batch shards of *several* cohorts: every subsequent
  round/refill/snapshot message addresses a slot via its ``shard_id``
  field, and teardown releases one cohort's slots without touching its
  neighbours'.  Setup is also the *re-pin* path: after a reconnect the
  coordinator replays its ``SessionSetup`` so a restarted worker rebuilds
  identical sessions from the specs.
* :class:`Ping` — connection supervision; the worker echoes it under the
  same request id, off the round-serving path, so heartbeats stay live
  while a slow round executes.

Encoding uses :mod:`repro.wire.format` primitives only — no pickling —
so frames are safe to accept from an untrusted peer and identical
whether the transport is an in-memory pipe, a multiprocessing
connection, or a socket.

Every payload is deterministic given the message fields: user ids and
dropout sets are sorted on encode, so two semantically equal messages
are byte-equal (property-tested), which is what lets the tests pin
"process-backed round == inline round" at the frame level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Type

import numpy as np

import repro.exceptions as _exceptions
from repro.exceptions import WireError
from repro.protocols.base import (
    PHASES,
    AggregationResult,
    RoundMetrics,
    SessionStats,
    Transcript,
)
from repro.wire.format import (
    _PACKED_FLAG,
    PayloadReader,
    PayloadWriter,
    ShmArrayRef,
    decode_frame,
    frame_segments,
    get_shm_ref,
    put_shm_ref,
)

_PHASE_INDEX = {phase: i for i, phase in enumerate(PHASES)}

# ----------------------------------------------------------------------
# wire-format capabilities
# ----------------------------------------------------------------------
# Negotiated in-band: a coordinator requests capabilities in its
# SessionSetup, the worker acks the subset it supports, and both sides
# encode accordingly from then on.  The bits ride as *trailing-optional*
# u32 fields (omitted when zero), so a peer built before capabilities
# existed emits and accepts exactly the old frames — mixed-version
# coordinator/worker pairs interoperate by falling back to raw.

#: Peer understands bit-packed array payloads (``put_packed_array``).
CAP_PACKED_ARRAYS = 0x1

#: Peer understands round tracing: it accepts a trailing ``trace_id``
#: on :class:`ShardRoundRequest` and reports a :class:`WorkerSpan`
#: (compute + queue-wait timings, pid/host tags) back on its
#: :class:`ShardRoundResult` so the coordinator can stitch one
#: cross-process timeline per round.
CAP_ROUND_TRACING = 0x2

#: Peer understands buffered-async drains: it accepts
#: :class:`ShardDrainRequest` (weighted aggregation of a sealed update
#: buffer, answered with a :class:`ShardRoundResult`) and
#: :class:`RekeyRequest` (rebuild a slot's session geometry for a new
#: member count, answered with a :class:`PoolSnapshot`).
CAP_BUFFERED_DRAINS = 0x4

#: Every capability this build implements.
SUPPORTED_CAPABILITIES = (
    CAP_PACKED_ARRAYS | CAP_ROUND_TRACING | CAP_BUFFERED_DRAINS
)


def _put_id_set(w: PayloadWriter, ids) -> None:
    w.put_array(np.fromiter(sorted(ids), dtype=np.uint32, count=len(ids)))


def _get_id_set(r: PayloadReader) -> Set[int]:
    return set(int(i) for i in r.get_array())


def _put_stats(w: PayloadWriter, stats: SessionStats) -> None:
    w.put_u64(stats.rounds)
    w.put_u64(stats.refills)
    w.put_u64(stats.pool_hits)
    w.put_u64(stats.pool_misses)
    w.put_u64(stats.precomputed_rounds)
    w.put_f64(stats.refill_seconds)


def _get_stats(r: PayloadReader) -> SessionStats:
    return SessionStats(
        rounds=r.get_u64(),
        refills=r.get_u64(),
        pool_hits=r.get_u64(),
        pool_misses=r.get_u64(),
        precomputed_rounds=r.get_u64(),
        refill_seconds=r.get_f64(),
    )


@dataclass
class WorkerSpan:
    """A worker's own timing report for one traced shard round.

    Rides as the trailing-optional tail of :class:`ShardRoundResult`
    (emitted only when the request carried a nonzero ``trace_id``, so
    untraced frames stay byte-identical to the pre-tracing format).
    ``queue_wait_seconds`` is the request's dwell between arrival and
    the start of compute; ``pid``/``host`` identify the process that
    actually ran the round — the coordinator turns this into a
    ``shard_compute[i]`` span tagged with the remote identity.
    """

    trace_id: int
    pid: int
    host: str
    queue_wait_seconds: float
    compute_start_unix: float
    compute_seconds: float


def _put_worker_span(w: PayloadWriter, ws: WorkerSpan) -> None:
    w.put_u64(ws.trace_id)
    w.put_u64(ws.pid)
    w.put_str(ws.host)
    w.put_f64(ws.queue_wait_seconds)
    w.put_f64(ws.compute_start_unix)
    w.put_f64(ws.compute_seconds)


def _get_worker_span(r: PayloadReader) -> WorkerSpan:
    return WorkerSpan(
        trace_id=r.get_u64(),
        pid=r.get_u64(),
        host=r.get_str(),
        queue_wait_seconds=r.get_f64(),
        compute_start_unix=r.get_f64(),
        compute_seconds=r.get_f64(),
    )


@dataclass
class ShardRoundRequest:
    """One online round for one shard: scattered updates + dropout sets."""

    TYPE = 1

    shard_id: int
    round_id: int
    user_ids: List[int]
    updates: np.ndarray  # (len(user_ids), shard_width) uint64, row i = user_ids[i]
    dropouts: Set[int] = field(default_factory=set)
    offline_dropouts: Set[int] = field(default_factory=set)
    # Element encoding of ``updates`` on the wire.  ``packed`` bit-packs
    # the matrix at its max's bit width (requires a CAP_PACKED_ARRAYS
    # peer); ``updates_ref`` means the matrix is already staged in a
    # shared-memory segment and only the reference is framed.  Decode
    # sets ``packed`` from the received tag, so a worker can mirror the
    # coordinator's encoding in its reply.
    packed: bool = False
    updates_ref: Optional[ShmArrayRef] = None
    # Where the worker should place its aggregate (shm lane only); a
    # trailing-optional field of the payload.
    result_ref: Optional[ShmArrayRef] = None
    # Round-trace correlation id (CAP_ROUND_TRACING peers only).
    # Trailing-optional and omitted when zero, so untraced frames stay
    # byte-identical to the pre-tracing wire format.  A worker that
    # receives a nonzero trace_id reports a WorkerSpan on its result.
    trace_id: int = 0

    @classmethod
    def from_updates(
        cls,
        shard_id: int,
        round_id: int,
        updates: Dict[int, np.ndarray],
        dropouts: Set[int],
        offline_dropouts: Optional[Set[int]] = None,
        packed: bool = False,
    ) -> "ShardRoundRequest":
        """Stack a per-user update dict into the wire's matrix layout."""
        user_ids = sorted(updates)
        stacked = np.stack(
            [np.asarray(updates[uid], dtype=np.uint64) for uid in user_ids]
        ) if user_ids else np.zeros((0, 0), dtype=np.uint64)
        return cls(
            shard_id=shard_id,
            round_id=round_id,
            user_ids=user_ids,
            updates=stacked,
            dropouts=set(dropouts),
            offline_dropouts=set(offline_dropouts or set()),
            packed=packed,
        )

    def updates_dict(self) -> Dict[int, np.ndarray]:
        """Rebuild the per-user update mapping (rows are frame views)."""
        return {uid: self.updates[i] for i, uid in enumerate(self.user_ids)}

    def _encode(self, w: PayloadWriter) -> None:
        # user_ids order is load-bearing (row i of ``updates`` belongs to
        # user_ids[i]), so ids and rows are canonicalized *together*:
        # permute both into sorted-id order.  Sorting ids alone would
        # silently reassign rows for any directly-constructed message
        # with unsorted ids.
        ids = np.asarray(self.user_ids, dtype=np.uint32)
        updates = np.asarray(self.updates, dtype=np.uint64)
        if updates.ndim != 2 or updates.shape[0] != ids.size:
            raise WireError(
                f"updates matrix {updates.shape} does not match "
                f"{ids.size} user ids"
            )
        if ids.size and np.any(ids[:-1] >= ids[1:]):
            if self.updates_ref is not None:
                # The staged segment holds rows in the caller's order;
                # re-permuting here would desynchronize it silently.
                raise WireError(
                    "shm-referenced updates require pre-sorted user ids"
                )
            order = np.argsort(ids, kind="stable")
            ids = ids[order]
            if np.any(ids[:-1] >= ids[1:]):
                raise WireError("duplicate user ids in round request")
            updates = updates[order]
        w.put_u32(self.shard_id)
        w.put_u64(self.round_id)
        w.put_array(ids)
        if self.updates_ref is not None:
            ref = self.updates_ref
            if tuple(ref.shape) != updates.shape:
                raise WireError(
                    f"shm ref shape {ref.shape} does not match updates "
                    f"matrix {updates.shape}"
                )
            w.put_shm_array(ref)
        elif self.packed:
            w.put_packed_array(np.ascontiguousarray(updates))
        else:
            w.put_array(np.ascontiguousarray(updates))
        _put_id_set(w, self.dropouts)
        _put_id_set(w, self.offline_dropouts)
        if self.result_ref is not None:
            put_shm_ref(w, self.result_ref)
        if self.trace_id:
            w.put_u64(self.trace_id)

    @classmethod
    def _decode(cls, r: PayloadReader) -> "ShardRoundRequest":
        shard_id = r.get_u32()
        round_id = r.get_u64()
        user_ids = sorted(_get_id_set(r))
        packed = bool(r.peek_u8() & _PACKED_FLAG)
        updates = r.get_array()
        if updates.ndim != 2 or updates.shape[0] != len(user_ids):
            raise WireError(
                f"round request carries {updates.shape} update matrix for "
                f"{len(user_ids)} users"
            )
        dropouts = _get_id_set(r)
        offline_dropouts = _get_id_set(r)
        # Two optional tails share the frame end: a shm result ref and a
        # trace id.  An encoded shm ref is never 8 bytes (dtype + ndim +
        # dims + named segment + offset is always longer), so exactly 8
        # remaining bytes can only be a bare trace_id.
        result_ref = None
        trace_id = 0
        if r.remaining == 8:
            trace_id = r.get_u64()
        elif r.remaining:
            result_ref = get_shm_ref(r)
            if r.remaining:
                trace_id = r.get_u64()
        return cls(
            shard_id=shard_id,
            round_id=round_id,
            user_ids=user_ids,
            updates=updates,
            dropouts=dropouts,
            offline_dropouts=offline_dropouts,
            packed=packed,
            result_ref=result_ref,
            trace_id=trace_id,
        )


@dataclass
class ShardRoundResult:
    """One shard's round outcome, sufficient to rebuild the result.

    Carries the shard aggregate, survivors, the full per-round transcript
    (as an ``(M, 5)`` table of sender/receiver/phase/size/key-sized), the
    round metrics, and the session's post-round pool state and cumulative
    stats so the coordinator's per-shard bookkeeping matches the inline
    path without extra round trips.
    """

    TYPE = 2

    shard_id: int
    round_id: int
    aggregate: np.ndarray
    survivors: List[int]
    transcript_table: np.ndarray  # (M, 5) int64
    metrics_counts: Tuple[int, int, int]  # decode_ops, prg_elements, encode_ops
    metrics_extra: Dict[str, float]
    stalled: bool
    pool_level: int
    stats: SessionStats
    # Mirrors of the request's element encoding: a worker answering a
    # packed request packs its aggregate; one answering an shm request
    # has already placed the aggregate at ``aggregate_ref`` and frames
    # only the reference.
    packed: bool = False
    aggregate_ref: Optional[ShmArrayRef] = None
    # The worker's own timing report, present only when the request
    # carried a nonzero trace_id (trailing-optional on the wire).
    worker_span: Optional[WorkerSpan] = None

    @classmethod
    def from_result(
        cls,
        shard_id: int,
        round_id: int,
        result: AggregationResult,
        stalled: bool,
        pool_level: int,
        stats: SessionStats,
        packed: bool = False,
        aggregate_ref: Optional[ShmArrayRef] = None,
        worker_span: Optional[WorkerSpan] = None,
    ) -> "ShardRoundResult":
        table = np.asarray(
            [
                (
                    m.sender,
                    m.receiver,
                    _PHASE_INDEX[m.phase],
                    m.size,
                    int(m.is_key_sized),
                )
                for m in result.transcript.messages
            ],
            dtype=np.int64,
        ).reshape(len(result.transcript.messages), 5)
        return cls(
            shard_id=shard_id,
            round_id=round_id,
            aggregate=np.ascontiguousarray(result.aggregate, dtype=np.uint64),
            survivors=list(result.survivors),
            transcript_table=table,
            metrics_counts=(
                result.metrics.server_decode_ops,
                result.metrics.server_prg_elements,
                result.metrics.user_encode_ops,
            ),
            metrics_extra=dict(result.metrics.extra),
            stalled=stalled,
            pool_level=pool_level,
            stats=stats,
            packed=packed,
            aggregate_ref=aggregate_ref,
            worker_span=worker_span,
        )

    def to_result(self) -> AggregationResult:
        transcript = Transcript()
        for sender, receiver, phase_idx, size, key_sized in self.transcript_table:
            transcript.record(
                int(sender),
                int(receiver),
                PHASES[int(phase_idx)],
                int(size),
                bool(key_sized),
            )
        metrics = RoundMetrics(
            server_decode_ops=int(self.metrics_counts[0]),
            server_prg_elements=int(self.metrics_counts[1]),
            user_encode_ops=int(self.metrics_counts[2]),
            extra=dict(self.metrics_extra),
        )
        return AggregationResult(
            aggregate=self.aggregate,
            survivors=list(self.survivors),
            transcript=transcript,
            metrics=metrics,
        )

    def _encode(self, w: PayloadWriter) -> None:
        w.put_u32(self.shard_id)
        w.put_u64(self.round_id)
        if self.aggregate_ref is not None:
            w.put_shm_array(self.aggregate_ref)
        elif self.packed:
            w.put_packed_array(
                np.ascontiguousarray(self.aggregate, dtype=np.uint64)
            )
        else:
            w.put_array(
                np.ascontiguousarray(self.aggregate, dtype=np.uint64)
            )
        w.put_array(np.asarray(self.survivors, dtype=np.uint32))
        w.put_array(np.ascontiguousarray(self.transcript_table, dtype=np.int64))
        for count in self.metrics_counts:
            w.put_u64(count)
        w.put_u32(len(self.metrics_extra))
        for key in sorted(self.metrics_extra):
            w.put_str(key)
            w.put_f64(self.metrics_extra[key])
        w.put_u8(int(self.stalled))
        w.put_u32(self.pool_level)
        _put_stats(w, self.stats)
        if self.worker_span is not None:
            _put_worker_span(w, self.worker_span)

    @classmethod
    def _decode(cls, r: PayloadReader) -> "ShardRoundResult":
        shard_id = r.get_u32()
        round_id = r.get_u64()
        packed = bool(r.peek_u8() & _PACKED_FLAG)
        aggregate = r.get_array()
        # Restore the ref so the coordinator knows the aggregate aliases
        # a reused segment region and must detach it before the next
        # round overwrites it.
        aggregate_ref = r.last_shm_ref
        survivors = [int(i) for i in r.get_array()]
        table = r.get_array()
        if table.ndim != 2 or (table.size and table.shape[1] != 5):
            raise WireError(f"bad transcript table shape {table.shape}")
        counts = tuple(r.get_u64() for _ in range(3))
        extra = {}
        for _ in range(r.get_u32()):
            key = r.get_str()
            extra[key] = r.get_f64()
        return cls(
            shard_id=shard_id,
            round_id=round_id,
            aggregate=aggregate,
            survivors=survivors,
            transcript_table=table.reshape(-1, 5),
            metrics_counts=counts,  # type: ignore[arg-type]
            metrics_extra=extra,
            stalled=bool(r.get_u8()),
            pool_level=r.get_u32(),
            stats=_get_stats(r),
            packed=packed,
            aggregate_ref=aggregate_ref,
            worker_span=_get_worker_span(r) if r.remaining else None,
        )


@dataclass
class RefillRequest:
    """Top up one shard's offline pool (``rounds=None`` = to pool size)."""

    TYPE = 3

    shard_id: int
    rounds: Optional[int] = None

    def _encode(self, w: PayloadWriter) -> None:
        w.put_u32(self.shard_id)
        w.put_i64(-1 if self.rounds is None else self.rounds)

    @classmethod
    def _decode(cls, r: PayloadReader) -> "RefillRequest":
        shard_id = r.get_u32()
        rounds = r.get_i64()
        return cls(shard_id=shard_id, rounds=None if rounds < 0 else rounds)


@dataclass
class PoolSnapshot:
    """One shard session's pool state and cumulative stats."""

    TYPE = 4

    shard_id: int
    pool_level: int
    pool_size: int
    rounds_added: int
    closed: bool
    stats: SessionStats

    def _encode(self, w: PayloadWriter) -> None:
        w.put_u32(self.shard_id)
        w.put_u32(self.pool_level)
        w.put_u32(self.pool_size)
        w.put_i64(self.rounds_added)
        w.put_u8(int(self.closed))
        _put_stats(w, self.stats)

    @classmethod
    def _decode(cls, r: PayloadReader) -> "PoolSnapshot":
        return cls(
            shard_id=r.get_u32(),
            pool_level=r.get_u32(),
            pool_size=r.get_u32(),
            rounds_added=r.get_i64(),
            closed=bool(r.get_u8()),
            stats=_get_stats(r),
        )


@dataclass
class ErrorFrame:
    """A remote exception: library exception name + message.

    :meth:`raise_` re-raises the named :mod:`repro.exceptions` type when
    it exists (so e.g. a worker-side ``ProtocolError`` surfaces as a
    ``ProtocolError`` to the coordinator's caller) and falls back to
    :class:`~repro.exceptions.TransportError` for anything unknown.
    """

    TYPE = 5

    shard_id: int
    kind: str
    message: str

    @classmethod
    def from_exception(cls, shard_id: int, exc: BaseException) -> "ErrorFrame":
        return cls(
            shard_id=shard_id, kind=type(exc).__name__, message=str(exc)
        )

    def raise_(self) -> None:
        exc_type = getattr(_exceptions, self.kind, None)
        if isinstance(exc_type, type) and issubclass(
            exc_type, _exceptions.ReproError
        ):
            raise exc_type(self.message)
        raise _exceptions.TransportError(
            f"shard {self.shard_id} worker failed with {self.kind}: "
            f"{self.message}"
        )

    def _encode(self, w: PayloadWriter) -> None:
        w.put_u32(self.shard_id)
        w.put_str(self.kind)
        w.put_str(self.message)

    @classmethod
    def _decode(cls, r: PayloadReader) -> "ErrorFrame":
        return cls(shard_id=r.get_u32(), kind=r.get_str(), message=r.get_str())


@dataclass
class ShardDrainRequest:
    """One buffered-async drain for one shard.

    Unlike :class:`ShardRoundRequest`, rows are *deliveries*, not
    members: row ``b`` is the ``b``-th buffered update (its shard
    slice), ``weights[b]`` its public staleness weight, and the
    worker-side session spends pooled mask slot ``b`` on it.  Row order
    is therefore load-bearing and is **not** canonicalized on encode.
    ``recovery_dropouts`` are member *slots* missing from the recovery
    phase.  Answered with a :class:`ShardRoundResult` keyed by
    ``drain_id``; requires a :data:`CAP_BUFFERED_DRAINS` peer.
    """

    TYPE = 12

    shard_id: int
    drain_id: int
    weights: np.ndarray  # (B,) uint64 positive staleness weights
    updates: np.ndarray  # (B, shard_width) uint64, unweighted quantized
    recovery_dropouts: Set[int] = field(default_factory=set)
    packed: bool = False
    # Round-trace correlation id; trailing-optional, omitted when zero
    # (same convention as ShardRoundRequest).
    trace_id: int = 0

    def _encode(self, w: PayloadWriter) -> None:
        weights = np.ascontiguousarray(self.weights, dtype=np.uint64)
        updates = np.asarray(self.updates, dtype=np.uint64)
        if weights.ndim != 1:
            raise WireError(f"drain weights must be 1-D, got {weights.shape}")
        if updates.ndim != 2 or updates.shape[0] != weights.size:
            raise WireError(
                f"drain updates matrix {updates.shape} does not match "
                f"{weights.size} weights"
            )
        w.put_u32(self.shard_id)
        w.put_u64(self.drain_id)
        w.put_array(weights)
        if self.packed:
            w.put_packed_array(np.ascontiguousarray(updates))
        else:
            w.put_array(np.ascontiguousarray(updates))
        _put_id_set(w, self.recovery_dropouts)
        if self.trace_id:
            w.put_u64(self.trace_id)

    @classmethod
    def _decode(cls, r: PayloadReader) -> "ShardDrainRequest":
        shard_id = r.get_u32()
        drain_id = r.get_u64()
        weights = r.get_array()
        packed = bool(r.peek_u8() & _PACKED_FLAG)
        updates = r.get_array()
        if updates.ndim != 2 or updates.shape[0] != weights.size:
            raise WireError(
                f"drain request carries {updates.shape} update matrix for "
                f"{weights.size} weights"
            )
        recovery_dropouts = _get_id_set(r)
        trace_id = r.get_u64() if r.remaining else 0
        return cls(
            shard_id=shard_id,
            drain_id=drain_id,
            weights=weights,
            updates=updates,
            recovery_dropouts=recovery_dropouts,
            packed=packed,
            trace_id=trace_id,
        )


@dataclass
class RekeyRequest:
    """Re-key one slot's session for a new member count.

    Sent between drains when cohort membership changes; the worker's
    session rebuilds its protocol geometry and drops pooled material
    encoded for the old member set, answering with a
    :class:`PoolSnapshot` whose ``rounds_added`` is the (negated)
    number of invalidated pool entries.  Requires a
    :data:`CAP_BUFFERED_DRAINS` peer.
    """

    TYPE = 13

    shard_id: int
    num_users: int

    def _encode(self, w: PayloadWriter) -> None:
        w.put_u32(self.shard_id)
        w.put_u32(self.num_users)

    @classmethod
    def _decode(cls, r: PayloadReader) -> "RekeyRequest":
        return cls(shard_id=r.get_u32(), num_users=r.get_u32())


@dataclass
class SnapshotRequest:
    """Ask for one shard's :class:`PoolSnapshot` without touching the pool."""

    TYPE = 6

    shard_id: int

    def _encode(self, w: PayloadWriter) -> None:
        w.put_u32(self.shard_id)

    @classmethod
    def _decode(cls, r: PayloadReader) -> "SnapshotRequest":
        return cls(shard_id=r.get_u32())


def _put_spec(w: PayloadWriter, spec) -> None:
    """Encode one ShardSessionSpec field-by-field (never pickled)."""
    w.put_str(spec.protocol)
    w.put_u32(spec.num_users)
    w.put_u64(spec.shard_dim)
    w.put_u32(spec.privacy)
    w.put_u32(spec.dropout_tolerance)
    w.put_u32(spec.pool_size)
    w.put_u32(spec.low_water)
    w.put_u32(len(spec.seed))
    for part in spec.seed:
        w.put_i64(part)
    w.put_u64(spec.field_modulus)


def _get_spec(r: PayloadReader):
    # Lazy import: repro.service.transport itself imports repro.wire, so
    # binding the spec type at module load would be a cycle.
    from repro.service.transport import ShardSessionSpec

    protocol = r.get_str()
    num_users = r.get_u32()
    shard_dim = r.get_u64()
    privacy = r.get_u32()
    dropout_tolerance = r.get_u32()
    pool_size = r.get_u32()
    low_water = r.get_u32()
    seed = tuple(r.get_i64() for _ in range(r.get_u32()))
    return ShardSessionSpec(
        protocol=protocol,
        num_users=num_users,
        shard_dim=shard_dim,
        privacy=privacy,
        dropout_tolerance=dropout_tolerance,
        pool_size=pool_size,
        low_water=low_water,
        seed=seed,
        field_modulus=r.get_u64(),
    )


@dataclass
class SessionSetup:
    """Build (or re-pin) shard sessions on a worker host, one per slot.

    ``entries`` maps connection-unique slot ids to the declarative specs
    the worker builds sessions from.  Several cohorts' shards can ride
    one connection: each cohort's coordinator allocates disjoint slots,
    and all later per-shard messages address slots through their
    ``shard_id`` field.  Re-sending a slot already hosted *rebuilds* that
    slot's session from the spec — the reconnect re-pin semantics.
    """

    TYPE = 8

    entries: List[Tuple[int, object]] = field(default_factory=list)
    # Wire-format capabilities the coordinator wants to use on this
    # connection (CAP_* bitmask).  Trailing-optional: omitted when zero,
    # so frames from/to pre-capability peers are byte-identical to the
    # old format and mixed versions interoperate on the raw encoding.
    capabilities: int = 0

    def _encode(self, w: PayloadWriter) -> None:
        w.put_u32(len(self.entries))
        for slot, spec in sorted(self.entries, key=lambda e: e[0]):
            w.put_u32(slot)
            _put_spec(w, spec)
        if self.capabilities:
            w.put_u32(self.capabilities)

    @classmethod
    def _decode(cls, r: PayloadReader) -> "SessionSetup":
        count = r.get_u32()
        entries = [(r.get_u32(), _get_spec(r)) for _ in range(count)]
        capabilities = r.get_u32() if r.remaining else 0
        return cls(entries=entries, capabilities=capabilities)


@dataclass
class SetupAck:
    """Acknowledges a setup/teardown: the slot ids the request touched."""

    TYPE = 9

    slots: List[int] = field(default_factory=list)
    # The subset of the setup's requested capabilities this worker
    # supports — what the connection actually negotiated.  Same
    # trailing-optional encoding (and rationale) as SessionSetup's.
    capabilities: int = 0

    def _encode(self, w: PayloadWriter) -> None:
        w.put_array(np.fromiter(
            sorted(self.slots), dtype=np.uint32, count=len(self.slots)
        ))
        if self.capabilities:
            w.put_u32(self.capabilities)

    @classmethod
    def _decode(cls, r: PayloadReader) -> "SetupAck":
        slots = [int(s) for s in r.get_array()]
        capabilities = r.get_u32() if r.remaining else 0
        return cls(slots=slots, capabilities=capabilities)


@dataclass
class SessionTeardown:
    """Close the sessions in ``slots`` only, leaving the connection (and
    any other cohort's slots on it) alive.  Acked with a SetupAck."""

    TYPE = 10

    slots: List[int] = field(default_factory=list)

    def _encode(self, w: PayloadWriter) -> None:
        w.put_array(np.fromiter(
            sorted(self.slots), dtype=np.uint32, count=len(self.slots)
        ))

    @classmethod
    def _decode(cls, r: PayloadReader) -> "SessionTeardown":
        return cls(slots=[int(s) for s in r.get_array()])


@dataclass
class Ping:
    """Connection heartbeat; echoed back verbatim under the request id."""

    TYPE = 11

    nonce: int = 0

    def _encode(self, w: PayloadWriter) -> None:
        w.put_u64(self.nonce)

    @classmethod
    def _decode(cls, r: PayloadReader) -> "Ping":
        return cls(nonce=r.get_u64())


@dataclass
class Shutdown:
    """Close every session a worker hosts and exit its serve loop.

    A refill already in flight on the worker completes (and its material
    lands in the pool) before the shutdown is acknowledged.
    """

    TYPE = 7

    def _encode(self, w: PayloadWriter) -> None:  # no fields
        pass

    @classmethod
    def _decode(cls, r: PayloadReader) -> "Shutdown":
        return cls()


WIRE_MESSAGES: Dict[int, Type] = {
    cls.TYPE: cls
    for cls in (
        ShardRoundRequest,
        ShardRoundResult,
        RefillRequest,
        PoolSnapshot,
        ErrorFrame,
        SnapshotRequest,
        ShardDrainRequest,
        RekeyRequest,
        SessionSetup,
        SetupAck,
        SessionTeardown,
        Ping,
        Shutdown,
    )
}


def encode_segments(message, request_id: int = 0):
    """Encode one typed message as ``[header, *payload segments]``.

    The vectored-write twin of :func:`encode_message`: socket transports
    hand the list straight to ``sendmsg`` so array payloads go out with
    zero joins (see :func:`repro.wire.stream.send_segments`).
    """
    msg_type = getattr(type(message), "TYPE", None)
    if msg_type not in WIRE_MESSAGES:
        raise WireError(f"{type(message).__name__} is not a wire message")
    w = PayloadWriter()
    message._encode(w)
    return frame_segments(msg_type, request_id, w)


def encode_message(message, request_id: int = 0) -> bytes:
    """Encode one typed message into a complete wire frame."""
    return b"".join(encode_segments(message, request_id))


def decode_message(frame: bytes, shm=None):
    """Decode one frame into ``(request_id, message)``.

    ``shm`` (a ``name -> memoryview`` resolver, e.g.
    ``ShmRegistry.resolve``) enables shared-memory array refs; without
    it such frames raise :class:`WireError` instead of mis-decoding.
    """
    msg_type, request_id, reader = decode_frame(frame, shm=shm)
    cls = WIRE_MESSAGES.get(msg_type)
    if cls is None:
        raise WireError(f"unknown wire message type {msg_type}")
    message = cls._decode(reader)
    if reader.remaining:
        raise WireError(
            f"{cls.__name__} frame has {reader.remaining} trailing bytes"
        )
    return request_id, message
