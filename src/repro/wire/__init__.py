"""Versioned binary wire format for shard transport messages.

The service layer's scatter/gather of shard rounds and refills speaks
this format over whatever byte transport is configured — an in-process
call (no frames at all), a ``multiprocessing`` pipe today, a socket in a
networked deployment tomorrow.  See :mod:`repro.wire.format` for the
frame layout and :mod:`repro.wire.messages` for the message set.
"""

from repro.wire.format import (
    HEADER_SIZE,
    MAGIC,
    WIRE_VERSION,
    PayloadReader,
    PayloadWriter,
    decode_frame,
    encode_frame,
)
from repro.wire.messages import (
    WIRE_MESSAGES,
    ErrorFrame,
    PoolSnapshot,
    RefillRequest,
    ShardRoundRequest,
    ShardRoundResult,
    SnapshotRequest,
    Shutdown,
    decode_message,
    encode_message,
)

__all__ = [
    "HEADER_SIZE",
    "MAGIC",
    "WIRE_VERSION",
    "PayloadReader",
    "PayloadWriter",
    "decode_frame",
    "encode_frame",
    "WIRE_MESSAGES",
    "ErrorFrame",
    "PoolSnapshot",
    "RefillRequest",
    "ShardRoundRequest",
    "ShardRoundResult",
    "SnapshotRequest",
    "Shutdown",
    "decode_message",
    "encode_message",
]
