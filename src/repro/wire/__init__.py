"""Versioned binary wire format for shard transport messages.

The service layer's scatter/gather of shard rounds and refills speaks
this format over whatever byte transport is configured — an in-process
call (no frames at all), a ``multiprocessing`` pipe, or a TCP socket
(:class:`~repro.service.socket_transport.SocketTransport` speaking to a
``repro shard-worker`` host).  See :mod:`repro.wire.format` for the
frame layout, :mod:`repro.wire.messages` for the message set, and
:mod:`repro.wire.stream` for byte-stream reassembly and vectored
writes.
"""

from repro.wire.format import (
    HEADER_SIZE,
    MAGIC,
    MAX_PAYLOAD_BYTES,
    WIRE_VERSION,
    PayloadReader,
    PayloadWriter,
    decode_frame,
    encode_frame,
    frame_segments,
)
from repro.wire.messages import (
    WIRE_MESSAGES,
    ErrorFrame,
    Ping,
    PoolSnapshot,
    RefillRequest,
    SessionSetup,
    SessionTeardown,
    SetupAck,
    ShardRoundRequest,
    ShardRoundResult,
    SnapshotRequest,
    Shutdown,
    decode_message,
    encode_message,
    encode_segments,
)
from repro.wire.stream import FrameAssembler, recv_frames, send_segments

__all__ = [
    "HEADER_SIZE",
    "MAGIC",
    "MAX_PAYLOAD_BYTES",
    "WIRE_VERSION",
    "PayloadReader",
    "PayloadWriter",
    "decode_frame",
    "encode_frame",
    "frame_segments",
    "WIRE_MESSAGES",
    "ErrorFrame",
    "Ping",
    "PoolSnapshot",
    "RefillRequest",
    "SessionSetup",
    "SessionTeardown",
    "SetupAck",
    "ShardRoundRequest",
    "ShardRoundResult",
    "SnapshotRequest",
    "Shutdown",
    "decode_message",
    "encode_message",
    "encode_segments",
    "FrameAssembler",
    "recv_frames",
    "send_segments",
]
