"""Versioned binary wire format for shard transport messages.

The service layer's scatter/gather of shard rounds and refills speaks
this format over whatever byte transport is configured — an in-process
call (no frames at all), a ``multiprocessing`` pipe, or a TCP socket
(:class:`~repro.service.socket_transport.SocketTransport` speaking to a
``repro shard-worker`` host).  See :mod:`repro.wire.format` for the
frame layout, :mod:`repro.wire.messages` for the message set,
:mod:`repro.wire.stream` for byte-stream reassembly and vectored
writes, and :mod:`repro.wire.shm` for the same-host shared-memory
payload lane.

Two element encodings ride the same frame format: raw little-endian
bytes, and sub-word *bit-packed* payloads
(:meth:`~repro.wire.format.PayloadWriter.put_packed_array`) negotiated
via :data:`~repro.wire.messages.CAP_PACKED_ARRAYS`.  Same-host
transports can additionally pass vector payloads by shared-memory
reference (:class:`~repro.wire.format.ShmArrayRef`) so element bytes
never transit the pipe at all.
"""

from repro.wire.format import (
    HEADER_SIZE,
    MAGIC,
    MAX_PAYLOAD_BYTES,
    WIRE_VERSION,
    PayloadReader,
    PayloadWriter,
    ShmArrayRef,
    decode_frame,
    encode_frame,
    frame_segments,
    pack_bits,
    packed_nbytes,
    unpack_bits,
)
from repro.wire.messages import (
    CAP_BUFFERED_DRAINS,
    CAP_PACKED_ARRAYS,
    CAP_ROUND_TRACING,
    SUPPORTED_CAPABILITIES,
    WIRE_MESSAGES,
    WorkerSpan,
    ErrorFrame,
    Ping,
    PoolSnapshot,
    RefillRequest,
    RekeyRequest,
    SessionSetup,
    SessionTeardown,
    SetupAck,
    ShardDrainRequest,
    ShardRoundRequest,
    ShardRoundResult,
    SnapshotRequest,
    Shutdown,
    decode_message,
    encode_message,
    encode_segments,
)
from repro.wire.shm import (
    SEGMENT_PREFIX,
    SegmentArena,
    ShmRegistry,
    created_segments,
)
from repro.wire.stream import FrameAssembler, recv_frames, send_segments

__all__ = [
    "HEADER_SIZE",
    "MAGIC",
    "MAX_PAYLOAD_BYTES",
    "WIRE_VERSION",
    "PayloadReader",
    "PayloadWriter",
    "ShmArrayRef",
    "decode_frame",
    "encode_frame",
    "frame_segments",
    "pack_bits",
    "packed_nbytes",
    "unpack_bits",
    "CAP_BUFFERED_DRAINS",
    "CAP_PACKED_ARRAYS",
    "CAP_ROUND_TRACING",
    "SUPPORTED_CAPABILITIES",
    "WIRE_MESSAGES",
    "WorkerSpan",
    "ErrorFrame",
    "Ping",
    "PoolSnapshot",
    "RefillRequest",
    "RekeyRequest",
    "SessionSetup",
    "SessionTeardown",
    "SetupAck",
    "ShardDrainRequest",
    "ShardRoundRequest",
    "ShardRoundResult",
    "SnapshotRequest",
    "Shutdown",
    "decode_message",
    "encode_message",
    "encode_segments",
    "SEGMENT_PREFIX",
    "SegmentArena",
    "ShmRegistry",
    "created_segments",
    "FrameAssembler",
    "recv_frames",
    "send_segments",
]
