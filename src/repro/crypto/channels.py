"""Secure (private, authenticated) pairwise channels — paper footnote 3.

LightSecAgg, like SecAgg/SecAgg+, assumes coded shares travel over secure
channels so the server relaying them learns nothing.  This module builds
that substrate from the primitives already in the library: a Diffie-Hellman
agreement bootstraps a per-pair key, payloads are one-time-padded with a
PRG stream over GF(q) (information-theoretically hiding given a fresh
nonce), and a SHA-256 MAC authenticates ciphertext and metadata.

This is a simulation-grade construction (the nonce discipline and the
encrypt-then-MAC composition mirror deployed AEADs; a production system
would use a vetted AEAD).  What matters for the reproduction is that the
relay-visible bytes are uniform field elements, which the tests check.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.crypto.prg import PRG, seed_from_bytes
from repro.exceptions import ProtocolError
from repro.field.arithmetic import FiniteField


@dataclass(frozen=True)
class SealedMessage:
    """Ciphertext + authentication tag + public metadata."""

    sender: int
    receiver: int
    nonce: int
    ciphertext: np.ndarray  # uint64 field elements
    tag: bytes

    @property
    def num_elements(self) -> int:
        return int(self.ciphertext.shape[0])


class SecureChannel:
    """One direction of an authenticated-encryption channel over GF(q).

    Both endpoints construct the channel from the same DH-agreed
    ``shared_key``; each ``seal`` consumes a fresh nonce (enforced
    monotonically per channel instance).
    """

    def __init__(
        self,
        gf: FiniteField,
        shared_key: int,
        sender: int,
        receiver: int,
        prg_backend: str = "pcg64",
    ):
        if shared_key < 0:
            raise ProtocolError("shared key must be non-negative")
        self.gf = gf
        self.sender = sender
        self.receiver = receiver
        self._key = shared_key
        self._prg = PRG(gf, backend=prg_backend)
        self._next_nonce = 0

    # ------------------------------------------------------------------
    def _stream_seed(self, nonce: int) -> int:
        payload = f"{self._key}:{self.sender}:{self.receiver}:{nonce}".encode()
        return seed_from_bytes(b"stream|" + payload)

    def _mac(self, nonce: int, ciphertext: np.ndarray) -> bytes:
        h = hashlib.sha256()
        h.update(b"mac|")
        h.update(str(self._key).encode())
        h.update(f"|{self.sender}|{self.receiver}|{nonce}|".encode())
        h.update(ciphertext.tobytes())
        return h.digest()

    # ------------------------------------------------------------------
    def seal(self, plaintext: np.ndarray, nonce: Optional[int] = None) -> SealedMessage:
        """Encrypt-then-MAC a field vector."""
        plaintext = self.gf.array(plaintext)
        if plaintext.ndim != 1:
            raise ProtocolError("can only seal 1-D field vectors")
        if nonce is None:
            nonce = self._next_nonce
        if nonce < self._next_nonce:
            raise ProtocolError(f"nonce {nonce} already used on this channel")
        self._next_nonce = nonce + 1
        stream = self._prg.expand(self._stream_seed(nonce), plaintext.shape[0])
        ciphertext = self.gf.add(plaintext, stream)
        return SealedMessage(
            sender=self.sender,
            receiver=self.receiver,
            nonce=nonce,
            ciphertext=ciphertext,
            tag=self._mac(nonce, ciphertext),
        )

    def open(self, message: SealedMessage) -> np.ndarray:
        """Verify the MAC and decrypt; raises on any tampering."""
        if (message.sender, message.receiver) != (self.sender, self.receiver):
            raise ProtocolError("message addressed to a different channel")
        expected = self._mac(message.nonce, message.ciphertext)
        if not _constant_time_eq(expected, message.tag):
            raise ProtocolError("authentication tag mismatch")
        stream = self._prg.expand(
            self._stream_seed(message.nonce), message.num_elements
        )
        return self.gf.sub(message.ciphertext, stream)


def _constant_time_eq(a: bytes, b: bytes) -> bool:
    if len(a) != len(b):
        return False
    acc = 0
    for x, y in zip(a, b):
        acc |= x ^ y
    return acc == 0


def channel_pair(
    gf: FiniteField, shared_key: int, user_a: int, user_b: int
) -> tuple:
    """The two directed channels between a pair of users."""
    return (
        SecureChannel(gf, shared_key, sender=user_a, receiver=user_b),
        SecureChannel(gf, shared_key, sender=user_b, receiver=user_a),
    )
