"""Seeded pseudo-random generators expanding a seed into GF(q) vectors.

SecAgg masks are ``PRG(seed)`` vectors of the model dimension (paper
Sec. 3); both parties to a pairwise agreement must expand the same seed to
the identical vector, so determinism across calls and processes is the
contract here.

Two backends:

* ``"pcg64"`` (default) — ``numpy.random.Generator(PCG64(seed))`` with
  ``integers(0, q)``, which is exactly uniform on ``[0, q)`` and very fast.
  This models the role a fast stream cipher plays in a production system.
* ``"sha256"`` — SHA-256 in counter mode with vectorized rejection
  sampling, a construction whose security argument mirrors deployed PRGs.
  Slower; used to cross-check backend-independence of the protocols.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict

import numpy as np

from repro.exceptions import FieldError
from repro.field.arithmetic import FiniteField

BACKENDS = ("pcg64", "sha256")


def _expand_pcg64(seed: int, length: int, gf: FiniteField) -> np.ndarray:
    rng = np.random.Generator(np.random.PCG64(seed))
    return rng.integers(0, gf.q, size=length, dtype=np.uint64)


def _expand_sha256(seed: int, length: int, gf: FiniteField) -> np.ndarray:
    """SHA-256 counter-mode expansion with rejection sampling.

    Each 32-byte digest yields four uint64 words; words are rejected when
    they fall in the biased tail ``[limit, 2**64)`` where
    ``limit = 2**64 - 2**64 % q``, making the output exactly uniform mod q.
    The final full-range uint64 reduction runs through the field's
    selected reduction kernel (division-free for the default modulus).
    """
    q = gf.q
    limit = (1 << 64) - ((1 << 64) % q)
    seed_bytes = seed.to_bytes(32, "little", signed=False)
    out = np.empty(length, dtype=np.uint64)
    filled = 0
    counter = 0
    while filled < length:
        # Generate a batch of digests; oversample ~10% for rejections.
        need = length - filled
        n_blocks = max(1, (need + 3) // 4 + (need // 32) + 1)
        words = np.empty(n_blocks * 4, dtype=np.uint64)
        buf = bytearray()
        for b in range(n_blocks):
            h = hashlib.sha256(seed_bytes + (counter + b).to_bytes(8, "little"))
            buf += h.digest()
        counter += n_blocks
        words = np.frombuffer(bytes(buf), dtype="<u8")
        accepted = words[words < np.uint64(limit)]
        take = min(need, accepted.size)
        gf.reducer.reduce(accepted[:take], out=out[filled : filled + take])
        filled += take
    return out


_EXPANDERS: Dict[str, Callable[[int, int, FiniteField], np.ndarray]] = {
    "pcg64": _expand_pcg64,
    "sha256": _expand_sha256,
}


class PRG:
    """Deterministic seed-to-field-vector expander.

    >>> gf = FiniteField()
    >>> prg = PRG(gf)
    >>> bool(np.array_equal(prg.expand(42, 8), prg.expand(42, 8)))
    True
    """

    def __init__(self, gf: FiniteField, backend: str = "pcg64"):
        if backend not in BACKENDS:
            raise FieldError(f"unknown PRG backend {backend!r}; use {BACKENDS}")
        self.gf = gf
        self.backend = backend
        self._expand = _EXPANDERS[backend]

    def expand(self, seed: int, length: int) -> np.ndarray:
        """Expand ``seed`` into ``length`` uniform field elements.

        The same ``(seed, length, q, backend)`` always yields the same
        vector; a prefix property additionally holds for the sha256 backend
        (``expand(s, n)[:m] == expand(s, m)``).
        """
        if length < 0:
            raise FieldError(f"length must be non-negative, got {length}")
        if seed < 0:
            # Map arbitrary ints (e.g. signed hashes) into the seed domain.
            seed = seed % (1 << 256)
        return self._expand(seed, length, self.gf)

    def __repr__(self) -> str:
        return f"PRG(q={self.gf.q}, backend={self.backend!r})"


def seed_from_bytes(data: bytes) -> int:
    """Derive a 256-bit integer seed from arbitrary bytes via SHA-256."""
    return int.from_bytes(hashlib.sha256(data).digest(), "little")
