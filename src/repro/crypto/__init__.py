"""Cryptographic substrate: seeded PRGs and Diffie-Hellman key agreement."""

from repro.crypto.channels import SealedMessage, SecureChannel, channel_pair
from repro.crypto.dh import (
    RFC3526_GENERATOR,
    RFC3526_PRIME_2048,
    SIMULATION_GENERATOR,
    SIMULATION_PRIME,
    DiffieHellman,
    KeyPair,
)
from repro.crypto.prg import BACKENDS, PRG, seed_from_bytes

__all__ = [
    "SecureChannel",
    "SealedMessage",
    "channel_pair",
    "PRG",
    "BACKENDS",
    "seed_from_bytes",
    "DiffieHellman",
    "KeyPair",
    "SIMULATION_PRIME",
    "SIMULATION_GENERATOR",
    "RFC3526_PRIME_2048",
    "RFC3526_GENERATOR",
]
