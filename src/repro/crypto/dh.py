"""Finite-field Diffie-Hellman key agreement.

SecAgg's pairwise seeds ``a_{i,j} = Key.Agree(sk_i, pk_j)`` (paper Sec. 3)
are modeled with textbook Diffie-Hellman over the multiplicative group of a
prime modulus.  The derived shared secret is hashed into a PRG seed, so
both endpoints of a pair expand identical masks.

The default group uses a 256-bit safe-prime-style modulus, which keeps the
cost of the ``O(N^2)`` pairwise agreements manageable in simulation while
exercising exactly the code path of a production deployment (a production
system would swap in an RFC 3526 group or X25519).  The RFC 3526 2048-bit
MODP group is included for fidelity tests.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import ProtocolError

#: 256-bit prime p = 2^256 - 189 (p and the group are fixed, public values).
SIMULATION_PRIME: int = (1 << 256) - 189
SIMULATION_GENERATOR: int = 2

#: RFC 3526 group 14 (2048-bit MODP); used for fidelity checks.
RFC3526_PRIME_2048: int = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E08"
    "8A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B"
    "302B0A6DF25F14374FE1356D6D51C245E485B576625E7EC6F44C42E9"
    "A637ED6B0BFF5CB6F406B7EDEE386BFB5A899FA5AE9F24117C4B1FE6"
    "49286651ECE45B3DC2007CB8A163BF0598DA48361C55D39A69163FA8"
    "FD24CF5F83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3BE39E772C"
    "180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFF"
    "FFFFFFFF",
    16,
)
RFC3526_GENERATOR: int = 2


@dataclass(frozen=True)
class KeyPair:
    """A Diffie-Hellman key pair; ``public = g^secret mod p``."""

    secret: int
    public: int


class DiffieHellman:
    """Key generation and pairwise agreement in a fixed DH group."""

    def __init__(
        self,
        prime: int = SIMULATION_PRIME,
        generator: int = SIMULATION_GENERATOR,
    ):
        if prime <= 3:
            raise ProtocolError("DH modulus must be a large prime")
        self.prime = prime
        self.generator = generator

    def generate_keypair(
        self, rng: Optional[np.random.Generator] = None
    ) -> KeyPair:
        """Draw a random secret exponent and compute the public key."""
        rng = rng if rng is not None else np.random.default_rng()
        # 32 random bytes -> exponent in [2, p-2].
        raw = int.from_bytes(rng.bytes(32), "little")
        secret = 2 + raw % (self.prime - 3)
        return KeyPair(secret=secret, public=pow(self.generator, secret, self.prime))

    def keypair_from_secret(self, secret: int) -> KeyPair:
        """Deterministic key pair from a known secret (used after Shamir
        reconstruction of a dropped user's ``sk_i`` in SecAgg)."""
        if not 1 <= secret < self.prime - 1:
            raise ProtocolError("secret exponent out of range")
        return KeyPair(secret=secret, public=pow(self.generator, secret, self.prime))

    def agree(self, my_secret: int, their_public: int) -> int:
        """Shared secret ``their_public ** my_secret mod p``, hashed to a seed.

        Hashing matches deployed practice (a KDF over the DH output) and
        gives a uniform 256-bit PRG seed.  Symmetric by construction:
        ``agree(sk_i, pk_j) == agree(sk_j, pk_i)``.
        """
        if not 1 < their_public < self.prime - 1:
            raise ProtocolError("invalid DH public key")
        shared = pow(their_public, my_secret, self.prime)
        digest = hashlib.sha256(
            shared.to_bytes((self.prime.bit_length() + 7) // 8, "little")
        ).digest()
        return int.from_bytes(digest, "little")
