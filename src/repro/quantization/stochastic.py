"""Stochastic rounding — paper eq. (29).

``Q_c(x)`` rounds ``c * x`` to one of its two neighbouring integers with
probabilities proportional to proximity, then divides by ``c``.  The
estimator is unbiased (``E[Q_c(x)] = x``) with variance at most
``1 / (4 c^2)`` per coordinate (paper Lemma 2), which is what makes the
quantized FL updates behave like the unquantized ones up to a small extra
variance term (Theorem 2).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import QuantizationError


def stochastic_round(
    x: np.ndarray,
    levels: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Unbiased stochastic rounding of ``x`` onto the grid ``Z / levels``.

    Parameters
    ----------
    x:
        Real array to round.
    levels:
        The paper's ``c`` — grid resolution.  Must be a positive integer.
    rng:
        Randomness source; a fresh default generator when omitted.

    Returns
    -------
    Array of the same shape with entries on the ``1/levels`` grid,
    satisfying ``|out - x| < 1/levels`` elementwise and ``E[out] = x``.
    """
    if levels <= 0:
        raise QuantizationError(f"levels must be a positive int, got {levels}")
    rng = rng if rng is not None else np.random.default_rng()
    x = np.asarray(x, dtype=np.float64)
    scaled = x * levels
    floor = np.floor(scaled)
    frac = scaled - floor
    round_up = rng.random(size=x.shape) < frac
    return (floor + round_up) / levels


def stochastic_round_to_int(
    x: np.ndarray,
    levels: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """``c * Q_c(x)`` as int64 — the integer grid index of eq. (30).

    This is the quantity embedded into the finite field: the paper computes
    ``phi(c_l * Q_{c_l}(Delta))``.
    """
    if levels <= 0:
        raise QuantizationError(f"levels must be a positive int, got {levels}")
    rng = rng if rng is not None else np.random.default_rng()
    x = np.asarray(x, dtype=np.float64)
    scaled = x * levels
    floor = np.floor(scaled)
    frac = scaled - floor
    round_up = rng.random(size=x.shape) < frac
    return (floor + round_up).astype(np.int64)


def rounding_variance_bound(levels: int, dim: int) -> float:
    """The Lemma-2 variance bound ``d / (4 c^2)`` for a length-``d`` vector."""
    if levels <= 0:
        raise QuantizationError(f"levels must be a positive int, got {levels}")
    return dim / (4.0 * levels * levels)
