"""Two's-complement embedding of signed integers into GF(q).

Paper eqs. (31) and (36): negative integers are represented as ``q + x`` so
that field addition implements signed integer addition as long as no
intermediate value leaves ``(-q/2, q/2)``.  This is what lets masked,
quantized model updates be summed in the field and mapped back to signed
integers exactly.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import QuantizationError
from repro.field.arithmetic import FiniteField


def to_field(gf: FiniteField, x: np.ndarray) -> np.ndarray:
    """Map signed int64 values into GF(q): ``x`` if ``x >= 0`` else ``q + x``.

    Raises when any ``|x| >= q/2``, which would make the embedding
    ambiguous (wrap-around error).
    """
    x = np.asarray(x)
    if not np.issubdtype(x.dtype, np.integer):
        raise QuantizationError(f"to_field expects integers, got dtype {x.dtype}")
    half = (gf.q - 1) // 2
    if x.size and (int(x.max(initial=0)) > half or int(x.min(initial=0)) < -half):
        raise QuantizationError(
            f"values must lie in [-{half}, {half}] to avoid wrap-around"
        )
    out = x.astype(np.int64)
    out = np.where(out < 0, out + gf.q, out)
    return out.astype(np.uint64)


def from_field(gf: FiniteField, a: np.ndarray) -> np.ndarray:
    """Inverse map (eq. 36): residues above ``(q-1)/2`` become negative."""
    return gf.to_signed(a)


def headroom(gf: FiniteField, magnitude_bound: int) -> int:
    """How many values bounded by ``magnitude_bound`` can be summed safely.

    Summing ``n`` signed integers of magnitude ``<= m`` stays unambiguous
    while ``n * m < q/2``; the return value is that maximal ``n``.  Useful
    for choosing quantization levels that avoid wrap-around for a given
    number of users (the paper's "field size large enough" assumption,
    Sec. F.3.2).
    """
    if magnitude_bound <= 0:
        raise QuantizationError("magnitude bound must be positive")
    half = (gf.q - 1) // 2
    return half // magnitude_bound
