"""Quantization substrate: stochastic rounding and field embedding."""

from repro.quantization.quantizer import ModelQuantizer, QuantizationConfig
from repro.quantization.stochastic import (
    rounding_variance_bound,
    stochastic_round,
    stochastic_round_to_int,
)
from repro.quantization.twos_complement import from_field, headroom, to_field

__all__ = [
    "ModelQuantizer",
    "QuantizationConfig",
    "stochastic_round",
    "stochastic_round_to_int",
    "rounding_variance_bound",
    "to_field",
    "from_field",
    "headroom",
]
