"""Model-update quantizer: reals -> GF(q) and back.

Combines stochastic rounding (eq. 29/30) with the two's-complement field
embedding (eq. 31) exactly as the paper's Sec. F.3.2: the real update
``Delta`` becomes ``phi(c_l * Q_{c_l}(Delta))`` in GF(q); after secure
aggregation the server applies ``phi^{-1}`` and divides by ``c_l``.

The quantizer also owns the *wrap-around budget*: summing ``n`` quantized
updates is exact only while every intermediate stays in ``(-q/2, q/2)``.
:meth:`ModelQuantizer.check_budget` makes that constraint explicit so
experiments fail loudly instead of silently corrupting aggregates (this is
the failure mode behind the poor large-``c_l`` accuracy in Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import QuantizationError
from repro.field.arithmetic import FiniteField
from repro.quantization.stochastic import stochastic_round_to_int
from repro.quantization.twos_complement import from_field, to_field


@dataclass(frozen=True)
class QuantizationConfig:
    """Parameters of the real <-> field embedding.

    Attributes
    ----------
    levels:
        The paper's ``c_l`` — grid resolution of stochastic rounding.
        ``levels = 2**16`` is the sweet spot found in Fig. 12.
    clip:
        Optional symmetric clipping bound applied before rounding; ``None``
        disables clipping.  Clipping keeps the wrap-around budget
        predictable for adversarially large updates.
    """

    levels: int = 1 << 16
    clip: Optional[float] = None

    def __post_init__(self):
        if self.levels <= 0:
            raise QuantizationError(f"levels must be positive, got {self.levels}")
        if self.clip is not None and self.clip <= 0:
            raise QuantizationError(f"clip must be positive, got {self.clip}")


class ModelQuantizer:
    """Round-trips real update vectors through GF(q)."""

    def __init__(self, gf: FiniteField, config: QuantizationConfig = QuantizationConfig()):
        self.gf = gf
        self.config = config

    def quantize(
        self, update: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Real vector -> field vector ``phi(c_l * Q_{c_l}(update))``."""
        update = np.asarray(update, dtype=np.float64)
        if self.config.clip is not None:
            update = np.clip(update, -self.config.clip, self.config.clip)
        ints = stochastic_round_to_int(update, self.config.levels, rng)
        return to_field(self.gf, ints)

    def dequantize(self, field_vec: np.ndarray, scale: int = 1) -> np.ndarray:
        """Field vector -> real vector, dividing by ``scale * levels``.

        ``scale`` folds in any extra integer factors applied in-field, e.g.
        the quantized staleness weight ``c_g`` of the asynchronous protocol
        (eq. 35 divides by ``c_g * c_l``).
        """
        if scale <= 0:
            raise QuantizationError(f"scale must be positive, got {scale}")
        signed = from_field(self.gf, self.gf.array(field_vec))
        return signed.astype(np.float64) / (self.config.levels * scale)

    def check_budget(self, num_users: int, magnitude_bound: float) -> None:
        """Raise unless ``num_users`` updates of given magnitude sum safely.

        ``magnitude_bound`` is a bound on ``|update|_inf`` in real units.
        """
        if num_users <= 0:
            raise QuantizationError("num_users must be positive")
        per_user = int(np.ceil(abs(magnitude_bound) * self.config.levels)) + 1
        half = (self.gf.q - 1) // 2
        if num_users * per_user >= half:
            raise QuantizationError(
                f"wrap-around risk: {num_users} users x magnitude "
                f"{magnitude_bound} at {self.config.levels} levels exceeds "
                f"field headroom q/2 = {half}"
            )

    def __repr__(self) -> str:
        return (
            f"ModelQuantizer(q={self.gf.q}, levels={self.config.levels}, "
            f"clip={self.config.clip})"
        )
