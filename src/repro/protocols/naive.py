"""Insecure baseline: plain FedAvg-style aggregation with no masking.

Useful as a correctness oracle (every secure protocol must produce the same
field sum) and as the zero-overhead reference point in the systems
benchmarks.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

import numpy as np

from repro.field.arithmetic import FiniteField
from repro.protocols.base import (
    SERVER,
    AggregationResult,
    RoundMetrics,
    SecureAggregationProtocol,
    Transcript,
)


class NaiveAggregation(SecureAggregationProtocol):
    """Sums survivors' updates in the clear."""

    name = "naive"

    def __init__(self, gf: FiniteField, num_users: int, model_dim: int):
        super().__init__(gf, num_users)
        self.model_dim = model_dim

    def run_round(
        self,
        updates: Dict[int, np.ndarray],
        dropouts: Set[int],
        rng: Optional[np.random.Generator] = None,
    ) -> AggregationResult:
        survivors = self._validate_round_inputs(updates, dropouts)
        transcript = Transcript()
        total = self.gf.array(updates[survivors[0]]).copy()
        transcript.record(survivors[0], SERVER, "upload", self.model_dim)
        for i in survivors[1:]:
            total = self.gf.add(total, updates[i])
            transcript.record(i, SERVER, "upload", self.model_dim)
        return AggregationResult(
            aggregate=total,
            survivors=survivors,
            transcript=transcript,
            metrics=RoundMetrics(),
        )
