"""Protocol-layer abstractions shared by all secure-aggregation schemes.

Every protocol implements :class:`SecureAggregationProtocol.run_round`:
given per-user model updates already embedded in GF(q) and a set of dropped
users, produce the exact field-sum of the surviving users' updates.  The
run also fills a :class:`Transcript` with every message that crossed the
(simulated) network, which downstream systems-simulation converts into
bytes and wall-clock time.

Phases follow the paper's terminology:

* ``offline`` — seed agreement / mask encoding and sharing.
* ``upload`` — masked model upload.
* ``recovery`` — mask reconstruction traffic and server decoding.
"""

from __future__ import annotations

import abc
import threading
from collections import defaultdict
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.exceptions import DropoutError, ProtocolError
from repro.field.arithmetic import FiniteField

SERVER = -1  # sentinel participant id for the server

PHASES = ("offline", "upload", "recovery")


@dataclass(frozen=True)
class Message:
    """One network message: ``sender -> receiver`` of ``size`` field elements.

    ``size`` counts GF(q) elements for mask/model payloads; small key-sized
    payloads (DH public keys, Shamir shares of seeds) are recorded with
    their element count as well, flagged by ``is_key_sized`` so the cost
    model can weigh them by the seed length ``s`` instead of full field
    width (Table 1 distinguishes ``s``-sized from ``d``-sized traffic).
    """

    sender: int
    receiver: int
    phase: str
    size: int
    is_key_sized: bool = False


class Transcript:
    """Accumulates all messages of a protocol round, queryable per phase."""

    def __init__(self):
        self.messages: List[Message] = []

    def record(
        self,
        sender: int,
        receiver: int,
        phase: str,
        size: int,
        is_key_sized: bool = False,
    ) -> None:
        if phase not in PHASES:
            raise ProtocolError(f"unknown phase {phase!r}")
        if size < 0:
            raise ProtocolError("message size must be non-negative")
        self.messages.append(Message(sender, receiver, phase, size, is_key_sized))

    # ------------------------------------------------------------------
    # aggregate views used by the timing simulator and tests
    # ------------------------------------------------------------------
    def elements(
        self,
        phase: Optional[str] = None,
        sender: Optional[int] = None,
        receiver: Optional[int] = None,
        key_sized: Optional[bool] = None,
    ) -> int:
        """Total field elements matching the given filters."""
        total = 0
        for m in self.messages:
            if phase is not None and m.phase != phase:
                continue
            if sender is not None and m.sender != sender:
                continue
            if receiver is not None and m.receiver != receiver:
                continue
            if key_sized is not None and m.is_key_sized != key_sized:
                continue
            total += m.size
        return total

    def per_user_sent(self, phase: Optional[str] = None) -> Dict[int, int]:
        """Elements sent by each non-server participant."""
        out: Dict[int, int] = defaultdict(int)
        for m in self.messages:
            if m.sender == SERVER:
                continue
            if phase is not None and m.phase != phase:
                continue
            out[m.sender] += m.size
        return dict(out)

    def __len__(self) -> int:
        return len(self.messages)


@dataclass
class RoundMetrics:
    """Operation counts a protocol reports for the systems cost model."""

    server_decode_ops: int = 0  # field ops in server-side mask recovery
    server_prg_elements: int = 0  # PRG output elements evaluated at server
    user_encode_ops: int = 0  # per-round total offline field ops at users
    extra: Dict[str, float] = field(default_factory=dict)


@dataclass
class AggregationResult:
    """Outcome of one secure-aggregation round."""

    aggregate: np.ndarray  # field vector: sum of surviving users' updates
    survivors: List[int]
    transcript: Transcript
    metrics: RoundMetrics


DEFAULT_POOL_ROUNDS = 4


@dataclass
class SessionStats:
    """Bookkeeping a :class:`ProtocolSession` accumulates across rounds.

    ``pool_hits`` counts online rounds served from precomputed offline
    material; ``pool_misses`` counts rounds that had to (re)compute the
    offline phase inline.  ``refill_seconds`` is the wall-clock time spent
    in :meth:`ProtocolSession.refill` — the cost a deployment would push
    off the online path entirely.
    """

    rounds: int = 0
    refills: int = 0
    pool_hits: int = 0
    pool_misses: int = 0
    precomputed_rounds: int = 0
    refill_seconds: float = 0.0


class ProtocolSession:
    """Stateful multi-round secure-aggregation session.

    A session keeps participants (and any precomputable offline material)
    alive across rounds, so the per-round online path pays only masking,
    upload, and recovery.  This generic base class is the universal
    *per-round-replay* fallback: it simply re-runs the wrapped protocol's
    one-shot :meth:`SecureAggregationProtocol.run_round` each round, which
    makes every protocol session-drivable (``pool_level`` stays 0 and every
    round is a pool miss).  Protocols with a genuinely precomputable
    offline phase override :meth:`SecureAggregationProtocol.session` to
    return a specialised subclass — see
    :class:`repro.protocols.lightsecagg.session.LightSecAggSession`.

    Sessions are also context managers::

        with protocol.session(pool_size=8, rng=rng) as sess:
            for _ in range(rounds):
                result = sess.run_round(updates, dropouts)
    """

    def __init__(
        self,
        protocol: "SecureAggregationProtocol",
        pool_size: int = DEFAULT_POOL_ROUNDS,
        rng: Optional[np.random.Generator] = None,
        low_water: int = 0,
    ):
        if pool_size < 1:
            raise ProtocolError(f"pool_size must be >= 1, got {pool_size}")
        if not 0 <= low_water < pool_size:
            raise ProtocolError(
                f"low_water must be in [0, pool_size), got low_water="
                f"{low_water} with pool_size={pool_size}"
            )
        self.protocol = protocol
        self.pool_size = int(pool_size)
        self.low_water = int(low_water)
        self.rng = rng if rng is not None else np.random.default_rng()
        self.stats = SessionStats()
        self._closed = False
        # Concurrency contract: one consumer thread drives ``run_round``
        # while at most one refiller thread tops the pool up.  ``_pool_lock``
        # guards pool membership and the hit/miss counters; ``_refill_lock``
        # serializes whole refills so the offline ``rng`` stream is only
        # ever drawn from by one thread at a time.
        self._pool_lock = threading.RLock()
        self._refill_lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def gf(self) -> FiniteField:
        return self.protocol.gf

    @property
    def num_users(self) -> int:
        return self.protocol.num_users

    @property
    def pool_level(self) -> int:
        """Rounds of offline material currently precomputed (0 = none)."""
        return 0

    @property
    def supports_pool(self) -> bool:
        """True when this session has a precomputable offline pool.

        The replay fallback recomputes the offline phase inside every
        round, so there is nothing a background refiller could top up.
        """
        return False

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def needs_refill(self) -> bool:
        """True when the pool has drained to the low-water mark.

        This is the trigger a background refiller polls: once the pool
        level is at or below ``low_water`` (and below ``pool_size``), a
        refill should run off the online path so upcoming rounds never
        block on mask encoding.
        """
        if not self.supports_pool or self._closed:
            return False
        level = self.pool_level
        return level < self.pool_size and level <= self.low_water

    def offline_elements(self) -> int:
        """Total field elements of *amortized* offline traffic so far.

        Pooled sessions move share-exchange traffic out of per-round
        transcripts and into refills; this accessor exposes the cumulative
        total so drivers can attribute refill traffic to the round that
        triggered it.  The replay fallback amortizes nothing (its offline
        traffic stays in each round's transcript) and returns 0.
        """
        return 0

    def refill(self, rounds: Optional[int] = None) -> int:
        """Precompute offline material for up to ``rounds`` future rounds.

        Returns the number of rounds actually added.  The replay fallback
        has nothing to precompute and always returns 0.
        """
        self._require_open()
        return 0

    def state_snapshot(self) -> Dict[str, object]:
        """Pickle-safe view of the session's pool state and counters.

        This is the state a shard transport ships across a process (or,
        later, network) boundary: plain ints/bools plus a
        :class:`SessionStats` value — no live protocol objects, locks, or
        rng streams.  Taken under the pool lock so a transport never
        observes a half-updated (level, stats) pair while a concurrent
        refill lands.
        """
        with self._pool_lock:
            return {
                "pool_level": self.pool_level,
                "pool_size": self.pool_size,
                "low_water": self.low_water,
                "supports_pool": self.supports_pool,
                "closed": self._closed,
                "stats": replace(self.stats),
            }

    # ------------------------------------------------------------------
    def run_round(
        self,
        updates: Dict[int, np.ndarray],
        dropouts: Set[int],
        rng: Optional[np.random.Generator] = None,
        **phase_kwargs,
    ) -> AggregationResult:
        """Run one online round of the session.

        Semantics match the wrapped protocol's one-shot ``run_round``:
        identical inputs produce the identical field-sum.  Extra keyword
        arguments (e.g. LightSecAgg's ``offline_dropouts``) are forwarded.
        """
        self._require_open()
        rng = rng if rng is not None else self.rng
        result = self.protocol.run_round(
            updates, set(dropouts), rng, **phase_kwargs
        )
        self.stats.rounds += 1
        self.stats.pool_misses += 1
        return result

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the session; further ``run_round`` calls raise."""
        self._closed = True

    def _require_open(self) -> None:
        if self._closed:
            raise ProtocolError("session is closed")

    def __enter__(self) -> "ProtocolSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.protocol.name}, "
            f"pool={self.pool_level}/{self.pool_size}, "
            f"rounds={self.stats.rounds})"
        )


class SecureAggregationProtocol(abc.ABC):
    """Interface for one-round secure aggregation over GF(q)."""

    name: str = "abstract"

    def __init__(self, gf: FiniteField, num_users: int):
        if num_users < 2:
            raise ProtocolError(f"need at least 2 users, got {num_users}")
        self.gf = gf
        self.num_users = num_users

    def session(
        self,
        pool_size: int = DEFAULT_POOL_ROUNDS,
        rng: Optional[np.random.Generator] = None,
        low_water: int = 0,
    ) -> ProtocolSession:
        """Open a stateful multi-round session over this protocol.

        The base implementation returns the generic replay
        :class:`ProtocolSession`; protocols with a precomputable offline
        phase override this to return a pooled session.  ``low_water`` is
        the pool level at which a refill should be triggered (used by
        background refillers; inline consumers refill on empty).
        """
        return ProtocolSession(self, pool_size=pool_size, rng=rng, low_water=low_water)

    @abc.abstractmethod
    def run_round(
        self,
        updates: Dict[int, np.ndarray],
        dropouts: Set[int],
        rng: Optional[np.random.Generator] = None,
    ) -> AggregationResult:
        """Aggregate the surviving users' updates.

        ``updates`` maps every user id in ``range(num_users)`` to its field
        vector.  ``dropouts`` are users that upload their masked model but
        then become unreachable (the paper's worst-case dropout point);
        their updates are excluded from the aggregate.
        """

    # ------------------------------------------------------------------
    def _validate_round_inputs(
        self, updates: Dict[int, np.ndarray], dropouts: Set[int]
    ) -> List[int]:
        if set(updates) != set(range(self.num_users)):
            raise ProtocolError(
                "updates must contain exactly one entry per user id "
                f"0..{self.num_users - 1}"
            )
        bad = dropouts - set(range(self.num_users))
        if bad:
            raise ProtocolError(f"dropout ids {sorted(bad)} out of range")
        survivors = [i for i in range(self.num_users) if i not in dropouts]
        if not survivors:
            raise DropoutError("all users dropped; nothing to aggregate")
        dims = {np.asarray(u).shape for u in updates.values()}
        if len(dims) != 1:
            raise ProtocolError(f"inconsistent update shapes: {dims}")
        return survivors

    def expected_aggregate(
        self, updates: Dict[int, np.ndarray], survivors: Sequence[int]
    ) -> np.ndarray:
        """Ground-truth field sum, for verification in tests/examples."""
        total = self.gf.array(updates[survivors[0]]).copy()
        for i in survivors[1:]:
            total = self.gf.add(total, updates[i])
        return total


def sample_dropouts(
    num_users: int,
    dropout_rate: float,
    rng: Optional[np.random.Generator] = None,
) -> Set[int]:
    """Sample ``floor(p * N)`` distinct users to drop, as in Sec. 7.1."""
    if not 0.0 <= dropout_rate < 1.0:
        raise ProtocolError(f"dropout rate must be in [0, 1), got {dropout_rate}")
    rng = rng if rng is not None else np.random.default_rng()
    count = int(dropout_rate * num_users)
    if count == 0:
        return set()
    return set(rng.choice(num_users, size=count, replace=False).tolist())
