"""LightSecAgg design parameters (N, T, D, U) — paper Sec. 4.1.

The protocol is parameterized by the privacy guarantee ``T``, the
dropout-resiliency guarantee ``D``, and the targeted number of surviving
users ``U``, subject to ``N - D >= U > T >= 0`` (Theorem 1 requires
``T + D < N``, which makes a valid ``U`` exist).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ParameterError


@dataclass(frozen=True)
class LSAParams:
    """Validated LightSecAgg parameter tuple."""

    num_users: int  # N
    privacy: int  # T
    dropout_tolerance: int  # D
    target_survivors: int  # U

    def __post_init__(self):
        n, t, d, u = (
            self.num_users,
            self.privacy,
            self.dropout_tolerance,
            self.target_survivors,
        )
        if n < 2:
            raise ParameterError(f"need N >= 2 users, got N={n}")
        if t < 0 or d < 0:
            raise ParameterError(f"T and D must be >= 0, got T={t}, D={d}")
        if t + d >= n:
            raise ParameterError(
                f"Theorem 1 requires T + D < N, got T={t}, D={d}, N={n}"
            )
        if not (t < u <= n - d):
            raise ParameterError(
                f"require T < U <= N - D, got T={t}, U={u}, N-D={n - d}"
            )

    @property
    def num_submasks(self) -> int:
        """``U - T``, the number of data sub-masks per user."""
        return self.target_survivors - self.privacy

    @classmethod
    def from_guarantees(
        cls,
        num_users: int,
        privacy: int,
        dropout_tolerance: int,
        target_survivors: int = None,
    ) -> "LSAParams":
        """Build parameters, defaulting ``U`` to :func:`choose_target_survivors`."""
        if target_survivors is None:
            target_survivors = choose_target_survivors(
                num_users, privacy, dropout_tolerance
            )
        return cls(num_users, privacy, dropout_tolerance, target_survivors)

    @classmethod
    def paper_defaults(cls, num_users: int, dropout_rate: float) -> "LSAParams":
        """The evaluation's setting: ``T = N/2``, ``D = p*N`` (Sec. 7.1).

        At ``p = 0.5`` the pair (T = N/2, D = N/2) violates ``T + D < N``;
        the paper handles this by taking ``U = N/2 + 1``, i.e. tolerating
        ``D = N/2 - 1`` drops.  We clamp ``D`` accordingly.
        """
        privacy = num_users // 2
        dropout = min(int(dropout_rate * num_users), num_users - privacy - 1)
        return cls.from_guarantees(num_users, privacy, dropout)


def choose_target_survivors(
    num_users: int, privacy: int, dropout_tolerance: int
) -> int:
    """Pick ``U`` within ``(T, N - D]`` following the paper's findings.

    Sec. 7.2 ("Impact of U") reports that ``U = floor(0.7 N)`` was optimal
    for ``p in {0.1, 0.3}``; larger ``U`` shrinks each coded symbol
    (``d / (U - T)``) but raises decoding cost (``U log U``).  We use
    ``floor(0.7 N)`` clamped into the feasible interval.
    """
    lo, hi = privacy + 1, num_users - dropout_tolerance
    if lo > hi:
        raise ParameterError(
            f"no feasible U: T={privacy}, D={dropout_tolerance}, N={num_users}"
        )
    preferred = int(0.7 * num_users)
    return min(max(preferred, lo), hi)
