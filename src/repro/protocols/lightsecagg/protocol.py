"""One-round LightSecAgg orchestration (paper Alg. 1 end to end).

Drives :class:`LSAUser` instances and an :class:`LSAServer` through the
three phases, recording every message in a :class:`Transcript`.  The
orchestration models the paper's worst-case dropout point: dropped users
complete the offline phase and upload masked models, then become
unreachable before the recovery phase.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

import numpy as np

from repro.field.arithmetic import FiniteField
from repro.protocols.base import (
    SERVER,
    AggregationResult,
    RoundMetrics,
    SecureAggregationProtocol,
    Transcript,
)
from repro.protocols.lightsecagg.params import LSAParams
from repro.protocols.lightsecagg.server import LSAServer
from repro.protocols.lightsecagg.user import LSAUser


class LightSecAgg(SecureAggregationProtocol):
    """The paper's protocol: one-shot aggregate-mask reconstruction."""

    name = "lightsecagg"

    def __init__(
        self,
        gf: FiniteField,
        params: LSAParams,
        model_dim: int,
        generator: str = "lagrange",
    ):
        super().__init__(gf, params.num_users)
        self.params = params
        self.model_dim = model_dim
        self.generator = generator

    def session(self, pool_size: int = 4, rng=None, low_water: int = 0):
        """Open a pooled multi-round session (amortized offline phase)."""
        from repro.protocols.lightsecagg.session import LightSecAggSession

        return LightSecAggSession(
            self, pool_size=pool_size, rng=rng, low_water=low_water
        )

    def run_round(
        self,
        updates: Dict[int, np.ndarray],
        dropouts: Set[int],
        rng: Optional[np.random.Generator] = None,
        offline_dropouts: Optional[Set[int]] = None,
    ) -> AggregationResult:
        """Run one round.

        ``dropouts`` drop at the paper's worst-case point (after uploading
        their masked model).  ``offline_dropouts`` model Remark 2's earlier
        failure: those users vanish *during* the offline phase — they never
        finish distributing shares nor upload a model, and are excluded
        from the surviving set entirely.  The protocol tolerates any mix as
        long as at least ``U`` users remain.
        """
        offline_dropouts = set(offline_dropouts or set())
        survivors = self._validate_round_inputs(
            updates, dropouts | offline_dropouts
        )
        rng = rng if rng is not None else np.random.default_rng()
        transcript = Transcript()

        users = [
            LSAUser(i, self.gf, self.params, self.model_dim, self.generator)
            for i in range(self.num_users)
        ]
        server = LSAServer(self.gf, self.params, self.model_dim, self.generator)
        share_dim = users[0].encoder.share_dim

        # Phase 1 — offline encoding and sharing of local masks.  Offline
        # dropouts deliver only a prefix of their shares before vanishing;
        # since they never join U1, their partial shares are never used.
        for user in users:
            shares = user.offline_encode(rng)
            delivered = 0
            cutoff = (
                self.num_users // 2
                if user.user_id in offline_dropouts
                else self.num_users
            )
            for j, share in shares.items():
                if delivered >= cutoff:
                    break
                users[j].receive_share(user.user_id, share)
                delivered += 1
                if j != user.user_id:
                    transcript.record(user.user_id, j, "offline", share_dim)

        # Phase 2 — masking and uploading of local models.  Worst case:
        # everyone still reachable (including soon-to-drop users) uploads.
        for user in users:
            if user.user_id in offline_dropouts:
                continue
            masked = user.mask_update(updates[user.user_id])
            server.receive_masked_update(user.user_id, masked)
            transcript.record(user.user_id, SERVER, "upload", self.model_dim)

        # Server fixes the surviving set U1 (dropped users are excluded).
        server.identify_survivors(survivors)

        # Phase 3 — one-shot aggregate-mask recovery.  Only the first U
        # responders need to answer; we take the lowest-id survivors to be
        # deterministic.
        responders = survivors[: self.params.target_survivors]
        for j in responders:
            agg_share = users[j].aggregate_encoded_masks(survivors)
            server.receive_aggregated_shares(j, agg_share)
            transcript.record(j, SERVER, "recovery", share_dim)

        aggregate = server.recover_aggregate()

        u = self.params.target_survivors
        metrics = RoundMetrics(
            # MDS decode of a U-dim code over share_dim-wide symbols; the
            # paper counts this as O(U log U) per element -> U log U / (U-T) * d.
            server_decode_ops=u * u * share_dim,
            server_prg_elements=0,
            user_encode_ops=self.params.num_users * u * share_dim,
        )
        return AggregationResult(
            aggregate=aggregate,
            survivors=survivors,
            transcript=transcript,
            metrics=metrics,
        )
