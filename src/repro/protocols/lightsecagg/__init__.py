"""LightSecAgg protocol: params, user/server state machines, orchestration."""

from repro.protocols.lightsecagg.encrypted import EncryptedLightSecAgg
from repro.protocols.lightsecagg.params import LSAParams, choose_target_survivors
from repro.protocols.lightsecagg.protocol import LightSecAgg
from repro.protocols.lightsecagg.server import LSAServer
from repro.protocols.lightsecagg.session import (
    EncryptedLightSecAggSession,
    LightSecAggSession,
    OfflineMaterial,
)
from repro.protocols.lightsecagg.user import LSAUser

__all__ = [
    "EncryptedLightSecAgg",
    "EncryptedLightSecAggSession",
    "LightSecAggSession",
    "OfflineMaterial",
    "LSAParams",
    "choose_target_survivors",
    "LightSecAgg",
    "LSAUser",
    "LSAServer",
]
