"""LightSecAgg protocol: params, user/server state machines, orchestration."""

from repro.protocols.lightsecagg.encrypted import EncryptedLightSecAgg
from repro.protocols.lightsecagg.params import LSAParams, choose_target_survivors
from repro.protocols.lightsecagg.protocol import LightSecAgg
from repro.protocols.lightsecagg.server import LSAServer
from repro.protocols.lightsecagg.user import LSAUser

__all__ = [
    "EncryptedLightSecAgg",
    "LSAParams",
    "choose_target_survivors",
    "LightSecAgg",
    "LSAUser",
    "LSAServer",
]
