"""LightSecAgg user-side state machine (paper Alg. 1, user lines).

A user proceeds through three steps in a round:

1. :meth:`offline_encode` — draw the local mask ``z_i``, encode it into
   ``N`` coded shares ``[~z_i]_j`` (one per peer).
2. :meth:`mask_update` — upload ``~x_i = x_i + z_i``.
3. :meth:`aggregate_encoded_masks` — after the server announces the
   surviving set ``U1``, sum the held shares ``sum_{i in U1} [~z_i]_j`` and
   upload the single aggregate.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.exceptions import ProtocolError
from repro.coding.mask_encoding import MaskEncoder
from repro.field.arithmetic import FiniteField
from repro.protocols.lightsecagg.params import LSAParams


class LSAUser:
    """State and behaviour of a single LightSecAgg participant."""

    def __init__(
        self,
        user_id: int,
        gf: FiniteField,
        params: LSAParams,
        model_dim: int,
        generator: str = "lagrange",
    ):
        if not 0 <= user_id < params.num_users:
            raise ProtocolError(f"user id {user_id} out of range")
        self.user_id = user_id
        self.gf = gf
        self.params = params
        self.model_dim = model_dim
        self.encoder = MaskEncoder(
            gf,
            num_users=params.num_users,
            target_survivors=params.target_survivors,
            privacy=params.privacy,
            model_dim=model_dim,
            generator=generator,
        )
        self.mask: Optional[np.ndarray] = None
        self._received_shares: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # phase 1: offline encoding and sharing of local masks
    # ------------------------------------------------------------------
    def offline_encode(
        self, rng: Optional[np.random.Generator] = None
    ) -> Dict[int, np.ndarray]:
        """Generate ``z_i`` and return the coded shares keyed by recipient.

        The share for this user itself (``j = i``) is kept locally and also
        returned for uniformity; the caller delivers the rest.
        """
        self.mask = self.encoder.generate_mask(rng)
        coded = self.encoder.encode(self.mask, rng)  # (N, share_dim)
        return {j: coded[j] for j in range(self.params.num_users)}

    def receive_share(self, source: int, share: np.ndarray) -> None:
        """Store ``[~z_source]_{self.user_id}`` received from a peer."""
        if source in self._received_shares:
            raise ProtocolError(
                f"user {self.user_id} already holds a share from {source}"
            )
        expected = (self.encoder.share_dim,)
        if share.shape != expected:
            raise ProtocolError(
                f"share from {source} has shape {share.shape}, expected {expected}"
            )
        self._received_shares[source] = self.gf.array(share)

    @property
    def held_shares(self) -> Dict[int, np.ndarray]:
        """Shares currently held, keyed by source user."""
        return dict(self._received_shares)

    # ------------------------------------------------------------------
    # phase 2: masking and uploading of local models
    # ------------------------------------------------------------------
    def mask_update(self, update: np.ndarray) -> np.ndarray:
        """Return ``~x_i = x_i + z_i`` for upload."""
        if self.mask is None:
            raise ProtocolError("offline_encode must run before mask_update")
        update = self.gf.array(update)
        if update.shape != (self.model_dim,):
            raise ProtocolError(
                f"update has shape {update.shape}, expected ({self.model_dim},)"
            )
        return self.gf.add(update, self.mask)

    # ------------------------------------------------------------------
    # phase 3: one-shot aggregate-mask recovery (user side)
    # ------------------------------------------------------------------
    def aggregate_encoded_masks(self, survivors: Sequence[int]) -> np.ndarray:
        """Compute ``sum_{i in U1} [~z_i]_{self.user_id}`` for upload."""
        missing = [i for i in survivors if i not in self._received_shares]
        if missing:
            raise ProtocolError(
                f"user {self.user_id} lacks shares from survivors {missing}"
            )
        return self.encoder.aggregate_shares(
            {i: self._received_shares[i] for i in survivors}
        )
