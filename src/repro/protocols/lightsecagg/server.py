"""LightSecAgg server-side logic (paper Alg. 1, server lines).

The server never learns any individual mask: it collects masked models,
announces the surviving set, gathers ``U`` *aggregated* coded shares, MDS-
decodes the aggregate mask in one shot, and subtracts it from the sum of
masked models.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import DropoutError, ProtocolError
from repro.coding.mask_encoding import MaskEncoder
from repro.field.arithmetic import FiniteField
from repro.protocols.lightsecagg.params import LSAParams


class LSAServer:
    """Server state for one LightSecAgg round."""

    def __init__(
        self,
        gf: FiniteField,
        params: LSAParams,
        model_dim: int,
        generator: str = "lagrange",
    ):
        self.gf = gf
        self.params = params
        self.model_dim = model_dim
        self.decoder = MaskEncoder(
            gf,
            num_users=params.num_users,
            target_survivors=params.target_survivors,
            privacy=params.privacy,
            model_dim=model_dim,
            generator=generator,
        )
        self._masked_updates: Dict[int, np.ndarray] = {}
        self._aggregated_shares: Dict[int, np.ndarray] = {}
        self._survivors: Optional[List[int]] = None

    # ------------------------------------------------------------------
    def receive_masked_update(self, user_id: int, masked: np.ndarray) -> None:
        """Store a masked model ``~x_i`` uploaded by user ``user_id``."""
        if user_id in self._masked_updates:
            raise ProtocolError(f"duplicate masked update from user {user_id}")
        masked = self.gf.array(masked)
        if masked.shape != (self.model_dim,):
            raise ProtocolError(
                f"masked update shape {masked.shape} != ({self.model_dim},)"
            )
        self._masked_updates[user_id] = masked

    def identify_survivors(self, survivors: List[int]) -> List[int]:
        """Fix the surviving set ``U1`` whose updates will be aggregated.

        All survivors must have uploaded a masked update, and there must be
        at least ``U`` of them for recovery to be possible.
        """
        missing = [i for i in survivors if i not in self._masked_updates]
        if missing:
            raise ProtocolError(f"survivors {missing} never uploaded updates")
        if len(survivors) < self.params.target_survivors:
            raise DropoutError(
                f"only {len(survivors)} survivors, need U="
                f"{self.params.target_survivors}"
            )
        self._survivors = sorted(survivors)
        return self._survivors

    def receive_aggregated_shares(self, user_id: int, agg_share: np.ndarray) -> None:
        """Store ``sum_{i in U1} [~z_i]_j`` from surviving user ``j``."""
        if self._survivors is None:
            raise ProtocolError("identify_survivors must run first")
        if user_id not in self._survivors:
            raise ProtocolError(f"user {user_id} is not in the surviving set")
        if user_id in self._aggregated_shares:
            raise ProtocolError(f"duplicate aggregated share from {user_id}")
        self._aggregated_shares[user_id] = self.gf.array(agg_share)

    @property
    def has_enough_shares(self) -> bool:
        """True once any ``U`` aggregated shares have arrived."""
        return len(self._aggregated_shares) >= self.params.target_survivors

    def recover_aggregate(self) -> np.ndarray:
        """One-shot recovery: decode the aggregate mask and cancel it.

        Returns the exact field-sum ``sum_{i in U1} x_i``.
        """
        if self._survivors is None:
            raise ProtocolError("identify_survivors must run first")
        if not self.has_enough_shares:
            raise DropoutError(
                f"have {len(self._aggregated_shares)} aggregated shares, "
                f"need U={self.params.target_survivors}"
            )
        aggregate_mask = self.decoder.decode_aggregate(self._aggregated_shares)
        masked_sum = self._masked_updates[self._survivors[0]].copy()
        for i in self._survivors[1:]:
            masked_sum = self.gf.add(masked_sum, self._masked_updates[i])
        return self.gf.sub(masked_sum, aggregate_mask)
