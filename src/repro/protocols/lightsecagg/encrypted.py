"""LightSecAgg with server-relayed, channel-encrypted share exchange.

The base :class:`~repro.protocols.lightsecagg.protocol.LightSecAgg` treats
the pairwise share delivery as an abstract secure transport (footnote 3).
This variant makes the transport concrete: users bootstrap pairwise keys
with Diffie-Hellman, seal every coded share in an authenticated one-time-
pad channel, and route all ciphertexts *through the server* — the
realistic star topology, under which the server relays everything yet
learns nothing (ciphertexts are uniform field elements).

The extra fidelity costs one DH keypair per user and N-1 agreements, and
shows up in the transcript as server-relayed offline traffic.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro.crypto.channels import SealedMessage, SecureChannel
from repro.crypto.dh import DiffieHellman
from repro.field.arithmetic import FiniteField
from repro.protocols.base import (
    SERVER,
    AggregationResult,
    RoundMetrics,
    Transcript,
)
from repro.protocols.lightsecagg.params import LSAParams
from repro.protocols.lightsecagg.protocol import LightSecAgg
from repro.protocols.lightsecagg.server import LSAServer
from repro.protocols.lightsecagg.user import LSAUser


class EncryptedLightSecAgg(LightSecAgg):
    """LightSecAgg with concrete end-to-end-encrypted share relay."""

    name = "lightsecagg-encrypted"

    def __init__(
        self,
        gf: FiniteField,
        params: LSAParams,
        model_dim: int,
        generator: str = "lagrange",
    ):
        super().__init__(gf, params, model_dim, generator)
        self.dh = DiffieHellman()

    def session(self, pool_size: int = 4, rng=None, low_water: int = 0):
        """Open a pooled session with a persistent DH channel mesh."""
        from repro.protocols.lightsecagg.session import (
            EncryptedLightSecAggSession,
        )

        return EncryptedLightSecAggSession(
            self, pool_size=pool_size, rng=rng, low_water=low_water
        )

    def run_round(
        self,
        updates: Dict[int, np.ndarray],
        dropouts: Set[int],
        rng: Optional[np.random.Generator] = None,
        offline_dropouts: Optional[Set[int]] = None,
    ) -> AggregationResult:
        if offline_dropouts:
            raise NotImplementedError(
                "offline dropouts are modelled by the base protocol; the "
                "encrypted variant covers the worst-case dropout point only"
            )
        survivors = self._validate_round_inputs(updates, dropouts)
        rng = rng if rng is not None else np.random.default_rng()
        transcript = Transcript()
        n = self.num_users

        users = [
            LSAUser(i, self.gf, self.params, self.model_dim, self.generator)
            for i in range(n)
        ]
        server = LSAServer(self.gf, self.params, self.model_dim, self.generator)
        share_dim = users[0].encoder.share_dim

        # Round 0 — DH key advertisement through the server.
        keypairs = [self.dh.generate_keypair(rng) for _ in range(n)]
        for i in range(n):
            transcript.record(i, SERVER, "offline", 1, is_key_sized=True)
            transcript.record(SERVER, i, "offline", n - 1, is_key_sized=True)
        # Directed channels: channels[(i, j)] carries i -> j.
        channels: Dict[Tuple[int, int], SecureChannel] = {}
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                key = self.dh.agree(keypairs[i].secret, keypairs[j].public)
                channels[(i, j)] = SecureChannel(
                    self.gf, key, sender=i, receiver=j
                )

        # Phase 1 — encode masks; seal and relay shares via the server.
        mailbox: Dict[int, list] = {j: [] for j in range(n)}
        for user in users:
            shares = user.offline_encode(rng)
            for j, share in shares.items():
                if j == user.user_id:
                    user.receive_share(user.user_id, share)  # kept locally
                    continue
                sealed = channels[(user.user_id, j)].seal(share)
                # user -> server -> peer; both hops are share-sized.
                transcript.record(user.user_id, SERVER, "offline", share_dim)
                transcript.record(SERVER, j, "offline", share_dim)
                mailbox[j].append(sealed)
        for j, deliveries in mailbox.items():
            for sealed in deliveries:
                plaintext = _open_as(channels, sealed)
                users[j].receive_share(sealed.sender, plaintext)

        # Phases 2 and 3 are unchanged from the base protocol.
        for user in users:
            masked = user.mask_update(updates[user.user_id])
            server.receive_masked_update(user.user_id, masked)
            transcript.record(user.user_id, SERVER, "upload", self.model_dim)
        server.identify_survivors(survivors)
        responders = survivors[: self.params.target_survivors]
        for j in responders:
            server.receive_aggregated_shares(
                j, users[j].aggregate_encoded_masks(survivors)
            )
            transcript.record(j, SERVER, "recovery", share_dim)
        aggregate = server.recover_aggregate()

        u = self.params.target_survivors
        metrics = RoundMetrics(
            server_decode_ops=u * u * share_dim,
            server_prg_elements=0,
            user_encode_ops=n * u * share_dim,
        )
        return AggregationResult(
            aggregate=aggregate,
            survivors=survivors,
            transcript=transcript,
            metrics=metrics,
        )


def _open_as(
    channels: Dict[Tuple[int, int], SecureChannel], sealed: SealedMessage
) -> np.ndarray:
    """Receiver-side open using the shared directed channel object.

    In a deployment sender and receiver hold separate channel instances
    derived from the same DH secret; the simulation shares the object,
    which is keystream-identical.
    """
    return channels[(sealed.sender, sealed.receiver)].open(sealed)
