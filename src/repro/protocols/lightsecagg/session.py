"""Multi-round LightSecAgg sessions with an amortized offline phase.

The paper's central systems claim is that mask encoding and sharing is an
*offline* phase: it involves no model data, so it can be precomputed and
pipelined away from the online aggregation path.  A
:class:`LightSecAggSession` makes that concrete.  Users and the server
persist across rounds, and the session maintains a **pool** of precomputed
offline material — for each pooled round, every user's mask ``z_i`` and the
full ``N x N`` grid of coded shares ``[~z_i]_j``.  The pool is filled
``K`` rounds at a time with a single batched field matmul
(:meth:`repro.coding.mask_encoding.MaskEncoder.encode_batch` over ``K*N``
masks), and online rounds just drain it: the per-round critical path is
masking, upload, aggregate-share summation, and one MDS decode.

Per-round transcripts therefore contain only ``upload`` and ``recovery``
traffic; the offline traffic is accounted once per refill in
:attr:`LightSecAggSession.offline_transcript`, which is exactly the
amortization story (the bytes still cross the network, but off the online
critical path).

:class:`EncryptedLightSecAggSession` additionally persists the
Diffie-Hellman channel mesh across the whole session — key agreement
happens once, and each refill seals a user's ``K`` future shares for a
given peer in a single authenticated one-time-pad message relayed through
the server.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Set, Tuple

import numpy as np

from repro.crypto.channels import SecureChannel
from repro.exceptions import DropoutError, ProtocolError
from repro.coding.mask_encoding import MaskEncoder
from repro.obs import span
from repro.protocols.base import (
    SERVER,
    AggregationResult,
    ProtocolSession,
    RoundMetrics,
    Transcript,
)


@dataclass
class OfflineMaterial:
    """One pooled round of offline state for all ``N`` users.

    ``masks[i]`` is user ``i``'s mask ``z_i``; ``coded[i, j]`` is the coded
    share ``[~z_i]_j`` held by user ``j``.
    """

    masks: np.ndarray  # (N, model_dim)
    coded: np.ndarray  # (N_source, N_holder, share_dim)


def precompute_offline_pool(
    encoder: MaskEncoder,
    rounds: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw and encode ``rounds`` rounds of masks for all users at once.

    Returns ``(masks, coded)`` with shapes ``(rounds, N, model_dim)`` and
    ``(rounds, N_source, N_holder, share_dim)``; all ``rounds * N`` masks
    go through a single batched generator matmul.  Shared by the protocol-
    level and system-level sessions, which differ only in how they account
    the cost (wall clock vs simulated background span).
    """
    n = encoder.num_users
    masks = encoder.gf.random((rounds * n, encoder.model_dim), rng)
    coded = encoder.encode_batch(masks, rng)
    return (
        masks.reshape(rounds, n, encoder.model_dim),
        coded.reshape(rounds, n, n, encoder.share_dim),
    )


class LightSecAggSession(ProtocolSession):
    """Pooled multi-round session for LightSecAgg (and its subclasses).

    Pool access is thread-safe for the service-layer concurrency contract:
    one consumer thread draining rounds while one background refiller
    tops the pool up (see :class:`repro.service.refill.BackgroundRefiller`).
    """

    def __init__(self, protocol, pool_size=4, rng=None, low_water=0):
        super().__init__(protocol, pool_size=pool_size, rng=rng, low_water=low_water)
        self.params = protocol.params
        self.model_dim = protocol.model_dim
        self.encoder = MaskEncoder(
            protocol.gf,
            num_users=self.params.num_users,
            target_survivors=self.params.target_survivors,
            privacy=self.params.privacy,
            model_dim=self.model_dim,
            generator=protocol.generator,
        )
        self.offline_transcript = Transcript()
        self._pool: Deque[OfflineMaterial] = deque()

    # ------------------------------------------------------------------
    @property
    def pool_level(self) -> int:
        return len(self._pool)

    @property
    def supports_pool(self) -> bool:
        return True

    def offline_elements(self) -> int:
        with self._pool_lock:
            return self.offline_transcript.elements(phase="offline")

    def refill(self, rounds: Optional[int] = None) -> int:
        """Precompute offline material for ``rounds`` future rounds.

        Defaults to topping the pool back up to ``pool_size``.  All
        ``rounds * N`` masks are encoded in one batched matmul.  Refills
        are serialized under ``_refill_lock`` (the offline rng is not
        thread-safe); the expensive encode runs outside ``_pool_lock`` so
        a concurrent consumer can keep draining already-pooled rounds.
        """
        self._require_open()
        with self._refill_lock:
            if rounds is None:
                with self._pool_lock:
                    rounds = self.pool_size - len(self._pool)
            if rounds <= 0:
                return 0
            start = time.perf_counter()
            # Traced only when a round trace is active on this thread
            # (an inline refill-on-miss); background-refiller threads
            # carry no trace and pay one thread-local read.
            with span("mask_encode", rounds=str(rounds)):
                masks, coded = precompute_offline_pool(
                    self.encoder, rounds, self.rng
                )
            batch_transcript = Transcript()
            coded = self._deliver_shares(coded, batch_transcript)
            material = [OfflineMaterial(masks[k], coded[k]) for k in range(rounds)]
            with self._pool_lock:
                # Material and its traffic accounting land atomically, so
                # a concurrent ``offline_elements`` reader never observes
                # a half-recorded refill.
                self._pool.extend(material)
                self.offline_transcript.messages.extend(
                    batch_transcript.messages
                )
                self.stats.refills += 1
                self.stats.precomputed_rounds += rounds
                self.stats.refill_seconds += time.perf_counter() - start
        return rounds

    def _take_material(self) -> OfflineMaterial:
        """Draw one round of offline material, refilling inline on a miss.

        A pool hit pops under ``_pool_lock`` and never blocks on encoding.
        A miss is the stall the service layer's
        :class:`~repro.service.refill.BackgroundRefiller` exists to avoid:
        the consumer must run a synchronous refill on the online path.  A
        concurrent background refill may land between the miss and our own
        ``refill`` call — in that case ``refill`` computes a zero top-up
        and the loop simply pops the freshly delivered material.
        """
        with self._pool_lock:
            if self._pool:
                self.stats.pool_hits += 1
                return self._pool.popleft()
            self.stats.pool_misses += 1
        while True:
            with span("offline_refill", inline="miss"):
                self.refill()
            with self._pool_lock:
                if self._pool:
                    return self._pool.popleft()

    def _deliver_shares(
        self, coded: np.ndarray, transcript: Transcript
    ) -> np.ndarray:
        """Record one refill batch's share-exchange traffic in ``transcript``.

        ``coded`` has shape ``(rounds, N_source, N_holder, share_dim)``.
        The base session models the paper's abstract secure transport: the
        whole batch of a source's shares for one holder travels as a
        single message of ``rounds * share_dim`` elements (element totals
        match the one-shot path exactly; only the message granularity is
        coarser).  Messages go to the supplied per-batch transcript —
        ``refill`` merges them into :attr:`offline_transcript` under the
        pool lock — and the material is returned as held by the
        recipients (identical here; the encrypted subclass routes it
        through sealed channels).
        """
        rounds, n = coded.shape[0], coded.shape[1]
        share_dim = coded.shape[3]
        for i in range(n):
            for j in range(n):
                if i != j:
                    transcript.record(i, j, "offline", rounds * share_dim)
        return coded

    # ------------------------------------------------------------------
    def run_round(
        self,
        updates: Dict[int, np.ndarray],
        dropouts: Set[int],
        rng: Optional[np.random.Generator] = None,
        offline_dropouts: Optional[Set[int]] = None,
    ) -> AggregationResult:
        """One online round served from the pool.

        Semantics match the one-shot
        :meth:`~repro.protocols.lightsecagg.protocol.LightSecAgg.run_round`
        exactly: same worst-case dropout point, same survivor rules, and a
        bit-identical field-sum (the aggregate is the exact sum of the
        surviving users' updates regardless of which masks were drawn).
        An empty pool triggers a synchronous inline refill (a pool miss).
        """
        self._require_open()
        offline_dropouts = set(offline_dropouts or set())
        survivors = self.protocol._validate_round_inputs(
            updates, set(dropouts) | offline_dropouts
        )
        u = self.params.target_survivors
        if len(survivors) < u:
            raise DropoutError(
                f"session round {self.stats.rounds}: only {len(survivors)} "
                f"survivors remain, need U={u} to recover the aggregate mask"
            )
        material = self._take_material()

        gf = self.gf
        n = self.num_users
        share_dim = self.encoder.share_dim
        transcript = Transcript()

        # Online phase 1 — masked uploads.  Worst case: everyone who made
        # it through the offline phase uploads, including users about to
        # drop; offline dropouts never upload at all.
        live = [i for i in range(n) if i not in offline_dropouts]
        stacked = np.stack([gf.array(updates[i]) for i in live], axis=0)
        masked = gf.add(stacked, material.masks[live])
        for i in live:
            transcript.record(i, SERVER, "upload", self.model_dim)

        # Online phase 2 — one-shot aggregate-mask recovery from the first
        # U survivors (lowest ids, matching the one-shot path).
        responders = survivors[:u]
        grid = material.coded[np.ix_(survivors, responders)]  # (S, U, dim)
        agg_shares = gf.sum(grid, axis=0)  # (U, share_dim)
        for j in responders:
            transcript.record(j, SERVER, "recovery", share_dim)
        agg_mask = self.encoder.decode_aggregate(
            {j: agg_shares[r] for r, j in enumerate(responders)}
        )

        row_of = {i: r for r, i in enumerate(live)}
        masked_sum = gf.sum(
            masked[[row_of[i] for i in survivors]], axis=0
        )
        aggregate = gf.sub(masked_sum, agg_mask)

        metrics = RoundMetrics(
            server_decode_ops=u * u * share_dim,
            server_prg_elements=0,
            # Online rounds do no mask encoding; the amortized cost lives
            # in the refill and is surfaced via ``extra``.
            user_encode_ops=0,
            extra={
                "pool_level": float(len(self._pool)),
                "amortized_encode_ops": float(n * u * share_dim),
            },
        )
        self.stats.rounds += 1
        return AggregationResult(
            aggregate=aggregate,
            survivors=survivors,
            transcript=transcript,
            metrics=metrics,
        )


class EncryptedLightSecAggSession(LightSecAggSession):
    """Pooled session with a persistent DH channel mesh.

    Key agreement runs once when the session opens; every refill seals
    each (source, holder) pair's shares for the whole batch in one
    authenticated message, relayed through the server.  The per-round
    online path is identical to the base session.
    """

    def __init__(self, protocol, pool_size=4, rng=None, low_water=0):
        super().__init__(
            protocol, pool_size=pool_size, rng=rng, low_water=low_water
        )
        n = self.num_users
        keypairs = [protocol.dh.generate_keypair(self.rng) for _ in range(n)]
        for i in range(n):
            self.offline_transcript.record(
                i, SERVER, "offline", 1, is_key_sized=True
            )
            self.offline_transcript.record(
                SERVER, i, "offline", n - 1, is_key_sized=True
            )
        self._channels: Dict[Tuple[int, int], SecureChannel] = {}
        for i in range(n):
            for j in range(n):
                if i != j:
                    key = protocol.dh.agree(
                        keypairs[i].secret, keypairs[j].public
                    )
                    self._channels[(i, j)] = SecureChannel(
                        self.gf, key, sender=i, receiver=j
                    )

    def _deliver_shares(
        self, coded: np.ndarray, transcript: Transcript
    ) -> np.ndarray:
        """Seal every source->holder share batch and relay it via server."""
        rounds, n = coded.shape[0], coded.shape[1]
        share_dim = coded.shape[3]
        delivered = coded.copy()
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue  # own share never leaves the device
                flat = coded[:, i, j, :].reshape(-1)
                sealed = self._channels[(i, j)].seal(flat)
                # user -> server -> peer; both hops carry the whole batch.
                transcript.record(i, SERVER, "offline", rounds * share_dim)
                transcript.record(SERVER, j, "offline", rounds * share_dim)
                opened = self._channels[(i, j)].open(sealed)
                delivered[:, i, j, :] = opened.reshape(rounds, share_dim)
        return delivered

    def run_round(
        self,
        updates: Dict[int, np.ndarray],
        dropouts: Set[int],
        rng: Optional[np.random.Generator] = None,
        offline_dropouts: Optional[Set[int]] = None,
    ) -> AggregationResult:
        if offline_dropouts:
            raise NotImplementedError(
                "offline dropouts are modelled by the base protocol; the "
                "encrypted variant covers the worst-case dropout point only"
            )
        return super().run_round(updates, dropouts, rng)
