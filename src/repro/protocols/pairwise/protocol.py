"""Orchestration of SecAgg and SecAgg+ rounds (paper Sec. 3).

:class:`PairwiseMaskingProtocol` drives users and server through key
advertisement, pairwise agreement, secret sharing, masking, and recovery,
recording all traffic.  :class:`SecAgg` fixes the complete graph;
:class:`SecAggPlus` uses a sparse random regular graph.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from repro.exceptions import DropoutError
from repro.crypto.dh import DiffieHellman
from repro.crypto.prg import PRG
from repro.field.arithmetic import FiniteField
from repro.protocols.base import (
    SERVER,
    AggregationResult,
    RoundMetrics,
    SecureAggregationProtocol,
    Transcript,
)
from repro.protocols.pairwise.graph import (
    complete_graph,
    regular_graph,
    secagg_plus_degree,
    validate_adjacency,
)
from repro.protocols.pairwise.server import PairwiseServer
from repro.protocols.pairwise.user import SEED_BITS, PairwiseUser
from repro.coding.shamir import ShamirSecretSharing
from repro.utils.ints import limbs_needed


class PairwiseMaskingProtocol(SecureAggregationProtocol):
    """Generic pairwise-masking secure aggregation over a neighbor graph."""

    name = "pairwise"

    def __init__(
        self,
        gf: FiniteField,
        num_users: int,
        model_dim: int,
        adjacency: Dict[int, List[int]],
        shamir_threshold: Optional[int] = None,
        prg_backend: str = "pcg64",
    ):
        super().__init__(gf, num_users)
        validate_adjacency(adjacency, num_users)
        self.model_dim = model_dim
        self.adjacency = adjacency
        self.prg = PRG(gf, backend=prg_backend)
        self.dh = DiffieHellman()
        min_degree = min(len(v) for v in adjacency.values())
        if shamir_threshold is None:
            # Default privacy threshold: strictly less than half the
            # smallest neighborhood, mirroring SecAgg's t < N/2 default.
            shamir_threshold = max(1, min_degree // 2)
        if shamir_threshold >= min_degree + 1:
            raise DropoutError(
                f"Shamir threshold {shamir_threshold} infeasible for minimum "
                f"degree {min_degree}"
            )
        self.shamir_threshold = shamir_threshold

    # ------------------------------------------------------------------
    def _shamir_for(self, user_id: int) -> ShamirSecretSharing:
        return ShamirSecretSharing(
            self.gf,
            num_shares=len(self.adjacency[user_id]),
            threshold=self.shamir_threshold,
        )

    def run_round(
        self,
        updates: Dict[int, np.ndarray],
        dropouts: Set[int],
        rng: Optional[np.random.Generator] = None,
    ) -> AggregationResult:
        survivors = self._validate_round_inputs(updates, dropouts)
        rng = rng if rng is not None else np.random.default_rng()
        transcript = Transcript()
        seed_limbs = limbs_needed(SEED_BITS, self.gf.q)
        sk_limbs = limbs_needed(self.dh.prime.bit_length(), self.gf.q)

        users = [
            PairwiseUser(
                i,
                self.gf,
                self.num_users,
                self.adjacency[i],
                self.model_dim,
                self.shamir_threshold,
                prg=self.prg,
                dh=self.dh,
            )
            for i in range(self.num_users)
        ]
        server = PairwiseServer(
            self.gf,
            self.num_users,
            self.adjacency,
            self.model_dim,
            self.shamir_threshold,
            self.prg,
            self.dh,
        )

        # Round 0 — advertise public keys (via server broadcast).
        publics: Dict[int, int] = {}
        for user in users:
            publics[user.user_id] = user.generate_keys(rng)
            transcript.record(user.user_id, SERVER, "offline", 1, is_key_sized=True)
            server.register_public_key(user.user_id, publics[user.user_id])
        for user in users:
            # Server relays the neighbor keys to each user.
            transcript.record(
                SERVER, user.user_id, "offline", len(user.neighbors),
                is_key_sized=True,
            )
            user.agree_pairwise(publics)

        # Round 1 — Shamir-share b_i and sk_i with neighbors.
        for user in users:
            shares = user.share_secrets(rng)
            for j, payload in shares.items():
                users[j].receive_shares(user.user_id, payload)
                transcript.record(
                    user.user_id, j, "offline", seed_limbs + sk_limbs,
                    is_key_sized=True,
                )

        # Round 2 — masking and upload (worst case: dropped users upload too).
        for user in users:
            masked = user.mask_update(updates[user.user_id])
            server.receive_masked_update(user.user_id, masked)
            transcript.record(user.user_id, SERVER, "upload", self.model_dim)

        # Round 3 — recovery: collect shares from surviving neighbors.
        survivor_set = set(survivors)
        dropped = sorted(dropouts)
        collected_b: Dict[int, list] = {}
        collected_sk: Dict[int, list] = {}
        for i in survivors:
            shares = []
            for j in self.adjacency[i]:
                if j in survivor_set and len(shares) <= self.shamir_threshold:
                    shares.append(users[j].reveal_share(i, "b"))
                    transcript.record(j, SERVER, "recovery", seed_limbs,
                                      is_key_sized=True)
            if len(shares) < self.shamir_threshold + 1:
                raise DropoutError(
                    f"cannot reconstruct b_{i}: only {len(shares)} surviving "
                    f"neighbor shares"
                )
            collected_b[i] = shares
        for i in dropped:
            shares = []
            for j in self.adjacency[i]:
                if j in survivor_set and len(shares) <= self.shamir_threshold:
                    shares.append(users[j].reveal_share(i, "sk"))
                    transcript.record(j, SERVER, "recovery", sk_limbs,
                                      is_key_sized=True)
            if len(shares) < self.shamir_threshold + 1:
                raise DropoutError(
                    f"cannot reconstruct sk_{i}: only {len(shares)} surviving "
                    f"neighbor shares"
                )
            collected_sk[i] = shares

        aggregate = server.recover_aggregate(
            survivors, dropped, collected_b, collected_sk, self._shamir_for
        )

        metrics = RoundMetrics(
            server_decode_ops=0,
            server_prg_elements=server.prg_elements_expanded,
            user_encode_ops=sum(
                len(self.adjacency[i]) * self.model_dim
                for i in range(self.num_users)
            ),
        )
        return AggregationResult(
            aggregate=aggregate,
            survivors=survivors,
            transcript=transcript,
            metrics=metrics,
        )


class SecAgg(PairwiseMaskingProtocol):
    """Bonawitz et al. (2017): pairwise masking on the complete graph."""

    name = "secagg"

    def __init__(
        self,
        gf: FiniteField,
        num_users: int,
        model_dim: int,
        shamir_threshold: Optional[int] = None,
        prg_backend: str = "pcg64",
    ):
        super().__init__(
            gf,
            num_users,
            model_dim,
            complete_graph(num_users),
            shamir_threshold=shamir_threshold,
            prg_backend=prg_backend,
        )


class SecAggPlus(PairwiseMaskingProtocol):
    """Bell et al. (2020): pairwise masking on a sparse regular graph."""

    name = "secagg+"

    def __init__(
        self,
        gf: FiniteField,
        num_users: int,
        model_dim: int,
        degree: Optional[int] = None,
        shamir_threshold: Optional[int] = None,
        graph_seed: int = 0,
        prg_backend: str = "pcg64",
    ):
        if degree is None:
            degree = secagg_plus_degree(num_users)
        self.degree = degree
        super().__init__(
            gf,
            num_users,
            model_dim,
            regular_graph(num_users, degree, seed=graph_seed),
            shamir_threshold=shamir_threshold,
            prg_backend=prg_backend,
        )
