"""Communication graphs for pairwise-masking protocols.

SecAgg (Bonawitz et al., 2017) uses the complete graph: every pair of users
agrees on a pairwise seed.  SecAgg+ (Bell et al., 2020) replaces it with a
sparse random regular graph of degree ``O(log N)``, which is what reduces
both the offline cost and the server's reconstruction cost from
``O(d N^2)`` to ``O(d N log N)``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Set

import networkx as nx

from repro.exceptions import ProtocolError


def complete_graph(num_users: int) -> Dict[int, List[int]]:
    """Adjacency of the complete graph on ``num_users`` nodes (SecAgg)."""
    if num_users < 2:
        raise ProtocolError("need at least 2 users")
    return {
        i: [j for j in range(num_users) if j != i] for i in range(num_users)
    }


def secagg_plus_degree(num_users: int, safety_factor: float = 3.0) -> int:
    """Default SecAgg+ degree ``k = O(log N)``.

    Bell et al. prove correctness/privacy w.h.p. for ``k = Theta(log N)``;
    the constant here (3 log2 N, floored at 6) keeps small graphs connected
    in simulation while preserving the asymptotic.
    """
    if num_users < 2:
        raise ProtocolError("need at least 2 users")
    k = max(6, int(math.ceil(safety_factor * math.log2(max(num_users, 2)))))
    k = min(k, num_users - 1)
    if (k * num_users) % 2 == 1:
        k = k - 1 if k == num_users - 1 else k + 1
    return max(k, 1)


def regular_graph(num_users: int, degree: int, seed: int = 0) -> Dict[int, List[int]]:
    """Random ``degree``-regular graph adjacency (SecAgg+).

    ``degree * num_users`` must be even (handled by
    :func:`secagg_plus_degree`); falls back to the complete graph when the
    requested degree saturates it.
    """
    if degree >= num_users - 1:
        return complete_graph(num_users)
    if (degree * num_users) % 2 == 1:
        raise ProtocolError(
            f"degree * num_users must be even, got k={degree}, N={num_users}"
        )
    g = nx.random_regular_graph(degree, num_users, seed=seed)
    return {i: sorted(g.neighbors(i)) for i in range(num_users)}


def validate_adjacency(adjacency: Dict[int, List[int]], num_users: int) -> None:
    """Check symmetry, no self-loops, and full node coverage."""
    if set(adjacency) != set(range(num_users)):
        raise ProtocolError("adjacency must cover exactly users 0..N-1")
    for i, neighbors in adjacency.items():
        seen: Set[int] = set()
        for j in neighbors:
            if j == i:
                raise ProtocolError(f"self-loop at user {i}")
            if j in seen:
                raise ProtocolError(f"duplicate neighbor {j} for user {i}")
            seen.add(j)
            if i not in adjacency.get(j, []):
                raise ProtocolError(f"asymmetric edge {i} -> {j}")
