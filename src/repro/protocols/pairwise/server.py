"""Server-side logic of pairwise-masking secure aggregation (SecAgg family).

Implements eq. (1): the server sums the masked models of survivors, then

* reconstructs each *survivor*'s self-seed ``b_i`` from Shamir shares and
  subtracts ``PRG(b_i)``;
* reconstructs each *dropped* user's DH secret ``sk_i``, re-derives its
  pairwise seeds with every surviving neighbor, and cancels the orphaned
  pairwise masks.

The per-dropout PRG re-expansion is the ``O(d N)``-per-drop cost that
LightSecAgg eliminates; the implementation counts those expanded elements
in :class:`RoundMetrics` so the systems model can charge for them.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.exceptions import DropoutError, ProtocolError
from repro.coding.shamir import ShamirShare
from repro.crypto.dh import DiffieHellman
from repro.crypto.prg import PRG
from repro.field.arithmetic import FiniteField
from repro.utils.ints import limbs_to_int


class PairwiseServer:
    """Server state for one SecAgg / SecAgg+ round."""

    def __init__(
        self,
        gf: FiniteField,
        num_users: int,
        adjacency: Dict[int, List[int]],
        model_dim: int,
        shamir_threshold: int,
        prg: PRG,
        dh: DiffieHellman,
    ):
        self.gf = gf
        self.num_users = num_users
        self.adjacency = adjacency
        self.model_dim = model_dim
        self.shamir_threshold = shamir_threshold
        self.prg = prg
        self.dh = dh
        self.public_keys: Dict[int, int] = {}
        self._masked_updates: Dict[int, np.ndarray] = {}
        self.prg_elements_expanded = 0  # metrics: server PRG work

    # ------------------------------------------------------------------
    def register_public_key(self, user_id: int, public: int) -> None:
        """Record an advertised DH public key (round 0)."""
        if user_id in self.public_keys:
            raise ProtocolError(f"duplicate public key from {user_id}")
        self.public_keys[user_id] = public

    def receive_masked_update(self, user_id: int, masked: np.ndarray) -> None:
        """Store a masked model upload."""
        if user_id in self._masked_updates:
            raise ProtocolError(f"duplicate masked update from {user_id}")
        self._masked_updates[user_id] = self.gf.array(masked)

    # ------------------------------------------------------------------
    def _reconstruct_int(
        self, shares: Sequence[ShamirShare], shamir
    ) -> int:
        limbs = shamir.reconstruct(shares)
        return limbs_to_int(limbs, self.gf.q)

    def recover_aggregate(
        self,
        survivors: List[int],
        dropped: List[int],
        collected_b_shares: Dict[int, List[ShamirShare]],
        collected_sk_shares: Dict[int, List[ShamirShare]],
        shamir_factory,
    ) -> np.ndarray:
        """Apply eq. (1) to produce the exact sum of survivors' updates.

        ``collected_b_shares[i]`` are shares of survivor ``i``'s ``b_i``;
        ``collected_sk_shares[i]`` are shares of dropped ``i``'s ``sk_i``.
        ``shamir_factory(user)`` returns the Shamir scheme matching that
        user's neighborhood size (SecAgg+ neighborhoods vary).
        """
        overlap = set(collected_b_shares) & set(collected_sk_shares)
        if overlap:
            # A user with both b and sk revealed is fully deanonymized; the
            # protocol must never let this happen.
            raise ProtocolError(
                f"both b and sk shares collected for users {sorted(overlap)}"
            )
        missing = [i for i in survivors if i not in self._masked_updates]
        if missing:
            raise DropoutError(f"survivors {missing} never uploaded")

        total = self._masked_updates[survivors[0]].copy()
        for i in survivors[1:]:
            total = self.gf.add(total, self._masked_updates[i])

        # Cancel survivors' self-masks PRG(b_i).
        for i in survivors:
            shamir = shamir_factory(i)
            b_i = self._reconstruct_int(collected_b_shares[i], shamir)
            total = self.gf.sub(total, self.prg.expand(b_i, self.model_dim))
            self.prg_elements_expanded += self.model_dim

        # Cancel dropped users' orphaned pairwise masks.
        survivor_set = set(survivors)
        for i in dropped:
            shamir = shamir_factory(i)
            sk_i = self._reconstruct_int(collected_sk_shares[i], shamir)
            for j in self.adjacency[i]:
                if j not in survivor_set:
                    continue
                seed = self.dh.agree(sk_i, self.public_keys[j])
                pairwise = self.prg.expand(seed, self.model_dim)
                self.prg_elements_expanded += self.model_dim
                # User j applied +PRG(a_ij) if j < i else -PRG(a_ij); undo it.
                if j < i:
                    total = self.gf.sub(total, pairwise)
                else:
                    total = self.gf.add(total, pairwise)
        return total
