"""Pairwise-masking protocols: SecAgg (complete graph) and SecAgg+ (sparse)."""

from repro.protocols.pairwise.graph import (
    complete_graph,
    regular_graph,
    secagg_plus_degree,
    validate_adjacency,
)
from repro.protocols.pairwise.protocol import (
    PairwiseMaskingProtocol,
    SecAgg,
    SecAggPlus,
)
from repro.protocols.pairwise.server import PairwiseServer
from repro.protocols.pairwise.user import PairwiseUser

__all__ = [
    "PairwiseMaskingProtocol",
    "SecAgg",
    "SecAggPlus",
    "PairwiseUser",
    "PairwiseServer",
    "complete_graph",
    "regular_graph",
    "secagg_plus_degree",
    "validate_adjacency",
]
