"""User-side logic of pairwise-masking secure aggregation (SecAgg family).

Implements the user role of Sec. 3: Diffie-Hellman pairwise seed agreement
with graph neighbors, a private self-mask seed ``b_i``, double masking of
the model update, and Shamir sharing of both ``b_i`` and the DH secret key
``sk_i`` with neighbors.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import ProtocolError
from repro.coding.shamir import ShamirSecretSharing, ShamirShare
from repro.crypto.dh import DiffieHellman, KeyPair
from repro.crypto.prg import PRG
from repro.field.arithmetic import FiniteField
from repro.utils.ints import int_to_limbs, limbs_needed

#: Bit-length of self-mask seeds b_i (matches a 256-bit PRG seed).
SEED_BITS = 256


class PairwiseUser:
    """One participant in SecAgg / SecAgg+.

    ``neighbors`` is the set of users this one shares pairwise masks and
    secret shares with — all peers for SecAgg, ``O(log N)`` peers for
    SecAgg+.
    """

    def __init__(
        self,
        user_id: int,
        gf: FiniteField,
        num_users: int,
        neighbors: List[int],
        model_dim: int,
        shamir_threshold: int,
        prg: Optional[PRG] = None,
        dh: Optional[DiffieHellman] = None,
    ):
        if user_id in neighbors:
            raise ProtocolError("a user cannot neighbor itself")
        self.user_id = user_id
        self.gf = gf
        self.num_users = num_users
        self.neighbors = sorted(neighbors)
        self.model_dim = model_dim
        self.prg = prg if prg is not None else PRG(gf)
        self.dh = dh if dh is not None else DiffieHellman()
        if shamir_threshold >= len(self.neighbors):
            raise ProtocolError(
                f"Shamir threshold {shamir_threshold} too large for "
                f"{len(self.neighbors)} neighbors"
            )
        self.shamir = ShamirSecretSharing(
            gf, num_shares=len(self.neighbors), threshold=shamir_threshold
        )
        self.keypair: Optional[KeyPair] = None
        self.self_seed: Optional[int] = None
        self._pairwise_seeds: Dict[int, int] = {}
        # Shares received from peers: source -> (kind -> ShamirShare)
        self._received_shares: Dict[int, Dict[str, ShamirShare]] = {}

    # ------------------------------------------------------------------
    # round 0/1: keys and seed agreement
    # ------------------------------------------------------------------
    def generate_keys(self, rng: np.random.Generator) -> int:
        """Generate the DH key pair; returns the public key to advertise."""
        self.keypair = self.dh.generate_keypair(rng)
        return self.keypair.public

    def agree_pairwise(self, peer_publics: Dict[int, int]) -> None:
        """Derive ``a_{i,j}`` with every neighbor from advertised keys."""
        if self.keypair is None:
            raise ProtocolError("generate_keys must run first")
        for j in self.neighbors:
            if j not in peer_publics:
                raise ProtocolError(f"missing public key for neighbor {j}")
            self._pairwise_seeds[j] = self.dh.agree(
                self.keypair.secret, peer_publics[j]
            )

    # ------------------------------------------------------------------
    # round 2: share b_i and sk_i with neighbors
    # ------------------------------------------------------------------
    def share_secrets(
        self, rng: np.random.Generator
    ) -> Dict[int, Dict[str, ShamirShare]]:
        """Draw ``b_i`` and Shamir-share ``b_i`` and ``sk_i``.

        Returns ``{neighbor: {"b": share, "sk": share}}``; share ``x``
        coordinates are assigned by neighbor rank so reconstruction uses
        consistent evaluation points.
        """
        if self.keypair is None:
            raise ProtocolError("generate_keys must run first")
        self.self_seed = int.from_bytes(rng.bytes(SEED_BITS // 8), "little")
        n_limbs_b = limbs_needed(SEED_BITS, self.gf.q)
        n_limbs_sk = limbs_needed(self.dh.prime.bit_length(), self.gf.q)
        b_shares = self.shamir.share(
            int_to_limbs(self.self_seed, self.gf.q, n_limbs_b), rng
        )
        sk_shares = self.shamir.share(
            int_to_limbs(self.keypair.secret, self.gf.q, n_limbs_sk), rng
        )
        out: Dict[int, Dict[str, ShamirShare]] = {}
        for rank, j in enumerate(self.neighbors):
            x = rank + 1  # Shamir evaluation points are 1..len(neighbors)
            out[j] = {"b": b_shares[x], "sk": sk_shares[x]}
        return out

    def receive_shares(self, source: int, shares: Dict[str, ShamirShare]) -> None:
        """Store the Shamir shares of a neighbor's ``b`` and ``sk``."""
        if source in self._received_shares:
            raise ProtocolError(f"duplicate shares from {source}")
        self._received_shares[source] = shares

    # ------------------------------------------------------------------
    # round 3: double masking
    # ------------------------------------------------------------------
    def mask_update(self, update: np.ndarray) -> np.ndarray:
        """``~x_i = x_i + PRG(b_i) + sum_{j>i} PRG(a_ij) - sum_{j<i} PRG(a_ij)``."""
        if self.self_seed is None:
            raise ProtocolError("share_secrets must run before mask_update")
        update = self.gf.array(update)
        if update.shape != (self.model_dim,):
            raise ProtocolError(
                f"update shape {update.shape} != ({self.model_dim},)"
            )
        masked = self.gf.add(update, self.prg.expand(self.self_seed, self.model_dim))
        for j in self.neighbors:
            pairwise = self.prg.expand(self._pairwise_seeds[j], self.model_dim)
            if self.user_id < j:
                masked = self.gf.add(masked, pairwise)
            else:
                masked = self.gf.sub(masked, pairwise)
        return masked

    # ------------------------------------------------------------------
    # round 4: reveal shares for recovery
    # ------------------------------------------------------------------
    def reveal_share(self, target: int, kind: str) -> ShamirShare:
        """Reveal the held share of ``target``'s secret of the given kind.

        The SecAgg security argument requires that a user never reveals
        *both* kinds for the same target: ``b`` for survivors, ``sk`` for
        dropped users.  Enforcement of the exclusivity is the server
        driver's job; this method just returns the requested share.
        """
        if kind not in ("b", "sk"):
            raise ProtocolError(f"unknown share kind {kind!r}")
        if target not in self._received_shares:
            raise ProtocolError(
                f"user {self.user_id} holds no shares from {target}"
            )
        return self._received_shares[target][kind]
