"""Chunked mask transfer — the paper's Sec. 6 communication optimization.

LightSecAgg's offline phase makes every device a sender and a receiver of
N-1 coded shares simultaneously.  The paper's system splits shares into
chunks and runs dedicated send/receive queues so the two directions
overlap ("improving the speed of concurrent receiving and sending of
chunked masks").

This module provides (a) the chunking/reassembly primitives a transport
would use, with integrity checks, and (b) an analytic model of the
exchange time under serial, duplex, and chunk-pipelined schedules, used by
the ablation benchmark to quantify what the optimization buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.exceptions import ProtocolError
from repro.simulation.network import BandwidthProfile, ELEMENT_BYTES


@dataclass(frozen=True)
class Chunk:
    """One transmission unit of a coded share."""

    source: int
    dest: int
    index: int
    total: int
    payload: np.ndarray


def chunk_vector(
    vec: np.ndarray, chunk_elems: int, source: int = 0, dest: int = 0
) -> List[Chunk]:
    """Split a share into chunks of at most ``chunk_elems`` elements."""
    if chunk_elems <= 0:
        raise ProtocolError("chunk size must be positive")
    if vec.ndim != 1:
        raise ProtocolError("can only chunk 1-D shares")
    total = max(1, -(-vec.shape[0] // chunk_elems))
    return [
        Chunk(
            source=source,
            dest=dest,
            index=k,
            total=total,
            payload=vec[k * chunk_elems : (k + 1) * chunk_elems].copy(),
        )
        for k in range(total)
    ]


def reassemble(chunks: List[Chunk]) -> np.ndarray:
    """Rebuild a share from chunks, validating completeness and order."""
    if not chunks:
        raise ProtocolError("no chunks to reassemble")
    total = chunks[0].total
    sources = {c.source for c in chunks}
    dests = {c.dest for c in chunks}
    if len(sources) != 1 or len(dests) != 1:
        raise ProtocolError("chunks from mixed transfers")
    if {c.total for c in chunks} != {total}:
        raise ProtocolError("inconsistent chunk counts")
    indices = sorted(c.index for c in chunks)
    if indices != list(range(total)):
        missing = sorted(set(range(total)) - set(indices))
        raise ProtocolError(f"missing or duplicate chunks: {missing}")
    ordered = sorted(chunks, key=lambda c: c.index)
    return np.concatenate([c.payload for c in ordered])


# ----------------------------------------------------------------------
# exchange-time model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExchangeTimes:
    """Offline share-exchange time under the three transfer schedules."""

    serial: float  # send everything, then receive everything
    duplex: float  # concurrent send/receive streams (paper's design)
    chunk_pipelined: float  # duplex + per-chunk overlap of serialization

    @property
    def duplex_speedup(self) -> float:
        return self.serial / self.duplex


def exchange_times(
    num_peers: int,
    share_elems: int,
    bandwidth: BandwidthProfile,
    chunk_elems: int = 8192,
    per_chunk_overhead_s: float = 2e-4,
    serialize_elems_per_sec: float = 5e7,
) -> ExchangeTimes:
    """Model one user exchanging shares with ``num_peers`` peers.

    * ``serial``: the send stream and the receive stream occupy the link
      one after the other; serialization happens inline.
    * ``duplex``: the two directions run concurrently (full-duplex link,
      separate queues) — exchange time is the max of the directions.
    * ``chunk_pipelined``: additionally, per-chunk serialization overlaps
      transmission, so only the first chunk pays serialization latency.
    """
    if num_peers < 0 or share_elems < 0:
        raise ProtocolError("peer and share counts must be non-negative")
    total_elems = num_peers * share_elems
    wire = bandwidth.seconds(total_elems, ELEMENT_BYTES)
    serialize = total_elems / serialize_elems_per_sec
    num_chunks = max(1, -(-total_elems // max(chunk_elems, 1)))
    overhead = num_chunks * per_chunk_overhead_s

    one_direction_serial = wire + serialize + overhead
    serial = 2 * one_direction_serial

    duplex = max(one_direction_serial, one_direction_serial)  # symmetric
    # Pipelined: serialization of chunk k overlaps transmission of k-1, so
    # only one chunk's serialization is on the critical path.
    first_chunk_ser = min(chunk_elems, max(total_elems, 1)) / serialize_elems_per_sec
    pipelined = max(wire + overhead + first_chunk_ser, serialize)

    return ExchangeTimes(
        serial=serial, duplex=duplex, chunk_pipelined=pipelined
    )
