"""Secure-aggregation protocols: LightSecAgg, SecAgg, SecAgg+, naive baseline."""

from repro.protocols.base import (
    PHASES,
    SERVER,
    AggregationResult,
    Message,
    ProtocolSession,
    RoundMetrics,
    SecureAggregationProtocol,
    SessionStats,
    Transcript,
    sample_dropouts,
)
from repro.protocols.lightsecagg import (
    EncryptedLightSecAgg,
    EncryptedLightSecAggSession,
    LightSecAgg,
    LightSecAggSession,
    LSAParams,
    LSAServer,
    LSAUser,
    choose_target_survivors,
)
from repro.protocols.chunking import Chunk, chunk_vector, exchange_times, reassemble
from repro.protocols.naive import NaiveAggregation
from repro.protocols.zhao_sun import TrustedThirdPartyMasking, ZhaoSunAggregation
from repro.protocols.pairwise import (
    PairwiseMaskingProtocol,
    SecAgg,
    SecAggPlus,
    secagg_plus_degree,
)

__all__ = [
    "TrustedThirdPartyMasking",
    "ZhaoSunAggregation",
    "ProtocolSession",
    "SessionStats",
    "EncryptedLightSecAgg",
    "EncryptedLightSecAggSession",
    "LightSecAggSession",
    "Chunk",
    "chunk_vector",
    "reassemble",
    "exchange_times",
    "SecureAggregationProtocol",
    "AggregationResult",
    "RoundMetrics",
    "Transcript",
    "Message",
    "PHASES",
    "SERVER",
    "sample_dropouts",
    "LightSecAgg",
    "LSAParams",
    "LSAUser",
    "LSAServer",
    "choose_target_survivors",
    "SecAgg",
    "SecAggPlus",
    "PairwiseMaskingProtocol",
    "secagg_plus_degree",
    "NaiveAggregation",
]
