"""The trusted-third-party one-shot scheme of Zhao & Sun (2021).

The paper's Appendix C / Table 6 comparator: it achieves the same one-shot
aggregate-mask recovery as LightSecAgg but relies on a trusted third party
(TTP) that, *before* the round, prepares coded material for **every**
possible surviving set — which is what makes its randomness and storage
grow exponentially in N.

Construction implemented here (faithful to the accounting the paper
reports, workable at test-scale N):

* The TTP draws each user's mask ``z_i`` and partitions it into ``U - T``
  sub-mask symbols — ``N (U - T)`` symbols of randomness total.
* For every admissible surviving set ``S`` (``|S| >= U``) it draws ``T``
  fresh noise symbols, forms the ``U``-row message
  ``[sum_{i in S} [z_i]_1, ..., sum_{i in S} [z_i]_{U-T}, noise...]``,
  MDS-encodes it into ``|S|`` coded symbols, and gives one to each member
  of ``S``.  Per-user storage: own ``U - T`` sub-masks plus one symbol per
  surviving set containing the user — exactly Table 6's
  ``U - T + sum_{v>=U} C(N, v) * v / N`` on average.
* At aggregation time the server learns the realized surviving set ``S``
  and collects any ``U`` members' stored symbols for that ``S``; MDS
  decoding yields ``sum_{i in S} z_i`` in one shot.  Privacy against ``T``
  colluders comes from the ``T`` noise symbols, exactly as in
  LightSecAgg's encoder.

The implementation exists to (a) demonstrate functional equivalence of the
recovery path, and (b) let tests *count* the generated randomness and
per-user storage and check them against the closed forms in
:mod:`repro.simulation.storage`.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.coding.mds import MDSCode
from repro.coding.partition import partition, piece_length, unpartition
from repro.exceptions import DropoutError, ProtocolError
from repro.field.arithmetic import FiniteField
from repro.protocols.base import (
    SERVER,
    AggregationResult,
    RoundMetrics,
    SecureAggregationProtocol,
    Transcript,
)
from repro.protocols.lightsecagg.params import LSAParams


class TrustedThirdPartyMasking:
    """Pre-round TTP setup and one-shot recovery for Zhao & Sun's scheme.

    Only sensible for small ``N`` — the setup enumerates all ``C(N, v)``
    surviving sets with ``v >= U``, which is the scheme's documented
    drawback.
    """

    def __init__(
        self,
        gf: FiniteField,
        params: LSAParams,
        model_dim: int,
        rng: Optional[np.random.Generator] = None,
    ):
        n = params.num_users
        if n > 16:
            raise ProtocolError(
                "TTP setup enumerates all surviving sets; use N <= 16 "
                "(the exponential blow-up is the point of Table 6)"
            )
        self.gf = gf
        self.params = params
        self.model_dim = model_dim
        rng = rng if rng is not None else np.random.default_rng()
        u, t = params.target_survivors, params.privacy
        self.share_dim = piece_length(model_dim, u - t)

        # --- TTP randomness generation, with exact symbol accounting.
        self.randomness_symbols = 0
        self.masks: List[np.ndarray] = []
        sub_masks: List[np.ndarray] = []
        for _ in range(n):
            z = gf.random(model_dim, rng)
            self.masks.append(z)
            sub_masks.append(partition(z, u - t))  # (U-T, share_dim)
            self.randomness_symbols += u - t

        # Per-survivor-set coded symbols, stored at the users.
        # storage[user][frozenset(S)] = that user's coded symbol for S.
        self.storage: List[Dict[FrozenSet[int], np.ndarray]] = [
            {} for _ in range(n)
        ]
        for size in range(u, n + 1):
            for subset in combinations(range(n), size):
                s = frozenset(subset)
                agg = sub_masks[subset[0]].copy()
                for i in subset[1:]:
                    agg = gf.add(agg, sub_masks[i])
                noise = gf.random((t, self.share_dim), rng)
                self.randomness_symbols += t
                data = np.concatenate([agg, noise], axis=0)  # (U, share_dim)
                code = MDSCode(gf, n=size, k=u)
                coded = code.encode(data)  # (|S|, share_dim)
                for rank, user in enumerate(subset):
                    self.storage[user][s] = coded[rank]

    # ------------------------------------------------------------------
    def storage_symbols_per_user(self, user: int) -> int:
        """Stored symbols at ``user``: own U-T sub-masks + per-set symbol."""
        if not 0 <= user < self.params.num_users:
            raise ProtocolError("user out of range")
        return self.params.num_submasks + len(self.storage[user])

    def mask_update(self, user: int, update: np.ndarray) -> np.ndarray:
        """``~x_i = x_i + z_i`` with the TTP-assigned mask."""
        update = self.gf.array(update)
        if update.shape != (self.model_dim,):
            raise ProtocolError("update dimension mismatch")
        return self.gf.add(update, self.masks[user])

    def recover_aggregate_mask(
        self, surviving_set: FrozenSet[int], responders: List[int]
    ) -> np.ndarray:
        """One-shot decode of ``sum_{i in S} z_i`` from any U responders."""
        s = frozenset(surviving_set)
        size = len(s)
        u = self.params.target_survivors
        if size < u:
            raise DropoutError(f"surviving set of {size} < U={u}")
        ordered = sorted(s)
        valid = [r for r in responders if r in s]
        if len(set(valid)) < u:
            raise DropoutError(f"need {u} responders from the surviving set")
        code = MDSCode(self.gf, n=size, k=u)
        shares = {}
        for r in sorted(set(valid))[:u]:
            rank = ordered.index(r)
            shares[rank] = self.storage[r][s]
        data = code.decode(shares)  # (U, share_dim)
        return unpartition(data[: self.params.num_submasks], self.model_dim)

    def run_round(
        self,
        updates: Dict[int, np.ndarray],
        dropouts: Optional[set] = None,
    ) -> Tuple[np.ndarray, List[int]]:
        """Full round: masked uploads, set identification, one-shot decode."""
        dropouts = dropouts or set()
        n = self.params.num_users
        survivors = [i for i in range(n) if i not in dropouts]
        s = frozenset(survivors)
        masked_sum = self.gf.zeros(self.model_dim)
        for i in survivors:
            masked_sum = self.gf.add(masked_sum, self.mask_update(i, updates[i]))
        agg_mask = self.recover_aggregate_mask(s, survivors)
        return self.gf.sub(masked_sum, agg_mask), survivors


class ZhaoSunAggregation(SecureAggregationProtocol):
    """Zhao & Sun's scheme behind the common protocol interface.

    Wraps :class:`TrustedThirdPartyMasking` so the TTP comparator can be
    driven through the same ``run_round``/``session`` API as every other
    protocol.  Each round performs a *fresh* TTP setup (masks must not be
    reused across rounds), which is precisely the scheme's documented
    weakness: the exponential per-round setup cannot be amortized the way
    LightSecAgg's offline phase can — the generic per-round-replay session
    fallback is the best a session can do here.
    """

    name = "zhao-sun"

    def __init__(self, gf: FiniteField, params: LSAParams, model_dim: int):
        super().__init__(gf, params.num_users)
        self.params = params
        self.model_dim = model_dim

    def run_round(
        self,
        updates: Dict[int, np.ndarray],
        dropouts: set,
        rng: Optional[np.random.Generator] = None,
    ) -> AggregationResult:
        survivors = self._validate_round_inputs(updates, set(dropouts))
        u = self.params.target_survivors
        if len(survivors) < u:
            raise DropoutError(
                f"only {len(survivors)} survivors, need U={u}"
            )
        rng = rng if rng is not None else np.random.default_rng()
        transcript = Transcript()

        # Offline — the TTP prepares and distributes per-surviving-set
        # coded symbols; accounted as server-relayed share-sized traffic.
        ttp = TrustedThirdPartyMasking(self.gf, self.params, self.model_dim, rng)
        for i in range(self.num_users):
            transcript.record(
                SERVER, i, "offline",
                ttp.storage_symbols_per_user(i) * ttp.share_dim,
            )

        # Upload — worst case: dropped users upload, then vanish.
        masked: Dict[int, np.ndarray] = {}
        for i in range(self.num_users):
            masked[i] = ttp.mask_update(i, updates[i])
            transcript.record(i, SERVER, "upload", self.model_dim)

        # Recovery — any U members of the realized surviving set answer.
        responders = survivors[:u]
        for j in responders:
            transcript.record(j, SERVER, "recovery", ttp.share_dim)
        agg_mask = ttp.recover_aggregate_mask(frozenset(survivors), responders)

        masked_sum = masked[survivors[0]].copy()
        for i in survivors[1:]:
            masked_sum = self.gf.add(masked_sum, masked[i])
        aggregate = self.gf.sub(masked_sum, agg_mask)

        metrics = RoundMetrics(
            server_decode_ops=u * u * ttp.share_dim,
            server_prg_elements=0,
            user_encode_ops=0,  # all encoding happens at the trusted party
            extra={"ttp_randomness_symbols": float(ttp.randomness_symbols)},
        )
        return AggregationResult(
            aggregate=aggregate,
            survivors=survivors,
            transcript=transcript,
            metrics=metrics,
        )
