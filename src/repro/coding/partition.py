"""Vector partitioning helpers.

LightSecAgg partitions a length-``d`` mask into ``U - T`` equal sub-masks
(paper Sec. 4.1).  When ``d`` is not divisible by the number of pieces the
vector is zero-padded up to the next multiple; :func:`unpartition` removes
the padding again.  Padding with zeros is safe because the pad positions are
never used to mask model coordinates.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CodingError


def padded_length(d: int, pieces: int) -> int:
    """Smallest multiple of ``pieces`` that is >= ``d``."""
    if pieces <= 0:
        raise CodingError(f"pieces must be positive, got {pieces}")
    if d < 0:
        raise CodingError(f"length must be non-negative, got {d}")
    return ((d + pieces - 1) // pieces) * pieces


def piece_length(d: int, pieces: int) -> int:
    """Length of each sub-vector after padding."""
    return padded_length(d, pieces) // pieces


def partition(vector: np.ndarray, pieces: int) -> np.ndarray:
    """Split a 1-D vector into ``pieces`` rows, zero-padding the tail.

    Returns an array of shape ``(pieces, piece_length(d, pieces))``.
    """
    if vector.ndim != 1:
        raise CodingError("partition expects a 1-D vector")
    d = vector.shape[0]
    total = padded_length(d, pieces)
    if total != d:
        padded = np.zeros(total, dtype=vector.dtype)
        padded[:d] = vector
        vector = padded
    return vector.reshape(pieces, total // pieces)


def unpartition(pieces_matrix: np.ndarray, d: int) -> np.ndarray:
    """Inverse of :func:`partition`: concatenate rows and strip padding."""
    if pieces_matrix.ndim != 2:
        raise CodingError("unpartition expects a 2-D matrix")
    flat = pieces_matrix.reshape(-1)
    if d > flat.shape[0]:
        raise CodingError(
            f"requested length {d} exceeds available {flat.shape[0]} entries"
        )
    return flat[:d].copy()
