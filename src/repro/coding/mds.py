"""Systematic-free MDS erasure code over GF(q).

An ``(N, U)`` MDS code maps ``U`` data symbols (each a row vector) to ``N``
coded symbols such that *any* ``U`` coded symbols recover the data.  Two
equivalent generator constructions are provided:

* ``"vandermonde"`` — coded symbol ``j`` is ``sum_k data[k] * alpha_j**k``,
  i.e. evaluation of the polynomial whose *coefficients* are the data rows
  (the paper's eq. 5 form).  Decoding solves a Vandermonde system.
* ``"lagrange"`` — data rows are values of a degree-``U-1`` polynomial at
  points ``beta_1..beta_U``; coded symbol ``j`` is its value at ``alpha_j``
  (Lagrange-coded-computing form, Yu et al. 2019).  Decoding is Lagrange
  interpolation back to the ``beta`` points.

Both satisfy the MDS property because the relevant square sub-matrices are
(generalized) Vandermonde with distinct evaluation points.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.exceptions import CodingError, NotEnoughSharesError
from repro.field.arithmetic import FiniteField
from repro.field.linalg import solve
from repro.field.vandermonde import distinct_points, lagrange_coeffs, vandermonde

GENERATORS = ("vandermonde", "lagrange")


class MDSCode:
    """An ``(n, k)`` MDS erasure code over GF(q).

    Parameters
    ----------
    gf:
        The finite field to operate in.
    n:
        Number of coded symbols produced.
    k:
        Number of data symbols; any ``k`` coded symbols reconstruct the data.
    generator:
        ``"lagrange"`` (default) or ``"vandermonde"``; see module docstring.
    """

    def __init__(
        self,
        gf: FiniteField,
        n: int,
        k: int,
        generator: str = "lagrange",
    ):
        if k <= 0 or n < k:
            raise CodingError(f"require 0 < k <= n, got n={n}, k={k}")
        if generator not in GENERATORS:
            raise CodingError(f"unknown generator {generator!r}; use {GENERATORS}")
        if n + k >= gf.q:
            raise CodingError(f"field size {gf.q} too small for n={n}, k={k}")
        self.gf = gf
        self.n = n
        self.k = k
        self.generator = generator
        # beta: data points (lagrange only); alpha: coded-symbol points.
        self.beta = distinct_points(gf, k, start=1)
        self.alpha = distinct_points(gf, n, start=k + 1)
        if generator == "vandermonde":
            self._gen_matrix = vandermonde(gf, self.alpha, k)  # (k, n)
        else:
            self._gen_matrix = lagrange_coeffs(gf, self.beta, self.alpha).T  # (k, n)

    @property
    def generator_matrix(self) -> np.ndarray:
        """The ``(k, n)`` generator matrix ``G``; coded = ``G.T @ data``."""
        return self._gen_matrix.copy()

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode ``k`` data rows into ``n`` coded rows.

        ``data`` has shape ``(k, width)`` (or ``(k,)`` for scalar symbols);
        the result has shape ``(n, width)`` (or ``(n,)``).
        """
        data = self.gf.array(data)
        scalar = data.ndim == 1
        if scalar:
            data = data[:, None]
        if data.shape[0] != self.k:
            raise CodingError(f"expected {self.k} data rows, got {data.shape[0]}")
        coded = self.gf.matmul(self._gen_matrix.T.copy(), data)
        return coded[:, 0] if scalar else coded

    def decode(self, shares: Dict[int, np.ndarray]) -> np.ndarray:
        """Reconstruct the data from any ``k`` coded symbols.

        ``shares`` maps coded-symbol index ``j`` (0-based, ``0 <= j < n``) to
        its row vector.  Extra shares beyond ``k`` are ignored
        deterministically (lowest indices win).
        """
        if len(shares) < self.k:
            raise NotEnoughSharesError(
                f"need {self.k} shares to decode, got {len(shares)}"
            )
        indices = sorted(shares)[: self.k]
        for j in indices:
            if not 0 <= j < self.n:
                raise CodingError(f"share index {j} out of range [0, {self.n})")
        stacked = [self.gf.array(shares[j]) for j in indices]
        widths = {s.shape for s in stacked}
        if len(widths) != 1:
            raise CodingError(f"inconsistent share shapes: {widths}")
        scalar = stacked[0].ndim == 0
        rows = np.stack(
            [s[None] if scalar else s for s in stacked], axis=0
        )
        if rows.ndim == 1:
            rows = rows[:, None]
        if self.generator == "vandermonde":
            # rows[j] = sum_k data[k] * alpha_j^k  =>  V_sub.T @ data = rows
            v_sub = self._gen_matrix[:, indices]  # (k, k)
            data = solve(self.gf, v_sub.T.copy(), rows)
        else:
            coeffs = lagrange_coeffs(
                self.gf, self.alpha[indices], self.beta
            )  # (k, k)
            data = self.gf.matmul(coeffs, rows)
        return data[:, 0] if scalar else data

    def decode_at(
        self, shares: Dict[int, np.ndarray], eval_points: Sequence[int]
    ) -> np.ndarray:
        """Lagrange-evaluate the underlying polynomial at arbitrary points.

        Only meaningful for the ``"lagrange"`` generator, where the code is
        polynomial evaluation; used by tests and by re-encoding paths.
        """
        if self.generator != "lagrange":
            raise CodingError("decode_at requires the lagrange generator")
        if len(shares) < self.k:
            raise NotEnoughSharesError(
                f"need {self.k} shares to decode, got {len(shares)}"
            )
        indices = sorted(shares)[: self.k]
        rows = np.stack([self.gf.array(shares[j]) for j in indices], axis=0)
        coeffs = lagrange_coeffs(self.gf, self.alpha[indices], eval_points)
        return self.gf.matmul(coeffs, rows)

    def __repr__(self) -> str:
        return (
            f"MDSCode(n={self.n}, k={self.k}, q={self.gf.q}, "
            f"generator={self.generator!r})"
        )
