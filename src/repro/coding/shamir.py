"""Shamir secret sharing over GF(q) (Shamir, 1979).

Used by the SecAgg / SecAgg+ baselines to share each user's private PRG
seed ``b_i`` and private key ``sk_i`` (paper Sec. 3).  A ``(t, n)`` scheme
hides the secret from any ``t`` shares and reconstructs from any ``t + 1``.

Secrets may be scalars or vectors; vector secrets are shared
coordinate-wise with an independent random polynomial per coordinate
(vectorized across coordinates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.exceptions import CodingError, NotEnoughSharesError
from repro.field.arithmetic import FiniteField
from repro.field.vandermonde import lagrange_coeffs


@dataclass(frozen=True)
class ShamirShare:
    """A single share: the evaluation point ``x`` and value(s) ``y``."""

    x: int
    y: np.ndarray


class ShamirSecretSharing:
    """``(threshold, num_shares)`` Shamir scheme over GF(q).

    ``threshold`` is the privacy parameter ``t``: any ``t`` shares reveal
    nothing; any ``t + 1`` reconstruct.
    """

    def __init__(self, gf: FiniteField, num_shares: int, threshold: int):
        if threshold < 0:
            raise CodingError(f"threshold must be >= 0, got {threshold}")
        if num_shares <= threshold:
            raise CodingError(
                f"need num_shares > threshold, got n={num_shares}, t={threshold}"
            )
        if num_shares >= gf.q:
            raise CodingError(f"field size {gf.q} too small for {num_shares} shares")
        self.gf = gf
        self.num_shares = num_shares
        self.threshold = threshold
        # Evaluation points 1..n; the secret lives at x = 0.
        self.points = np.arange(1, num_shares + 1, dtype=np.uint64)

    def share(
        self, secret, rng: Optional[np.random.Generator] = None
    ) -> Dict[int, ShamirShare]:
        """Split ``secret`` into shares keyed by evaluation point.

        ``secret`` may be an int or a 1-D integer array; the polynomial
        ``f(x) = secret + c_1 x + ... + c_t x^t`` has independent uniform
        coefficients per coordinate, and share ``x`` is ``f(x)``.
        """
        secret_arr = self.gf.array(
            np.atleast_1d(np.asarray(secret, dtype=np.int64))
        )
        width = secret_arr.shape[0]
        coeffs = self.gf.random((self.threshold, width), rng)  # c_1..c_t
        gf = self.gf
        # All n evaluations at once: powers[j, row] = x_j ** (row + 1), so
        # f(x_j) = secret + powers[j] @ coeffs.  One field matmul replaces
        # the per-point Horner loop (n * t small vector ops) and rides the
        # blocked lazy-reduction kernel.
        values = np.broadcast_to(secret_arr, (self.num_shares, width))
        if self.threshold:
            powers = np.empty((self.num_shares, self.threshold), dtype=np.uint64)
            col = gf.array(self.points)
            powers[:, 0] = col
            for row in range(1, self.threshold):
                col = gf.mul(col, self.points)
                powers[:, row] = col
            values = gf.add(values, gf.matmul(powers, coeffs))
        return {
            int(x): ShamirShare(x=int(x), y=values[j].copy())
            for j, x in enumerate(self.points.tolist())
        }

    def reconstruct(self, shares: Sequence[ShamirShare]) -> np.ndarray:
        """Recover the secret from any ``threshold + 1`` shares.

        Extra shares are ignored deterministically (lowest ``x`` first).
        """
        needed = self.threshold + 1
        unique = {s.x: s for s in shares}
        if len(unique) < needed:
            raise NotEnoughSharesError(
                f"need {needed} distinct shares, got {len(unique)}"
            )
        chosen = [unique[x] for x in sorted(unique)[:needed]]
        xs = self.gf.array([s.x for s in chosen])
        ys = np.stack([self.gf.array(s.y) for s in chosen], axis=0)
        coeffs = lagrange_coeffs(self.gf, xs, [0])  # evaluate at x = 0
        return self.gf.matmul(coeffs, ys)[0]

    def reconstruct_scalar(self, shares: Sequence[ShamirShare]) -> int:
        """Reconstruct a scalar secret and return it as a Python int."""
        value = self.reconstruct(shares)
        if value.shape != (1,):
            raise CodingError(f"secret is not scalar, has shape {value.shape}")
        return int(value[0])
