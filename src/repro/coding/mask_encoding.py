"""T-private mask encoding — the core primitive of LightSecAgg.

Implements eq. (5)/(28) of the paper.  A user's random mask ``z`` (length
``d``) is partitioned into ``U - T`` sub-masks; ``T`` extra sub-masks are
drawn uniformly at random; the ``U`` rows are encoded with an ``(N, U)``
MDS code into ``N`` coded shares, one per user.  Properties:

* **Linearity** — the share-wise sum of several users' encodings is a valid
  encoding of the summed masks, which is what enables the server's one-shot
  aggregate-mask recovery from any ``U`` aggregated shares.
* **T-privacy** — any ``T`` shares are statistically independent of ``z``
  because the ``T`` random padding rows are mixed in through an invertible
  ``T x T`` sub-matrix (the generator is *T-private MDS* in the paper's
  terminology; for a Vandermonde/Lagrange generator with distinct nonzero
  points the required sub-matrices are generalized Vandermonde / Cauchy and
  hence invertible).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.exceptions import CodingError
from repro.coding.mds import MDSCode
from repro.coding.partition import partition, piece_length, unpartition
from repro.field.arithmetic import FiniteField


class MaskEncoder:
    """Encode/decode LightSecAgg masks for ``num_users`` users.

    Parameters
    ----------
    gf:
        Finite field for all operations.
    num_users:
        ``N``, the number of users (= number of coded shares).
    target_survivors:
        ``U``, the number of aggregated shares needed for recovery.
    privacy:
        ``T``, the number of colluding users tolerated; requires ``U > T``.
    model_dim:
        ``d``, the length of the mask vector being encoded.
    generator:
        MDS generator construction, ``"lagrange"`` or ``"vandermonde"``.
    """

    def __init__(
        self,
        gf: FiniteField,
        num_users: int,
        target_survivors: int,
        privacy: int,
        model_dim: int,
        generator: str = "lagrange",
    ):
        if privacy < 0:
            raise CodingError(f"privacy T must be >= 0, got {privacy}")
        if not privacy < target_survivors <= num_users:
            raise CodingError(
                f"require T < U <= N, got T={privacy}, U={target_survivors}, "
                f"N={num_users}"
            )
        if model_dim <= 0:
            raise CodingError(f"model_dim must be positive, got {model_dim}")
        self.gf = gf
        self.num_users = num_users
        self.target_survivors = target_survivors
        self.privacy = privacy
        self.model_dim = model_dim
        self.num_submasks = target_survivors - privacy  # U - T data rows
        self.share_dim = piece_length(model_dim, self.num_submasks)
        self.code = MDSCode(gf, n=num_users, k=target_survivors, generator=generator)

    # ------------------------------------------------------------------
    def generate_mask(self, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw a fresh uniform mask ``z`` of length ``model_dim``."""
        return self.gf.random(self.model_dim, rng)

    def encode(
        self, mask: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Encode a mask into ``N`` coded shares of shape ``(N, share_dim)``.

        Row ``j`` of the result is ``[~z]_j``, the share destined for user
        ``j``.  The ``T`` random padding rows are drawn from ``rng``.
        """
        mask = self.gf.array(mask)
        if mask.shape != (self.model_dim,):
            raise CodingError(
                f"mask must have shape ({self.model_dim},), got {mask.shape}"
            )
        sub_masks = partition(mask, self.num_submasks)  # (U-T, share_dim)
        padding = self.gf.random((self.privacy, self.share_dim), rng)
        data = np.concatenate([sub_masks, padding], axis=0)  # (U, share_dim)
        return self.code.encode(data)

    def encode_batch(
        self, masks: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Encode ``B`` masks at once as a single batched field matmul.

        ``masks`` has shape ``(B, model_dim)``; the result has shape
        ``(B, N, share_dim)`` where slice ``b`` equals ``encode(masks[b])``
        up to the random padding draw.  Laying the ``B`` data blocks side by
        side turns ``B`` generator products into one ``(N, U) @ (U, B *
        share_dim)`` multiply, which is what lets a multi-round session
        precompute its whole offline pool in one shot.
        """
        masks = self.gf.array(masks)
        if masks.ndim != 2 or masks.shape[1] != self.model_dim:
            raise CodingError(
                f"masks must have shape (B, {self.model_dim}), got {masks.shape}"
            )
        b = masks.shape[0]
        if b == 0:
            raise CodingError("cannot encode an empty batch")
        padded = self.num_submasks * self.share_dim
        if padded != self.model_dim:
            wide = np.zeros((b, padded), dtype=masks.dtype)
            wide[:, : self.model_dim] = masks
            masks = wide
        # Stage the (U, B*share_dim) generator input in one preallocated
        # buffer: rows 0..U-T-1 are the per-mask sub-mask rows (same rows
        # as partition(), concatenated along the width axis) and the last
        # T rows are the random padding, drawn straight into place.  The
        # width axis of the single generator matmul below is blocked
        # inside ``gf.matmul`` so large-``d`` refills stay cache-resident.
        width = b * self.share_dim
        data = np.empty((self.target_survivors, width), dtype=np.uint64)
        sub = masks.reshape(b, self.num_submasks, self.share_dim)
        data[: self.num_submasks] = sub.transpose(1, 0, 2).reshape(
            self.num_submasks, width
        )
        if self.privacy:
            data[self.num_submasks :] = self.gf.random(
                (self.privacy, width), rng
            )
        coded = self.code.encode(data)  # (N, B*share_dim)
        return coded.reshape(
            self.num_users, b, self.share_dim
        ).transpose(1, 0, 2)

    def decode_aggregate(self, aggregated_shares: Dict[int, np.ndarray]) -> np.ndarray:
        """One-shot recovery of the aggregate mask (paper Alg. 1, line 26).

        ``aggregated_shares`` maps a user index ``j`` to
        ``sum_{i in U1} [~z_i]_j`` — the sum, over the surviving set, of the
        coded shares held by user ``j``.  Any ``U`` entries suffice.  Returns
        the aggregate mask ``sum_{i in U1} z_i`` of length ``model_dim``.
        """
        data = self.code.decode(aggregated_shares)  # (U, share_dim)
        sub_masks = data[: self.num_submasks]
        return unpartition(sub_masks, self.model_dim)

    def aggregate_shares(self, shares: Dict[int, np.ndarray]) -> np.ndarray:
        """Sum the coded shares a user holds for a set of source users.

        ``shares`` maps source-user index ``i`` to ``[~z_i]_j`` (this user's
        share of user ``i``'s mask).  Used by surviving users in the
        recovery phase.
        """
        if not shares:
            raise CodingError("cannot aggregate an empty share set")
        stacked = np.stack([self.gf.array(v) for v in shares.values()], axis=0)
        return self.gf.sum(stacked, axis=0)

    def __repr__(self) -> str:
        return (
            f"MaskEncoder(N={self.num_users}, U={self.target_survivors}, "
            f"T={self.privacy}, d={self.model_dim}, q={self.gf.q})"
        )
