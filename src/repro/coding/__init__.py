"""Coding substrate: MDS erasure codes, T-private mask encoding, Shamir sharing."""

from repro.coding.mds import MDSCode
from repro.coding.mask_encoding import MaskEncoder
from repro.coding.partition import (
    padded_length,
    partition,
    piece_length,
    unpartition,
)
from repro.coding.shamir import ShamirSecretSharing, ShamirShare

__all__ = [
    "MDSCode",
    "MaskEncoder",
    "ShamirSecretSharing",
    "ShamirShare",
    "partition",
    "unpartition",
    "padded_length",
    "piece_length",
]
