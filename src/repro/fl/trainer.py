"""Local training of a client model (paper eqs. 24-25).

A client downloads the global parameters, runs ``E`` local epochs of
mini-batch SGD, and reports the *update* ``Delta = x_global - x_local``
(eq. 24's sign convention: the server later applies
``x <- x - eta_g * mean(Delta)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import ReproError
from repro.fl.datasets.synthetic import Dataset
from repro.fl.optim import SGD


@dataclass(frozen=True)
class LocalTrainingConfig:
    """Hyper-parameters of a client's local phase.

    The paper uses ``E = 5`` local epochs for the synchronous experiments
    (Appendix D) and ``E >= 1`` local steps in the async setting.
    """

    epochs: int = 5
    batch_size: int = 32
    lr: float = 0.05
    momentum: float = 0.0
    weight_decay: float = 0.0

    def __post_init__(self):
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ReproError("epochs and batch_size must be positive")


def local_update(
    model,
    global_params: np.ndarray,
    dataset: Dataset,
    config: LocalTrainingConfig,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Run local SGD from ``global_params``; return ``Delta`` (eq. 24).

    The model's parameters are left at the locally trained point; callers
    that reuse model objects across clients must reset them from the global
    vector (which this function does on entry anyway).
    """
    rng = rng if rng is not None else np.random.default_rng()
    model.set_flat_params(global_params)
    optimizer = SGD(config.lr, config.momentum, config.weight_decay)
    params = global_params.copy()
    for _ in range(config.epochs):
        for xb, yb in dataset.batches(config.batch_size, rng):
            model.set_flat_params(params)
            _, grad = model.loss_and_grad(xb, yb)
            params = optimizer.step(params, grad)
    return global_params - params
