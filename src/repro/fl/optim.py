"""Optimizers for local training (plain SGD and momentum SGD)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ReproError


class SGD:
    """Stochastic gradient descent on flat parameter vectors.

    ``step`` returns the updated parameters; momentum and weight decay are
    optional and match the standard (non-Nesterov) formulation.
    """

    def __init__(
        self,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ReproError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ReproError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ReproError("weight decay must be non-negative")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Optional[np.ndarray] = None

    def reset(self) -> None:
        """Clear momentum state (called at the start of each local phase)."""
        self._velocity = None

    def step(self, params: np.ndarray, grad: np.ndarray) -> np.ndarray:
        if params.shape != grad.shape:
            raise ReproError("params and grad must have equal shapes")
        if self.weight_decay:
            grad = grad + self.weight_decay * params
        if self.momentum:
            if self._velocity is None:
                self._velocity = np.zeros_like(params)
            self._velocity = self.momentum * self._velocity + grad
            grad = self._velocity
        return params - self.lr * grad
