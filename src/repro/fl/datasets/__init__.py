"""Synthetic dataset substrate and FL partitioners."""

from repro.fl.datasets.synthetic import (
    Dataset,
    dirichlet_partition,
    iid_partition,
    make_cifar10_like,
    make_classification,
    make_femnist_like,
    make_gld23k_like,
    make_mnist_like,
    shard_partition,
)

__all__ = [
    "Dataset",
    "make_classification",
    "make_mnist_like",
    "make_femnist_like",
    "make_cifar10_like",
    "make_gld23k_like",
    "iid_partition",
    "dirichlet_partition",
    "shard_partition",
]
