"""Deterministic synthetic stand-ins for the paper's datasets.

No network access is available, so MNIST / FEMNIST / CIFAR-10 / GLD-23K are
replaced by Gaussian-prototype image classification tasks with matching
tensor shapes and class counts.  Each class has a random prototype image;
samples are prototype + noise, which makes the task learnable by all the
models in the zoo (linear models reach high accuracy at low noise, CNNs at
higher noise).  Determinism comes from explicit seeds.

The *systems* results of the paper depend only on the model dimension and
user count, so nothing is lost there; the *convergence* results (Fig. 7,
11, 12) need a learnable task, which these provide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.exceptions import ReproError


@dataclass
class Dataset:
    """A supervised dataset: images ``x`` (n, c, h, w) and labels ``y`` (n,)."""

    x: np.ndarray
    y: np.ndarray
    num_classes: int
    name: str = "dataset"

    def __post_init__(self):
        if self.x.shape[0] != self.y.shape[0]:
            raise ReproError("x and y must have equal length")

    def __len__(self) -> int:
        return self.x.shape[0]

    @property
    def input_shape(self) -> Tuple[int, ...]:
        return self.x.shape[1:]

    def subset(self, indices: np.ndarray) -> "Dataset":
        return Dataset(
            self.x[indices], self.y[indices], self.num_classes, self.name
        )

    def batches(self, batch_size: int, rng: np.random.Generator):
        """Yield shuffled mini-batches (x, y)."""
        order = rng.permutation(len(self))
        for start in range(0, len(self), batch_size):
            idx = order[start : start + batch_size]
            yield self.x[idx], self.y[idx]


def make_classification(
    num_samples: int,
    input_shape: Tuple[int, ...],
    num_classes: int,
    noise: float = 0.5,
    seed: int = 0,
    name: str = "synthetic",
) -> Dataset:
    """Gaussian-prototype classification images."""
    if num_samples <= 0 or num_classes <= 1:
        raise ReproError("need num_samples > 0 and num_classes > 1")
    rng = np.random.default_rng(seed)
    prototypes = rng.normal(0.0, 1.0, size=(num_classes,) + tuple(input_shape))
    y = rng.integers(0, num_classes, size=num_samples)
    x = prototypes[y] + rng.normal(0.0, noise, size=(num_samples,) + tuple(input_shape))
    return Dataset(x=x.astype(np.float64), y=y.astype(np.int64), num_classes=num_classes, name=name)


def make_mnist_like(num_samples: int = 2000, seed: int = 0, noise: float = 0.8) -> Dataset:
    """28x28 grayscale, 10 classes — MNIST stand-in."""
    return make_classification(num_samples, (1, 28, 28), 10, noise, seed, "mnist-like")


def make_femnist_like(num_samples: int = 2000, seed: int = 0, noise: float = 0.8) -> Dataset:
    """28x28 grayscale, 62 classes — FEMNIST stand-in."""
    return make_classification(num_samples, (1, 28, 28), 62, noise, seed, "femnist-like")


def make_cifar10_like(num_samples: int = 2000, seed: int = 0, noise: float = 0.8) -> Dataset:
    """32x32 RGB, 10 classes — CIFAR-10 stand-in."""
    return make_classification(num_samples, (3, 32, 32), 10, noise, seed, "cifar10-like")


def make_gld23k_like(num_samples: int = 500, seed: int = 0, noise: float = 0.8) -> Dataset:
    """64x64 RGB, 203 classes — scaled-down GLD-23K stand-in.

    The real dataset has 203 landmark classes and high-resolution images;
    we keep the class count and use 64x64 inputs so CNN training remains
    laptop-feasible.
    """
    return make_classification(num_samples, (3, 64, 64), 203, noise, seed, "gld23k-like")


def train_test_split(
    dataset: Dataset, test_fraction: float = 0.2, seed: int = 0
) -> Tuple[Dataset, Dataset]:
    """Shuffle-split one dataset into (train, test) with shared prototypes.

    Always split a *single* generated dataset rather than generating two
    with different seeds — different seeds mean different class prototypes,
    i.e. unrelated distributions.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ReproError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    n_test = max(1, int(test_fraction * len(dataset)))
    return dataset.subset(order[n_test:]), dataset.subset(order[:n_test])


# ----------------------------------------------------------------------
# partitioners
# ----------------------------------------------------------------------
def iid_partition(
    dataset: Dataset, num_clients: int, seed: int = 0
) -> List[Dataset]:
    """Shuffle and split evenly across clients (Sec. F.5 IID setting)."""
    if num_clients <= 0 or num_clients > len(dataset):
        raise ReproError(f"cannot split {len(dataset)} samples into {num_clients}")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    splits = np.array_split(order, num_clients)
    return [dataset.subset(idx) for idx in splits]


def dirichlet_partition(
    dataset: Dataset, num_clients: int, alpha: float = 0.5, seed: int = 0
) -> List[Dataset]:
    """Non-IID label-skew partition via per-class Dirichlet proportions.

    Standard FL benchmark practice (lower ``alpha`` = more skew).  Every
    client is guaranteed at least one sample by round-robin backfill.
    """
    if alpha <= 0:
        raise ReproError("alpha must be positive")
    rng = np.random.default_rng(seed)
    client_indices: Dict[int, List[int]] = {c: [] for c in range(num_clients)}
    for cls in range(dataset.num_classes):
        cls_idx = np.nonzero(dataset.y == cls)[0]
        if cls_idx.size == 0:
            continue
        rng.shuffle(cls_idx)
        proportions = rng.dirichlet([alpha] * num_clients)
        cuts = (np.cumsum(proportions) * cls_idx.size).astype(int)[:-1]
        for c, chunk in enumerate(np.split(cls_idx, cuts)):
            client_indices[c].extend(chunk.tolist())
    # Backfill empty clients from the largest ones.
    empty = [c for c, idx in client_indices.items() if not idx]
    for c in empty:
        donor = max(client_indices, key=lambda k: len(client_indices[k]))
        client_indices[c].append(client_indices[donor].pop())
    return [
        dataset.subset(np.asarray(sorted(idx), dtype=np.int64))
        for c, idx in sorted(client_indices.items())
    ]


def shard_partition(
    dataset: Dataset, num_clients: int, shards_per_client: int = 2, seed: int = 0
) -> List[Dataset]:
    """McMahan-style pathological non-IID: sort by label, deal out shards."""
    rng = np.random.default_rng(seed)
    order = np.argsort(dataset.y, kind="stable")
    num_shards = num_clients * shards_per_client
    shards = np.array_split(order, num_shards)
    shard_ids = rng.permutation(num_shards)
    clients = []
    for c in range(num_clients):
        take = shard_ids[c * shards_per_client : (c + 1) * shards_per_client]
        idx = np.concatenate([shards[s] for s in take])
        clients.append(dataset.subset(idx))
    return clients
