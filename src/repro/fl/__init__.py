"""Federated-learning substrate: datasets, models, local training, FedAvg."""

from repro.fl.datasets import (
    Dataset,
    dirichlet_partition,
    iid_partition,
    make_cifar10_like,
    make_classification,
    make_femnist_like,
    make_gld23k_like,
    make_mnist_like,
    shard_partition,
)
from repro.fl.federated import (
    RoundRecord,
    SecureFederatedAveraging,
    TrainingHistory,
)
from repro.fl.models import (
    Model,
    SyntheticModel,
    lenet5_variant,
    logistic_regression,
    mcmahan_cnn,
    mlp,
)
from repro.fl.optim import SGD
from repro.fl.trainer import LocalTrainingConfig, local_update

__all__ = [
    "Dataset",
    "make_classification",
    "make_mnist_like",
    "make_femnist_like",
    "make_cifar10_like",
    "make_gld23k_like",
    "iid_partition",
    "dirichlet_partition",
    "shard_partition",
    "Model",
    "SyntheticModel",
    "logistic_regression",
    "mlp",
    "mcmahan_cnn",
    "lenet5_variant",
    "SGD",
    "LocalTrainingConfig",
    "local_update",
    "SecureFederatedAveraging",
    "RoundRecord",
    "TrainingHistory",
]
