"""Synchronous federated averaging with pluggable secure aggregation.

Wires together the FL substrate and the protocol layer: each round, every
user trains locally, quantizes its update into GF(q), the chosen secure-
aggregation protocol produces the exact field-sum of the surviving users'
quantized updates, and the server dequantizes, averages, and steps the
global model.  With the :class:`~repro.protocols.naive.NaiveAggregation`
protocol this reduces to plain FedAvg, which is the correctness oracle used
throughout the tests.

Weighted aggregation (paper Remark 3) is supported through per-user integer
weights applied in-field.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.exceptions import ProtocolError, ReproError
from repro.field.arithmetic import FiniteField
from repro.fl.datasets.synthetic import Dataset
from repro.fl.trainer import LocalTrainingConfig, local_update
from repro.protocols.base import SecureAggregationProtocol, sample_dropouts
from repro.quantization.quantizer import ModelQuantizer, QuantizationConfig


@dataclass
class RoundRecord:
    """Telemetry for one federated round."""

    round_index: int
    survivors: List[int]
    train_loss: float
    test_loss: Optional[float] = None
    test_accuracy: Optional[float] = None
    comm_elements: Dict[str, int] = field(default_factory=dict)


@dataclass
class TrainingHistory:
    """Accumulated per-round telemetry."""

    records: List[RoundRecord] = field(default_factory=list)

    @property
    def accuracies(self) -> List[float]:
        return [r.test_accuracy for r in self.records if r.test_accuracy is not None]

    @property
    def losses(self) -> List[float]:
        return [r.train_loss for r in self.records]


class SecureFederatedAveraging:
    """Synchronous FL loop with secure aggregation.

    Multi-round aggregation is driven through a stateful
    :class:`~repro.protocols.base.ProtocolSession` opened once at
    construction: protocols with a precomputable offline phase (e.g.
    LightSecAgg) amortize mask encoding/sharing across the whole training
    run instead of re-running it inside every round's critical path.

    Parameters
    ----------
    model:
        Any object with the flat-parameter model interface.
    client_datasets:
        One :class:`Dataset` per user; ``len`` fixes the user count.
    protocol:
        A :class:`SecureAggregationProtocol` over the same user count.
    quantizer:
        Real <-> GF(q) embedding; its field must match the protocol's.
    local_config:
        Client-side hyper-parameters.
    server_lr:
        The global step size ``eta_g`` (paper eq. 26; 1.0 = plain FedAvg).
    weights:
        Optional per-user positive integer weights (Remark 3); defaults to
        uniform.
    session_pool:
        Rounds of offline material the aggregation session precomputes per
        refill (ignored by protocols without a precomputable offline
        phase).
    session_rng:
        Dedicated generator for the session's offline randomness; by
        default a fresh unseeded generator, so the caller-supplied per-
        round ``rng`` stream is reserved for training/quantization draws.
    session_low_water:
        Pool level at which a background refiller should top the session
        up (forwarded to ``protocol.session``; 0 = refill on empty).
    session:
        A pre-built session to drive rounds through instead of opening
        one on ``protocol`` — this is how the service layer plugs a
        sharded and/or background-refilled
        :class:`~repro.service.sharding.ShardedSession` under an
        unchanged training loop.  Must aggregate over the same user
        count and field (both validated); the ``session_pool`` /
        ``session_rng`` / ``session_low_water`` knobs apply only to the
        session this class opens itself and are ignored when one is
        supplied.
    """

    def __init__(
        self,
        model,
        client_datasets: Sequence[Dataset],
        protocol: SecureAggregationProtocol,
        quantizer: Optional[ModelQuantizer] = None,
        local_config: LocalTrainingConfig = LocalTrainingConfig(),
        server_lr: float = 1.0,
        weights: Optional[Sequence[int]] = None,
        session_pool: int = 4,
        session_rng: Optional[np.random.Generator] = None,
        session_low_water: int = 0,
        session=None,
    ):
        self.model = model
        self.client_datasets = list(client_datasets)
        self.num_users = len(self.client_datasets)
        if protocol.num_users != self.num_users:
            raise ProtocolError(
                f"protocol expects {protocol.num_users} users, have "
                f"{self.num_users} datasets"
            )
        self.protocol = protocol
        self.gf: FiniteField = protocol.gf
        self.quantizer = (
            quantizer
            if quantizer is not None
            else ModelQuantizer(self.gf, QuantizationConfig(clip=10.0))
        )
        if self.quantizer.gf != self.gf:
            raise ProtocolError("quantizer and protocol must share a field")
        self.local_config = local_config
        if server_lr <= 0:
            raise ReproError("server_lr must be positive")
        self.server_lr = server_lr
        if weights is None:
            weights = [1] * self.num_users
        if len(weights) != self.num_users or any(w <= 0 for w in weights):
            raise ReproError("weights must be positive, one per user")
        self.weights = [int(w) for w in weights]
        if session is not None:
            if session.num_users != self.num_users:
                raise ProtocolError(
                    f"supplied session aggregates over {session.num_users} "
                    f"users, have {self.num_users}"
                )
            if session.gf != self.gf:
                raise ProtocolError(
                    "supplied session and protocol must share a field"
                )
            self.session = session
        else:
            self.session = protocol.session(
                pool_size=session_pool,
                rng=session_rng,
                low_water=session_low_water,
            )
        self._offline_elements_seen = 0
        self.history = TrainingHistory()
        self.global_params = model.get_flat_params()

    # ------------------------------------------------------------------
    def run_round(
        self,
        dropouts: Optional[Set[int]] = None,
        dropout_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        test_set: Optional[Dataset] = None,
    ) -> RoundRecord:
        """Execute one federated round; returns its telemetry record."""
        rng = rng if rng is not None else np.random.default_rng()
        if dropouts is None:
            dropouts = sample_dropouts(self.num_users, dropout_rate, rng)

        # Local training + weighted quantization into the field.
        updates: Dict[int, np.ndarray] = {}
        losses: List[float] = []
        for uid, dataset in enumerate(self.client_datasets):
            delta = local_update(
                self.model, self.global_params, dataset, self.local_config, rng
            )
            weighted = self.weights[uid] * delta
            updates[uid] = self.quantizer.quantize(weighted, rng)
            loss, _ = self.model.loss_and_grad(dataset.x, dataset.y)
            losses.append(loss)

        result = self.session.run_round(updates, dropouts, rng)
        survivors = result.survivors

        total_weight = sum(self.weights[i] for i in survivors)
        summed = self.quantizer.dequantize(result.aggregate)
        mean_delta = summed / total_weight
        self.global_params = self.global_params - self.server_lr * mean_delta
        self.model.set_flat_params(self.global_params)

        comm = {
            phase: result.transcript.elements(phase=phase)
            for phase in ("offline", "upload", "recovery")
        }
        # Pooled sessions incur offline traffic at refill time; attribute
        # any refill this round triggered to this round's accounting.
        offline_total = self.session.offline_elements()
        comm["offline"] += offline_total - self._offline_elements_seen
        self._offline_elements_seen = offline_total

        record = RoundRecord(
            round_index=len(self.history.records),
            survivors=survivors,
            train_loss=float(np.mean(losses)),
            comm_elements=comm,
        )
        if test_set is not None:
            record.test_loss, record.test_accuracy = self.model.evaluate(
                test_set.x, test_set.y
            )
        self.history.records.append(record)
        return record

    def fit(
        self,
        num_rounds: int,
        dropout_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        test_set: Optional[Dataset] = None,
    ) -> TrainingHistory:
        """Run ``num_rounds`` rounds with sampled dropouts each round."""
        rng = rng if rng is not None else np.random.default_rng()
        for _ in range(num_rounds):
            self.run_round(
                dropout_rate=dropout_rate, rng=rng, test_set=test_set
            )
        return self.history
