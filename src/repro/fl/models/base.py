"""Trainable-model interface used by the FL loop.

A :class:`Model` wraps a :class:`~repro.fl.models.layers.Sequential` stack
(or behaves like one) and exposes flat-parameter access — the FL layer and
the secure-aggregation protocols only ever see flat ``float64`` vectors of
dimension ``d``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.fl.models.layers import Sequential, softmax_cross_entropy


class Model:
    """A classification model backed by a layer stack."""

    def __init__(self, net: Sequential, name: str = "model"):
        self.net = net
        self.name = name

    @property
    def dim(self) -> int:
        """Number of trainable parameters ``d``."""
        return self.net.num_params

    def get_flat_params(self) -> np.ndarray:
        return self.net.get_flat_params()

    def set_flat_params(self, flat: np.ndarray) -> None:
        self.net.set_flat_params(flat)

    def loss_and_grad(
        self, x: np.ndarray, y: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Mean cross-entropy loss and flat gradient on a batch."""
        logits = self.net.forward(x, train=True)
        loss, dlogits = softmax_cross_entropy(logits, y)
        self.net.backward(dlogits)
        return loss, self.net.get_flat_grads()

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions (argmax over logits), no caching."""
        logits = self.net.forward(x, train=False)
        return np.argmax(logits, axis=1)

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> Tuple[float, float]:
        """(loss, accuracy) on a dataset, computed in inference mode."""
        logits = self.net.forward(x, train=False)
        loss, _ = softmax_cross_entropy(logits, y)
        accuracy = float(np.mean(np.argmax(logits, axis=1) == y))
        return float(loss), accuracy

    def __repr__(self) -> str:
        return f"Model(name={self.name!r}, dim={self.dim})"
