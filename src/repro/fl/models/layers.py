"""Minimal numpy layer library with manual backprop.

The FL substrate needs real trainable models (the paper trains LR, a small
CNN, and LeNet variants) without any deep-learning framework.  Each layer
caches what its backward pass needs; ``backward`` consumes the upstream
gradient and returns the downstream one, accumulating parameter gradients
in ``grads``.

Convolutions use im2col so the heavy lifting is a single matmul — the
vectorized-numpy idiom the ml-systems guide prescribes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np


class Layer:
    """Base layer: parameters + gradients keyed by name."""

    def __init__(self):
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def num_params(self) -> int:
        return sum(p.size for p in self.params.values())


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b``."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator):
        super().__init__()
        scale = np.sqrt(2.0 / in_dim)
        self.params["W"] = rng.normal(0.0, scale, size=(in_dim, out_dim))
        self.params["b"] = np.zeros(out_dim)
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        self._x = x if train else None
        return x @ self.params["W"] + self.params["b"]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        self.grads["W"] = self._x.T @ grad
        self.grads["b"] = grad.sum(axis=0)
        return grad @ self.params["W"].T


class ReLU(Layer):
    def __init__(self):
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        mask = x > 0
        if train:
            self._mask = mask
        return x * mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._mask


class Flatten(Layer):
    def __init__(self):
        super().__init__()
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if train:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._shape)


def _im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> Tuple[np.ndarray, int, int]:
    """(n, c, h, w) -> (n * oh * ow, c * kh * kw) patch matrix."""
    n, c, h, w = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    strides = x.strides
    shape = (n, c, oh, ow, kh, kw)
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=shape,
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    cols = view.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kh * kw)
    return np.ascontiguousarray(cols), oh, ow


def _col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
    oh: int,
    ow: int,
) -> np.ndarray:
    """Adjoint of :func:`_im2col`: scatter-add patches back to image."""
    n, c, h, w = x_shape
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad))
    cols = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride] += cols[
                :, :, :, :, i, j
            ]
    if pad:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


class Conv2D(Layer):
    """2-D convolution via im2col; input layout (n, c, h, w)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        rng: np.random.Generator,
        stride: int = 1,
        pad: int = 0,
    ):
        super().__init__()
        fan_in = in_channels * kernel * kernel
        scale = np.sqrt(2.0 / fan_in)
        self.params["W"] = rng.normal(
            0.0, scale, size=(out_channels, in_channels, kernel, kernel)
        )
        self.params["b"] = np.zeros(out_channels)
        self.kernel = kernel
        self.stride = stride
        self.pad = pad
        self._cache = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        k, s, p = self.kernel, self.stride, self.pad
        cols, oh, ow = _im2col(x, k, k, s, p)
        w = self.params["W"].reshape(self.params["W"].shape[0], -1)
        out = cols @ w.T + self.params["b"]
        n = x.shape[0]
        out = out.reshape(n, oh, ow, -1).transpose(0, 3, 1, 2)
        if train:
            self._cache = (x.shape, cols, oh, ow)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x_shape, cols, oh, ow = self._cache
        n = grad.shape[0]
        grad_mat = grad.transpose(0, 2, 3, 1).reshape(n * oh * ow, -1)
        w = self.params["W"]
        self.grads["W"] = (grad_mat.T @ cols).reshape(w.shape)
        self.grads["b"] = grad_mat.sum(axis=0)
        dcols = grad_mat @ w.reshape(w.shape[0], -1)
        return _col2im(
            dcols, x_shape, self.kernel, self.kernel, self.stride, self.pad, oh, ow
        )


class MaxPool2D(Layer):
    """Non-overlapping max pooling with square window."""

    def __init__(self, size: int = 2):
        super().__init__()
        self.size = size
        self._cache = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.size
        oh, ow = h // s, w // s
        x_trim = x[:, :, : oh * s, : ow * s]
        # (n, c, oh, ow, s*s): one row of pool-window entries per output.
        windows = (
            x_trim.reshape(n, c, oh, s, ow, s)
            .transpose(0, 1, 2, 4, 3, 5)
            .reshape(n, c, oh, ow, s * s)
        )
        out = windows.max(axis=-1)
        if train:
            # Break ties toward the first maximal element so the gradient
            # is a partition of the upstream gradient.
            first = np.argmax(windows, axis=-1)
            onehot = np.zeros_like(windows, dtype=bool)
            np.put_along_axis(onehot, first[..., None], True, axis=-1)
            self._cache = (x.shape, onehot, oh, ow)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x_shape, onehot, oh, ow = self._cache
        n, c, h, w = x_shape
        s = self.size
        expanded = onehot * grad[..., None]  # (n, c, oh, ow, s*s)
        dx = np.zeros(x_shape)
        block = (
            expanded.reshape(n, c, oh, ow, s, s)
            .transpose(0, 1, 2, 4, 3, 5)
            .reshape(n, c, oh * s, ow * s)
        )
        dx[:, :, : oh * s, : ow * s] = block
        return dx


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy loss and gradient w.r.t. logits."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    n = logits.shape[0]
    loss = -np.mean(np.log(probs[np.arange(n), labels] + 1e-12))
    grad = probs.copy()
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n


class Sequential:
    """A feed-forward stack of layers with flat-parameter access."""

    def __init__(self, layers: List[Layer]):
        self.layers = layers

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, train=train)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    # ------------------------------------------------------------------
    def parameter_items(self):
        for li, layer in enumerate(self.layers):
            for name in sorted(layer.params):
                yield (li, name), layer.params[name]

    @property
    def num_params(self) -> int:
        return sum(layer.num_params for layer in self.layers)

    def get_flat_params(self) -> np.ndarray:
        if self.num_params == 0:
            return np.zeros(0)
        return np.concatenate(
            [p.reshape(-1) for _, p in self.parameter_items()]
        )

    def set_flat_params(self, flat: np.ndarray) -> None:
        offset = 0
        for (li, name), p in self.parameter_items():
            size = p.size
            self.layers[li].params[name] = flat[offset : offset + size].reshape(
                p.shape
            ).copy()
            offset += size
        if offset != flat.size:
            raise ValueError(
                f"flat vector has {flat.size} entries, model needs {offset}"
            )

    def get_flat_grads(self) -> np.ndarray:
        chunks = []
        for li, layer in enumerate(self.layers):
            for name in sorted(layer.params):
                chunks.append(layer.grads[name].reshape(-1))
        return np.concatenate(chunks) if chunks else np.zeros(0)
