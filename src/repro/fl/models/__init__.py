"""Numpy model substrate: layers, Model wrapper, and the paper's model zoo."""

from repro.fl.models.base import Model
from repro.fl.models.layers import (
    Conv2D,
    Dense,
    Flatten,
    Layer,
    MaxPool2D,
    ReLU,
    Sequential,
    softmax_cross_entropy,
)
from repro.fl.models.zoo import (
    PAPER_MODEL_SIZES,
    SyntheticModel,
    efficientnet_b0_sized,
    lenet5_variant,
    logistic_regression,
    mcmahan_cnn,
    mlp,
    mobilenetv3_sized,
)

__all__ = [
    "Model",
    "Sequential",
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "ReLU",
    "Flatten",
    "softmax_cross_entropy",
    "PAPER_MODEL_SIZES",
    "SyntheticModel",
    "logistic_regression",
    "mlp",
    "mcmahan_cnn",
    "lenet5_variant",
    "mobilenetv3_sized",
    "efficientnet_b0_sized",
]
