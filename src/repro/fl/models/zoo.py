"""Model zoo matching the paper's evaluation (Table 2).

Trainable numpy models:

* :func:`logistic_regression` — MNIST task; ``28*28*10 + 10 = 7,850``
  parameters, exactly the paper's model size for task 1.
* :func:`mcmahan_cnn` — the CNN of McMahan et al. (2017) used for FEMNIST.
* :func:`lenet5_variant` — the LeNet-style CNN of Xie et al. (2019) used by
  the asynchronous experiments (Fig. 7).
* :func:`mlp` — a generic baseline.

For the large edge architectures the paper only exercises through their
*parameter count* (MobileNetV3, EfficientNet-B0) we provide
:class:`SyntheticModel`: a parameter-count-faithful stand-in with a
synthetic quadratic objective, sufficient for every systems experiment and
far cheaper than a faithful forward pass.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.fl.models.base import Model
from repro.fl.models.layers import (
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
)

#: The paper's Table 2 model sizes, by task name.
PAPER_MODEL_SIZES = {
    "logistic_regression": 7_850,
    "cnn_femnist": 1_206_590,
    "mobilenetv3": 3_111_462,
    "efficientnet_b0": 5_288_548,
}


def logistic_regression(
    input_shape: Tuple[int, ...] = (1, 28, 28),
    num_classes: int = 10,
    seed: int = 0,
) -> Model:
    """Multinomial logistic regression (paper task 1: MNIST, d=7850)."""
    rng = np.random.default_rng(seed)
    in_dim = int(np.prod(input_shape))
    net = Sequential([Flatten(), Dense(in_dim, num_classes, rng)])
    return Model(net, name="logistic_regression")


def mlp(
    input_shape: Tuple[int, ...] = (1, 28, 28),
    hidden: int = 200,
    num_classes: int = 10,
    seed: int = 0,
) -> Model:
    """Two-layer MLP baseline."""
    rng = np.random.default_rng(seed)
    in_dim = int(np.prod(input_shape))
    net = Sequential(
        [
            Flatten(),
            Dense(in_dim, hidden, rng),
            ReLU(),
            Dense(hidden, num_classes, rng),
        ]
    )
    return Model(net, name="mlp")


def mcmahan_cnn(
    input_shape: Tuple[int, int, int] = (1, 28, 28),
    num_classes: int = 62,
    seed: int = 0,
) -> Model:
    """The CNN of McMahan et al. (2017): conv32-pool-conv64-pool-fc512-fc.

    With FEMNIST inputs (1x28x28, 62 classes) this is the paper's task-2
    architecture.
    """
    rng = np.random.default_rng(seed)
    c, h, w = input_shape
    # After two 5x5 valid convs + 2x2 pools: ((h-4)/2 - 4)/2.
    h2 = ((h - 4) // 2 - 4) // 2
    w2 = ((w - 4) // 2 - 4) // 2
    if h2 <= 0 or w2 <= 0:
        raise ValueError(
            f"input {h}x{w} too small for two conv5+pool2 stages; need >= 18x18"
        )
    net = Sequential(
        [
            Conv2D(c, 32, 5, rng),
            ReLU(),
            MaxPool2D(2),
            Conv2D(32, 64, 5, rng),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(64 * h2 * w2, 512, rng),
            ReLU(),
            Dense(512, num_classes, rng),
        ]
    )
    return Model(net, name="mcmahan_cnn")


def lenet5_variant(
    input_shape: Tuple[int, int, int] = (3, 32, 32),
    num_classes: int = 10,
    seed: int = 0,
) -> Model:
    """LeNet-5 variant (Xie et al., 2019) used in the async experiments."""
    rng = np.random.default_rng(seed)
    c, h, w = input_shape
    h2 = ((h - 4) // 2 - 4) // 2
    w2 = ((w - 4) // 2 - 4) // 2
    if h2 <= 0 or w2 <= 0:
        raise ValueError(
            f"input {h}x{w} too small for two conv5+pool2 stages; need >= 18x18"
        )
    net = Sequential(
        [
            Conv2D(c, 6, 5, rng),
            ReLU(),
            MaxPool2D(2),
            Conv2D(6, 16, 5, rng),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(16 * h2 * w2, 120, rng),
            ReLU(),
            Dense(120, 84, rng),
            ReLU(),
            Dense(84, num_classes, rng),
        ]
    )
    return Model(net, name="lenet5_variant")


class SyntheticModel:
    """Parameter-count-faithful stand-in for large architectures.

    Minimizes ``0.5 * ||theta - theta*||^2`` for a hidden optimum
    ``theta*``; gradients and updates have exactly the dimensionality of
    the real architecture, which is all the protocol and systems
    experiments observe.  Implements the same flat-parameter interface as
    :class:`~repro.fl.models.base.Model`.
    """

    def __init__(self, dim: int, seed: int = 0, name: str = "synthetic"):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        rng = np.random.default_rng(seed)
        self.name = name
        self._dim = dim
        self._params = np.zeros(dim)
        self._optimum = rng.normal(0.0, 0.1, size=dim)

    @property
    def dim(self) -> int:
        return self._dim

    def get_flat_params(self) -> np.ndarray:
        return self._params.copy()

    def set_flat_params(self, flat: np.ndarray) -> None:
        if flat.shape != (self._dim,):
            raise ValueError(f"expected shape ({self._dim},), got {flat.shape}")
        self._params = np.asarray(flat, dtype=np.float64).copy()

    def loss_and_grad(self, x=None, y=None) -> Tuple[float, np.ndarray]:
        diff = self._params - self._optimum
        return 0.5 * float(diff @ diff), diff.copy()

    def evaluate(self, x=None, y=None) -> Tuple[float, float]:
        loss, _ = self.loss_and_grad()
        return loss, 0.0


def mobilenetv3_sized(seed: int = 0) -> SyntheticModel:
    """d = 3,111,462 — the paper's MobileNetV3 size (Table 2, task 3)."""
    return SyntheticModel(PAPER_MODEL_SIZES["mobilenetv3"], seed, "mobilenetv3")


def efficientnet_b0_sized(seed: int = 0) -> SyntheticModel:
    """d = 5,288,548 — the paper's EfficientNet-B0 size (Table 2, task 4)."""
    return SyntheticModel(
        PAPER_MODEL_SIZES["efficientnet_b0"], seed, "efficientnet_b0"
    )
