"""Heterogeneous-user (straggler) simulation of a LightSecAgg round.

The closed-form model in :mod:`repro.simulation.runtime` assumes identical
users.  Real cross-device fleets are heterogeneous, and LightSecAgg has a
structural advantage there: the server needs only the *U fastest* recovery
responses (an order statistic), not the slowest user's — Remark 2's
"at least U surviving users at any time" in systems terms.

This discrete-event-style simulation draws per-user compute/bandwidth
scales, plays out one round, and reports both the LightSecAgg completion
time (U-th order statistic) and the wait-for-all alternative, quantifying
the straggler resilience.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.coding.partition import piece_length
from repro.exceptions import SimulationError
from repro.protocols.lightsecagg.params import LSAParams
from repro.simulation.machine import MachineProfile, PAPER_TESTBED
from repro.simulation.network import BandwidthProfile, TESTBED_320


@dataclass(frozen=True)
class UserProfile:
    """Per-user speed multipliers (1.0 = the nominal machine/link)."""

    compute_scale: float = 1.0
    bandwidth_scale: float = 1.0

    def __post_init__(self):
        if self.compute_scale <= 0 or self.bandwidth_scale <= 0:
            raise SimulationError("scales must be positive")


def sample_fleet(
    num_users: int,
    straggler_fraction: float = 0.1,
    straggler_slowdown: float = 4.0,
    rng: Optional[np.random.Generator] = None,
) -> List[UserProfile]:
    """A fleet where a fraction of devices is uniformly slower."""
    if not 0 <= straggler_fraction <= 1:
        raise SimulationError("straggler fraction must be in [0, 1]")
    if straggler_slowdown < 1:
        raise SimulationError("slowdown must be >= 1")
    rng = rng if rng is not None else np.random.default_rng()
    profiles = []
    for _ in range(num_users):
        slow = rng.random() < straggler_fraction
        scale = 1.0 / straggler_slowdown if slow else 1.0
        jitter = float(rng.uniform(0.9, 1.1))
        profiles.append(
            UserProfile(compute_scale=scale * jitter, bandwidth_scale=scale)
        )
    return profiles


@dataclass(frozen=True)
class HeterogeneousRoundResult:
    """Completion times of one heterogeneous LightSecAgg round."""

    upload_complete: float  # all survivors' masked models at the server
    recovery_wait_u: float  # U-th fastest recovery response (LightSecAgg)
    recovery_wait_all: float  # hypothetical wait-for-every-survivor
    decode_time: float

    @property
    def total(self) -> float:
        return self.upload_complete + self.recovery_wait_u + self.decode_time

    @property
    def straggler_savings(self) -> float:
        """Recovery time saved by needing only U responses."""
        return self.recovery_wait_all - self.recovery_wait_u


def simulate_heterogeneous_round(
    params: LSAParams,
    model_dim: int,
    fleet: List[UserProfile],
    dropouts: Optional[set] = None,
    machine: MachineProfile = PAPER_TESTBED,
    bandwidth: BandwidthProfile = TESTBED_320,
    training_time: float = 0.0,
) -> HeterogeneousRoundResult:
    """Play out upload + recovery with per-user speeds.

    Dropped users upload but never answer the recovery request (the
    paper's worst-case dropout point).  Requires at least ``U`` surviving
    users, as the protocol does.
    """
    n = params.num_users
    if len(fleet) != n:
        raise SimulationError(f"fleet size {len(fleet)} != N={n}")
    dropouts = dropouts or set()
    survivors = [i for i in range(n) if i not in dropouts]
    u = params.target_survivors
    if len(survivors) < u:
        raise SimulationError("not enough survivors for recovery")
    share_dim = piece_length(model_dim, params.num_submasks)

    # Upload: each user trains (scaled) then pushes d elements on its link.
    upload_done = []
    for i in survivors:
        prof = fleet[i]
        train = training_time / prof.compute_scale
        push = bandwidth.seconds(model_dim) / prof.bandwidth_scale
        upload_done.append(train + push)
    upload_complete = max(upload_done)

    # Recovery: each survivor aggregates its held shares (compute) and
    # uploads one coded share; the server proceeds at the U-th response.
    responses = []
    for i in survivors:
        prof = fleet[i]
        aggregate = machine.field_time(len(survivors) * share_dim) / prof.compute_scale
        push = bandwidth.seconds(share_dim) / prof.bandwidth_scale
        responses.append(aggregate + push)
    responses.sort()
    recovery_wait_u = responses[u - 1]
    recovery_wait_all = responses[-1]
    decode_time = machine.field_time(u * model_dim + u * u)

    return HeterogeneousRoundResult(
        upload_complete=upload_complete,
        recovery_wait_u=recovery_wait_u,
        recovery_wait_all=recovery_wait_all,
        decode_time=decode_time,
    )
