"""Phase-timing simulator — regenerates the paper's running-time results.

The paper's evaluation (Fig. 5/6/8/9/10, Tables 2/3/4) measures one FL
round as four phases: offline (seed/mask setup), local training, masked
upload, and server-side recovery.  This module charges each protocol's
analytic operation counts (Sec. 5.2) against a :class:`MachineProfile` and
a :class:`BandwidthProfile`, reproducing the *shape* of the measurements:

* SecAgg's recovery grows ~``N^2 d`` and linearly in the number of drops;
* SecAgg+ improves it by ``N / log N`` but keeps the dropout slope;
* LightSecAgg's recovery is nearly flat in both (one-shot decoding), with
  the known exception ``U - T = 1`` (``p = 0.5``) where coded symbols stop
  shrinking (Sec. 7.2 "Impact of U").

Overlapped mode implements the paper's pipelining: the offline phase runs
concurrently with local training, so a round costs
``max(offline, training) + upload + recovery``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, Optional

from repro.exceptions import SimulationError
from repro.coding.partition import piece_length
from repro.protocols.lightsecagg.params import LSAParams, choose_target_survivors
from repro.simulation.machine import MachineProfile, PAPER_TESTBED
from repro.simulation.network import BandwidthProfile, TESTBED_320

#: Per-task local training times (seconds) used in the paper's tables.
#: The CNN/FEMNIST value (22.8 s) is reported in Table 4; the others are
#: chosen to respect the paper's qualitative description (LR is trivial,
#: GLD-23K/EfficientNet is "the most training-intensive task", where
#: training dominates and the end-to-end gain drops to ~3.4x/1.7x).
TRAINING_TIMES = {
    "logistic_regression": 2.0,
    "cnn_femnist": 22.8,
    "mobilenetv3": 60.0,
    "efficientnet_b0": 650.0,
}

PROTOCOL_NAMES = ("lightsecagg", "secagg", "secagg+")


@dataclass(frozen=True)
class PhaseTimes:
    """Seconds per phase of one FL round."""

    offline: float
    training: float
    upload: float
    recovery: float

    def total(self, overlapped: bool = False) -> float:
        """Round time; overlapping hides offline behind training."""
        if overlapped:
            return max(self.offline, self.training) + self.upload + self.recovery
        return self.offline + self.training + self.upload + self.recovery

    def aggregation_only(self) -> float:
        """Everything except local training (Table 2 'Aggregation-only')."""
        return self.offline + self.upload + self.recovery

    def as_dict(self) -> Dict[str, float]:
        return {
            "offline": self.offline,
            "training": self.training,
            "upload": self.upload,
            "recovery": self.recovery,
        }


@dataclass(frozen=True)
class SimulationConfig:
    """Environment knobs shared by all protocol simulations.

    ``server_bandwidth_factor`` scales the server's aggregate ingress over
    a single user link (the EC2 server is better provisioned than one
    client).  ``per_peer_latency`` charges fixed per-peer RPC/session
    overhead in the offline phase — the measured floor (~60 s at N=200)
    that all three protocols share in Table 4.
    """

    bandwidth: BandwidthProfile = TESTBED_320
    machine: MachineProfile = PAPER_TESTBED
    server_bandwidth_factor: float = 2.2
    per_peer_latency: float = 0.3
    secagg_plus_safety: float = 5.2  # degree ~ safety * log2(N) (Bell et al.)

    def __post_init__(self):
        if self.server_bandwidth_factor <= 0 or self.per_peer_latency < 0:
            raise SimulationError("invalid simulation config")

    def server_seconds(self, num_elements: int) -> float:
        return self.bandwidth.seconds(num_elements) / self.server_bandwidth_factor


def _defaults(num_users: int, dropout_rate: float) -> LSAParams:
    return LSAParams.paper_defaults(num_users, dropout_rate)


# ----------------------------------------------------------------------
# per-protocol phase models
# ----------------------------------------------------------------------
def simulate_lightsecagg(
    num_users: int,
    model_dim: int,
    dropout_rate: float,
    training_time: float,
    config: SimulationConfig = SimulationConfig(),
    privacy: Optional[int] = None,
    target_survivors: Optional[int] = None,
) -> PhaseTimes:
    """LightSecAgg round timing (Sec. 5.2 loads)."""
    n, d = num_users, model_dim
    t = privacy if privacy is not None else n // 2
    # Clamp D as the paper does at p = 0.5 (U = N/2 + 1, so D = N/2 - 1).
    dmax = min(int(dropout_rate * n), n - t - 1)
    u = (
        target_survivors
        if target_survivors is not None
        else choose_target_survivors(n, t, dmax)
    )
    LSAParams(n, t, dmax, u)  # validation
    share_dim = piece_length(d, u - t)
    m = config.machine

    # Offline: per-peer session floor + MDS mask encoding (FFT-style
    # N log N per coded element) + full-duplex shard exchange.
    offline = (
        (n - 1) * config.per_peer_latency
        + m.prg_time(d)  # draw z_i
        + m.field_time(int(n * math.log2(max(n, 2)) * share_dim))
        + config.bandwidth.seconds((n - 1) * share_dim)
    )
    # Upload: server ingests N masked models.
    upload = config.server_seconds(n * d)
    # Recovery: U aggregated shares in, one-shot decode.  Decoding needs
    # the U-T data rows only: (U-T) x U x share_dim MACs = U * d, plus the
    # U^2 Lagrange coefficient build; survivors' share aggregation happens
    # in parallel on-device (U1 x share_dim adds).
    recovery = (
        config.server_seconds(u * share_dim)
        + m.field_time(u * d + u * u)
        + m.field_time(int((n - dmax) * share_dim))  # on-device aggregation
    )
    return PhaseTimes(offline, training_time, upload, recovery)


def simulate_secagg(
    num_users: int,
    model_dim: int,
    dropout_rate: float,
    training_time: float,
    config: SimulationConfig = SimulationConfig(),
    privacy: Optional[int] = None,
) -> PhaseTimes:
    """SecAgg round timing (complete pairwise graph)."""
    n, d = num_users, model_dim
    t = privacy if privacy is not None else n // 2
    drops = int(dropout_rate * n)
    survivors = n - drops
    m = config.machine

    # Offline: per-peer sessions, DH agreements, Shamir shares of b/sk,
    # and the dominant cost — expanding N pairwise masks + the self mask.
    offline = (
        (n - 1) * config.per_peer_latency
        + m.dh_time(n - 1)
        + m.shamir_time(2 * (n - 1))
        + m.prg_time(n * d)
    )
    upload = config.server_seconds(n * d)
    # Recovery: reconstruct b_i of every survivor (PRG of d each) and the
    # pairwise masks of every dropped user with all N-1 peers, plus Shamir
    # reconstruction work.
    recovery = (
        m.prg_time(survivors * d + drops * (n - 1) * d)
        + m.shamir_time(n * (t + 1))
        + config.server_seconds(n * (t + 1))  # share upload, key-sized
    )
    return PhaseTimes(offline, training_time, upload, recovery)


def simulate_secagg_plus(
    num_users: int,
    model_dim: int,
    dropout_rate: float,
    training_time: float,
    config: SimulationConfig = SimulationConfig(),
    degree: Optional[int] = None,
) -> PhaseTimes:
    """SecAgg+ round timing (sparse graph of degree ~ log N)."""
    n, d = num_users, model_dim
    drops = int(dropout_rate * n)
    survivors = n - drops
    if degree is None:
        degree = max(
            6, int(math.ceil(config.secagg_plus_safety * math.log2(max(n, 2))))
        )
        degree = min(degree, n - 1)
    m = config.machine

    offline = (
        (n - 1) * config.per_peer_latency  # graph setup still touches all peers
        + m.dh_time(degree)
        + m.shamir_time(2 * degree)
        + m.prg_time((degree + 1) * d)
    )
    upload = config.server_seconds(n * d)
    recovery = (
        m.prg_time(survivors * d + drops * degree * d)
        + m.shamir_time(n * (degree // 2 + 1))
        + config.server_seconds(n * (degree // 2 + 1))
    )
    return PhaseTimes(offline, training_time, upload, recovery)


# ----------------------------------------------------------------------
# dispatch + comparisons
# ----------------------------------------------------------------------
def simulate(
    protocol: str,
    num_users: int,
    model_dim: int,
    dropout_rate: float,
    training_time: float,
    config: SimulationConfig = SimulationConfig(),
    **kwargs,
) -> PhaseTimes:
    """Dispatch by protocol name (``lightsecagg`` / ``secagg`` / ``secagg+``)."""
    if protocol == "lightsecagg":
        return simulate_lightsecagg(
            num_users, model_dim, dropout_rate, training_time, config, **kwargs
        )
    if protocol == "secagg":
        return simulate_secagg(
            num_users, model_dim, dropout_rate, training_time, config, **kwargs
        )
    if protocol == "secagg+":
        return simulate_secagg_plus(
            num_users, model_dim, dropout_rate, training_time, config, **kwargs
        )
    raise SimulationError(f"unknown protocol {protocol!r}; use {PROTOCOL_NAMES}")


@dataclass
class GainReport:
    """Speedups of LightSecAgg over the two baselines (one Table 2 row)."""

    task: str
    model_dim: int
    non_overlapped: Dict[str, float] = dataclass_field(default_factory=dict)
    overlapped: Dict[str, float] = dataclass_field(default_factory=dict)
    aggregation_only: Dict[str, float] = dataclass_field(default_factory=dict)


def compute_gains(
    task: str,
    num_users: int,
    model_dim: int,
    dropout_rate: float,
    training_time: float,
    config: SimulationConfig = SimulationConfig(),
) -> GainReport:
    """LightSecAgg speedup over SecAgg and SecAgg+ in all three metrics."""
    times = {
        name: simulate(
            name, num_users, model_dim, dropout_rate, training_time, config
        )
        for name in PROTOCOL_NAMES
    }
    lsa = times["lightsecagg"]
    report = GainReport(task=task, model_dim=model_dim)
    for base in ("secagg", "secagg+"):
        report.non_overlapped[base] = times[base].total(False) / lsa.total(False)
        report.overlapped[base] = times[base].total(True) / lsa.total(True)
        report.aggregation_only[base] = (
            times[base].aggregation_only() / lsa.aggregation_only()
        )
    return report
