"""Systems simulation: cost model, network/machine profiles, round timing."""

from repro.simulation.costmodel import (
    ROWS,
    PROTOCOLS,
    SYMBOLIC_TABLE,
    CostParams,
    complexity_table,
    paper_operating_point,
)
from repro.simulation.heterogeneous import (
    HeterogeneousRoundResult,
    UserProfile,
    sample_fleet,
    simulate_heterogeneous_round,
)
from repro.simulation.machine import PAPER_TESTBED, MachineProfile
from repro.simulation.network import (
    BANDWIDTH_SETTINGS,
    ELEMENT_BYTES,
    LTE_4G,
    NR_5G,
    TESTBED_320,
    BandwidthProfile,
)
from repro.simulation.runtime import (
    PROTOCOL_NAMES,
    TRAINING_TIMES,
    GainReport,
    PhaseTimes,
    SimulationConfig,
    compute_gains,
    simulate,
    simulate_lightsecagg,
    simulate_secagg,
    simulate_secagg_plus,
)
from repro.simulation.training_time import (
    TrainingTimeProjection,
    project_training_time,
    rounds_to_accuracy,
)
from repro.simulation.storage import (
    StorageComparison,
    compare_storage,
    lightsecagg_storage_per_user,
    lightsecagg_total_randomness,
    zhao_sun_storage_per_user,
    zhao_sun_total_randomness,
)

__all__ = [
    "TrainingTimeProjection",
    "project_training_time",
    "rounds_to_accuracy",
    "UserProfile",
    "sample_fleet",
    "simulate_heterogeneous_round",
    "HeterogeneousRoundResult",
    "CostParams",
    "complexity_table",
    "paper_operating_point",
    "SYMBOLIC_TABLE",
    "ROWS",
    "PROTOCOLS",
    "MachineProfile",
    "PAPER_TESTBED",
    "BandwidthProfile",
    "LTE_4G",
    "TESTBED_320",
    "NR_5G",
    "BANDWIDTH_SETTINGS",
    "ELEMENT_BYTES",
    "PhaseTimes",
    "SimulationConfig",
    "simulate",
    "simulate_lightsecagg",
    "simulate_secagg",
    "simulate_secagg_plus",
    "compute_gains",
    "GainReport",
    "TRAINING_TIMES",
    "PROTOCOL_NAMES",
    "StorageComparison",
    "compare_storage",
    "zhao_sun_total_randomness",
    "zhao_sun_storage_per_user",
    "lightsecagg_total_randomness",
    "lightsecagg_storage_per_user",
]
