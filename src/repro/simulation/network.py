"""Network model: bandwidth profiles and transfer-time accounting.

The paper evaluates three user-side bandwidth settings (Table 3): 4G/LTE-A
at 98 Mbps, the measured testbed at 320 Mbps, and 5G at 802 Mbps.  Field
elements travel as 4-byte words (q < 2**32); key-sized payloads (seeds,
public keys, Shamir shares of seeds) are charged by the same element size,
matching the paper's ``s``-vs-``d`` accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SimulationError

#: Bytes on the wire per GF(q) element (q < 2**32).
ELEMENT_BYTES = 4


@dataclass(frozen=True)
class BandwidthProfile:
    """A named symmetric link speed in megabits per second."""

    name: str
    mbps: float

    def __post_init__(self):
        if self.mbps <= 0:
            raise SimulationError(f"bandwidth must be positive, got {self.mbps}")

    def seconds(self, num_elements: int, element_bytes: int = ELEMENT_BYTES) -> float:
        """Time to move ``num_elements`` field elements over this link."""
        if num_elements < 0:
            raise SimulationError("element count must be non-negative")
        bits = num_elements * element_bytes * 8
        return bits / (self.mbps * 1e6)


#: The paper's three bandwidth settings (Table 3).
LTE_4G = BandwidthProfile("4G (LTE-A)", 98.0)
TESTBED_320 = BandwidthProfile("320 Mbps", 320.0)
NR_5G = BandwidthProfile("5G", 802.0)

BANDWIDTH_SETTINGS = (LTE_4G, TESTBED_320, NR_5G)
