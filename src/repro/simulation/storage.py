"""Storage / randomness accounting — the paper's Table 6.

Compares LightSecAgg against the trusted-third-party scheme of Zhao & Sun
(2021).  Quantities are counted in symbols of ``F_q^{d/(U-T)}`` exactly as
in the paper:

* Zhao & Sun must pre-generate, for *every* possible surviving set of size
  ``>= U``, ``T`` fresh random symbols — a total that grows exponentially
  in ``N`` — and each user stores its slice of all of them.
* LightSecAgg generates ``U`` symbols per user locally (``U - T`` data
  sub-masks + ``T`` paddings), a total of ``N * U`` symbols, and each user
  stores its own ``U - T`` sub-masks plus ``N`` received coded shares.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import SimulationError


def _check(n: int, u: int, t: int) -> None:
    if not 0 <= t < u <= n:
        raise SimulationError(f"need 0 <= T < U <= N, got N={n}, U={u}, T={t}")


def zhao_sun_total_randomness(n: int, u: int, t: int) -> int:
    """``N (U - T) + T * sum_{v=U}^{N} C(N, v)`` symbols (Table 6, col 1)."""
    _check(n, u, t)
    subsets = sum(math.comb(n, v) for v in range(u, n + 1))
    return n * (u - t) + t * subsets


def zhao_sun_storage_per_user(n: int, u: int, t: int) -> float:
    """``U - T + sum_{v=U}^{N} C(N, v) * v / N`` symbols (Table 6, col 1)."""
    _check(n, u, t)
    weighted = sum(math.comb(n, v) * v for v in range(u, n + 1))
    return (u - t) + weighted / n


def lightsecagg_total_randomness(n: int, u: int, t: int) -> int:
    """``N * U`` symbols (Table 6, col 2)."""
    _check(n, u, t)
    return n * u


def lightsecagg_storage_per_user(n: int, u: int, t: int) -> int:
    """``U - T + N`` symbols (Table 6, col 2)."""
    _check(n, u, t)
    return (u - t) + n


@dataclass(frozen=True)
class StorageComparison:
    """One Table-6 comparison row for given (N, U, T)."""

    num_users: int
    target_survivors: int
    privacy: int
    zhao_sun_randomness: int
    zhao_sun_per_user: float
    lightsecagg_randomness: int
    lightsecagg_per_user: int

    @property
    def randomness_ratio(self) -> float:
        """How many times more randomness Zhao & Sun needs."""
        return self.zhao_sun_randomness / self.lightsecagg_randomness

    @property
    def storage_ratio(self) -> float:
        return self.zhao_sun_per_user / self.lightsecagg_per_user


def compare_storage(n: int, u: int, t: int) -> StorageComparison:
    """Assemble the Table-6 comparison for one parameter point."""
    return StorageComparison(
        num_users=n,
        target_survivors=u,
        privacy=t,
        zhao_sun_randomness=zhao_sun_total_randomness(n, u, t),
        zhao_sun_per_user=zhao_sun_storage_per_user(n, u, t),
        lightsecagg_randomness=lightsecagg_total_randomness(n, u, t),
        lightsecagg_per_user=lightsecagg_storage_per_user(n, u, t),
    )
