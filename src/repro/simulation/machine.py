"""Machine profile: compute-throughput constants for the timing model.

The paper's absolute numbers come from AWS EC2 ``m3.medium`` instances; our
simulator reproduces their *shape* by charging analytic operation counts
against calibrated throughputs.  The defaults below are tuned so that the
FEMNIST-CNN / N=200 breakdown lands in the paper's Table-4 ballpark; call
:meth:`MachineProfile.calibrate` to measure the current host instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from repro.exceptions import SimulationError


@dataclass(frozen=True)
class MachineProfile:
    """Throughput constants (per second) used by the runtime simulator.

    Attributes
    ----------
    prg_elements_per_sec:
        PRG output rate in field elements/s.  Dominates SecAgg's server
        recovery (mask re-expansion).
    field_ops_per_sec:
        Throughput of GF(q) multiply-accumulate, used for MDS
        encode/decode work.
    dh_agreements_per_sec:
        Pairwise Diffie-Hellman agreements per second.
    shamir_shares_per_sec:
        Shamir share evaluations (per share) per second.
    """

    prg_elements_per_sec: float = 5.0e6
    field_ops_per_sec: float = 1.5e7
    dh_agreements_per_sec: float = 250.0
    shamir_shares_per_sec: float = 5.0e4

    def __post_init__(self):
        for name in (
            "prg_elements_per_sec",
            "field_ops_per_sec",
            "dh_agreements_per_sec",
            "shamir_shares_per_sec",
        ):
            if getattr(self, name) <= 0:
                raise SimulationError(f"{name} must be positive")

    # ------------------------------------------------------------------
    def prg_time(self, elements: int) -> float:
        return elements / self.prg_elements_per_sec

    def field_time(self, ops: int) -> float:
        return ops / self.field_ops_per_sec

    def dh_time(self, agreements: int) -> float:
        return agreements / self.dh_agreements_per_sec

    def shamir_time(self, shares: int) -> float:
        return shares / self.shamir_shares_per_sec

    # ------------------------------------------------------------------
    @classmethod
    def calibrate(cls, sample_size: int = 1 << 20) -> "MachineProfile":
        """Measure this host's kernels and return a matching profile.

        Uses the library's own PRG and field-multiply kernels, so the
        simulated times reflect what running the real protocol here would
        cost (up to the paper's slower EC2 hardware).
        """
        from repro.crypto.prg import PRG
        from repro.field.arithmetic import FiniteField

        gf = FiniteField()
        prg = PRG(gf)
        start = time.perf_counter()
        prg.expand(12345, sample_size)
        prg_rate = sample_size / max(time.perf_counter() - start, 1e-9)

        rng = np.random.default_rng(0)
        a = gf.random(sample_size, rng)
        b = gf.random(sample_size, rng)
        start = time.perf_counter()
        gf.mul(a, b)
        field_rate = sample_size / max(time.perf_counter() - start, 1e-9)

        base = cls()
        return replace(
            base,
            prg_elements_per_sec=prg_rate,
            field_ops_per_sec=field_rate,
        )


#: Profile approximating the paper's m3.medium testbed nodes.
PAPER_TESTBED = MachineProfile()
