"""Analytic complexity model — the paper's Table 1 and Table 5.

Each function returns the leading-order operation/element count for one
cell of the comparison, parameterized by

* ``n`` — number of users,
* ``d`` — model dimension,
* ``s`` — seed length in field elements (``s << d``),
* ``t``/``u`` — LightSecAgg's privacy and target-survivor parameters.

``complexity_table`` assembles the numeric table for given parameters, and
``SYMBOLIC_TABLE`` reproduces the papers' asymptotic entries for
documentation and tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.exceptions import SimulationError


@dataclass(frozen=True)
class CostParams:
    """Shared parameters of the complexity comparison."""

    num_users: int  # N
    model_dim: int  # d
    seed_len: int = 8  # s, in field elements
    privacy: int = 0  # T (LightSecAgg); defaults set by table builder
    target_survivors: int = 0  # U

    def __post_init__(self):
        if self.num_users < 2 or self.model_dim <= 0 or self.seed_len <= 0:
            raise SimulationError("invalid cost parameters")


def _log2(x: float) -> float:
    return math.log2(max(x, 2.0))


# ----------------------------------------------------------------------
# SecAgg (Bonawitz et al., 2017) — complete graph
# ----------------------------------------------------------------------
def secagg_offline_storage_user(p: CostParams) -> float:
    return p.model_dim + p.num_users * p.seed_len


def secagg_offline_comm_user(p: CostParams) -> float:
    return p.seed_len * p.num_users


def secagg_offline_comp_user(p: CostParams) -> float:
    # d*N PRG evaluations for pairwise masks + N^2 s share arithmetic.
    return p.model_dim * p.num_users + p.seed_len * p.num_users**2


def secagg_online_comm_user(p: CostParams) -> float:
    return p.model_dim + p.seed_len * p.num_users


def secagg_online_comm_server(p: CostParams) -> float:
    return p.model_dim * p.num_users + p.seed_len * p.num_users**2


def secagg_online_comp_user(p: CostParams) -> float:
    return p.model_dim


def secagg_reconstruction_server(p: CostParams) -> float:
    # PRG re-expansion dominates: O(d N^2) in the worst case.
    return p.model_dim * p.num_users**2


# ----------------------------------------------------------------------
# SecAgg+ (Bell et al., 2020) — degree O(log N) graph
# ----------------------------------------------------------------------
def secaggplus_offline_storage_user(p: CostParams) -> float:
    return p.model_dim + p.seed_len * _log2(p.num_users)


def secaggplus_offline_comm_user(p: CostParams) -> float:
    return p.seed_len * _log2(p.num_users)


def secaggplus_offline_comp_user(p: CostParams) -> float:
    return p.model_dim * _log2(p.num_users) + p.seed_len * _log2(p.num_users) ** 2


def secaggplus_online_comm_user(p: CostParams) -> float:
    return p.model_dim + p.seed_len * _log2(p.num_users)


def secaggplus_online_comm_server(p: CostParams) -> float:
    return p.model_dim * p.num_users + p.seed_len * p.num_users * _log2(p.num_users)


def secaggplus_online_comp_user(p: CostParams) -> float:
    return p.model_dim


def secaggplus_reconstruction_server(p: CostParams) -> float:
    return p.model_dim * p.num_users * _log2(p.num_users)


# ----------------------------------------------------------------------
# LightSecAgg
# ----------------------------------------------------------------------
def _check_lsa(p: CostParams) -> None:
    if not 0 <= p.privacy < p.target_survivors <= p.num_users:
        raise SimulationError(
            f"need 0 <= T < U <= N, got T={p.privacy}, U={p.target_survivors}"
        )


def lsa_offline_storage_user(p: CostParams) -> float:
    _check_lsa(p)
    return p.model_dim * (1 + p.num_users / (p.target_survivors - p.privacy))


def lsa_offline_comm_user(p: CostParams) -> float:
    _check_lsa(p)
    return p.model_dim * p.num_users / (p.target_survivors - p.privacy)


def lsa_offline_comp_user(p: CostParams) -> float:
    _check_lsa(p)
    return (
        p.model_dim
        * p.num_users
        * _log2(p.num_users)
        / (p.target_survivors - p.privacy)
    )


def lsa_online_comm_user(p: CostParams) -> float:
    _check_lsa(p)
    return p.model_dim + p.model_dim / (p.target_survivors - p.privacy)


def lsa_online_comm_server(p: CostParams) -> float:
    _check_lsa(p)
    return p.model_dim * p.num_users + p.model_dim * p.target_survivors / (
        p.target_survivors - p.privacy
    )


def lsa_online_comp_user(p: CostParams) -> float:
    _check_lsa(p)
    return p.model_dim + p.model_dim * p.target_survivors / (
        p.target_survivors - p.privacy
    )


def lsa_reconstruction_server(p: CostParams) -> float:
    _check_lsa(p)
    u = p.target_survivors
    return p.model_dim * u * _log2(u) / (u - p.privacy)


# ----------------------------------------------------------------------
# assembled tables
# ----------------------------------------------------------------------
ROWS = (
    "offline_storage_user",
    "offline_comm_user",
    "offline_comp_user",
    "online_comm_user",
    "online_comm_server",
    "online_comp_user",
    "reconstruction_server",
)

_FUNCS = {
    "secagg": {
        "offline_storage_user": secagg_offline_storage_user,
        "offline_comm_user": secagg_offline_comm_user,
        "offline_comp_user": secagg_offline_comp_user,
        "online_comm_user": secagg_online_comm_user,
        "online_comm_server": secagg_online_comm_server,
        "online_comp_user": secagg_online_comp_user,
        "reconstruction_server": secagg_reconstruction_server,
    },
    "secagg+": {
        "offline_storage_user": secaggplus_offline_storage_user,
        "offline_comm_user": secaggplus_offline_comm_user,
        "offline_comp_user": secaggplus_offline_comp_user,
        "online_comm_user": secaggplus_online_comm_user,
        "online_comm_server": secaggplus_online_comm_server,
        "online_comp_user": secaggplus_online_comp_user,
        "reconstruction_server": secaggplus_reconstruction_server,
    },
    "lightsecagg": {
        "offline_storage_user": lsa_offline_storage_user,
        "offline_comm_user": lsa_offline_comm_user,
        "offline_comp_user": lsa_offline_comp_user,
        "online_comm_user": lsa_online_comm_user,
        "online_comm_server": lsa_online_comm_server,
        "online_comp_user": lsa_online_comp_user,
        "reconstruction_server": lsa_reconstruction_server,
    },
}

#: The paper's asymptotic entries (Table 5), for documentation and tests.
SYMBOLIC_TABLE = {
    "secagg": {
        "offline_storage_user": "O(d + N s)",
        "offline_comm_user": "O(s N)",
        "offline_comp_user": "O(d N + s N^2)",
        "online_comm_user": "O(d + s N)",
        "online_comm_server": "O(d N + s N^2)",
        "online_comp_user": "O(d)",
        "reconstruction_server": "O(d N^2)",
    },
    "secagg+": {
        "offline_storage_user": "O(d + s log N)",
        "offline_comm_user": "O(s log N)",
        "offline_comp_user": "O(d log N + s log^2 N)",
        "online_comm_user": "O(d + s log N)",
        "online_comm_server": "O(d N + s N log N)",
        "online_comp_user": "O(d)",
        "reconstruction_server": "O(d N log N)",
    },
    "lightsecagg": {
        "offline_storage_user": "O(d + N d / (U - T))",
        "offline_comm_user": "O(d N / (U - T))",
        "offline_comp_user": "O(d N log N / (U - T))",
        "online_comm_user": "O(d + d / (U - T))",
        "online_comm_server": "O(d N + d U / (U - T))",
        "online_comp_user": "O(d + d U / (U - T))",
        "reconstruction_server": "O(d U log U / (U - T))",
    },
}

PROTOCOLS = tuple(_FUNCS)

#: Protocols the paper discusses but deliberately excludes from its
#: evaluation, with the paper's own stated reasons (Sec. 1 "Related works"
#: and Remark 4).  Recorded here so the comparison scope is explicit; we
#: implement every protocol the paper runs, plus the Zhao & Sun TTP scheme
#: whose storage the paper tabulates (Table 6).
EXCLUDED_PROTOCOLS = {
    "turboagg": (
        "circular topology reduces communication but adds O(log N) round "
        "complexity and guarantees privacy only on average, not worst-case"
    ),
    "fastsecagg": (
        "FFT multi-secret sharing lowers per-user cost but provides weaker "
        "privacy and dropout guarantees than SecAgg/SecAgg+/LightSecAgg"
    ),
    "zhao-sun": (
        "matches LightSecAgg's aggregation complexity but requires a "
        "trusted third party and exponentially growing randomness/storage "
        "(implemented at test scale in repro.protocols.zhao_sun)"
    ),
}


def complexity_table(p: CostParams) -> Dict[str, Dict[str, float]]:
    """Numeric Table 1/5: ``{protocol: {row: count}}`` for given params."""
    return {
        proto: {row: fn(p) for row, fn in rows.items()}
        for proto, rows in _FUNCS.items()
    }


def paper_operating_point(
    num_users: int, model_dim: int, dropout_rate: float = 0.1, seed_len: int = 8
) -> CostParams:
    """The evaluation's setting: ``T = N/2``, ``U = (1 - p) N`` (Sec. 5.2)."""
    t = num_users // 2
    u = max(t + 1, int((1.0 - dropout_rate) * num_users))
    return CostParams(
        num_users=num_users,
        model_dim=model_dim,
        seed_len=seed_len,
        privacy=t,
        target_survivors=u,
    )
