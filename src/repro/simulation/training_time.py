"""End-to-end training-time projection — the abstract's headline claim.

The paper's per-round results (Fig. 6/8/9/10, Table 4) compose with the
convergence behaviour (identical across protocols up to quantization
noise, Sec. 5.1/7.4) into the claim that matters to a practitioner:
*wall-clock time to reach a target accuracy*.  Because every protocol
computes the same aggregate, they share the accuracy-per-round curve; the
protocols differ only in seconds-per-round.  This module makes that
composition explicit:

    time_to_accuracy = rounds_to_accuracy(curve, target) * round_time

and reports the LightSecAgg end-to-end speedups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.exceptions import SimulationError
from repro.simulation.runtime import PhaseTimes, SimulationConfig, simulate


def rounds_to_accuracy(accuracies: Sequence[float], target: float) -> int:
    """First round index (1-based) whose accuracy reaches ``target``.

    Raises when the curve never reaches the target — callers should lower
    the target or train longer rather than extrapolate.
    """
    if not accuracies:
        raise SimulationError("empty accuracy curve")
    if not 0.0 < target <= 1.0:
        raise SimulationError("target accuracy must be in (0, 1]")
    for k, acc in enumerate(accuracies):
        if acc >= target:
            return k + 1
    raise SimulationError(
        f"curve peaks at {max(accuracies):.3f} < target {target}"
    )


@dataclass(frozen=True)
class TrainingTimeProjection:
    """Wall-clock seconds to a target accuracy, per protocol."""

    target_accuracy: float
    rounds_needed: int
    seconds: Dict[str, float]

    def speedup_over(self, baseline: str) -> float:
        """LightSecAgg end-to-end speedup over ``baseline``."""
        if baseline not in self.seconds or "lightsecagg" not in self.seconds:
            raise SimulationError(f"unknown protocol {baseline!r}")
        return self.seconds[baseline] / self.seconds["lightsecagg"]


def project_training_time(
    accuracies: Sequence[float],
    target: float,
    num_users: int,
    model_dim: int,
    dropout_rate: float,
    training_time: float,
    config: SimulationConfig = SimulationConfig(),
    overlapped: bool = True,
    protocols: Sequence[str] = ("lightsecagg", "secagg", "secagg+"),
) -> TrainingTimeProjection:
    """Compose a convergence curve with per-round systems time.

    ``accuracies`` is any protocol's measured accuracy-per-round curve —
    they are interchangeable across protocols (verified by the FL tests up
    to quantization noise), which is precisely why a single curve suffices.
    """
    rounds = rounds_to_accuracy(accuracies, target)
    seconds: Dict[str, float] = {}
    for proto in protocols:
        per_round: PhaseTimes = simulate(
            proto, num_users, model_dim, dropout_rate, training_time, config
        )
        seconds[proto] = rounds * per_round.total(overlapped)
    return TrainingTimeProjection(
        target_accuracy=target, rounds_needed=rounds, seconds=seconds
    )
