"""Aggregation service layer: cohorts, sharding, background refill.

This package is the layer between the protocol engine
(:mod:`repro.protocols`) and the FL loop (:mod:`repro.fl`): a long-lived
*service* that runs many concurrent FL cohorts against pooled protocol
sessions, keeps every session's offline pool topped up from a background
refill pipeline, and shards large model vectors across per-shard sessions
— the first piece of the repo that looks like a server rather than a
script.

Layering (see the repo README for the full picture)::

    field -> coding -> protocols -> sessions -> service -> fl / cli

* :mod:`repro.service.refill` — the background refill pipeline: a worker
  thread that tops up registered sessions at their low-water mark so
  online rounds never block on mask encoding.
* :mod:`repro.service.sharding` — model-vector sharding: a coordinator
  that scatters client updates across per-shard sessions and reassembles
  shard aggregates bit-identically to the single-shard path.
* :mod:`repro.service.transport` — where shard sessions execute: called
  directly in-process (:class:`InlineTransport`) or pinned in long-lived
  worker processes and driven with :mod:`repro.wire` frames
  (:class:`ProcessPoolTransport`), selected from :class:`ServiceConfig`.
* :mod:`repro.service.socket_transport` / :mod:`.socket_worker` — the
  same frames over TCP: :class:`SocketTransport` drives standalone
  ``repro shard-worker`` hosts (:class:`ShardWorkerServer`) with
  heartbeat supervision and reconnect/re-pin — the multi-host backend.
* :mod:`repro.service.cohort` — the per-cohort round state machine.
* :mod:`repro.service.scheduler` — round-robin scheduling of many
  cohorts over the shared refill pipeline.
* :mod:`repro.service.metrics` — pool depth / stall / throughput
  counters, snapshotable for the CLI and the throughput benchmark.
* :mod:`repro.service.service` — the :class:`AggregationService` facade
  that wires all of the above together from a :class:`ServiceConfig`.
"""

from repro.service.config import (
    CohortSpec,
    RefillMode,
    ServiceConfig,
    TransportKind,
    WireFormat,
)
from repro.service.cohort import Cohort, CohortPhase
from repro.service.metrics import CohortMetrics, ServiceMetrics, TransportMetrics
from repro.service.refill import BackgroundRefiller
from repro.service.scheduler import CohortScheduler
from repro.service.service import AggregationService
from repro.service.sharding import ShardedSession, ShardPlan
from repro.service.socket_transport import SocketShardHandle, SocketTransport
from repro.service.socket_worker import ShardWorkerServer
from repro.service.transport import (
    InlineTransport,
    ProcessPoolTransport,
    ProcessShardHandle,
    ShardSessionSpec,
    ShardTransport,
    build_transport,
)

__all__ = [
    "AggregationService",
    "BackgroundRefiller",
    "Cohort",
    "CohortSpec",
    "CohortMetrics",
    "CohortPhase",
    "CohortScheduler",
    "InlineTransport",
    "ProcessPoolTransport",
    "ProcessShardHandle",
    "RefillMode",
    "ServiceConfig",
    "ServiceMetrics",
    "ShardPlan",
    "ShardSessionSpec",
    "ShardTransport",
    "ShardWorkerServer",
    "ShardedSession",
    "SocketShardHandle",
    "SocketTransport",
    "TransportKind",
    "TransportMetrics",
    "WireFormat",
    "build_transport",
]
