"""Round-robin cohort scheduling over the shared refill pipeline.

The scheduler is the service's main loop: it interleaves rounds across
all live cohorts (round-robin, one round per cohort per sweep) while the
single :class:`~repro.service.refill.BackgroundRefiller` worker tops up
whichever pools have drained.  Interleaving is itself a refill-friendly
policy — while cohort A's round runs, cohorts B and C's pools are
refilling off-path — so the steady state has every cohort hitting its
pool every round.

Updates are produced per round by a caller-supplied ``update_fn`` so the
same scheduler drives synthetic benchmarks (random field vectors), FL
training loops (quantized local updates), and tests (fixed oracles).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set

import numpy as np

from repro.exceptions import ProtocolError
from repro.protocols.base import AggregationResult
from repro.service.cohort import Cohort, CohortPhase

# update_fn(cohort, round_index) -> (updates, dropouts)
UpdateFn = Callable[[Cohort, int], tuple]


class CohortScheduler:
    """Drives many cohorts' rounds round-robin."""

    def __init__(self, cohorts: Sequence[Cohort]):
        if not cohorts:
            raise ProtocolError("scheduler needs at least one cohort")
        ids = [c.cohort_id for c in cohorts]
        if len(set(ids)) != len(ids):
            raise ProtocolError(f"duplicate cohort ids: {ids}")
        self.cohorts = list(cohorts)

    def live_cohorts(self) -> List[Cohort]:
        return [c for c in self.cohorts if c.phase is not CohortPhase.CLOSED]

    def run_sweep(
        self,
        update_fn: UpdateFn,
        rng: Optional[np.random.Generator] = None,
    ) -> Dict[int, AggregationResult]:
        """One round for every live cohort; returns results by cohort id."""
        results: Dict[int, AggregationResult] = {}
        for cohort in self.live_cohorts():
            updates, dropouts = update_fn(cohort, cohort.rounds)
            results[cohort.cohort_id] = cohort.run_round(
                updates, set(dropouts or set()), rng
            )
        return results

    def run(
        self,
        rounds: int,
        update_fn: UpdateFn,
        rng: Optional[np.random.Generator] = None,
    ) -> List[Dict[int, AggregationResult]]:
        """``rounds`` round-robin sweeps across all live cohorts."""
        return [self.run_sweep(update_fn, rng) for _ in range(rounds)]

    def status(self) -> List[Dict]:
        return [c.status() for c in self.cohorts]
