"""Round-robin cohort scheduling over the shared refill pipeline.

The scheduler is the service's main loop: it interleaves rounds across
all live cohorts (round-robin, one round per cohort per sweep) while the
single :class:`~repro.service.refill.BackgroundRefiller` worker tops up
whichever pools have drained.  Interleaving is itself a refill-friendly
policy — while cohort A's round runs, cohorts B and C's pools are
refilling off-path — so the steady state has every cohort hitting its
pool every round.

Updates are produced per round by a caller-supplied ``update_fn`` so the
same scheduler drives synthetic benchmarks (random field vectors), FL
training loops (quantized local updates), and tests (fixed oracles).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Set

import numpy as np

from repro.exceptions import ProtocolError
from repro.protocols.base import AggregationResult
from repro.service.cohort import Cohort, CohortPhase

# update_fn(cohort, round_index) -> (updates, dropouts)
UpdateFn = Callable[[Cohort, int], tuple]


class CohortScheduler:
    """Drives many cohorts' rounds round-robin.

    Membership is mutable at runtime — the control plane adds and
    removes cohorts on a live scheduler from request threads — so the
    cohort list is guarded by a lock and every sweep iterates over a
    point-in-time snapshot.  A cohort closed (or removed) *while* a
    sweep is mid-flight is simply skipped: the sweep observes the
    terminal CLOSED phase through the cohort's own entry check and moves
    on to its neighbours, so retiring one cohort never aborts rounds the
    others have in progress.
    """

    def __init__(
        self,
        cohorts: Sequence[Cohort] = (),
        allow_empty: bool = False,
    ):
        cohorts = list(cohorts)
        if not cohorts and not allow_empty:
            raise ProtocolError("scheduler needs at least one cohort")
        ids = [c.cohort_id for c in cohorts]
        if len(set(ids)) != len(ids):
            raise ProtocolError(f"duplicate cohort ids: {ids}")
        self._lock = threading.RLock()
        self.cohorts = cohorts

    # ------------------------------------------------------------------
    # runtime membership
    # ------------------------------------------------------------------
    def add(self, cohort: Cohort) -> Cohort:
        """Admit one cohort; later sweeps include it."""
        with self._lock:
            if any(c.cohort_id == cohort.cohort_id for c in self.cohorts):
                raise ProtocolError(
                    f"duplicate cohort ids: "
                    f"{[c.cohort_id for c in self.cohorts]} + "
                    f"[{cohort.cohort_id}]"
                )
            self.cohorts.append(cohort)
        return cohort

    def remove(self, cohort_id: int) -> Cohort:
        """Retire one cohort from scheduling (it is not closed here).

        A sweep that already snapshotted the membership may still try
        one final round against the cohort; once the owner closes it,
        that attempt is skipped by the CLOSED check in
        :meth:`run_sweep`.
        """
        with self._lock:
            for index, cohort in enumerate(self.cohorts):
                if cohort.cohort_id == cohort_id:
                    del self.cohorts[index]
                    return cohort
        raise ProtocolError(f"scheduler has no cohort {cohort_id}")

    def live_cohorts(self) -> List[Cohort]:
        with self._lock:
            cohorts = list(self.cohorts)
        return [c for c in cohorts if c.phase is not CohortPhase.CLOSED]

    def run_sweep(
        self,
        update_fn: UpdateFn,
        rng: Optional[np.random.Generator] = None,
    ) -> Dict[int, AggregationResult]:
        """One round for every live cohort; returns results by cohort id.

        Cohorts that reach CLOSED between the liveness snapshot and
        their turn are skipped (a concurrent close/remove races the
        sweep by design); every other error propagates unchanged.
        """
        results: Dict[int, AggregationResult] = {}
        for cohort in self.live_cohorts():
            if getattr(cohort, "kind", "sync") != "sync":
                # Buffered cohorts drain on their K-th submission, not
                # on scheduler sweeps; they keep their scheduler seat
                # only so status() lists every live cohort.
                continue
            updates, dropouts = update_fn(cohort, cohort.rounds)
            try:
                results[cohort.cohort_id] = cohort.run_round(
                    updates, set(dropouts or set()), rng
                )
            except ProtocolError:
                if cohort.phase is CohortPhase.CLOSED:
                    continue  # closed mid-sweep; neighbours unaffected
                raise
        return results

    def run(
        self,
        rounds: int,
        update_fn: UpdateFn,
        rng: Optional[np.random.Generator] = None,
    ) -> List[Dict[int, AggregationResult]]:
        """``rounds`` round-robin sweeps across all live cohorts."""
        return [self.run_sweep(update_fn, rng) for _ in range(rounds)]

    def status(self) -> List[Dict]:
        with self._lock:
            cohorts = list(self.cohorts)
        return [c.status() for c in cohorts]
