"""HTTP/JSON control plane for the aggregation service (``repro serve``).

The subsystem that turns :class:`~repro.service.service.
AggregationService` from a library into a *daemon*: cohorts are
created, driven, and retired over HTTP at runtime — no process restart
— with Prometheus metrics and a graceful drain.

* :mod:`repro.service.api.schemas` — dataclass request/response models
  with typed validation (→ 4xx JSON bodies, never tracebacks).
* :mod:`repro.service.api.routes` — the endpoint table and the single
  place library errors map to HTTP statuses.
* :mod:`repro.service.api.server` — :class:`ControlPlane` (admission
  control, in-flight accounting, idempotent drain) and
  :class:`ControlPlaneServer` (stdlib ``ThreadingHTTPServer`` front
  end).
"""

from repro.service.api.routes import (
    PROMETHEUS_CONTENT_TYPE,
    Response,
    dispatch,
)
from repro.service.api.schemas import (
    ENCODINGS,
    CohortCreateRequest,
    DrainRequest,
    NotFoundError,
    RoundRequest,
    RoundResponse,
    SchemaError,
    SubmitUpdateRequest,
    SyntheticRoundSpec,
    decode_real_vector,
    decode_vector,
    encode_real_vector,
    encode_vector,
    field_bits,
)
from repro.service.api.server import ControlPlane, ControlPlaneServer

__all__ = [
    "ENCODINGS",
    "PROMETHEUS_CONTENT_TYPE",
    "CohortCreateRequest",
    "ControlPlane",
    "ControlPlaneServer",
    "DrainRequest",
    "NotFoundError",
    "Response",
    "RoundRequest",
    "RoundResponse",
    "SchemaError",
    "SubmitUpdateRequest",
    "SyntheticRoundSpec",
    "decode_real_vector",
    "decode_vector",
    "dispatch",
    "encode_real_vector",
    "encode_vector",
    "field_bits",
]
