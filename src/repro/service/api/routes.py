"""Endpoint table + dispatch for the control plane.

One declarative route table maps ``(method, path pattern)`` to handler
functions; :func:`dispatch` resolves it and converts every library
error class to its HTTP lane exactly once, here:

====================================  ======  =================================
``GET  /healthz``                     200     liveness + drain state
``GET  /metrics``                     200     Prometheus text exposition
``GET  /cohorts``                     200     all cohorts' status + specs
``POST /cohorts``                     201     create a cohort from a JSON spec
``GET  /cohorts/{id}``                200     one cohort's status
``DELETE /cohorts/{id}``              200     close it (neighbours untouched)
``POST /cohorts/{id}/rounds``         200     run one round, return aggregate
``POST /cohorts/{id}/rounds``         202     with ``"mode": "async"``: a handle
``GET  /cohorts/{id}/rounds/{h}``     200     poll an async round handle
``POST /cohorts/{id}/updates``        200     buffered submission (may drain)
``POST /cohorts/{id}/members``        201     join a buffered cohort (re-key)
``DELETE /cohorts/{id}/members/{u}``  200     leave a buffered cohort (re-key)
``GET  /cohorts/{id}/traces``         200     recent round-trace summaries
``GET  /traces/{trace_id}``           200     one full trace (span tree)
``POST /drain``                       200     graceful shutdown, then exit
====================================  ======  =================================

Error lanes (JSON bodies shaped ``{"error": {type, message[, field]}}``):
:class:`SchemaError` and config-build :class:`ReproError` → 400,
:class:`NotFoundError` → 404, :class:`ProtocolError` (cohort busy,
closed, draining, round failures) → 409,
:class:`TransportError` (workers unreachable) → 502, anything else →
500 with the exception *type only* — tracebacks never leave the
process.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field as dc_field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.exceptions import ProtocolError, ReproError, TransportError
from repro.service.api.schemas import (
    CohortCreateRequest,
    DrainRequest,
    NotFoundError,
    RoundRequest,
    SchemaError,
    SubmitUpdateRequest,
)

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


@dataclass(frozen=True)
class Response:
    """What a handler returns; the HTTP layer writes it verbatim."""

    status: int
    body: bytes
    content_type: str = "application/json"
    shutdown_after: bool = False


def json_response(
    status: int, payload: Dict[str, Any], shutdown_after: bool = False
) -> Response:
    return Response(
        status,
        json.dumps(payload).encode("utf-8"),
        shutdown_after=shutdown_after,
    )


def error_response(
    status: int, kind: str, message: str, field: Optional[str] = None
) -> Response:
    error: Dict[str, Any] = {"type": kind, "message": message}
    if field is not None:
        error["field"] = field
    return json_response(status, {"error": error})


# ----------------------------------------------------------------------
# handlers — (control, match, body) -> Response
# ----------------------------------------------------------------------
def _healthz(control, match, body) -> Response:
    return json_response(200, control.health())


def _metrics(control, match, body) -> Response:
    return Response(
        200, control.metrics_text().encode("utf-8"),
        content_type=PROMETHEUS_CONTENT_TYPE,
    )


def _list_cohorts(control, match, body) -> Response:
    return json_response(200, control.list_cohorts())


def _create_cohort(control, match, body) -> Response:
    spec = CohortCreateRequest.from_json(body).to_spec()
    return json_response(201, control.create_cohort(spec))


def _cohort_status(control, match, body) -> Response:
    return json_response(
        200, control.cohort_status(int(match.group("cohort_id")))
    )


def _delete_cohort(control, match, body) -> Response:
    return json_response(
        200, control.delete_cohort(int(match.group("cohort_id")))
    )


def _cohort_traces(control, match, body) -> Response:
    return json_response(
        200, control.cohort_traces(int(match.group("cohort_id")))
    )


def _get_trace(control, match, body) -> Response:
    return json_response(
        200, control.get_trace(int(match.group("trace_id")))
    )


def _run_round(control, match, body) -> Response:
    request = RoundRequest.from_json(body)
    cohort_id = int(match.group("cohort_id"))
    if request.mode == "async":
        return json_response(
            202, control.start_async_round(cohort_id, request)
        )
    response = control.run_round(cohort_id, request)
    return json_response(200, response.to_json())


def _get_round_handle(control, match, body) -> Response:
    return json_response(
        200,
        control.get_round_handle(
            int(match.group("cohort_id")), int(match.group("handle"))
        ),
    )


def _submit_update(control, match, body) -> Response:
    request = SubmitUpdateRequest.from_json(body)
    return json_response(
        200, control.submit_update(int(match.group("cohort_id")), request)
    )


def _join_member(control, match, body) -> Response:
    return json_response(
        201, control.join_member(int(match.group("cohort_id")))
    )


def _leave_member(control, match, body) -> Response:
    return json_response(
        200,
        control.leave_member(
            int(match.group("cohort_id")), int(match.group("user_id"))
        ),
    )


def _drain(control, match, body) -> Response:
    request = DrainRequest.from_json(body)
    summary = control.drain(timeout_s=request.timeout_s)
    # shutdown_after: the HTTP layer flushes this response to the
    # client, then stops the listener — drain is the daemon's last word.
    return json_response(200, summary, shutdown_after=True)


Handler = Callable[[Any, "re.Match", Dict[str, Any]], Response]

#: (method, compiled path pattern, handler) — first full match wins.
ROUTES: List[Tuple[str, "re.Pattern", Handler]] = [
    ("GET", re.compile(r"/healthz"), _healthz),
    ("GET", re.compile(r"/metrics"), _metrics),
    ("GET", re.compile(r"/cohorts"), _list_cohorts),
    ("POST", re.compile(r"/cohorts"), _create_cohort),
    ("GET", re.compile(r"/cohorts/(?P<cohort_id>\d+)"), _cohort_status),
    ("DELETE", re.compile(r"/cohorts/(?P<cohort_id>\d+)"), _delete_cohort),
    ("POST", re.compile(r"/cohorts/(?P<cohort_id>\d+)/rounds"), _run_round),
    ("GET",
     re.compile(r"/cohorts/(?P<cohort_id>\d+)/rounds/(?P<handle>\d+)"),
     _get_round_handle),
    ("POST", re.compile(r"/cohorts/(?P<cohort_id>\d+)/updates"),
     _submit_update),
    ("POST", re.compile(r"/cohorts/(?P<cohort_id>\d+)/members"),
     _join_member),
    ("DELETE",
     re.compile(r"/cohorts/(?P<cohort_id>\d+)/members/(?P<user_id>\d+)"),
     _leave_member),
    ("GET", re.compile(r"/cohorts/(?P<cohort_id>\d+)/traces"),
     _cohort_traces),
    ("GET", re.compile(r"/traces/(?P<trace_id>\d+)"), _get_trace),
    ("POST", re.compile(r"/drain"), _drain),
]


def dispatch(
    control, method: str, path: str, body: Dict[str, Any]
) -> Response:
    """Route one request and map library errors to HTTP statuses."""
    path = path.rstrip("/") or "/"
    allowed: List[str] = []
    for route_method, pattern, handler in ROUTES:
        match = pattern.fullmatch(path)
        if match is None:
            continue
        if route_method != method:
            allowed.append(route_method)
            continue
        try:
            return handler(control, match, body)
        except SchemaError as exc:
            return error_response(
                400, "validation", str(exc), field=exc.field
            )
        except NotFoundError as exc:
            return error_response(404, "not-found", str(exc))
        except TransportError as exc:
            return error_response(502, "transport", str(exc))
        except ProtocolError as exc:
            return error_response(409, "conflict", str(exc))
        except ReproError as exc:
            # Config-build rejections (bad geometry, bad knob pairs) are
            # the client's spec problem, same text as the library error.
            return error_response(400, "invalid-spec", str(exc))
        except Exception as exc:  # noqa: BLE001 — no tracebacks on the wire
            return error_response(
                500, "internal",
                f"unhandled {type(exc).__name__}; see server logs",
            )
    if allowed:
        return error_response(
            405, "method-not-allowed",
            f"{method} not allowed on {path}; allowed: {sorted(set(allowed))}",
        )
    return error_response(404, "not-found", f"no route for {method} {path}")
